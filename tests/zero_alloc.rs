//! Proves the engine contract: after warm-up, `fill_happy_set` performs zero
//! heap allocations per holiday, for every scheduler in the standard suite —
//! the same holds for the fused kernel emission+verification paths
//! (`ResidueSchedule::fill` + `GraphChecker`, whose dispatch decision is
//! cached in a `OnceLock`, never re-detected per call), on every worker
//! thread of the sharded analysis path, whose per-shard scratch (happy-set
//! buffer + accumulators) is allocated once per shard, never per holiday,
//! and for the incremental repair plane, where steady-state edge events
//! through `ProfileService::patch` reuse the service-owned scratch.
//!
//! A counting global allocator records every allocation; the test warms each
//! scheduler's buffer (and any internal scratch) for a few holidays, then
//! asserts the allocation counter does not move across a long horizon.  For
//! the sharded path the per-holiday claim is proved by horizon-independence:
//! two `analyze_schedule` runs at the same thread count but very different
//! horizons must allocate exactly the same number of times (threads, shard
//! scratch and channel messages depend only on the thread count).  The
//! `happy_set` Vec shim is also pinned: at most one allocation per call (the
//! returned `Vec`), since the intermediate `HappySet` is thread-local
//! scratch.
//!
//! The counter is global, so it also sees foreign one-shot initialisations
//! from other live threads — concretely, the libtest harness main thread
//! lazily creates its mpsc receive context (two allocations) at a
//! scheduling-dependent moment while it waits for this test.  Every
//! measurement therefore retries a few times and asserts on the **minimum**
//! delta.  Note the honest trade this makes: the guarantee narrows from
//! "zero allocations in one exact window" to "no allocation that recurs
//! across attempts" — a per-holiday (or per-run) allocation fires on every
//! attempt and keeps the minimum nonzero, but a regression that allocates
//! once and then stays warm is absorbed exactly like the harness noise is.
//! One-shot lazy growth in the engines is the warm-up phases' job to
//! surface; this file's claim is the steady state.
//!
//! This file holds exactly one `#[test]` so no concurrent test can disturb
//! the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fhg::core::analysis::{
    analyze_schedule, AnalysisEngine, CycleProfile, DeriveScratch, GraphChecker, HolidayChecker,
};
use fhg::core::schedulers::{standard_suite, PeriodicDegreeBound};
use fhg::core::{HappySet, Scheduler};
use fhg::graph::generators;
use rayon::ThreadPoolBuilder;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` up to three times and returns the smallest allocation delta
/// observed (stopping early at zero).  See the module docs for the exact
/// guarantee this trades: allocations recurring on every attempt stay
/// visible; any one-shot — harness noise or a stays-warm-after-first-hit
/// allocation in the code under test — is filtered.
fn min_alloc_delta(mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        f();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        best = best.min(after - before);
        if best == 0 {
            break;
        }
    }
    best
}

#[test]
fn fill_happy_set_allocates_nothing_after_warmup() {
    let graph = generators::erdos_renyi(300, 0.03, 7);
    for mut scheduler in standard_suite(&graph, 11) {
        let start = scheduler.first_holiday();
        let mut buf = HappySet::new(scheduler.node_count());
        // Warm-up: lets the buffer settle on its capacity and stateful
        // schedulers touch their scratch space once.
        for t in start..start + 4 {
            scheduler.fill_happy_set(t, &mut buf);
        }
        // Stateful schedulers require consecutive holidays, so retries
        // continue the same schedule rather than replaying it.
        let mut t = start + 4;
        let delta = min_alloc_delta(|| {
            for _ in 0..508 {
                scheduler.fill_happy_set(t, &mut buf);
                t += 1;
            }
        });
        assert_eq!(
            delta,
            0,
            "{} allocated {delta} times across 508 holidays on every attempt",
            scheduler.name(),
        );
    }

    // The fused kernel paths themselves: per holiday, emission is the table
    // rows gathered through `HappySet::assign_many` (`kernels::set_rows_count`
    // in the single-batch case exercised here) and verification the
    // AND-any / set-bit-extraction kernels.  The dispatch decision
    // (FHG_KERNEL override or AVX2 detection) is cached in a `OnceLock` on
    // first use — the warm-up fill below pays that one environment read —
    // so the steady state must be allocation-free: not one alloc across 512
    // emitted and verified holidays.
    {
        let scheduler = PeriodicDegreeBound::new(&graph);
        let view = scheduler.residue_schedule().expect("perfectly periodic");
        let checker = GraphChecker::new(&graph);
        let mut buf = HappySet::new(view.node_count());
        view.fill(0, &mut buf);
        assert!(checker.check(0, buf.as_bitset()), "warm-up holiday must verify");
        let delta = min_alloc_delta(|| {
            for t in 1..513u64 {
                view.fill(t, &mut buf);
                assert!(checker.check(t, buf.as_bitset()));
            }
        });
        assert_eq!(
            delta, 0,
            "kernel emission+verification allocated {delta} times across 512 holidays \
             (dispatch must be cached, not re-detected per call)"
        );
    }

    // Batched verification: after the thread-local membership table warms
    // up, `check_batch` allocates nothing — the bit-sliced transpose fill
    // re-walks the previous batch union instead of clearing storage, and
    // the engines' flush borrow array lives on the stack.  Proved on all
    // three adjacency layouts (flat, blocked, CSR, forced via
    // `with_limits`).
    {
        let scheduler = PeriodicDegreeBound::new(&graph);
        let view = scheduler.residue_schedule().expect("perfectly periodic");
        let mut slots: Vec<HappySet> = (0..64).map(|_| HappySet::new(view.node_count())).collect();
        for (i, slot) in slots.iter_mut().enumerate() {
            view.fill(i as u64, slot);
        }
        let classes: Vec<(u64, &fhg::graph::FixedBitSet)> =
            slots.iter().enumerate().map(|(i, s)| (i as u64, s.as_bitset())).collect();
        for (flat, blocked) in [(usize::MAX, usize::MAX), (0, usize::MAX), (0, 0)] {
            let checker = GraphChecker::with_limits(&graph, flat, blocked);
            assert!(checker.check_batch(&classes), "warm-up batch must verify");
            let delta = min_alloc_delta(|| {
                for _ in 0..64 {
                    assert!(checker.check_batch(&classes));
                }
            });
            assert_eq!(
                delta,
                0,
                "batched verification on the {} layout allocated {delta} times after warm-up",
                checker.layout()
            );
        }
    }

    // The `happy_set` Vec shim: the intermediate HappySet is thread-local
    // scratch, so after warm-up each call allocates at most the returned Vec.
    let mut scheduler = PeriodicDegreeBound::new(&graph);
    for t in 0..4 {
        let _ = scheduler.happy_set(t);
    }
    let mut total = 0usize;
    let mut t = 4u64;
    let delta = min_alloc_delta(|| {
        total = 0;
        for _ in 0..256 {
            total += scheduler.happy_set(t).len();
            t += 1;
        }
    });
    assert!(total > 0, "the probe schedule must be non-trivial");
    assert!(
        delta <= 256,
        "happy_set shim allocated {delta} times across 256 holidays (max 1 per call)"
    );

    // The production analysis: per-holiday (and, for the closed-form
    // engine, per-repetition) work must allocate nothing, which shows up as
    // horizon-independence — the allocations left (profile/shard scratch,
    // pool bookkeeping) depend only on the graph, the cycle and the thread
    // count.  Horizons 128/1024/8192 all take the closed-form engine here
    // (cycle divides them); the engine profiles one cycle and derives the
    // rest analytically, so an 8x horizon costs not a single extra
    // allocation.
    assert_eq!(
        AnalysisEngine::select(&scheduler, 128),
        AnalysisEngine::ClosedForm,
        "horizons of at least one cycle must take the closed-form engine"
    );
    for threads in [1usize, 2, 4] {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        // Warm-up run: first-use lazy state (thread-local buffers, pool
        // workers, runtime bookkeeping) settles before measurement.
        pool.install(|| analyze_schedule(&graph, &mut scheduler, 64));
        let deltas: Vec<u64> = [128u64, 1024, 8192]
            .iter()
            .map(|&horizon| {
                min_alloc_delta(|| {
                    let analysis =
                        pool.install(|| analyze_schedule(&graph, &mut scheduler, horizon));
                    assert!(analysis.all_happy_sets_independent);
                })
            })
            .collect();
        assert!(
            deltas.windows(2).all(|w| w[0] == w[1]),
            "{threads} threads: allocations grew with the horizon ({deltas:?}), \
             so some engine allocated per holiday or per repetition"
        );
    }

    // The serving-tier derivation paths (PR 5): repeated derivations from
    // one cached profile with caller-owned scratch.  The totals-only fast
    // path must be entirely allocation-free after warm-up — fused
    // whole-cycle folds are read-only, and ragged tails reuse the scratch
    // bank and mask columns.  The full derive allocates only its output
    // (the per-node vector), so its allocation count must not depend on
    // the horizon.
    {
        let scheduler = PeriodicDegreeBound::new(&graph);
        let view = scheduler.residue_schedule().expect("perfectly periodic");
        let checker = GraphChecker::new(&graph);
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let profile = pool.install(|| {
            CycleProfile::build(view, scheduler.first_holiday(), graph.node_count(), &checker)
        });
        let cycle = profile.cycle();
        let mut scratch = DeriveScratch::new();
        // Warm-up: one whole-cycle fold and one ragged fold size the
        // scratch bank, tail bank and mask columns.
        assert!(profile.derive_totals_with(8 * cycle, &mut scratch).is_some());
        assert!(profile.derive_totals_with(8 * cycle + 3, &mut scratch).is_some());
        let delta = min_alloc_delta(|| {
            for horizon in [cycle, 4 * cycle, 64 * cycle, 64 * cycle + 1, 8 * cycle + 5] {
                let totals = profile.derive_totals_with(horizon, &mut scratch).unwrap();
                assert!(totals.all_happy_sets_independent);
            }
        });
        assert_eq!(
            delta, 0,
            "totals-only derivation allocated {delta} times after warm-up \
             (the serving path must reuse the caller's scratch)"
        );

        let mut derive_deltas = Vec::new();
        for horizon in [4 * cycle, 64 * cycle, 1024 * cycle] {
            let _ = profile.derive_with("warm", &graph, horizon, &mut scratch).unwrap();
            derive_deltas.push(min_alloc_delta(|| {
                let analysis =
                    profile.derive_with("derive", &graph, horizon, &mut scratch).unwrap();
                assert!(analysis.all_happy_sets_independent);
            }));
        }
        assert!(
            derive_deltas.windows(2).all(|w| w[0] == w[1]),
            "full derive allocations grew with the horizon ({derive_deltas:?})"
        );

        // The windowed fold (PR 7): steady-state cached queries over
        // arbitrary `[t0, t1)` windows — ragged head, phase-shifted whole
        // cycles, ragged tail — must also be allocation-free in the
        // totals-only path, and the full windowed derive must allocate
        // independently of both window width and phase.
        let windows = [
            (0, 64 * cycle),
            (1, 64 * cycle),
            (cycle - 1, 64 * cycle + 1),
            (3, 3 + cycle / 2),
            (2 * cycle + 5, 66 * cycle + 7),
            (7, 7),
        ];
        // Warm-up: one ragged windowed fold sizes the segment bank.
        let _ = profile.derive_window_totals_with(1, 8 * cycle + 3, &mut scratch);
        let delta = min_alloc_delta(|| {
            for &(t0, t1) in &windows {
                let _ = profile.derive_window_totals_with(t0, t1, &mut scratch);
            }
        });
        assert_eq!(
            delta, 0,
            "windowed totals derivation allocated {delta} times after warm-up \
             (the serving tier's steady state must reuse the caller's scratch)"
        );

        let mut window_deltas = Vec::new();
        for &(t0, t1) in &[(1, 4 * cycle), (cycle + 3, 64 * cycle + 1), (5, 1024 * cycle + 2)] {
            let _ = profile.derive_window_with("warm", &graph, t0, t1, &mut scratch);
            window_deltas.push(min_alloc_delta(|| {
                let analysis = profile.derive_window_with("window", &graph, t0, t1, &mut scratch);
                assert!(analysis.total_happiness > 0);
            }));
        }
        assert!(
            window_deltas.windows(2).all(|w| w[0] == w[1]),
            "windowed derive allocations grew with the window ({window_deltas:?})"
        );
    }

    // The sub-cycle sharded sweep (horizon < cycle forces the sweep engine):
    // allocations must likewise be horizon-independent on every worker.
    let cycle = scheduler.schedule_cycle().expect("perfectly periodic");
    assert!(cycle >= 8, "need room for two distinct sub-cycle horizons");
    assert_eq!(AnalysisEngine::select(&scheduler, cycle - 1), AnalysisEngine::ShardedSweep);
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    pool.install(|| analyze_schedule(&graph, &mut scheduler, cycle - 1));
    let deltas: Vec<u64> = [cycle - 2, cycle - 1]
        .iter()
        .map(|&horizon| {
            min_alloc_delta(|| {
                let analysis = pool.install(|| analyze_schedule(&graph, &mut scheduler, horizon));
                assert!(analysis.all_happy_sets_independent);
            })
        })
        .collect();
    assert_eq!(deltas[0], deltas[1], "sharded sweep allocations must not depend on the horizon");

    // The incremental repair plane (PR 8): steady-state edge churn through
    // `ProfileService::patch` must be allocation-free after warm-up — the
    // patch scratch (class batch, verification list, compaction arena) is
    // owned by the service and reused, replacement rows retire in place or
    // into pre-grown arena capacity, and the `ScanChecker` verifies against
    // the live graph without building a per-event adjacency layout.
    {
        use fhg::core::dynamic::DynamicColorBound;
        use fhg::core::serving::{PatchOutcome, ProfileService};
        use fhg::graph::{EdgeEvent, EdgeEventKind};

        let base = generators::erdos_renyi(200, 0.02, 13);
        let mut sched = DynamicColorBound::new(&base);
        let mut service = ProfileService::new();
        service.register(0, sched.graph(), &sched).expect("the dynamic tenant registers cleanly");
        assert_eq!(service.build_pending(), 1);

        // Pre-generate a long alternating insert/delete stream of one
        // initially-absent edge: every repair replays the same lanes, so
        // once the scratch reaches its high-water mark nothing grows, and
        // retries continue the stream instead of replaying applied events.
        let n = base.node_count();
        let (u, v) = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .find(|&(a, b)| !base.has_edge(a, b))
            .expect("a sparse graph has absent edges");
        let repairs: Vec<_> = (0..40u64)
            .map(|i| {
                let kind = if i % 2 == 0 { EdgeEventKind::Insert } else { EdgeEventKind::Delete };
                sched
                    .apply_event(EdgeEvent { kind, u, v, holiday: i })
                    .expect("toggling one absent edge is always valid")
            })
            .collect();

        // Warm-up: the first patches detach the slot, size the class batch
        // and let the offset arena find its high-water capacity across a
        // few retire/compact rounds.
        let mut next = 0usize;
        for _ in 0..16 {
            let outcome = service.patch(0, &repairs[next]).expect("tenant 0 is registered");
            assert!(outcome != PatchOutcome::Rebuilt, "the edge toggle must stay patchable");
            next += 1;
        }
        let delta = min_alloc_delta(|| {
            for _ in 0..8 {
                match service.patch(0, &repairs[next]).expect("tenant 0 is registered") {
                    PatchOutcome::Patched(_) => {}
                    other => panic!("steady-state toggle fell off the patch path: {other:?}"),
                }
                next += 1;
            }
        });
        assert_eq!(
            delta, 0,
            "incremental profile repair allocated {delta} times per 8-event window after \
             warm-up (the patch plane must reuse the service-owned scratch)"
        );
    }

    // The WAL append path (PR 10): steady-state event logging through
    // `WalWriter::append` reuses one encode sink and one frame buffer —
    // once both reach their high-water capacity, appending a frame is an
    // encode into existing storage plus one `write(2)`, with not a single
    // heap allocation.
    {
        use fhg::core::dynamic::DynamicColorBound;
        use fhg::core::serving::{WalSync, WalWriter};
        use fhg::graph::{EdgeEvent, EdgeEventKind};

        let base = generators::erdos_renyi(120, 0.03, 29);
        let mut sched = DynamicColorBound::new(&base);
        let n = base.node_count();
        let (u, v) = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .find(|&(a, b)| !base.has_edge(a, b))
            .expect("a sparse graph has absent edges");
        let repairs: Vec<_> = (0..48u64)
            .map(|i| {
                let kind = if i % 2 == 0 { EdgeEventKind::Insert } else { EdgeEventKind::Delete };
                sched
                    .apply_event(EdgeEvent { kind, u, v, holiday: i })
                    .expect("toggling one absent edge is always valid")
            })
            .collect();

        let dir = std::env::temp_dir().join(format!("fhg-zero-alloc-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = WalWriter::with_sync(&dir, WalSync::Never).expect("the WAL opens");
        // Warm-up: the sink and frame buffers find their high-water marks
        // (frames for this toggle stream are all the same shape).
        let mut next = 0usize;
        for _ in 0..16 {
            wal.append(0, &repairs[next]).expect("append");
            next += 1;
        }
        let delta = min_alloc_delta(|| {
            for _ in 0..8 {
                wal.append(0, &repairs[next]).expect("append");
                next += 1;
            }
        });
        assert_eq!(
            delta, 0,
            "steady-state WAL appends allocated {delta} times per 8-event window after \
             warm-up (the writer must reuse its encode buffers)"
        );
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
