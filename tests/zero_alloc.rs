//! Proves the engine contract: after warm-up, `fill_happy_set` performs zero
//! heap allocations per holiday, for every scheduler in the standard suite.
//!
//! A counting global allocator records every allocation; the test warms each
//! scheduler's buffer (and any internal scratch) for a few holidays, then
//! asserts the allocation counter does not move across a long horizon.
//!
//! This file holds exactly one `#[test]` so no concurrent test can disturb
//! the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fhg::core::schedulers::standard_suite;
use fhg::core::HappySet;
use fhg::graph::generators;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn fill_happy_set_allocates_nothing_after_warmup() {
    let graph = generators::erdos_renyi(300, 0.03, 7);
    for mut scheduler in standard_suite(&graph, 11) {
        let start = scheduler.first_holiday();
        let mut buf = HappySet::new(scheduler.node_count());
        // Warm-up: lets the buffer settle on its capacity and stateful
        // schedulers touch their scratch space once.
        for t in start..start + 4 {
            scheduler.fill_happy_set(t, &mut buf);
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for t in start + 4..start + 512 {
            scheduler.fill_happy_set(t, &mut buf);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{} allocated {} times across 508 holidays",
            scheduler.name(),
            after - before
        );
    }
}
