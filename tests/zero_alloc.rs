//! Proves the engine contract: after warm-up, `fill_happy_set` performs zero
//! heap allocations per holiday, for every scheduler in the standard suite —
//! and the same holds on every worker thread of the sharded analysis path,
//! whose per-shard scratch (happy-set buffer + accumulators) is allocated
//! once per shard, never per holiday.
//!
//! A counting global allocator records every allocation; the test warms each
//! scheduler's buffer (and any internal scratch) for a few holidays, then
//! asserts the allocation counter does not move across a long horizon.  For
//! the sharded path the per-holiday claim is proved by horizon-independence:
//! two `analyze_schedule` runs at the same thread count but very different
//! horizons must allocate exactly the same number of times (threads, shard
//! scratch and channel messages depend only on the thread count).  The
//! `happy_set` Vec shim is also pinned: at most one allocation per call (the
//! returned `Vec`), since the intermediate `HappySet` is thread-local
//! scratch.
//!
//! This file holds exactly one `#[test]` so no concurrent test can disturb
//! the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fhg::core::analysis::{analyze_schedule, AnalysisEngine};
use fhg::core::schedulers::{standard_suite, PeriodicDegreeBound};
use fhg::core::{HappySet, Scheduler};
use fhg::graph::generators;
use rayon::ThreadPoolBuilder;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn fill_happy_set_allocates_nothing_after_warmup() {
    let graph = generators::erdos_renyi(300, 0.03, 7);
    for mut scheduler in standard_suite(&graph, 11) {
        let start = scheduler.first_holiday();
        let mut buf = HappySet::new(scheduler.node_count());
        // Warm-up: lets the buffer settle on its capacity and stateful
        // schedulers touch their scratch space once.
        for t in start..start + 4 {
            scheduler.fill_happy_set(t, &mut buf);
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for t in start + 4..start + 512 {
            scheduler.fill_happy_set(t, &mut buf);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{} allocated {} times across 508 holidays",
            scheduler.name(),
            after - before
        );
    }

    // The `happy_set` Vec shim: the intermediate HappySet is thread-local
    // scratch, so after warm-up each call allocates at most the returned Vec.
    let mut scheduler = PeriodicDegreeBound::new(&graph);
    for t in 0..4 {
        let _ = scheduler.happy_set(t);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut total = 0usize;
    for t in 4..4 + 256u64 {
        total += scheduler.happy_set(t).len();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(total > 0, "the probe schedule must be non-trivial");
    assert!(
        after - before <= 256,
        "happy_set shim allocated {} times across 256 holidays (max 1 per call)",
        after - before
    );

    // The production analysis: per-holiday (and, for the closed-form
    // engine, per-repetition) work must allocate nothing, which shows up as
    // horizon-independence — the allocations left (profile/shard scratch,
    // pool bookkeeping) depend only on the graph, the cycle and the thread
    // count.  Horizons 128/1024/8192 all take the closed-form engine here
    // (cycle divides them); the engine profiles one cycle and derives the
    // rest analytically, so an 8x horizon costs not a single extra
    // allocation.
    assert_eq!(
        AnalysisEngine::select(&scheduler, 128),
        AnalysisEngine::ClosedForm,
        "horizons of at least one cycle must take the closed-form engine"
    );
    for threads in [1usize, 2, 4] {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        // Warm-up run: first-use lazy state (thread-local buffers, pool
        // workers, runtime bookkeeping) settles before measurement.
        pool.install(|| analyze_schedule(&graph, &mut scheduler, 64));
        let deltas: Vec<u64> = [128u64, 1024, 8192]
            .iter()
            .map(|&horizon| {
                let before = ALLOCATIONS.load(Ordering::Relaxed);
                let analysis = pool.install(|| analyze_schedule(&graph, &mut scheduler, horizon));
                assert!(analysis.all_happy_sets_independent);
                ALLOCATIONS.load(Ordering::Relaxed) - before
            })
            .collect();
        assert!(
            deltas.windows(2).all(|w| w[0] == w[1]),
            "{threads} threads: allocations grew with the horizon ({deltas:?}), \
             so some engine allocated per holiday or per repetition"
        );
    }

    // The sub-cycle sharded sweep (horizon < cycle forces the sweep engine):
    // allocations must likewise be horizon-independent on every worker.
    let cycle = scheduler.schedule_cycle().expect("perfectly periodic");
    assert!(cycle >= 8, "need room for two distinct sub-cycle horizons");
    assert_eq!(AnalysisEngine::select(&scheduler, cycle - 1), AnalysisEngine::ShardedSweep);
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    pool.install(|| analyze_schedule(&graph, &mut scheduler, cycle - 1));
    let deltas: Vec<u64> = [cycle - 2, cycle - 1]
        .iter()
        .map(|&horizon| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let analysis = pool.install(|| analyze_schedule(&graph, &mut scheduler, horizon));
            assert!(analysis.all_happy_sets_independent);
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .collect();
    assert_eq!(deltas[0], deltas[1], "sharded sweep allocations must not depend on the horizon");
}
