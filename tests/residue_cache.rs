//! Verification-cache lockdown: perfectly periodic schedulers are verified
//! once per residue class, and a corrupted schedule is still caught through
//! the cache path.
//!
//! A counting [`HolidayChecker`] wraps the real graph checker and records
//! every holiday the analysis actually probes.  For a scheduler exposing a
//! `ResidueSchedule` view with cycle `C <= horizon`, the analysis must probe
//! exactly the holidays `start..start + C` — one per residue class — at every
//! thread count; stateful schedulers must still be probed on every holiday.
//! Both counting granularities are pinned: a checker that only overrides
//! `check` sees every class through the batch default's per-class fallback,
//! and a checker that overrides `check_batch` sees each class in exactly one
//! batch.  Kernel-mode coverage comes from CI running this suite under each
//! `FHG_KERNEL` value.

use std::sync::Mutex;

use fhg::core::analysis::{
    analyze_schedule, analyze_schedule_reference, analyze_schedule_with_checker, GraphChecker,
    HolidayChecker,
};
use fhg::core::schedulers::residue::ResidueSchedule;
use fhg::core::schedulers::{PeriodicDegreeBound, PhasedGreedy};
use fhg::core::{HappySet, Scheduler};
use fhg::graph::generators::erdos_renyi;
use fhg::graph::{FixedBitSet, Graph, NodeId};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

/// Records every holiday the analysis asks to verify, then delegates to the
/// real checker.
struct CountingChecker {
    inner: GraphChecker,
    probed: Mutex<Vec<u64>>,
}

impl CountingChecker {
    fn new(graph: &Graph) -> Self {
        CountingChecker { inner: GraphChecker::new(graph), probed: Mutex::new(Vec::new()) }
    }

    fn probed_sorted(&self) -> Vec<u64> {
        let mut probed = self.probed.lock().unwrap().clone();
        probed.sort_unstable();
        probed
    }
}

impl HolidayChecker for CountingChecker {
    fn check(&self, t: u64, happy: &FixedBitSet) -> bool {
        self.probed.lock().unwrap().push(t);
        self.inner.check(t, happy)
    }
}

/// Records every class handed through the **batch** path (and asserts the
/// batch width contract), then delegates to the real batched checker.  A
/// class the engines route through per-class `check` would be counted too —
/// the exactly-once assertions below therefore cover both granularities.
struct BatchCountingChecker {
    inner: GraphChecker,
    probed: Mutex<Vec<u64>>,
    batches: Mutex<Vec<usize>>,
}

impl BatchCountingChecker {
    fn new(graph: &Graph) -> Self {
        BatchCountingChecker {
            inner: GraphChecker::new(graph),
            probed: Mutex::new(Vec::new()),
            batches: Mutex::new(Vec::new()),
        }
    }

    fn probed_sorted(&self) -> Vec<u64> {
        let mut probed = self.probed.lock().unwrap().clone();
        probed.sort_unstable();
        probed
    }
}

impl HolidayChecker for BatchCountingChecker {
    fn check(&self, t: u64, happy: &FixedBitSet) -> bool {
        self.probed.lock().unwrap().push(t);
        self.inner.check(t, happy)
    }

    fn check_batch(&self, classes: &[(u64, &FixedBitSet)]) -> bool {
        assert!(classes.len() <= 64, "engines must respect the batch width");
        self.probed.lock().unwrap().extend(classes.iter().map(|&(t, _)| t));
        self.batches.lock().unwrap().push(classes.len());
        self.inner.check_batch(classes)
    }
}

#[test]
fn each_residue_class_is_verified_exactly_once() {
    let graph = erdos_renyi(80, 0.08, 7);
    let mut scheduler = PeriodicDegreeBound::new(&graph);
    let cycle = scheduler.residue_schedule().expect("periodic").cycle();
    let start = scheduler.first_holiday();
    let horizon = 4 * cycle + 13; // comfortably more holidays than classes
    assert!(cycle >= 2 && cycle < horizon, "test graph must have a non-trivial cycle");

    for threads in [1usize, 2, 8] {
        let checker = CountingChecker::new(&graph);
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let analysis = pool
            .install(|| analyze_schedule_with_checker(&graph, &mut scheduler, horizon, &checker));
        assert!(analysis.all_happy_sets_independent);
        assert_eq!(
            checker.probed_sorted(),
            (start..start + cycle).collect::<Vec<u64>>(),
            "{threads} threads: exactly one probe per residue class, no repeats"
        );
    }
}

#[test]
fn short_horizons_only_verify_what_they_run() {
    // horizon < cycle: every holiday is a fresh residue class, all probed.
    let graph = erdos_renyi(60, 0.1, 3);
    let mut scheduler = PeriodicDegreeBound::new(&graph);
    let cycle = scheduler.residue_schedule().expect("periodic").cycle();
    assert!(cycle > 4, "need a cycle longer than the horizon under test");
    let start = scheduler.first_holiday();
    let horizon = cycle - 2;
    let checker = CountingChecker::new(&graph);
    analyze_schedule_with_checker(&graph, &mut scheduler, horizon, &checker);
    assert_eq!(checker.probed_sorted(), (start..start + horizon).collect::<Vec<u64>>());
}

#[test]
fn stateful_schedulers_are_verified_on_every_holiday() {
    let graph = erdos_renyi(40, 0.1, 5);
    let mut scheduler = PhasedGreedy::new(&graph);
    assert!(scheduler.residue_schedule().is_none(), "phased greedy is stateful: no view");
    let start = scheduler.first_holiday();
    let horizon = 97u64;
    let checker = CountingChecker::new(&graph);
    analyze_schedule_with_checker(&graph, &mut scheduler, horizon, &checker);
    assert_eq!(
        checker.probed_sorted(),
        (start..start + horizon).collect::<Vec<u64>>(),
        "no residue view means no caching: every holiday probed"
    );
}

/// A deliberately broken "periodic" scheduler: two adjacent nodes share the
/// same slot and modulus, so they host together on every fourth holiday.
struct Corrupted {
    schedule: ResidueSchedule,
}

impl Corrupted {
    fn new() -> Self {
        // Nodes 0 and 1 (adjacent in the path graph below) both host at
        // t ≡ 1 (mod 4); nodes 2 and 3 host at distinct residues.
        Corrupted { schedule: ResidueSchedule::new(vec![1, 1, 2, 3], vec![4, 4, 4, 4]) }
    }
}

impl Scheduler for Corrupted {
    fn node_count(&self) -> usize {
        self.schedule.node_count()
    }
    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        self.schedule.fill(t, out);
    }
    fn first_holiday(&self) -> u64 {
        0
    }
    fn name(&self) -> &'static str {
        "corrupted-periodic"
    }
    fn is_periodic(&self) -> bool {
        true
    }
    fn period(&self, p: NodeId) -> Option<u64> {
        Some(self.schedule.modulus(p))
    }
    fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
        Some(4)
    }
    fn residue_schedule(&self) -> Option<&ResidueSchedule> {
        Some(&self.schedule)
    }
}

#[test]
fn corrupted_happy_sets_are_caught_through_the_cache_path() {
    let graph = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    for threads in [1usize, 2, 8] {
        let mut scheduler = Corrupted::new();
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let analysis = pool.install(|| analyze_schedule(&graph, &mut scheduler, 64));
        assert!(
            !analysis.all_happy_sets_independent,
            "{threads} threads: the cached path must catch the conflicting residue class"
        );
        // And the verdict replay agrees with the exhaustive reference.
        let mut reference = Corrupted::new();
        let expected = analyze_schedule_reference(&graph, &mut reference, 64);
        assert!(!expected.all_happy_sets_independent);
    }
}

#[test]
fn cache_probe_count_is_independent_of_the_horizon() {
    // Doubling the horizon must not change the number of probes once every
    // residue class has been seen.
    let graph = erdos_renyi(50, 0.12, 9);
    let cycle = PeriodicDegreeBound::new(&graph).residue_schedule().unwrap().cycle();
    let mut counts = Vec::new();
    for horizon in [2 * cycle, 8 * cycle] {
        let mut scheduler = PeriodicDegreeBound::new(&graph);
        let checker = CountingChecker::new(&graph);
        analyze_schedule_with_checker(&graph, &mut scheduler, horizon, &checker);
        counts.push(checker.probed_sorted().len() as u64);
    }
    assert_eq!(counts[0], cycle);
    assert_eq!(counts[1], cycle, "probe count must not scale with the horizon");
}

#[test]
fn batched_verification_still_probes_each_class_exactly_once() {
    // Same contract as `each_residue_class_is_verified_exactly_once`, but
    // observed through an overridden `check_batch`: every residue class
    // arrives in exactly one batch, none is re-probed per class, at every
    // thread count.
    let graph = erdos_renyi(80, 0.08, 7);
    let mut scheduler = PeriodicDegreeBound::new(&graph);
    let cycle = scheduler.residue_schedule().expect("periodic").cycle();
    let start = scheduler.first_holiday();
    let horizon = 4 * cycle + 13;
    assert!(cycle >= 2 && cycle < horizon, "test graph must have a non-trivial cycle");

    for threads in [1usize, 2, 8] {
        let checker = BatchCountingChecker::new(&graph);
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let analysis = pool
            .install(|| analyze_schedule_with_checker(&graph, &mut scheduler, horizon, &checker));
        assert!(analysis.all_happy_sets_independent);
        assert_eq!(
            checker.probed_sorted(),
            (start..start + cycle).collect::<Vec<u64>>(),
            "{threads} threads: exactly one batched probe per residue class"
        );
        let batches = checker.batches.lock().unwrap().clone();
        assert_eq!(
            batches.iter().map(|&len| len as u64).sum::<u64>(),
            cycle,
            "{threads} threads: batch sizes partition the cycle"
        );
        assert!(
            batches.iter().any(|&len| len > 1),
            "{threads} threads: a {cycle}-class cycle must produce real batches"
        );
    }
}

#[test]
fn corrupted_happy_sets_are_caught_through_the_batch_path() {
    // The conflicting residue class (nodes 0 and 1 host together) must fail
    // the analysis when verification flows through `check_batch`.
    let graph = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    let mut scheduler = Corrupted::new();
    let checker = BatchCountingChecker::new(&graph);
    let analysis = analyze_schedule_with_checker(&graph, &mut scheduler, 64, &checker);
    assert!(
        !analysis.all_happy_sets_independent,
        "the batch path must catch the conflicting residue class"
    );
    assert!(!checker.probed_sorted().is_empty(), "the corrupted class was actually probed");
}

proptest! {
    /// `GraphChecker::check_batch` equals the conjunction of per-set
    /// `check` on every adjacency layout (flat, blocked, CSR — forced via
    /// `with_limits`), including batches holding a corrupted (dependent or
    /// out-of-range) class.  Kernel-mode coverage comes from CI running
    /// this suite under each `FHG_KERNEL` value.
    #[test]
    fn check_batch_matches_per_set_checks_on_every_layout(
        seed in 0u64..40,
        n in 40usize..200,
        picks in proptest::collection::vec((0u64..1 << 16, 1usize..10), 1..20),
    ) {
        let graph = erdos_renyi(n, 0.04, seed);
        let classes: Vec<(u64, FixedBitSet)> = picks
            .iter()
            .enumerate()
            .map(|(i, &(mix, members))| {
                let mut set = FixedBitSet::new(n);
                for k in 0..members {
                    set.insert(((mix as usize).wrapping_mul(k * 31 + i + 1)) % n);
                }
                (i as u64, set)
            })
            .collect();
        let refs: Vec<(u64, &FixedBitSet)> = classes.iter().map(|(t, s)| (*t, s)).collect();
        for (flat, blocked) in [(usize::MAX, usize::MAX), (0, usize::MAX), (0, 0)] {
            let checker = GraphChecker::with_limits(&graph, flat, blocked);
            let expected = refs.iter().all(|&(t, s)| checker.check(t, s));
            prop_assert_eq!(
                checker.check_batch(&refs),
                expected,
                "layout {} disagrees with the per-set conjunction",
                checker.layout()
            );
        }
    }
}
