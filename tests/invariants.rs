//! Property-based cross-crate invariants, exercised through the public `fhg`
//! API: whatever graph family, seed, colouring or scheduler is chosen, the
//! defining invariants of the Family Holiday Gathering Problem must hold.

use proptest::prelude::*;

use fhg::codes::{CodeSchedule, EliasCode, PrefixFreeCode, UnaryCode};
use fhg::coloring::{dsatur, greedy_coloring, GreedyOrder};
use fhg::core::analysis::analyze_schedule;
use fhg::core::prelude::*;
use fhg::graph::generators::Family;
use fhg::graph::properties;

fn arb_family() -> impl Strategy<Value = Family> {
    prop::sample::select(Family::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every happy set of every core scheduler is an independent set, on any
    /// family, for any seed.
    #[test]
    fn all_schedulers_emit_independent_sets(family in arb_family(), seed in 0u64..500) {
        let graph = family.generate(40, 4.0, seed);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(PhasedGreedy::new(&graph)),
            Box::new(PrefixCodeScheduler::omega(&graph)),
            Box::new(PeriodicDegreeBound::new(&graph)),
            Box::new(DistributedDegreeBound::new(&graph, seed)),
            Box::new(FirstComeFirstGrab::new(&graph, seed)),
        ];
        for mut s in schedulers {
            let start = s.first_holiday();
            for t in start..start + 48 {
                let happy = s.happy_set(t);
                prop_assert!(
                    properties::is_independent_set(&graph, &happy),
                    "{} holiday {t} on {}", s.name(), family.name()
                );
            }
        }
    }

    /// The periodic schedulers really are perfectly periodic: the analysis
    /// observes exactly the period they advertise (when the horizon is long
    /// enough to see two occurrences).
    #[test]
    fn advertised_periods_are_observed(family in arb_family(), seed in 0u64..200) {
        let graph = family.generate(30, 4.0, seed);
        let mut s = PeriodicDegreeBound::new(&graph);
        let horizon = 4 * graph.nodes().map(|p| s.period(p).unwrap()).max().unwrap_or(1);
        let analysis = analyze_schedule(&graph, &mut s, horizon);
        for node in &analysis.per_node {
            prop_assert_eq!(node.observed_period, s.period(node.node), "node {}", node.node);
        }
    }

    /// Colour-bound schedules never wake two different colours in the same
    /// holiday, for any prefix-free code and any colouring algorithm.
    #[test]
    fn one_color_per_holiday(seed in 0u64..300, holiday in 0u64..50_000u64) {
        let graph = Family::ErdosRenyi.generate(35, 4.0, seed);
        for coloring in [greedy_coloring(&graph, GreedyOrder::DegreeDescending), dsatur(&graph)] {
            let schedule = CodeSchedule::new(EliasCode::omega());
            let happy_colors: std::collections::HashSet<u32> = graph
                .nodes()
                .filter(|&p| schedule.is_happy(u64::from(coloring.color(p)), holiday))
                .map(|p| coloring.color(p))
                .collect();
            prop_assert!(happy_colors.len() <= 1, "colours {happy_colors:?} collided");
        }
    }

    /// Kraft-style sanity: for any set of colours, the reciprocal sum of the
    /// periods induced by a prefix-free code never exceeds 1 — the exact
    /// inequality the Theorem 4.1 proof relies on.
    #[test]
    fn induced_periods_satisfy_the_kraft_inequality(colors in proptest::collection::hash_set(1u64..5_000, 1..60)) {
        for code_sum in [
            colors.iter().map(|&c| 1.0 / (1u64 << EliasCode::omega().code_len(c)) as f64).sum::<f64>(),
            colors.iter().map(|&c| 1.0 / (1u64 << EliasCode::delta().code_len(c)) as f64).sum::<f64>(),
            colors.iter().map(|&c| 1.0 / (1u64 << UnaryCode.code_len(c).min(62)) as f64).sum::<f64>(),
        ] {
            prop_assert!(code_sum <= 1.0 + 1e-12);
        }
    }

    /// The §3 and §5 guarantees hold simultaneously on the same graph: for
    /// every node, phased greedy's streak stays below d+1 and the periodic
    /// scheduler's period stays within [d+1, 2d].
    #[test]
    fn degree_bounds_hold_jointly(seed in 0u64..200) {
        let graph = Family::UnitDisk.generate(50, 5.0, seed);
        let mut phased = PhasedGreedy::new(&graph);
        let analysis = analyze_schedule(&graph, &mut phased, 256);
        let periodic = PeriodicDegreeBound::new(&graph);
        for p in graph.nodes() {
            let d = graph.degree(p) as u64;
            prop_assert!(analysis.per_node[p].max_unhappiness <= d);
            if d > 0 {
                let period = periodic.period(p).unwrap();
                prop_assert!(period > d && period <= 2 * d);
            }
        }
    }
}
