//! Parity lockdown for the windowed derivation (the start-offset fold) and
//! the serving tier built on it.
//!
//! `CycleProfile::derive_window(t0, t1)` folds an arbitrary `[t0, t1)`
//! window — a ragged head of the phase cycle, phase-shifted whole cycles
//! replicated analytically, and a ragged tail — through the exact
//! segment-merge algebra.  This suite asserts the result is
//! **bitwise-identical** to a sequential reference sweep restricted to the
//! same window (`analyze_schedule_reference` run on a start-shifted view of
//! the schedule), for every periodic scheduler in the standard suite,
//! across graph families, random seeds, profile builds pinned at 1/2/8
//! worker threads, and window shapes chosen adversarially: zero-width,
//! sub-cycle, straddling `cycle ± 1`, whole-cycle aligned, multi-cycle, and
//! ragged at both ends.
//!
//! Like `tests/analysis_parity.rs`, float fields compare through
//! `to_bits`, and CI runs this suite under the `FHG_THREADS` ×
//! `FHG_KERNEL` matrix, so a drift in any kernel arm of the column merge
//! shows up here as a window-parity failure.

use proptest::prelude::*;

use fhg::core::analysis::{
    analyze_schedule_reference, CycleProfile, GraphChecker, ScheduleAnalysis,
};
use fhg::core::schedulers::residue::ResidueSchedule;
use fhg::core::schedulers::standard_suite;
use fhg::core::serving::{ProfileService, Query};
use fhg::core::Scheduler;
use fhg::graph::generators::Family;
use fhg::graph::{HappySet, NodeId};
use rayon::ThreadPoolBuilder;

/// A start-shifted view of a periodic schedule: holiday `t` of the window
/// scheduler is holiday `base_start + t0 + t` of the underlying residue
/// view, so a reference sweep of `t1 - t0` holidays over it is exactly the
/// original schedule restricted to the window `[t0, t1)`.
struct WindowView<'a> {
    view: &'a ResidueSchedule,
    start: u64,
}

impl Scheduler for WindowView<'_> {
    fn node_count(&self) -> usize {
        self.view.node_count()
    }
    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        self.view.fill(t, out);
    }
    fn first_holiday(&self) -> u64 {
        self.start
    }
    fn name(&self) -> &'static str {
        "window-ref"
    }
    fn is_periodic(&self) -> bool {
        true
    }
    fn period(&self, _p: NodeId) -> Option<u64> {
        None
    }
    fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
        None
    }
}

/// Asserts two analyses are bitwise-identical, NaN-aware on float fields.
fn assert_bitwise_identical(windowed: &ScheduleAnalysis, reference: &ScheduleAnalysis, ctx: &str) {
    assert_eq!(windowed.scheduler, reference.scheduler, "{ctx}");
    assert_eq!(windowed.horizon, reference.horizon, "{ctx}");
    assert_eq!(
        windowed.all_happy_sets_independent, reference.all_happy_sets_independent,
        "{ctx}: independence verdict"
    );
    assert_eq!(windowed.never_happy, reference.never_happy, "{ctx}: never_happy");
    assert_eq!(windowed.total_happiness, reference.total_happiness, "{ctx}: total_happiness");
    assert_eq!(
        windowed.mean_happy_set_size.to_bits(),
        reference.mean_happy_set_size.to_bits(),
        "{ctx}: mean_happy_set_size"
    );
    assert_eq!(windowed.per_node.len(), reference.per_node.len(), "{ctx}");
    for (a, b) in windowed.per_node.iter().zip(&reference.per_node) {
        assert_eq!(a.node, b.node, "{ctx}");
        assert_eq!(a.degree, b.degree, "{ctx}: node {}", a.node);
        assert_eq!(a.happy_count, b.happy_count, "{ctx}: node {} happy_count", a.node);
        assert_eq!(a.max_unhappiness, b.max_unhappiness, "{ctx}: node {} streak", a.node);
        assert_eq!(a.observed_period, b.observed_period, "{ctx}: node {} period", a.node);
        assert_eq!(a.first_happy, b.first_happy, "{ctx}: node {} first_happy", a.node);
        assert_eq!(
            a.mean_gap.to_bits(),
            b.mean_gap.to_bits(),
            "{ctx}: node {} mean_gap (NaN-aware)",
            a.node
        );
    }
}

/// The adversarial window shapes for a schedule of cycle `C`: zero-width at
/// several anchors, sub-cycle from 0 and from a ragged phase, straddling
/// `C ± 1`, whole-cycle aligned, multi-cycle, and ragged at both ends.
fn window_shapes(cycle: u64, k: u64, jitter: u64) -> Vec<(u64, u64)> {
    let c = cycle;
    let a = 1 + jitter % c.max(1); // a ragged anchor in (0, c]
    vec![
        (0, 0),
        (a, a),
        (k * c + a, k * c + a),
        (7, 3), // inverted: the empty window, never a panic
        (0, 1),
        (0, c / 2 + 1),
        (0, c - 1),
        (0, c),
        (0, c + 1),
        (a, a + 1),
        (a, a + c - 1),
        (a, a + c),
        (a, a + c + 1),
        (c - 1, c + 1),
        (c, 2 * c),
        (c, k * c + a),
        (a, k * c),
        (a, k * c + (a + 1) % c),
        (k * c - 1, (k + 2) * c + 1),
        (c / 3, k * c + 2 * c / 3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The core property: `derive_window(t0, t1)` (and the totals fast
    /// path) is bitwise-identical to the sequential reference sweep over
    /// the same window, for every periodic suite scheduler, with the
    /// profile built at 1/2/8 worker threads.
    #[test]
    fn derive_window_is_bitwise_identical_to_a_reference_sweep(
        family in prop::sample::select(Family::ALL.to_vec()),
        seed in 0u64..200,
        k in 2u64..5,
        jitter in 0u64..1000,
        threads in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        let graph = family.generate(30, 3.5, seed);
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let checker = GraphChecker::new(&graph);
        let suite = standard_suite(&graph, seed ^ 0x7171);
        for prod in suite {
            let Some(cycle) = prod.schedule_cycle() else { continue };
            let view = prod.residue_schedule().expect("cycle implies a residue view");
            let start = prod.first_holiday();
            let profile = pool.install(|| {
                CycleProfile::build(view, start, graph.node_count(), &checker)
            });
            for (t0, t1) in window_shapes(cycle, k, jitter) {
                let horizon = t1.saturating_sub(t0);
                let mut shifted = WindowView { view, start: start + t0 };
                let expected = analyze_schedule_reference(&graph, &mut shifted, horizon);
                let got = profile.derive_window("window-ref", &graph, t0, t1);
                let ctx = format!(
                    "{} on {} (seed {seed}, cycle {cycle}, window [{t0}, {t1}), {threads} threads)",
                    prod.name(),
                    family.name()
                );
                assert_bitwise_identical(&got, &expected, &ctx);
                prop_assert_eq!(
                    profile.derive_window_totals(t0, t1),
                    expected.totals(),
                    "{}: totals fast path",
                    ctx
                );
            }
        }
    }
}

/// The serving tier end to end: registered tenants answer the same window
/// shapes through the batch front, bitwise-equal to the reference sweep —
/// and re-registration plus invalidation/rebuild stay bitwise-stable.
#[test]
fn profile_service_serves_reference_identical_windows() {
    let graph = Family::ErdosRenyi.generate(32, 3.5, 19);
    let mut service = ProfileService::new();
    let suite = standard_suite(&graph, 0x2D2D);
    let mut tenants: Vec<(u64, u64, u64)> = Vec::new(); // (tenant, cycle, start)
    for (i, s) in suite.iter().enumerate() {
        let tenant = i as u64;
        if s.schedule_cycle().is_some() {
            service.register(tenant, &graph, s.as_ref()).unwrap();
            tenants.push((tenant, s.schedule_cycle().unwrap(), s.first_holiday()));
        } else {
            assert!(service.register(tenant, &graph, s.as_ref()).is_err());
        }
    }
    assert!(!tenants.is_empty());
    service.build_pending();

    let queries: Vec<Query> = tenants
        .iter()
        .flat_map(|&(tenant, cycle, _)| {
            window_shapes(cycle, 3, 5).into_iter().map(move |window| Query { tenant, window })
        })
        .collect();
    let batch = service.query_batch(&queries);
    let full = service.query_batch_full(&queries);
    for (q, (t, f)) in queries.iter().zip(batch.iter().zip(&full)) {
        let suite_ref = standard_suite(&graph, 0x2D2D);
        let start = suite_ref[q.tenant as usize].first_holiday();
        let view = suite_ref[q.tenant as usize].residue_schedule().unwrap();
        let mut shifted = WindowView { view, start: start + q.window.0 };
        let horizon = q.window.1.saturating_sub(q.window.0);
        let expected = analyze_schedule_reference(&graph, &mut shifted, horizon);
        let t = t.as_ref().unwrap();
        let f = f.as_ref().unwrap();
        assert_eq!(t.totals, expected.totals(), "tenant {} window {:?}", q.tenant, q.window);
        assert_eq!(f.analysis.totals(), expected.totals());
    }

    // Invalidate + rebuild is bitwise-stable.
    let probe = queries[queries.len() / 2];
    let before = service.query_totals(probe.tenant, probe.window.0, probe.window.1).unwrap();
    assert!(service.invalidate(probe.tenant));
    assert_eq!(service.build_pending(), 1);
    let after = service.query_totals(probe.tenant, probe.window.0, probe.window.1).unwrap();
    assert_eq!(before, after);
}
