//! Cross-crate engine tests: the `fill_happy_set` bitset path and the
//! `happy_set` Vec shim agree bitwise for every scheduler, on every graph
//! family, across seeds — plus round-trip and independence-equivalence
//! coverage for the `HappySet` type through the public umbrella API.

use proptest::prelude::*;

use fhg::core::schedulers::standard_suite;
use fhg::core::HappySet;
use fhg::graph::generators::{erdos_renyi, Family};
use fhg::graph::properties::{self, AdjacencyBitmap};
use fhg::graph::{CsrGraph, FixedBitSet};

#[test]
fn happy_set_roundtrips_through_vec() {
    let mut s = HappySet::new(500);
    let members = [0usize, 63, 64, 65, 128, 499];
    for &p in &members {
        s.insert(p);
    }
    let vec = s.to_vec();
    assert_eq!(vec, members.to_vec());
    let back = HappySet::from_members(500, vec.iter().copied());
    assert_eq!(back, s);
    assert_eq!(back.len(), members.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every scheduler of the standard suite produces bitwise-identical
    /// schedules through the Vec API and the buffer API.  Two instances are
    /// built from identical inputs so stateful schedulers advance twin
    /// states.
    #[test]
    fn both_apis_emit_identical_schedules(family in prop::sample::select(Family::ALL.to_vec()),
                                          seed in 0u64..200) {
        let graph = family.generate(36, 4.0, seed);
        let via_vec = standard_suite(&graph, seed ^ 0x5A5A);
        let via_fill = standard_suite(&graph, seed ^ 0x5A5A);
        for (mut a, mut b) in via_vec.into_iter().zip(via_fill) {
            prop_assert_eq!(a.name(), b.name());
            let start = a.first_holiday();
            let mut buf = HappySet::new(b.node_count());
            for t in start..start + 64 {
                let vec_api = a.happy_set(t);
                b.fill_happy_set(t, &mut buf);
                prop_assert_eq!(
                    &vec_api, &buf.to_vec(),
                    "{} diverged at holiday {} on {}", a.name(), t, family.name()
                );
                // And the bitset agrees membership-wise with the Vec.
                for &p in &vec_api {
                    prop_assert!(buf.contains(p));
                }
                prop_assert_eq!(vec_api.len(), buf.len());
            }
        }
    }

    /// The bitset independence checkers agree with the slice checker on the
    /// actual happy sets schedulers emit (not just arbitrary subsets).
    #[test]
    fn independence_checkers_agree_on_real_happy_sets(seed in 0u64..100) {
        let graph = erdos_renyi(60, 0.08, seed);
        let csr = CsrGraph::from_graph(&graph);
        let adj = AdjacencyBitmap::from_graph(&graph);
        for mut s in standard_suite(&graph, seed) {
            let start = s.first_holiday();
            let mut buf = HappySet::new(s.node_count());
            for t in start..start + 24 {
                s.fill_happy_set(t, &mut buf);
                let slice = buf.to_vec();
                let reference = properties::is_independent_set(&graph, &slice);
                prop_assert!(reference, "{} emitted a conflicting set", s.name());
                prop_assert_eq!(csr.is_independent(buf.as_bitset()), reference);
                prop_assert_eq!(adj.is_independent(buf.as_bitset()), reference);
            }
        }
    }

    /// Corrupting a valid happy set with a conflicting neighbour flips all
    /// three checkers to false.
    #[test]
    fn checkers_reject_injected_conflicts(seed in 0u64..60) {
        let graph = erdos_renyi(50, 0.15, seed);
        let Some(edge) = graph.edges().next() else { return; };
        let csr = CsrGraph::from_graph(&graph);
        let adj = AdjacencyBitmap::from_graph(&graph);
        let mut bits = FixedBitSet::new(50);
        bits.insert(edge.u);
        bits.insert(edge.v);
        prop_assert!(!csr.is_independent(&bits));
        prop_assert!(!adj.is_independent(&bits));
        prop_assert!(!properties::is_independent_set(&graph, &[edge.u, edge.v]));
    }
}
