//! Parity lockdown for the production analysis engines.
//!
//! `analyze_schedule` picks an engine per call (`AnalysisEngine::select`):
//! the **closed-form cycle profile** whenever a scheduler exposes a
//! `ResidueSchedule` view and the horizon spans at least one cycle, the
//! **sharded, residue-cached sweep** for shorter periodic horizons, and the
//! sequential path for stateful schedulers.  This suite asserts that, for
//! every scheduler in the standard suite, every graph family, random seeds,
//! thread counts 1/2/8 and horizons that are deliberately *not* multiples of
//! the shard size or the cycle (the ragged `horizon % cycle != 0` tails the
//! closed form replays explicitly), every production engine returns a
//! `ScheduleAnalysis` bitwise-identical to the sequential, uncached
//! reference (`analyze_schedule_reference`) — per-node gaps, streaks,
//! periods, `jain_fairness` and `bound_violations` included.
//!
//! Float fields are compared through `to_bits`, so `NaN` mean gaps (fewer
//! than two happy holidays) compare equal exactly when both paths produce
//! them.
//!
//! Every emission and verification loop under test runs on the fused word
//! kernels (`fhg_graph::kernels`), whose implementation is selected once per
//! process (`FHG_KERNEL=portable|wide|wide512`, defaulting to the widest
//! supported path — AVX-512 where detected, else AVX2).  CI runs this whole
//! suite under `FHG_KERNEL=portable` and, where the runner supports it,
//! `FHG_KERNEL=wide512`, in addition to the default dispatch — alongside
//! the `FHG_THREADS=1/8` matrix — so a divergence between any two kernel
//! arms shows up as a parity failure here even if the kernel-level property
//! tests were ever weakened.  Batched verification rides the same runs: the
//! closed-form build and the sharded sweep verify through
//! `HolidayChecker::check_batch`, the reference engine stays per-class, so
//! every parity case is also a batch-vs-per-class equivalence check.

use proptest::prelude::*;

use fhg::core::analysis::{
    analyze_schedule, analyze_schedule_reference, analyze_schedule_totals,
    analyze_schedule_with_engine, AnalysisEngine, CycleProfile, GraphChecker, ScheduleAnalysis,
};
use fhg::core::schedulers::standard_suite;
use fhg::graph::generators::Family;
use rayon::ThreadPoolBuilder;

/// Asserts two analyses are bitwise-identical, NaN-aware on float fields.
fn assert_bitwise_identical(sharded: &ScheduleAnalysis, reference: &ScheduleAnalysis, ctx: &str) {
    assert_eq!(sharded.scheduler, reference.scheduler, "{ctx}");
    assert_eq!(sharded.horizon, reference.horizon, "{ctx}");
    assert_eq!(
        sharded.all_happy_sets_independent, reference.all_happy_sets_independent,
        "{ctx}: independence verdict"
    );
    assert_eq!(sharded.never_happy, reference.never_happy, "{ctx}: never_happy");
    assert_eq!(sharded.total_happiness, reference.total_happiness, "{ctx}: total_happiness");
    assert_eq!(
        sharded.mean_happy_set_size.to_bits(),
        reference.mean_happy_set_size.to_bits(),
        "{ctx}: mean_happy_set_size"
    );
    assert_eq!(sharded.per_node.len(), reference.per_node.len(), "{ctx}");
    for (a, b) in sharded.per_node.iter().zip(&reference.per_node) {
        assert_eq!(a.node, b.node, "{ctx}");
        assert_eq!(a.degree, b.degree, "{ctx}: node {}", a.node);
        assert_eq!(a.happy_count, b.happy_count, "{ctx}: node {} happy_count", a.node);
        assert_eq!(a.max_unhappiness, b.max_unhappiness, "{ctx}: node {} streak", a.node);
        assert_eq!(a.observed_period, b.observed_period, "{ctx}: node {} period", a.node);
        assert_eq!(a.first_happy, b.first_happy, "{ctx}: node {} first_happy", a.node);
        assert_eq!(
            a.mean_gap.to_bits(),
            b.mean_gap.to_bits(),
            "{ctx}: node {} mean_gap (NaN-aware)",
            a.node
        );
    }
    assert_eq!(
        sharded.jain_fairness().to_bits(),
        reference.jain_fairness().to_bits(),
        "{ctx}: jain_fairness"
    );
    assert_eq!(sharded.max_unhappiness(), reference.max_unhappiness(), "{ctx}");
    assert_eq!(sharded.all_periodic(), reference.all_periodic(), "{ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The core property: production engine == reference, for every suite
    /// scheduler, across graph families, seeds, thread counts and horizons
    /// (including 0, 1, and values coprime to every shard split).
    #[test]
    fn sharded_cached_analysis_is_bitwise_identical_to_reference(
        family in prop::sample::select(Family::ALL.to_vec()),
        seed in 0u64..300,
        horizon in 0u64..230,
        threads in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        let graph = family.generate(36, 4.0, seed);
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        // Twin scheduler instances from identical inputs, so stateful
        // schedulers advance twin internal states down both paths.
        let suite_prod = standard_suite(&graph, seed ^ 0xA5A5);
        let suite_ref = standard_suite(&graph, seed ^ 0xA5A5);
        for (mut prod, mut reference) in suite_prod.into_iter().zip(suite_ref) {
            let expected = analyze_schedule_reference(&graph, reference.as_mut(), horizon);
            let got = pool.install(|| analyze_schedule(&graph, prod.as_mut(), horizon));
            let ctx = format!(
                "{} on {} (seed {seed}, horizon {horizon}, {threads} threads)",
                expected.scheduler,
                family.name()
            );
            assert_bitwise_identical(&got, &expected, &ctx);
            prop_assert_eq!(
                got.bound_violations(prod.as_ref()),
                expected.bound_violations(reference.as_ref()),
                "{}: bound_violations",
                ctx
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Ragged-horizon lockdown for the closed-form engine: for every
    /// periodic scheduler in the suite, horizons straddling cycle multiples
    /// (`cycle - 1`, `cycle`, `cycle + 1`, `k·cycle ± 1`) are
    /// bitwise-identical to the reference at 1/2/8 threads — the `± 1`
    /// horizons exercise the analytic fold plus the explicit partial-cycle
    /// tail, and `cycle - 1` exercises the fallback to the sharded sweep.
    #[test]
    fn closed_form_matches_reference_on_ragged_horizons(
        family in prop::sample::select(Family::ALL.to_vec()),
        seed in 0u64..200,
        k in 2u64..5,
        threads in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        let graph = family.generate(32, 3.5, seed);
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let suite_prod = standard_suite(&graph, seed ^ 0x5A5A);
        let suite_ref = standard_suite(&graph, seed ^ 0x5A5A);
        for (mut prod, mut reference) in suite_prod.into_iter().zip(suite_ref) {
            let Some(cycle) = prod.schedule_cycle() else { continue };
            // Stateful schedulers would need twin states per horizon; the
            // ragged-tail property only concerns periodic (pure-in-t) ones.
            let horizons =
                [cycle - 1, cycle, cycle + 1, k * cycle - 1, k * cycle, k * cycle + 1];
            for horizon in horizons {
                let expected_engine = if horizon >= cycle {
                    AnalysisEngine::ClosedForm
                } else {
                    AnalysisEngine::ShardedSweep
                };
                prop_assert_eq!(
                    AnalysisEngine::select(prod.as_ref(), horizon),
                    expected_engine,
                    "{} cycle {} horizon {}",
                    prod.name(),
                    cycle,
                    horizon
                );
                let expected = analyze_schedule_reference(&graph, reference.as_mut(), horizon);
                let got = pool.install(|| analyze_schedule(&graph, prod.as_mut(), horizon));
                let ctx = format!(
                    "{} on {} (seed {seed}, cycle {cycle}, horizon {horizon}, {threads} threads)",
                    expected.scheduler,
                    family.name()
                );
                assert_bitwise_identical(&got, &expected, &ctx);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// PR 5 lockdown for the struct-of-arrays derivation planes: for every
    /// periodic scheduler in the suite, the **parallel profile build**
    /// (classes sharded across 1/2/8 worker threads), the **fused
    /// whole-cycle derive** (`horizon = k·cycle`), the **ragged bank
    /// derive** (`k·cycle ± 1`, replicate + column-merge of the tail) and
    /// the **totals-only fast path** all agree bitwise with the sequential
    /// array-of-structs reference.  The kernel modes behind the column
    /// passes are covered by the CI matrix (`FHG_KERNEL=portable` runs
    /// this whole suite) plus the explicit-mode proptests in
    /// `fhg-graph/src/kernels.rs`.
    #[test]
    fn soa_derivation_planes_match_the_reference(
        family in prop::sample::select(Family::ALL.to_vec()),
        seed in 0u64..200,
        k in 2u64..5,
        threads in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        let graph = family.generate(30, 3.5, seed);
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let checker = GraphChecker::new(&graph);
        let suite_prod = standard_suite(&graph, seed ^ 0x3C3C);
        let suite_ref = standard_suite(&graph, seed ^ 0x3C3C);
        for (prod, mut reference) in suite_prod.into_iter().zip(suite_ref) {
            let Some(cycle) = prod.schedule_cycle() else { continue };
            let view = prod.residue_schedule().expect("cycle implies a residue view");
            // Build inside the pinned pool: the class walk shards across
            // exactly `threads` workers.
            let profile = pool.install(|| {
                CycleProfile::build(view, prod.first_holiday(), graph.node_count(), &checker)
            });
            for horizon in [cycle, k * cycle - 1, k * cycle, k * cycle + 1] {
                let expected = analyze_schedule_reference(&graph, reference.as_mut(), horizon);
                let ctx = format!(
                    "{} on {} (seed {seed}, cycle {cycle}, horizon {horizon}, {threads} threads)",
                    prod.name(),
                    family.name()
                );
                let derived = profile
                    .derive(prod.name(), &graph, horizon)
                    .expect("horizon >= cycle");
                assert_bitwise_identical(&derived, &expected, &ctx);
                let totals =
                    profile.derive_totals(horizon).expect("horizon >= cycle");
                prop_assert_eq!(&totals, &expected.totals(), "{}: totals fast path", ctx);
            }
        }
    }
}

/// The totals entry point dispatches per engine but must always equal the
/// reduced full analysis — closed form (fused fold), sharded sweep
/// (sub-cycle horizon) and sequential (stateful scheduler) alike.
#[test]
fn analyze_schedule_totals_equals_the_reduced_analysis() {
    let graph = Family::ErdosRenyi.generate(34, 4.0, 21);
    for horizon in [0u64, 5, 64, 131] {
        let suite_full = standard_suite(&graph, 13);
        let suite_totals = standard_suite(&graph, 13);
        for (mut full, mut totals) in suite_full.into_iter().zip(suite_totals) {
            let expected = analyze_schedule(&graph, full.as_mut(), horizon).totals();
            let got = analyze_schedule_totals(&graph, totals.as_mut(), horizon);
            assert_eq!(got, expected, "{} at horizon {horizon}", full.name());
        }
    }
}

/// Every engine, forced explicitly, produces the same bits — the guarantee
/// experiment `e12` relies on when it times the sharded sweep against the
/// closed form on the same scheduler.
#[test]
fn forced_engines_agree_bitwise() {
    let graph = Family::ErdosRenyi.generate(40, 4.0, 17);
    let checker = GraphChecker::new(&graph);
    for threads in [1usize, 2, 8] {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        for horizon in [33u64, 64, 130, 257] {
            let suite_a = standard_suite(&graph, 29);
            let suite_b = standard_suite(&graph, 29);
            for (mut a, mut b) in suite_a.into_iter().zip(suite_b) {
                if a.residue_schedule().is_none() {
                    continue;
                }
                let reference = analyze_schedule_reference(&graph, b.as_mut(), horizon);
                for engine in [AnalysisEngine::ClosedForm, AnalysisEngine::ShardedSweep] {
                    let got = pool.install(|| {
                        analyze_schedule_with_engine(&graph, a.as_mut(), horizon, &checker, engine)
                    });
                    let ctx = format!(
                        "{} forced {engine:?} at horizon {horizon}, {threads} threads",
                        reference.scheduler
                    );
                    assert_bitwise_identical(&got, &reference, &ctx);
                }
            }
        }
    }
}

/// Horizons around shard-count multiples: an off-by-one in the shard split or
/// the boundary merge shows up exactly here.
#[test]
fn horizons_straddling_shard_boundaries() {
    let graph = Family::ErdosRenyi.generate(30, 3.5, 11);
    for threads in [2usize, 8] {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let t = threads as u64;
        for horizon in [t - 1, t, t + 1, 3 * t - 1, 3 * t + 1, 64 * t - 1, 64 * t + 1] {
            let suite_prod = standard_suite(&graph, 23);
            let suite_ref = standard_suite(&graph, 23);
            for (mut prod, mut reference) in suite_prod.into_iter().zip(suite_ref) {
                let expected = analyze_schedule_reference(&graph, reference.as_mut(), horizon);
                let got = pool.install(|| analyze_schedule(&graph, prod.as_mut(), horizon));
                let ctx = format!("{} at horizon {horizon}, {threads} threads", expected.scheduler);
                assert_bitwise_identical(&got, &expected, &ctx);
            }
        }
    }
}

/// Thread counts exceeding the horizon must not create empty shards or skew
/// the merge.
#[test]
fn more_threads_than_holidays() {
    let graph = Family::BarabasiAlbert.generate(25, 3.0, 3);
    let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
    for horizon in [1u64, 2, 5] {
        let suite_prod = standard_suite(&graph, 9);
        let suite_ref = standard_suite(&graph, 9);
        for (mut prod, mut reference) in suite_prod.into_iter().zip(suite_ref) {
            let expected = analyze_schedule_reference(&graph, reference.as_mut(), horizon);
            let got = pool.install(|| analyze_schedule(&graph, prod.as_mut(), horizon));
            let ctx = format!("{} at horizon {horizon}, 8 threads", expected.scheduler);
            assert_bitwise_identical(&got, &expected, &ctx);
        }
    }
}
