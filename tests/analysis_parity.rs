//! Parity lockdown for the sharded, residue-cached analysis engine.
//!
//! `analyze_schedule` takes the sharded path (horizon split across worker
//! threads, independence verified once per residue class) whenever a
//! scheduler exposes a `ResidueSchedule` view, and the sequential path
//! otherwise.  This suite asserts that, for every scheduler in the standard
//! suite, every graph family, random seeds, thread counts 1/2/8 and horizons
//! that are deliberately *not* multiples of the shard size, the production
//! engine returns a `ScheduleAnalysis` bitwise-identical to the sequential,
//! uncached reference (`analyze_schedule_reference`) — per-node gaps,
//! streaks, periods, `jain_fairness` and `bound_violations` included.
//!
//! Float fields are compared through `to_bits`, so `NaN` mean gaps (fewer
//! than two happy holidays) compare equal exactly when both paths produce
//! them.

use proptest::prelude::*;

use fhg::core::analysis::{analyze_schedule, analyze_schedule_reference, ScheduleAnalysis};
use fhg::core::schedulers::standard_suite;
use fhg::graph::generators::Family;
use rayon::ThreadPoolBuilder;

/// Asserts two analyses are bitwise-identical, NaN-aware on float fields.
fn assert_bitwise_identical(sharded: &ScheduleAnalysis, reference: &ScheduleAnalysis, ctx: &str) {
    assert_eq!(sharded.scheduler, reference.scheduler, "{ctx}");
    assert_eq!(sharded.horizon, reference.horizon, "{ctx}");
    assert_eq!(
        sharded.all_happy_sets_independent, reference.all_happy_sets_independent,
        "{ctx}: independence verdict"
    );
    assert_eq!(sharded.never_happy, reference.never_happy, "{ctx}: never_happy");
    assert_eq!(sharded.total_happiness, reference.total_happiness, "{ctx}: total_happiness");
    assert_eq!(
        sharded.mean_happy_set_size.to_bits(),
        reference.mean_happy_set_size.to_bits(),
        "{ctx}: mean_happy_set_size"
    );
    assert_eq!(sharded.per_node.len(), reference.per_node.len(), "{ctx}");
    for (a, b) in sharded.per_node.iter().zip(&reference.per_node) {
        assert_eq!(a.node, b.node, "{ctx}");
        assert_eq!(a.degree, b.degree, "{ctx}: node {}", a.node);
        assert_eq!(a.happy_count, b.happy_count, "{ctx}: node {} happy_count", a.node);
        assert_eq!(a.max_unhappiness, b.max_unhappiness, "{ctx}: node {} streak", a.node);
        assert_eq!(a.observed_period, b.observed_period, "{ctx}: node {} period", a.node);
        assert_eq!(a.first_happy, b.first_happy, "{ctx}: node {} first_happy", a.node);
        assert_eq!(
            a.mean_gap.to_bits(),
            b.mean_gap.to_bits(),
            "{ctx}: node {} mean_gap (NaN-aware)",
            a.node
        );
    }
    assert_eq!(
        sharded.jain_fairness().to_bits(),
        reference.jain_fairness().to_bits(),
        "{ctx}: jain_fairness"
    );
    assert_eq!(sharded.max_unhappiness(), reference.max_unhappiness(), "{ctx}");
    assert_eq!(sharded.all_periodic(), reference.all_periodic(), "{ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The core property: production engine == reference, for every suite
    /// scheduler, across graph families, seeds, thread counts and horizons
    /// (including 0, 1, and values coprime to every shard split).
    #[test]
    fn sharded_cached_analysis_is_bitwise_identical_to_reference(
        family in prop::sample::select(Family::ALL.to_vec()),
        seed in 0u64..300,
        horizon in 0u64..230,
        threads in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        let graph = family.generate(36, 4.0, seed);
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        // Twin scheduler instances from identical inputs, so stateful
        // schedulers advance twin internal states down both paths.
        let suite_prod = standard_suite(&graph, seed ^ 0xA5A5);
        let suite_ref = standard_suite(&graph, seed ^ 0xA5A5);
        for (mut prod, mut reference) in suite_prod.into_iter().zip(suite_ref) {
            let expected = analyze_schedule_reference(&graph, reference.as_mut(), horizon);
            let got = pool.install(|| analyze_schedule(&graph, prod.as_mut(), horizon));
            let ctx = format!(
                "{} on {} (seed {seed}, horizon {horizon}, {threads} threads)",
                expected.scheduler,
                family.name()
            );
            assert_bitwise_identical(&got, &expected, &ctx);
            prop_assert_eq!(
                got.bound_violations(prod.as_ref()),
                expected.bound_violations(reference.as_ref()),
                "{}: bound_violations",
                ctx
            );
        }
    }
}

/// Horizons around shard-count multiples: an off-by-one in the shard split or
/// the boundary merge shows up exactly here.
#[test]
fn horizons_straddling_shard_boundaries() {
    let graph = Family::ErdosRenyi.generate(30, 3.5, 11);
    for threads in [2usize, 8] {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let t = threads as u64;
        for horizon in [t - 1, t, t + 1, 3 * t - 1, 3 * t + 1, 64 * t - 1, 64 * t + 1] {
            let suite_prod = standard_suite(&graph, 23);
            let suite_ref = standard_suite(&graph, 23);
            for (mut prod, mut reference) in suite_prod.into_iter().zip(suite_ref) {
                let expected = analyze_schedule_reference(&graph, reference.as_mut(), horizon);
                let got = pool.install(|| analyze_schedule(&graph, prod.as_mut(), horizon));
                let ctx = format!("{} at horizon {horizon}, {threads} threads", expected.scheduler);
                assert_bitwise_identical(&got, &expected, &ctx);
            }
        }
    }
}

/// Thread counts exceeding the horizon must not create empty shards or skew
/// the merge.
#[test]
fn more_threads_than_holidays() {
    let graph = Family::BarabasiAlbert.generate(25, 3.0, 3);
    let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
    for horizon in [1u64, 2, 5] {
        let suite_prod = standard_suite(&graph, 9);
        let suite_ref = standard_suite(&graph, 9);
        for (mut prod, mut reference) in suite_prod.into_iter().zip(suite_ref) {
            let expected = analyze_schedule_reference(&graph, reference.as_mut(), horizon);
            let got = pool.install(|| analyze_schedule(&graph, prod.as_mut(), horizon));
            let ctx = format!("{} at horizon {horizon}, 8 threads", expected.scheduler);
            assert_bitwise_identical(&got, &expected, &ctx);
        }
    }
}
