//! Cross-crate integration tests: generate → colour → schedule → analyse →
//! verify the paper's bounds, exercising every crate through the public API
//! of the umbrella `fhg` crate.

use fhg::coloring::{dsatur, greedy_coloring, two_coloring, GreedyOrder};
use fhg::core::analysis::analyze_schedule;
use fhg::core::prelude::*;
use fhg::core::schedulers::standard_suite;
use fhg::distributed::{johansson_coloring, luby_mis};
use fhg::graph::generators::{self, Family};
use fhg::graph::properties;
use fhg::matching::{exact_mis, greedy_mis, max_satisfaction_linear, max_satisfaction_matching};
use fhg::radio::{evaluate_tdma, RadioNetwork};

/// The full §3 pipeline: distributed colouring init + phased greedy, bound
/// `mul(p) <= d_p` streaks on every graph family.
#[test]
fn theorem_3_1_across_graph_families() {
    for family in Family::ALL {
        let graph = family.generate(120, 6.0, 3);
        let mut scheduler = PhasedGreedy::with_distributed_init(&graph, 17);
        let horizon = 4 * (graph.max_degree() as u64 + 1).max(16);
        let analysis = analyze_schedule(&graph, &mut scheduler, horizon);
        assert!(analysis.all_happy_sets_independent, "{}", family.name());
        for node in &analysis.per_node {
            assert!(
                node.max_unhappiness <= node.degree as u64,
                "{}: node {} degree {} streak {}",
                family.name(),
                node.node,
                node.degree,
                node.max_unhappiness
            );
        }
    }
}

/// The full §4 pipeline on every family: any proper colouring + Elias omega
/// code gives a perfectly periodic conflict-free schedule with period
/// 2^rho(colour).
#[test]
fn theorem_4_2_across_graph_families_and_colorings() {
    for family in Family::ALL {
        let graph = family.generate(100, 5.0, 9);
        let colorings = vec![
            greedy_coloring(&graph, GreedyOrder::Natural),
            greedy_coloring(&graph, GreedyOrder::SmallestLast),
            dsatur(&graph),
        ];
        for coloring in colorings {
            let mut scheduler =
                PrefixCodeScheduler::with_code(&graph, &coloring, fhg::codes::EliasCode::omega());
            let analysis = analyze_schedule(&graph, &mut scheduler, 512);
            assert!(analysis.all_happy_sets_independent, "{}", family.name());
            for p in graph.nodes() {
                let c = u64::from(coloring.color(p));
                assert_eq!(
                    scheduler.period(p),
                    Some(1u64 << fhg::codes::rho_omega(c)),
                    "{}: node {p}",
                    family.name()
                );
            }
        }
    }
}

/// The full §5 pipeline on every family, both sequential and distributed.
#[test]
fn theorem_5_3_across_graph_families() {
    for family in Family::ALL {
        let graph = family.generate(120, 6.0, 5);
        let mut sequential = PeriodicDegreeBound::new(&graph);
        let mut distributed = DistributedDegreeBound::new(&graph, 23);
        for (label, scheduler) in [
            ("sequential", &mut sequential as &mut dyn Scheduler),
            ("distributed", &mut distributed as &mut dyn Scheduler),
        ] {
            let analysis = analyze_schedule(&graph, scheduler, 512);
            assert!(analysis.all_happy_sets_independent, "{} {}", family.name(), label);
            for p in graph.nodes() {
                let d = graph.degree(p) as u64;
                if d > 0 {
                    let period = scheduler.period(p).unwrap();
                    assert!(period > d, "{} {}: node {p}", family.name(), label);
                    assert!(period <= 2 * d, "{} {}: node {p}", family.name(), label);
                }
            }
        }
    }
}

/// The two-village story from the introduction, end to end: bipartite
/// conflict graph, 2-colouring, round-robin gives everyone a gathering every
/// second year.
#[test]
fn two_villages_story() {
    let graph = generators::bipartite_villages(40, 45, 0.15, 21);
    assert!(properties::is_bipartite(&graph));
    let coloring = two_coloring(&graph).expect("bipartite");
    let mut scheduler = RoundRobinColoring::with_coloring(coloring);
    let analysis = analyze_schedule(&graph, &mut scheduler, 64);
    for node in &analysis.per_node {
        assert_eq!(node.observed_period, Some(2));
        assert!(node.max_unhappiness <= 1);
    }
}

/// Every scheduler in the standard suite produces valid schedules and honours
/// its own advertised bound on a moderately dense random graph.
#[test]
fn standard_suite_honours_advertised_bounds() {
    let graph = generators::erdos_renyi(80, 0.07, 13);
    for mut scheduler in standard_suite(&graph, 3) {
        let horizon = 6 * (graph.max_degree() as u64 + 2) * (graph.node_count() as u64).max(64);
        let horizon = horizon.min(4096);
        let analysis = analyze_schedule(&graph, scheduler.as_mut(), horizon);
        assert!(analysis.all_happy_sets_independent, "{}", scheduler.name());
        let violations = analysis.bound_violations(scheduler.as_ref());
        assert!(
            violations.is_empty(),
            "{} violated its advertised bound at nodes {violations:?}",
            scheduler.name()
        );
    }
}

/// Distributed substrate sanity: Johansson colouring + Luby MIS validated by
/// the sequential checkers on the same graphs.
#[test]
fn distributed_substrate_cross_checks() {
    let graph = generators::erdos_renyi(150, 0.04, 31);
    let (coloring, stats) = johansson_coloring(&graph, 7);
    assert!(stats.completed);
    assert!(coloring.is_proper(&graph));
    assert!(coloring.is_degree_plus_one_bounded(&graph));

    let mis = luby_mis(&graph, 11, 2000);
    assert!(mis.stats.completed);
    assert!(mis.is_maximal_independent(&graph));
    // The distributed MIS is never larger than the exact optimum computed by
    // the Appendix A solver (on a subgraph small enough for exactness).
    let small = generators::erdos_renyi(40, 0.1, 31);
    let exact = exact_mis(&small);
    let luby = luby_mis(&small, 3, 2000);
    assert!(luby.members().len() <= exact.len());
    assert!(greedy_mis(&small).len() <= exact.len());
}

/// Appendix A satisfaction pipeline: the specialised linear algorithm matches
/// Hopcroft–Karp, and the alternating schedule satisfies everyone with
/// children every other holiday.
#[test]
fn appendix_satisfaction_pipeline() {
    let graph = generators::barabasi_albert(200, 2, 5);
    let linear = max_satisfaction_linear(&graph);
    let matching = max_satisfaction_matching(&graph);
    let count = |a: &[Option<usize>]| a.iter().filter(|x| x.is_some()).count();
    assert_eq!(count(&linear), count(&matching));

    let alternating = fhg::matching::AlternatingSatisfaction::new(&graph);
    for p in graph.nodes() {
        if graph.degree(p) > 0 {
            assert!(alternating.is_satisfied(p, 0) || alternating.is_satisfied(p, 1));
        }
    }
}

/// Radio application end to end: an interference-free TDMA schedule whose
/// latency tracks local interference, regenerating the qualitative claim of
/// the introduction.
#[test]
fn radio_tdma_end_to_end() {
    let network = RadioNetwork::random(150, 0.04, 77);
    let graph = network.interference_graph().clone();
    let mut scheduler = PeriodicDegreeBound::new(&graph);
    let report = evaluate_tdma(&network, &mut scheduler, 512);
    assert!(!report.interference_detected);
    for radio in &report.per_radio {
        if radio.interferers > 0 {
            assert!(radio.worst_latency < 2 * radio.interferers as u64);
        } else {
            assert_eq!(radio.worst_latency, 0);
        }
    }
}

/// The dynamic setting survives an adversarial mix of insertions and
/// deletions while keeping every gathering independent (paper §6).
#[test]
fn dynamic_setting_end_to_end() {
    use fhg::core::dynamic::DynamicColorBound;
    let initial = generators::erdos_renyi(60, 0.05, 41);
    let mut scheduler = DynamicColorBound::new(&initial);
    let events = fhg::graph::dynamic::random_churn(&initial, 120, 0.65, 0, 9);
    let mut holiday = 0;
    for event in events {
        for _ in 0..2 {
            let happy = scheduler.happy_set(holiday);
            assert!(properties::is_independent_set(scheduler.graph(), &happy));
            holiday += 1;
        }
        scheduler.apply_event(event).unwrap();
        assert!(scheduler.coloring_is_proper());
    }
    for p in scheduler.graph().nodes() {
        assert!(scheduler.current_period(p) <= scheduler.recovery_bound(p).max(2));
    }
}
