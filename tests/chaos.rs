//! Chaos suite: deterministic fault injection against the serving tier.
//!
//! Every test here arms real failpoint sites (see `fhg::core::failpoint`),
//! which are process-global — so the whole suite serializes on one mutex
//! and disarms on the way out, even across panics.  The invariant under
//! test is the crash-only contract: after any interleaving of edge events,
//! query bursts, audits and injected faults, every tenant is either
//! **warm and bitwise-equal to a fault-free oracle** or **cleanly
//! quarantined and rebuildable**, and no injected panic ever unwinds into
//! the caller.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use fhg::core::dynamic::DynamicColorBound;
use fhg::core::failpoint;
use fhg::core::{
    CycleProfile, GraphChecker, PatchError, PatchOutcome, ProfileService, QuarantineReason, Query,
    QueryError, Scheduler,
};
use fhg::graph::generators::Family;
use fhg::graph::{EdgeEvent, EdgeEventKind, Graph, NodeId};

/// The failpoint registry is process-global; tests that arm it must not
/// overlap.  Poisoning is expected (several tests panic on purpose inside
/// workers), so the lock is recovered, not unwrapped.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the registry for one test and guarantees it is disarmed again
/// afterwards, even if the test fails.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

fn faults(spec: &str, seed: u64) -> FaultGuard {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::configure_with_seed(spec, seed);
    FaultGuard(guard)
}

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 11
}

fn graph(n: usize, seed: u64) -> Graph {
    Family::ErdosRenyi.generate(n, 4.0, seed)
}

/// An edge event that is always consistent with the scheduler's current
/// graph: delete if present, insert if absent.
fn toggle(sched: &DynamicColorBound, u: NodeId, v: NodeId, holiday: u64) -> EdgeEvent {
    let kind =
        if sched.graph().has_edge(u, v) { EdgeEventKind::Delete } else { EdgeEventKind::Insert };
    EdgeEvent { kind, u, v, holiday }
}

/// The fault-free oracle: a from-scratch closed-form build of the
/// scheduler's *current* residue schedule, verified through the sequential
/// [`GraphChecker`] path that no failpoint instruments.
fn oracle_of(sched: &DynamicColorBound) -> CycleProfile {
    let view = sched.residue_schedule().expect("DynamicColorBound is periodic");
    let checker = GraphChecker::new(sched.graph());
    CycleProfile::build(view, sched.first_holiday(), sched.node_count(), &checker)
}

/// A patch that panics past its commit point quarantines the tenant
/// instead of serving a half-mutated profile; events arriving while
/// quarantined are absorbed, so the eventual cold rebuild converges with
/// the caller's scheduler.
#[test]
fn patch_panic_quarantines_and_repair_rebuilds_cold() {
    let _guard = faults("patch.after_rows=panic", 7);
    let g = graph(40, 21);
    let mut sched = DynamicColorBound::new(&g);
    let mut service = ProfileService::new();
    service.register(1, &g, &sched).unwrap();
    assert_eq!(service.build_pending(), 1);
    let cycle = service.profile(1).unwrap().cycle();

    // The first event dies inside the commit phase: typed error out, no
    // unwind, and the slot refuses to serve its possibly-poisoned cache.
    let repair = sched.apply_event(toggle(&sched, 0, 1, 0)).unwrap();
    let err = service.patch(1, &repair).unwrap_err();
    assert!(matches!(err, PatchError::Quarantined(1)), "{err}");
    assert_eq!(service.quarantine_reason(1), Some(QuarantineReason::PatchPanic));
    assert!(matches!(service.query_totals(1, 0, cycle), Err(QueryError::Quarantined(1))));
    assert_eq!(service.stats().quarantines, 1);
    assert_eq!(service.quarantined_count(), 1);

    // A second event while quarantined: still refused (typed), but its
    // content is absorbed into the slot's graph and schedule.
    let repair2 = sched.apply_event(toggle(&sched, 2, 3, 1)).unwrap();
    assert!(matches!(service.patch(1, &repair2), Err(PatchError::Quarantined(1))));

    failpoint::clear();
    assert_eq!(service.repair_quarantined(), 1);
    assert_eq!(service.quarantine_reason(1), None);
    assert!(
        service.profile(1).unwrap().content_eq(&oracle_of(&sched)),
        "the cold rebuild must have caught up with both absorbed events"
    );
    assert!(service.query_totals(1, 0, cycle).is_ok());
}

/// Build workers that die quarantine exactly their own slot — the batch
/// completes, the panic never unwinds, and repair brings every slot back.
#[test]
fn build_panics_quarantine_exactly_the_dead_slots() {
    let _guard = faults("build.slot=panic", 0);
    let mut service = ProfileService::new();
    let mut scheds = Vec::new();
    for t in 0..3u64 {
        let g = graph(20 + 4 * t as usize, 100 + t);
        let sched = DynamicColorBound::new(&g);
        service.register(t, &g, &sched).unwrap();
        scheds.push(sched);
    }
    assert_eq!(service.build_pending(), 0, "every build worker died");
    assert_eq!(service.quarantined_count(), 3);
    assert_eq!(service.stats().quarantines, 3);
    for t in 0..3 {
        assert_eq!(service.quarantine_reason(t), Some(QuarantineReason::BuildPanic));
        assert!(matches!(service.query_totals(t, 0, 8), Err(QueryError::Quarantined(_))));
    }

    failpoint::clear();
    assert_eq!(service.repair_quarantined(), 3);
    assert_eq!(service.warm_count(), 3);
    for (t, sched) in scheds.iter().enumerate() {
        assert!(service.profile(t as u64).unwrap().content_eq(&oracle_of(sched)));
    }
}

/// A checker fault during an in-place patch poisons *silently*: the patch
/// reports success and queries keep answering, but the cached independence
/// verdict is wrong.  The background audit is the plane that catches it.
#[test]
fn audit_catches_a_silently_poisoned_verdict() {
    let _guard = faults("", 0);
    let g = graph(40, 21);
    let mut sched = DynamicColorBound::new(&g);
    let mut service = ProfileService::new();
    service.register(1, &g, &sched).unwrap();
    assert_eq!(service.build_pending(), 1);
    let cycle = service.profile(1).unwrap().cycle();

    // Arm the fault only after the clean build, then drive events until
    // one takes the in-place path (the only path through `ScanChecker`).
    failpoint::configure("checker.batch=err");
    let mut poisoned = false;
    for (holiday, (u, v)) in
        [(0, 1), (0, 2), (1, 3), (2, 4), (0, 1), (3, 5)].into_iter().enumerate()
    {
        let repair = sched.apply_event(toggle(&sched, u, v, holiday as u64)).unwrap();
        let outcome = service.patch(1, &repair).unwrap();
        let oracle = oracle_of(&sched);
        if matches!(outcome, PatchOutcome::Patched(_)) && oracle.all_classes_independent() {
            assert!(
                !service.profile(1).unwrap().all_classes_independent(),
                "the injected checker fault must have flipped the cached verdict"
            );
            poisoned = true;
            break;
        }
    }
    assert!(poisoned, "no event took the in-place path; widen the event list");
    assert!(service.query_totals(1, 0, cycle).is_ok(), "the poison is silent: queries answer");

    failpoint::clear();
    assert_eq!(service.audit_step(8), 1, "the audit must quarantine the poisoned slot");
    assert_eq!(service.quarantine_reason(1), Some(QuarantineReason::AuditMismatch));
    let audit = service.audit_stats();
    assert_eq!((audit.mismatches, audit.quarantined), (1, 1));
    assert!(matches!(service.query_totals(1, 0, cycle), Err(QueryError::Quarantined(1))));

    assert_eq!(service.repair_quarantined(), 1);
    assert!(service.profile(1).unwrap().content_eq(&oracle_of(&sched)));
    assert!(service.profile(1).unwrap().all_classes_independent());
    assert_eq!(service.audit_step(8), 1);
    assert_eq!(service.audit_stats().mismatches, 1, "the repaired slot audits clean");
}

/// Query workers that die — by panic or injected error — surface as
/// `QueryError::Internal` on exactly their own request, at any pool width,
/// and the cached state stays untouched (retry succeeds once disarmed).
#[test]
fn query_worker_deaths_surface_as_typed_internal_errors() {
    let _guard = faults("", 0);
    let g = graph(30, 5);
    let sched = DynamicColorBound::new(&g);
    let mut service = ProfileService::new();
    service.register(1, &g, &sched).unwrap();
    assert_eq!(service.build_pending(), 1);
    let cycle = service.profile(1).unwrap().cycle();
    let queries: Vec<Query> =
        (0..16).map(|i| Query { tenant: 1, window: (0, cycle + i) }).collect();

    for spec in ["query.batch=panic", "query.batch=err"] {
        failpoint::configure(spec);
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let results = pool.install(|| service.query_batch(&queries));
            assert_eq!(results.len(), queries.len());
            for r in results {
                assert!(matches!(r, Err(QueryError::Internal(1))), "{spec}: {r:?}");
            }
        }
    }

    failpoint::clear();
    let results = service.query_batch(&queries);
    assert!(results.iter().all(Result::is_ok), "disarmed: the cache was never corrupted");
}

/// The tentpole invariant: an LCG-scheduled interleaving of edge events,
/// query bursts, audits, builds and mid-run repairs — with panics and
/// errors injected at every instrumented site — never unwinds into the
/// caller, and once the faults are disarmed every tenant converges to the
/// fault-free oracle, at 1, 2 and 8 worker threads.
#[test]
fn chaos_interleavings_converge_to_the_fault_free_oracle() {
    const SPEC: &str = "patch.after_rows=panic@0.15,profile.patch.commit=panic@0.05,\
                        checker.batch=err@0.1,build.slot=panic@0.3,query.batch=err@0.05";
    const TENANTS: usize = 6;
    let _guard = faults("", 0);

    for threads in [1usize, 2, 8] {
        failpoint::configure_with_seed(SPEC, 0xC0FFEE ^ threads as u64);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let mut service = ProfileService::new();
        let scheds: Vec<_> = (0..TENANTS)
            .map(|i| {
                let g = graph(24 + 3 * i, 400 + i as u64);
                let sched = DynamicColorBound::new(&g);
                service.register(i as u64, &g, &sched).unwrap();
                sched
            })
            .collect();
        let mut scheds = scheds;
        pool.install(|| service.build_pending()); // some builds may already die

        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ threads as u64;
        for step in 0..240u64 {
            match lcg(&mut state) % 100 {
                0..=54 => {
                    // One edge event, delivered exactly once.  Whatever the
                    // outcome — patched, rebuilt, absorbed cold, or a
                    // quarantining panic — the slot keeps the content.
                    let t = (lcg(&mut state) as usize) % TENANTS;
                    let n = scheds[t].node_count();
                    let u = (lcg(&mut state) as usize) % n;
                    let mut v = (lcg(&mut state) as usize) % n;
                    if u == v {
                        v = (v + 1) % n;
                    }
                    let event = toggle(&scheds[t], u, v, step);
                    let repair = scheds[t].apply_event(event).unwrap();
                    match service.patch(t as u64, &repair) {
                        Ok(_) => {}
                        Err(PatchError::Quarantined(q)) => assert_eq!(q, t as u64),
                        Err(other) => panic!("step {step}: unexpected patch error {other}"),
                    }
                }
                55..=79 => {
                    // A parallel query burst, unknown tenants mixed in.
                    let queries: Vec<Query> = (0..8)
                        .map(|_| Query {
                            tenant: lcg(&mut state) % (TENANTS as u64 + 2),
                            window: (lcg(&mut state) % 64, lcg(&mut state) % 4096),
                        })
                        .collect();
                    let results = pool.install(|| service.query_batch(&queries));
                    for (q, r) in queries.iter().zip(results) {
                        match r {
                            Ok(totals) => assert_eq!(totals.tenant, q.tenant),
                            Err(QueryError::UnknownTenant(t)) => {
                                assert!(t >= TENANTS as u64, "step {step}: tenant {t}")
                            }
                            Err(
                                QueryError::Quarantined(_)
                                | QueryError::Internal(_)
                                | QueryError::ProfileNotBuilt(_),
                            ) => {}
                        }
                    }
                }
                80..=87 => {
                    service.audit_step(2);
                }
                88..=93 => {
                    pool.install(|| service.build_pending());
                }
                _ => {
                    // Repair under fire: rebuilds may die again and
                    // re-quarantine — that is the crash-only loop working.
                    service.repair_quarantined();
                }
            }
        }

        // Disarm, scrub (the audit catches silently-poisoned verdicts the
        // injected checker faults left behind), repair, rebuild: every
        // tenant must now equal the fault-free oracle.
        failpoint::clear();
        service.audit_step(usize::MAX);
        service.repair_quarantined();
        pool.install(|| service.build_pending());
        assert_eq!(service.quarantined_count(), 0, "threads {threads}");
        assert_eq!(service.warm_count(), TENANTS, "threads {threads}");
        for (t, sched) in scheds.iter_mut().enumerate() {
            let oracle = oracle_of(sched);
            let served = service
                .profile(t as u64)
                .unwrap_or_else(|| panic!("threads {threads}: tenant {t} not warm after repair"));
            assert!(
                served.content_eq(&oracle),
                "threads {threads}: tenant {t} diverged from the fault-free oracle"
            );
            let cycle = oracle.cycle();
            let got = service.query_totals(t as u64, 0, 2 * cycle).unwrap();
            assert_eq!(got, oracle.derive_window_totals(0, 2 * cycle), "tenant {t}");
        }
    }
}

/// CI pins `FHG_FAILPOINTS` / `FHG_FAILPOINT_SEED` for the chaos smoke
/// job; this test hands the fault schedule back to the environment (a
/// fault-free run when unset) and checks the same convergence contract
/// under whatever the environment says.
#[test]
fn env_pinned_fault_schedule_converges() {
    let _guard = faults("", 0);
    failpoint::reset_to_env();

    let mut service = ProfileService::new();
    let mut scheds: Vec<_> = (0..3usize)
        .map(|i| {
            let g = graph(20 + 5 * i, 900 + i as u64);
            let sched = DynamicColorBound::new(&g);
            service.register(i as u64, &g, &sched).unwrap();
            sched
        })
        .collect();
    service.build_pending();

    let mut state = 0xD1B5_4A32_D192_ED03u64;
    for step in 0..80u64 {
        match lcg(&mut state) % 10 {
            0..=5 => {
                let t = (lcg(&mut state) as usize) % scheds.len();
                let n = scheds[t].node_count();
                let u = (lcg(&mut state) as usize) % n;
                let mut v = (lcg(&mut state) as usize) % n;
                if u == v {
                    v = (v + 1) % n;
                }
                let event = toggle(&scheds[t], u, v, step);
                let repair = scheds[t].apply_event(event).unwrap();
                match service.patch(t as u64, &repair) {
                    Ok(_) | Err(PatchError::Quarantined(_)) => {}
                    Err(other) => panic!("step {step}: unexpected patch error {other}"),
                }
            }
            6..=7 => {
                let queries: Vec<Query> = (0..4)
                    .map(|_| Query {
                        tenant: lcg(&mut state) % 4,
                        window: (0, lcg(&mut state) % 512),
                    })
                    .collect();
                for totals in service.query_batch(&queries).into_iter().flatten() {
                    assert!(totals.tenant < 3);
                }
            }
            8 => {
                // The idle-timer form: batch size from `FHG_AUDIT_STEP`.
                service.audit_tick();
            }
            _ => {
                service.repair_quarantined();
            }
        }
    }

    failpoint::clear();
    service.audit_step(usize::MAX);
    service.repair_quarantined();
    service.build_pending();
    for (t, sched) in scheds.iter_mut().enumerate() {
        assert!(
            service.profile(t as u64).unwrap().content_eq(&oracle_of(sched)),
            "tenant {t} diverged under the environment-pinned fault schedule"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The counter ledger stays exact through failure: every refused patch
    /// is a fresh quarantine (the tenant is repaired before the next
    /// event), every repair is a rebuild, and right after any failed patch
    /// the tenant either answers queries or refuses with the typed
    /// quarantine error — never a stale success.
    #[test]
    fn failed_patches_leave_counters_and_queries_consistent(seed in 0u64..200) {
        let _guard = faults("", 0);
        failpoint::configure_with_seed("patch.after_rows=panic@0.4", seed);
        let g = graph(24, seed);
        let mut sched = DynamicColorBound::new(&g);
        let mut service = ProfileService::new();
        service.register(1, &g, &sched).unwrap();
        prop_assert_eq!(service.build_pending(), 1);

        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let (mut patched, mut rebuilt, mut refused) = (0u64, 0u64, 0u64);
        for step in 0..40u64 {
            let n = sched.node_count();
            let u = (lcg(&mut state) as usize) % n;
            let mut v = (lcg(&mut state) as usize) % n;
            if u == v { v = (v + 1) % n; }
            let repair = sched.apply_event(toggle(&sched, u, v, step)).unwrap();
            match service.patch(1, &repair) {
                Ok(PatchOutcome::Patched(_)) => patched += 1,
                Ok(PatchOutcome::Rebuilt) => rebuilt += 1,
                Ok(PatchOutcome::Cold) => prop_assert!(false, "the slot was warm"),
                Err(PatchError::Quarantined(1)) => refused += 1,
                Err(other) => prop_assert!(false, "unexpected patch error {}", other),
            }

            // After every attempt: a typed answer or a typed refusal that
            // agrees with the slot's advertised state.
            match service.query_totals(1, 0, 64) {
                Ok(_) => prop_assert!(service.quarantine_reason(1).is_none()),
                Err(QueryError::Quarantined(1)) => {
                    prop_assert_eq!(service.quarantine_reason(1), Some(QuarantineReason::PatchPanic));
                }
                Err(other) => prop_assert!(false, "unexpected query error {}", other),
            }

            // Repair immediately so the next refusal is again a *fresh*
            // quarantine and the ledger below stays exact.
            if service.quarantine_reason(1).is_some() {
                prop_assert_eq!(service.repair_quarantined(), 1);
            }
        }

        failpoint::clear();
        let stats = service.stats();
        prop_assert_eq!(stats.patches, patched);
        prop_assert_eq!(stats.quarantines, refused);
        prop_assert_eq!(stats.rebuilds, 1 + rebuilt + refused, "initial + fallbacks + repairs");
        prop_assert!(service.profile(1).unwrap().content_eq(&oracle_of(&sched)));
    }
}

// ---------------------------------------------------------------------------
// Durability chaos (PR 10): kill-mid-write lifecycles for the snapshot +
// WAL persistence plane.  The invariant extends across a process death:
// after recovering from a file cut at *any* byte, every tenant is either
// warm and bitwise-equal to a never-crashed oracle or typed-quarantined
// and rebuildable — never a panic, never a silently wrong answer.
// ---------------------------------------------------------------------------

use std::fs;
use std::path::{Path, PathBuf};

use fhg::codes::wire::{self, SectionRead};
use fhg::core::serving::{RecoverError, WalSync, WalWriter, SNAPSHOT_FILE, WAL_FILE};

/// A self-cleaning scratch directory for persistence lifecycles.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("fhg-chaos-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("chaos temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The byte offsets at which every wire section of `bytes` (after the
/// 8-byte magic) ends — the exact places a dying writer can leave a clean
/// prefix.
fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = Vec::new();
    let mut pos = 8;
    while let SectionRead::Section { end, .. } = wire::read_section(bytes, pos) {
        boundaries.push(end);
        pos = end;
    }
    boundaries
}

/// A snapshot write killed at every section boundary — and mid-section —
/// recovers to a salvageable prefix: each tenant is warm and equal to the
/// never-crashed oracle, typed-quarantined (the torn half of a slot pair),
/// or cleanly unknown.  No cut point panics.
#[test]
fn snapshot_killed_at_every_section_boundary_recovers_typed() {
    let _guard = faults("", 0);
    const TENANTS: u64 = 5;
    let mut service = ProfileService::new();
    let mut scheds = Vec::new();
    for t in 0..TENANTS {
        let g = graph(18 + 2 * t as usize, 700 + t);
        let sched = DynamicColorBound::new(&g);
        service.register(t, &g, &sched).unwrap();
        scheds.push(sched);
    }
    assert_eq!(service.build_pending() as u64, TENANTS);
    let full = service.snapshot_bytes();
    let boundaries = section_boundaries(&full);
    // META + one (content, profile) pair per slot + END.
    assert_eq!(boundaries.len() as u64, 2 + 2 * TENANTS);

    let dir = TempDir::new("snap-boundaries");
    let mut cuts: Vec<usize> = vec![0, 3, 8, full.len()];
    for &b in &boundaries {
        cuts.push(b);
        cuts.push(b.saturating_sub(3)); // mid-section: a torn last frame
        cuts.push(b + 2); // a torn header of the next frame
    }
    cuts.retain(|&c| c <= full.len());
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        fs::write(dir.path().join(SNAPSHOT_FILE), &full[..cut]).unwrap();
        if cut < 8 {
            assert!(
                matches!(ProfileService::recover(dir.path()), Err(RecoverError::BadMagic)),
                "cut {cut}: a short magic must be a typed error"
            );
            continue;
        }
        let (recovered, report) =
            ProfileService::recover(dir.path()).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(
            report.snapshot_torn,
            cut != full.len(),
            "cut {cut}: every proper prefix is torn, the full file is not"
        );
        for t in 0..TENANTS {
            match recovered.profile(t) {
                Some(p) => {
                    assert!(
                        p.content_eq(service.profile(t).unwrap()),
                        "cut {cut}: tenant {t} recovered warm but diverged from the oracle"
                    );
                }
                None => match recovered.quarantine_reason(t) {
                    Some(reason) => assert_eq!(
                        reason,
                        QuarantineReason::RecoveryMismatch,
                        "cut {cut}: tenant {t}"
                    ),
                    None => assert!(
                        matches!(
                            recovered.query_totals(t, 0, 8),
                            Err(QueryError::UnknownTenant(_))
                        ),
                        "cut {cut}: tenant {t} must be warm, quarantined or cleanly unknown"
                    ),
                },
            }
        }
        // Quarantined slots are rebuildable: their content survived, so a
        // cold rebuild brings them back warm and oracle-equal.
        let mut recovered = recovered;
        recovered.repair_quarantined();
        for t in 0..TENANTS {
            if let Some(p) = recovered.profile(t) {
                assert!(p.content_eq(service.profile(t).unwrap()), "cut {cut}: tenant {t}");
            }
        }
    }
}

/// A WAL torn at every byte offset of its last frame recovers to the
/// longest clean prefix of events: replayed frames match the oracle that
/// saw exactly those events, the torn tail is physically truncated, and a
/// second recovery starts from the already-clean file.
#[test]
fn wal_truncated_at_every_byte_of_the_last_frame_recovers_prefix() {
    let _guard = faults("", 0);
    let g = graph(26, 811);
    let mut sched = DynamicColorBound::new(&g);
    let mut service = ProfileService::new();
    service.register(1, &g, &sched).unwrap();
    assert_eq!(service.build_pending(), 1);

    let dir = TempDir::new("wal-bytes");
    service.snapshot(dir.path()).unwrap();

    // K events through the WAL; record the file length after each append
    // and the oracle profile after each event.
    const K: usize = 4;
    let mut wal = WalWriter::with_sync(dir.path(), WalSync::Never).unwrap();
    let mut ends = vec![fs::metadata(wal.path()).unwrap().len() as usize];
    let mut oracles = vec![oracle_of(&sched)];
    for step in 0..K as u64 {
        let u = (step as usize * 3) % sched.node_count();
        let v = (u + 5) % sched.node_count();
        let repair = sched.apply_event(toggle(&sched, u, v, step)).unwrap();
        wal.append(1, &repair).unwrap();
        ends.push(fs::metadata(wal.path()).unwrap().len() as usize);
        oracles.push(oracle_of(&sched));
    }
    drop(wal);
    let full_wal = fs::read(dir.path().join(WAL_FILE)).unwrap();
    assert_eq!(*ends.last().unwrap(), full_wal.len());

    // Cut the log at every byte of the last frame (and at each earlier
    // frame boundary for good measure).
    let mut cuts: Vec<usize> = (ends[K - 1]..=ends[K]).collect();
    cuts.extend_from_slice(&ends[..K]);
    for cut in cuts {
        fs::write(dir.path().join(WAL_FILE), &full_wal[..cut]).unwrap();
        let (recovered, report) =
            ProfileService::recover(dir.path()).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        // The longest frame boundary at or before the cut decides how many
        // events survived.
        let survived = ends.iter().take_while(|&&e| e <= cut).count() - 1;
        assert_eq!(
            report.wal_frames_replayed, survived,
            "cut {cut}: exactly the clean prefix replays"
        );
        let torn = !ends.contains(&cut);
        assert_eq!(report.wal_torn, torn, "cut {cut}");
        if torn {
            assert_eq!(report.wal_truncated_to, Some(ends[survived] as u64), "cut {cut}");
            assert_eq!(
                fs::metadata(dir.path().join(WAL_FILE)).unwrap().len(),
                ends[survived] as u64,
                "cut {cut}: the torn tail must be physically truncated"
            );
        }
        let served = recovered.profile(1).unwrap_or_else(|| panic!("cut {cut}: tenant 1 cold"));
        assert!(
            served.content_eq(&oracles[survived]),
            "cut {cut}: recovered state must equal the oracle that saw {survived} events"
        );

        // The file is now clean: recovering again replays the same prefix
        // with no tear.
        let (again, report2) = ProfileService::recover(dir.path()).unwrap();
        assert!(!report2.wal_torn, "cut {cut}: second recovery sees a clean log");
        assert_eq!(report2.wal_frames_replayed, survived);
        assert!(again.profile(1).unwrap().content_eq(&oracles[survived]), "cut {cut}");
    }
}

/// Recovery under fire: replay faults (injected `recover.replay` kills and
/// real `patch.after_rows` panics) never unwind out of `recover`; every
/// tenant lands warm-and-oracle-equal or typed-quarantined, and since a
/// faulty recovery never corrupts the files, a later fault-free recovery
/// from the same directory converges fully.
#[test]
fn faulty_replay_quarantines_typed_and_the_disk_stays_convergent() {
    let _guard = faults("", 0);
    const TENANTS: u64 = 4;
    let mut service = ProfileService::new();
    let mut scheds = Vec::new();
    for t in 0..TENANTS {
        let g = graph(20 + 3 * t as usize, 555 + t);
        let sched = DynamicColorBound::new(&g);
        service.register(t, &g, &sched).unwrap();
        scheds.push(sched);
    }
    assert_eq!(service.build_pending() as u64, TENANTS);

    let dir = TempDir::new("faulty-replay");
    service.snapshot(dir.path()).unwrap();
    let mut wal = WalWriter::with_sync(dir.path(), WalSync::Never).unwrap();
    let mut state = 0xFEED_FACE_CAFE_BEEFu64;
    for step in 0..24u64 {
        let t = (lcg(&mut state) % TENANTS) as usize;
        let n = scheds[t].node_count();
        let u = (lcg(&mut state) as usize) % n;
        let mut v = (lcg(&mut state) as usize) % n;
        if u == v {
            v = (v + 1) % n;
        }
        let event = toggle(&scheds[t], u, v, step);
        let repair = scheds[t].apply_event(event).unwrap();
        wal.append(t as u64, &repair).unwrap();
        service.patch(t as u64, &repair).unwrap();
    }
    drop(wal);

    failpoint::configure_with_seed("recover.replay=panic@0.25,patch.after_rows=panic@0.2", 99);
    let (recovered, report) =
        ProfileService::recover(dir.path()).expect("faults must not unwind out of recover");
    assert_eq!(report.wal_frames_replayed + report.wal_frames_skipped, 24);
    for t in 0..TENANTS {
        match recovered.profile(t) {
            Some(p) => assert!(
                p.content_eq(service.profile(t).unwrap()),
                "tenant {t}: a fully-replayed tenant must equal the live service"
            ),
            None => {
                let reason = recovered
                    .quarantine_reason(t)
                    .unwrap_or_else(|| panic!("tenant {t}: cold but not quarantined"));
                assert!(
                    matches!(
                        reason,
                        QuarantineReason::RecoveryMismatch | QuarantineReason::PatchPanic
                    ),
                    "tenant {t}: {reason}"
                );
            }
        }
    }

    // The faulty recovery mutated only its in-memory service — the files
    // are exactly as the writer left them, so a clean pass converges.
    failpoint::clear();
    let (clean, clean_report) = ProfileService::recover(dir.path()).unwrap();
    assert_eq!(clean_report.wal_frames_replayed, 24);
    assert_eq!(clean_report.quarantined, 0);
    for t in 0..TENANTS {
        assert!(
            clean.profile(t).unwrap().content_eq(service.profile(t).unwrap()),
            "tenant {t}: fault-free recovery from the same directory must converge"
        );
    }
}

/// Write-side faults are typed and atomic: a killed snapshot leaves the
/// previous snapshot serving and no temp debris; a killed append leaves
/// the log byte-identical and the next append lands on a clean boundary.
#[test]
fn killed_writers_leave_no_debris_and_typed_errors() {
    let _guard = faults("", 0);
    let g = graph(22, 333);
    let mut sched = DynamicColorBound::new(&g);
    let mut service = ProfileService::new();
    service.register(1, &g, &sched).unwrap();
    assert_eq!(service.build_pending(), 1);

    let dir = TempDir::new("killed-writers");
    service.snapshot(dir.path()).unwrap();
    let golden = fs::read(dir.path().join(SNAPSHOT_FILE)).unwrap();

    // Mutate, then die inside the second snapshot: typed error, the old
    // snapshot is untouched, no temp file survives.
    let repair = sched.apply_event(toggle(&sched, 0, 7, 0)).unwrap();
    service.patch(1, &repair).unwrap();
    failpoint::configure("snapshot.write=err");
    let err = service.snapshot(dir.path()).expect_err("the injected fault must surface");
    assert_eq!(err.kind(), std::io::ErrorKind::Other);
    assert_eq!(
        fs::read(dir.path().join(SNAPSHOT_FILE)).unwrap(),
        golden,
        "a failed snapshot must leave the previous one byte-identical"
    );
    assert_eq!(
        fs::read_dir(dir.path()).unwrap().count(),
        1,
        "no temp debris after a failed snapshot"
    );

    // A killed append: typed error, zero bytes written, and the caller
    // contract (do not apply on Err) keeps log and service in step — the
    // next append lands on a clean frame boundary.
    failpoint::configure("wal.append=err");
    let mut wal = WalWriter::with_sync(dir.path(), WalSync::Never).unwrap();
    let before = fs::metadata(wal.path()).unwrap().len();
    let repair2 = sched.apply_event(toggle(&sched, 1, 8, 1)).unwrap();
    assert!(wal.append(1, &repair2).is_err());
    assert_eq!(wal.frames_appended(), 0);
    assert_eq!(
        fs::metadata(wal.path()).unwrap().len(),
        before,
        "a refused append must not touch the file"
    );

    failpoint::clear();
    wal.append(1, &repair2).expect("disarmed append succeeds");
    service.patch(1, &repair2).unwrap();
    drop(wal);
    let (recovered, report) = ProfileService::recover(dir.path()).unwrap();
    assert!(!report.wal_torn);
    // The recovered state replays [event 2] over the old snapshot; the
    // live service saw events 1 and 2.  Convergence is against an oracle
    // that saw the same prefix: snapshot(pre-event-1) is stale, so only
    // the WAL'd event applies — recovery must still be typed and warm.
    assert_eq!(report.wal_frames_replayed, 1);
    assert!(recovered.profile(1).is_some() || recovered.quarantine_reason(1).is_some());
}
