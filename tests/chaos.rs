//! Chaos suite: deterministic fault injection against the serving tier.
//!
//! Every test here arms real failpoint sites (see `fhg::core::failpoint`),
//! which are process-global — so the whole suite serializes on one mutex
//! and disarms on the way out, even across panics.  The invariant under
//! test is the crash-only contract: after any interleaving of edge events,
//! query bursts, audits and injected faults, every tenant is either
//! **warm and bitwise-equal to a fault-free oracle** or **cleanly
//! quarantined and rebuildable**, and no injected panic ever unwinds into
//! the caller.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use fhg::core::dynamic::DynamicColorBound;
use fhg::core::failpoint;
use fhg::core::{
    CycleProfile, GraphChecker, PatchError, PatchOutcome, ProfileService, QuarantineReason, Query,
    QueryError, Scheduler,
};
use fhg::graph::generators::Family;
use fhg::graph::{EdgeEvent, EdgeEventKind, Graph, NodeId};

/// The failpoint registry is process-global; tests that arm it must not
/// overlap.  Poisoning is expected (several tests panic on purpose inside
/// workers), so the lock is recovered, not unwrapped.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the registry for one test and guarantees it is disarmed again
/// afterwards, even if the test fails.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

fn faults(spec: &str, seed: u64) -> FaultGuard {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::configure_with_seed(spec, seed);
    FaultGuard(guard)
}

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 11
}

fn graph(n: usize, seed: u64) -> Graph {
    Family::ErdosRenyi.generate(n, 4.0, seed)
}

/// An edge event that is always consistent with the scheduler's current
/// graph: delete if present, insert if absent.
fn toggle(sched: &DynamicColorBound, u: NodeId, v: NodeId, holiday: u64) -> EdgeEvent {
    let kind =
        if sched.graph().has_edge(u, v) { EdgeEventKind::Delete } else { EdgeEventKind::Insert };
    EdgeEvent { kind, u, v, holiday }
}

/// The fault-free oracle: a from-scratch closed-form build of the
/// scheduler's *current* residue schedule, verified through the sequential
/// [`GraphChecker`] path that no failpoint instruments.
fn oracle_of(sched: &DynamicColorBound) -> CycleProfile {
    let view = sched.residue_schedule().expect("DynamicColorBound is periodic");
    let checker = GraphChecker::new(sched.graph());
    CycleProfile::build(view, sched.first_holiday(), sched.node_count(), &checker)
}

/// A patch that panics past its commit point quarantines the tenant
/// instead of serving a half-mutated profile; events arriving while
/// quarantined are absorbed, so the eventual cold rebuild converges with
/// the caller's scheduler.
#[test]
fn patch_panic_quarantines_and_repair_rebuilds_cold() {
    let _guard = faults("patch.after_rows=panic", 7);
    let g = graph(40, 21);
    let mut sched = DynamicColorBound::new(&g);
    let mut service = ProfileService::new();
    service.register(1, &g, &sched).unwrap();
    assert_eq!(service.build_pending(), 1);
    let cycle = service.profile(1).unwrap().cycle();

    // The first event dies inside the commit phase: typed error out, no
    // unwind, and the slot refuses to serve its possibly-poisoned cache.
    let repair = sched.apply_event(toggle(&sched, 0, 1, 0)).unwrap();
    let err = service.patch(1, &repair).unwrap_err();
    assert!(matches!(err, PatchError::Quarantined(1)), "{err}");
    assert_eq!(service.quarantine_reason(1), Some(QuarantineReason::PatchPanic));
    assert!(matches!(service.query_totals(1, 0, cycle), Err(QueryError::Quarantined(1))));
    assert_eq!(service.stats().quarantines, 1);
    assert_eq!(service.quarantined_count(), 1);

    // A second event while quarantined: still refused (typed), but its
    // content is absorbed into the slot's graph and schedule.
    let repair2 = sched.apply_event(toggle(&sched, 2, 3, 1)).unwrap();
    assert!(matches!(service.patch(1, &repair2), Err(PatchError::Quarantined(1))));

    failpoint::clear();
    assert_eq!(service.repair_quarantined(), 1);
    assert_eq!(service.quarantine_reason(1), None);
    assert!(
        service.profile(1).unwrap().content_eq(&oracle_of(&sched)),
        "the cold rebuild must have caught up with both absorbed events"
    );
    assert!(service.query_totals(1, 0, cycle).is_ok());
}

/// Build workers that die quarantine exactly their own slot — the batch
/// completes, the panic never unwinds, and repair brings every slot back.
#[test]
fn build_panics_quarantine_exactly_the_dead_slots() {
    let _guard = faults("build.slot=panic", 0);
    let mut service = ProfileService::new();
    let mut scheds = Vec::new();
    for t in 0..3u64 {
        let g = graph(20 + 4 * t as usize, 100 + t);
        let sched = DynamicColorBound::new(&g);
        service.register(t, &g, &sched).unwrap();
        scheds.push(sched);
    }
    assert_eq!(service.build_pending(), 0, "every build worker died");
    assert_eq!(service.quarantined_count(), 3);
    assert_eq!(service.stats().quarantines, 3);
    for t in 0..3 {
        assert_eq!(service.quarantine_reason(t), Some(QuarantineReason::BuildPanic));
        assert!(matches!(service.query_totals(t, 0, 8), Err(QueryError::Quarantined(_))));
    }

    failpoint::clear();
    assert_eq!(service.repair_quarantined(), 3);
    assert_eq!(service.warm_count(), 3);
    for (t, sched) in scheds.iter().enumerate() {
        assert!(service.profile(t as u64).unwrap().content_eq(&oracle_of(sched)));
    }
}

/// A checker fault during an in-place patch poisons *silently*: the patch
/// reports success and queries keep answering, but the cached independence
/// verdict is wrong.  The background audit is the plane that catches it.
#[test]
fn audit_catches_a_silently_poisoned_verdict() {
    let _guard = faults("", 0);
    let g = graph(40, 21);
    let mut sched = DynamicColorBound::new(&g);
    let mut service = ProfileService::new();
    service.register(1, &g, &sched).unwrap();
    assert_eq!(service.build_pending(), 1);
    let cycle = service.profile(1).unwrap().cycle();

    // Arm the fault only after the clean build, then drive events until
    // one takes the in-place path (the only path through `ScanChecker`).
    failpoint::configure("checker.batch=err");
    let mut poisoned = false;
    for (holiday, (u, v)) in
        [(0, 1), (0, 2), (1, 3), (2, 4), (0, 1), (3, 5)].into_iter().enumerate()
    {
        let repair = sched.apply_event(toggle(&sched, u, v, holiday as u64)).unwrap();
        let outcome = service.patch(1, &repair).unwrap();
        let oracle = oracle_of(&sched);
        if matches!(outcome, PatchOutcome::Patched(_)) && oracle.all_classes_independent() {
            assert!(
                !service.profile(1).unwrap().all_classes_independent(),
                "the injected checker fault must have flipped the cached verdict"
            );
            poisoned = true;
            break;
        }
    }
    assert!(poisoned, "no event took the in-place path; widen the event list");
    assert!(service.query_totals(1, 0, cycle).is_ok(), "the poison is silent: queries answer");

    failpoint::clear();
    assert_eq!(service.audit_step(8), 1, "the audit must quarantine the poisoned slot");
    assert_eq!(service.quarantine_reason(1), Some(QuarantineReason::AuditMismatch));
    let audit = service.audit_stats();
    assert_eq!((audit.mismatches, audit.quarantined), (1, 1));
    assert!(matches!(service.query_totals(1, 0, cycle), Err(QueryError::Quarantined(1))));

    assert_eq!(service.repair_quarantined(), 1);
    assert!(service.profile(1).unwrap().content_eq(&oracle_of(&sched)));
    assert!(service.profile(1).unwrap().all_classes_independent());
    assert_eq!(service.audit_step(8), 1);
    assert_eq!(service.audit_stats().mismatches, 1, "the repaired slot audits clean");
}

/// Query workers that die — by panic or injected error — surface as
/// `QueryError::Internal` on exactly their own request, at any pool width,
/// and the cached state stays untouched (retry succeeds once disarmed).
#[test]
fn query_worker_deaths_surface_as_typed_internal_errors() {
    let _guard = faults("", 0);
    let g = graph(30, 5);
    let sched = DynamicColorBound::new(&g);
    let mut service = ProfileService::new();
    service.register(1, &g, &sched).unwrap();
    assert_eq!(service.build_pending(), 1);
    let cycle = service.profile(1).unwrap().cycle();
    let queries: Vec<Query> =
        (0..16).map(|i| Query { tenant: 1, window: (0, cycle + i) }).collect();

    for spec in ["query.batch=panic", "query.batch=err"] {
        failpoint::configure(spec);
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let results = pool.install(|| service.query_batch(&queries));
            assert_eq!(results.len(), queries.len());
            for r in results {
                assert!(matches!(r, Err(QueryError::Internal(1))), "{spec}: {r:?}");
            }
        }
    }

    failpoint::clear();
    let results = service.query_batch(&queries);
    assert!(results.iter().all(Result::is_ok), "disarmed: the cache was never corrupted");
}

/// The tentpole invariant: an LCG-scheduled interleaving of edge events,
/// query bursts, audits, builds and mid-run repairs — with panics and
/// errors injected at every instrumented site — never unwinds into the
/// caller, and once the faults are disarmed every tenant converges to the
/// fault-free oracle, at 1, 2 and 8 worker threads.
#[test]
fn chaos_interleavings_converge_to_the_fault_free_oracle() {
    const SPEC: &str = "patch.after_rows=panic@0.15,profile.patch.commit=panic@0.05,\
                        checker.batch=err@0.1,build.slot=panic@0.3,query.batch=err@0.05";
    const TENANTS: usize = 6;
    let _guard = faults("", 0);

    for threads in [1usize, 2, 8] {
        failpoint::configure_with_seed(SPEC, 0xC0FFEE ^ threads as u64);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let mut service = ProfileService::new();
        let scheds: Vec<_> = (0..TENANTS)
            .map(|i| {
                let g = graph(24 + 3 * i, 400 + i as u64);
                let sched = DynamicColorBound::new(&g);
                service.register(i as u64, &g, &sched).unwrap();
                sched
            })
            .collect();
        let mut scheds = scheds;
        pool.install(|| service.build_pending()); // some builds may already die

        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ threads as u64;
        for step in 0..240u64 {
            match lcg(&mut state) % 100 {
                0..=54 => {
                    // One edge event, delivered exactly once.  Whatever the
                    // outcome — patched, rebuilt, absorbed cold, or a
                    // quarantining panic — the slot keeps the content.
                    let t = (lcg(&mut state) as usize) % TENANTS;
                    let n = scheds[t].node_count();
                    let u = (lcg(&mut state) as usize) % n;
                    let mut v = (lcg(&mut state) as usize) % n;
                    if u == v {
                        v = (v + 1) % n;
                    }
                    let event = toggle(&scheds[t], u, v, step);
                    let repair = scheds[t].apply_event(event).unwrap();
                    match service.patch(t as u64, &repair) {
                        Ok(_) => {}
                        Err(PatchError::Quarantined(q)) => assert_eq!(q, t as u64),
                        Err(other) => panic!("step {step}: unexpected patch error {other}"),
                    }
                }
                55..=79 => {
                    // A parallel query burst, unknown tenants mixed in.
                    let queries: Vec<Query> = (0..8)
                        .map(|_| Query {
                            tenant: lcg(&mut state) % (TENANTS as u64 + 2),
                            window: (lcg(&mut state) % 64, lcg(&mut state) % 4096),
                        })
                        .collect();
                    let results = pool.install(|| service.query_batch(&queries));
                    for (q, r) in queries.iter().zip(results) {
                        match r {
                            Ok(totals) => assert_eq!(totals.tenant, q.tenant),
                            Err(QueryError::UnknownTenant(t)) => {
                                assert!(t >= TENANTS as u64, "step {step}: tenant {t}")
                            }
                            Err(
                                QueryError::Quarantined(_)
                                | QueryError::Internal(_)
                                | QueryError::ProfileNotBuilt(_),
                            ) => {}
                        }
                    }
                }
                80..=87 => {
                    service.audit_step(2);
                }
                88..=93 => {
                    pool.install(|| service.build_pending());
                }
                _ => {
                    // Repair under fire: rebuilds may die again and
                    // re-quarantine — that is the crash-only loop working.
                    service.repair_quarantined();
                }
            }
        }

        // Disarm, scrub (the audit catches silently-poisoned verdicts the
        // injected checker faults left behind), repair, rebuild: every
        // tenant must now equal the fault-free oracle.
        failpoint::clear();
        service.audit_step(usize::MAX);
        service.repair_quarantined();
        pool.install(|| service.build_pending());
        assert_eq!(service.quarantined_count(), 0, "threads {threads}");
        assert_eq!(service.warm_count(), TENANTS, "threads {threads}");
        for (t, sched) in scheds.iter_mut().enumerate() {
            let oracle = oracle_of(sched);
            let served = service
                .profile(t as u64)
                .unwrap_or_else(|| panic!("threads {threads}: tenant {t} not warm after repair"));
            assert!(
                served.content_eq(&oracle),
                "threads {threads}: tenant {t} diverged from the fault-free oracle"
            );
            let cycle = oracle.cycle();
            let got = service.query_totals(t as u64, 0, 2 * cycle).unwrap();
            assert_eq!(got, oracle.derive_window_totals(0, 2 * cycle), "tenant {t}");
        }
    }
}

/// CI pins `FHG_FAILPOINTS` / `FHG_FAILPOINT_SEED` for the chaos smoke
/// job; this test hands the fault schedule back to the environment (a
/// fault-free run when unset) and checks the same convergence contract
/// under whatever the environment says.
#[test]
fn env_pinned_fault_schedule_converges() {
    let _guard = faults("", 0);
    failpoint::reset_to_env();

    let mut service = ProfileService::new();
    let mut scheds: Vec<_> = (0..3usize)
        .map(|i| {
            let g = graph(20 + 5 * i, 900 + i as u64);
            let sched = DynamicColorBound::new(&g);
            service.register(i as u64, &g, &sched).unwrap();
            sched
        })
        .collect();
    service.build_pending();

    let mut state = 0xD1B5_4A32_D192_ED03u64;
    for step in 0..80u64 {
        match lcg(&mut state) % 10 {
            0..=5 => {
                let t = (lcg(&mut state) as usize) % scheds.len();
                let n = scheds[t].node_count();
                let u = (lcg(&mut state) as usize) % n;
                let mut v = (lcg(&mut state) as usize) % n;
                if u == v {
                    v = (v + 1) % n;
                }
                let event = toggle(&scheds[t], u, v, step);
                let repair = scheds[t].apply_event(event).unwrap();
                match service.patch(t as u64, &repair) {
                    Ok(_) | Err(PatchError::Quarantined(_)) => {}
                    Err(other) => panic!("step {step}: unexpected patch error {other}"),
                }
            }
            6..=7 => {
                let queries: Vec<Query> = (0..4)
                    .map(|_| Query {
                        tenant: lcg(&mut state) % 4,
                        window: (0, lcg(&mut state) % 512),
                    })
                    .collect();
                for totals in service.query_batch(&queries).into_iter().flatten() {
                    assert!(totals.tenant < 3);
                }
            }
            8 => {
                // The idle-timer form: batch size from `FHG_AUDIT_STEP`.
                service.audit_tick();
            }
            _ => {
                service.repair_quarantined();
            }
        }
    }

    failpoint::clear();
    service.audit_step(usize::MAX);
    service.repair_quarantined();
    service.build_pending();
    for (t, sched) in scheds.iter_mut().enumerate() {
        assert!(
            service.profile(t as u64).unwrap().content_eq(&oracle_of(sched)),
            "tenant {t} diverged under the environment-pinned fault schedule"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The counter ledger stays exact through failure: every refused patch
    /// is a fresh quarantine (the tenant is repaired before the next
    /// event), every repair is a rebuild, and right after any failed patch
    /// the tenant either answers queries or refuses with the typed
    /// quarantine error — never a stale success.
    #[test]
    fn failed_patches_leave_counters_and_queries_consistent(seed in 0u64..200) {
        let _guard = faults("", 0);
        failpoint::configure_with_seed("patch.after_rows=panic@0.4", seed);
        let g = graph(24, seed);
        let mut sched = DynamicColorBound::new(&g);
        let mut service = ProfileService::new();
        service.register(1, &g, &sched).unwrap();
        prop_assert_eq!(service.build_pending(), 1);

        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let (mut patched, mut rebuilt, mut refused) = (0u64, 0u64, 0u64);
        for step in 0..40u64 {
            let n = sched.node_count();
            let u = (lcg(&mut state) as usize) % n;
            let mut v = (lcg(&mut state) as usize) % n;
            if u == v { v = (v + 1) % n; }
            let repair = sched.apply_event(toggle(&sched, u, v, step)).unwrap();
            match service.patch(1, &repair) {
                Ok(PatchOutcome::Patched(_)) => patched += 1,
                Ok(PatchOutcome::Rebuilt) => rebuilt += 1,
                Ok(PatchOutcome::Cold) => prop_assert!(false, "the slot was warm"),
                Err(PatchError::Quarantined(1)) => refused += 1,
                Err(other) => prop_assert!(false, "unexpected patch error {}", other),
            }

            // After every attempt: a typed answer or a typed refusal that
            // agrees with the slot's advertised state.
            match service.query_totals(1, 0, 64) {
                Ok(_) => prop_assert!(service.quarantine_reason(1).is_none()),
                Err(QueryError::Quarantined(1)) => {
                    prop_assert_eq!(service.quarantine_reason(1), Some(QuarantineReason::PatchPanic));
                }
                Err(other) => prop_assert!(false, "unexpected query error {}", other),
            }

            // Repair immediately so the next refusal is again a *fresh*
            // quarantine and the ledger below stays exact.
            if service.quarantine_reason(1).is_some() {
                prop_assert_eq!(service.repair_quarantined(), 1);
            }
        }

        failpoint::clear();
        let stats = service.stats();
        prop_assert_eq!(stats.patches, patched);
        prop_assert_eq!(stats.quarantines, refused);
        prop_assert_eq!(stats.rebuilds, 1 + rebuilt + refused, "initial + fallbacks + repairs");
        prop_assert!(service.profile(1).unwrap().content_eq(&oracle_of(&sched)));
    }
}
