//! Durable serving: snapshot a warm [`ProfileService`], stream live edge
//! events into the WAL, "crash", and recover bitwise-identical answers.
//!
//! The walkthrough mirrors what a real serving process would do:
//!
//! 1. register a handful of tenants (static §5 schedules plus one dynamic
//!    §6 colour-bound tenant) and build their cycle profiles;
//! 2. write a checksummed snapshot with [`ProfileService::snapshot`];
//! 3. keep serving — every edge event is appended to the WAL *before* the
//!    in-memory profile is patched;
//! 4. drop the service (the "crash") and call [`ProfileService::recover`],
//!    which loads the snapshot, replays the WAL through the same patch
//!    plane, and audits a sample;
//! 5. check that every windowed answer is bitwise identical to the answers
//!    the never-crashed service was giving.
//!
//! Run with: `cargo run --release --example durable_service`

use std::collections::BTreeMap;

use fhg::core::dynamic::DynamicColorBound;
use fhg::core::prelude::*;
use fhg::core::serving::{ProfileService, WalSync, WalWriter};
use fhg::graph::generators;
use fhg::graph::{EdgeEvent, EdgeEventKind};

fn main() {
    let dir = std::env::temp_dir().join(format!("fhg-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // --- 1. A small fleet: three static tenants and one dynamic one. ------
    let mut service = ProfileService::new();
    for tenant in 0..3u64 {
        let graph = generators::erdos_renyi(60 + 10 * tenant as usize, 0.05, 7 + tenant);
        let sched = PeriodicDegreeBound::new(&graph);
        service.register(tenant, &graph, &sched).expect("register static tenant");
    }
    let dyn_graph = generators::erdos_renyi(48, 0.06, 99);
    let mut dyn_sched = DynamicColorBound::new(&dyn_graph);
    service.register(3, &dyn_graph, &dyn_sched).expect("register dynamic tenant");
    let built = service.build_pending();
    println!("registered 4 tenants, built {built} cycle profiles");

    // --- 2. Checkpoint: atomic temp+rename+fsync snapshot. ----------------
    let stats = service.snapshot(&dir).expect("snapshot");
    println!(
        "snapshot: {} bytes for {} slots / {} tenants -> {}",
        stats.bytes,
        stats.slots,
        stats.tenants,
        dir.display()
    );

    // --- 3. Keep serving: WAL-append first, then patch in memory. ---------
    let mut wal = WalWriter::with_sync(&dir, WalSync::Always).expect("open wal");
    let (u, v) = first_absent_edge(&dyn_graph);
    for step in 0..6u64 {
        let kind = if step % 2 == 0 { EdgeEventKind::Insert } else { EdgeEventKind::Delete };
        let event = EdgeEvent { kind, u, v, holiday: 32 + step };
        let repair = dyn_sched.apply_event(event).expect("apply event");
        // Write-ahead: the frame must be durable before the profile moves.
        wal.append(3, &repair).expect("wal append");
        service.patch(3, &repair).expect("patch");
    }
    println!("appended {} WAL frames and patched the live profile", wal.frames_appended());

    // Record the answers the live service gives right before the "crash".
    let mut before = BTreeMap::new();
    for tenant in 0..4u64 {
        before.insert(tenant, service.query_totals(tenant, 5, 211).expect("live query"));
    }

    // --- 4. Crash and recover. --------------------------------------------
    drop(service);
    drop(wal);
    let (recovered, report) = ProfileService::recover(&dir).expect("recover");
    println!(
        "recovered: {} slots, {} tenants, {} rehydrated, {} WAL frames replayed, \
         torn snapshot: {}, quarantined: {}",
        report.slots_loaded,
        report.tenants_restored,
        report.profiles_rehydrated,
        report.wal_frames_replayed,
        report.snapshot_torn,
        report.quarantined,
    );
    assert_eq!(report.tenants_restored, 4);
    assert_eq!(report.quarantined, 0, "a clean shutdown recovers fully warm");

    // --- 5. Every answer must be bitwise identical. -----------------------
    for (tenant, expected) in &before {
        let got = recovered.query_totals(*tenant, 5, 211).expect("recovered query");
        assert_eq!(&got, expected, "tenant {tenant} answers must survive the crash");
    }
    let totals = &before[&3];
    println!(
        "tenant 3 window [5, 211): happiness {}, max wait {}, periodic: {} (identical \
         before and after recovery)",
        totals.total_happiness, totals.max_unhappiness, totals.all_periodic
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The first node pair that is not currently a conflict edge — a safe edge
/// to insert (and then toggle) in the dynamic tenant.
fn first_absent_edge(graph: &fhg::graph::Graph) -> (fhg::graph::NodeId, fhg::graph::NodeId) {
    for u in 0..graph.node_count() {
        for v in (u + 1)..graph.node_count() {
            if !graph.has_edge(u, v) {
                return (u, v);
            }
        }
    }
    panic!("complete graph has no absent edge");
}
