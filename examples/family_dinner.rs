//! The family-dinner scenario with a changing family (paper §6).
//!
//! Starts from the paper's "two villages" society (bipartite marriages: every
//! family gathers every second year), then lets relationships change: new
//! couples form across previously unconnected families and some couples
//! separate.  The dynamic colour-bound scheduler repairs colours locally and
//! the example reports how quickly affected families get to host again.
//!
//! Run with: `cargo run --release --example family_dinner`

use fhg::core::dynamic::DynamicColorBound;
use fhg::core::{HappySet, Scheduler};
use fhg::graph::dynamic::random_churn;
use fhg::graph::generators;

fn main() {
    // Two villages of 60 families each; only inter-village marriages at first.
    let initial = generators::bipartite_villages(60, 60, 0.05, 7);
    println!(
        "Initial society: {} families, {} marriages (bipartite: {})",
        initial.node_count(),
        initial.edge_count(),
        fhg::graph::properties::is_bipartite(&initial)
    );

    let mut scheduler = DynamicColorBound::new(&initial);

    // In the quiescent bipartite phase every family hosts with a short period.
    let worst_initial_period =
        initial.nodes().map(|p| scheduler.current_period(p)).max().unwrap_or(1);
    println!("Worst hosting period while the society stays bipartite: {worst_initial_period}");

    // 80 relationship changes: 70% new marriages (possibly within a village —
    // the society stops being bipartite), 30% separations.
    let events = random_churn(&initial, 80, 0.7, 0, 99);
    let mut repaired_families = 0usize;
    let mut max_recovery = 0u64;
    let mut holiday = 0u64;
    // One reused zero-alloc buffer serves every holiday between events.
    let mut happy = HappySet::new(initial.node_count());
    for event in events {
        // A few holidays pass between events.
        for _ in 0..4 {
            scheduler.fill_happy_set(holiday, &mut happy);
            let independent = happy
                .iter()
                .all(|u| scheduler.graph().neighbors(u).iter().all(|&v| !happy.contains(v)));
            assert!(independent, "holiday {holiday}: the gathering must be conflict-free");
            holiday += 1;
        }
        let repair = scheduler.apply_event(event).expect("churn events are valid");
        for p in repair.recolored() {
            repaired_families += 1;
            // After the repair the family hosts again within its new period,
            // which §6 bounds by phi(d) * 2^(log* d + 1).
            let period = scheduler.current_period(p);
            let bound = scheduler.recovery_bound(p);
            assert!(period <= bound, "family {p}: period {period} exceeds recovery bound {bound}");
            max_recovery = max_recovery.max(period);
        }
    }

    println!("Applied 80 relationship changes; {repaired_families} families needed recolouring");
    println!("Worst post-repair hosting period: {max_recovery}");
    println!("Recolouring events recorded by the scheduler: {}", scheduler.recolor_events());

    // The colouring is still proper, so every future gathering remains valid.
    assert!(scheduler.coloring_is_proper());
    let final_worst = scheduler.graph().nodes().map(|p| scheduler.current_period(p)).max().unwrap();
    println!("Worst hosting period in the final society: {final_worst}");
}
