//! Head-to-head comparison of every scheduler in the paper on a heavy-tailed
//! conflict graph (the regime where local bounds beat global ones the most).
//!
//! Prints one row per scheduler and, for the degree-bound schedulers, the
//! per-degree breakdown showing that the wait of a parent tracks its own
//! degree rather than the maximum degree in the graph.
//!
//! Run with: `cargo run --release --example scheduler_comparison`

use std::collections::BTreeMap;

use fhg::core::analysis::analyze_schedule;
use fhg::core::schedulers::standard_suite;
use fhg::core::Scheduler;
use fhg::graph::generators;

fn main() {
    // Preferential attachment: a few hub families with dozens of in-laws,
    // most families with two or three.
    let graph = generators::barabasi_albert(500, 2, 7);
    println!(
        "Conflict graph: {} parents, {} couples, max degree {}, mean degree {:.2}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree(),
        graph.average_degree()
    );

    let horizon = 2048;
    println!(
        "\n{:<28} {:>10} {:>12} {:>10} {:>16}",
        "scheduler", "max wait", "periodic?", "fairness", "init rounds"
    );
    for mut s in standard_suite(&graph, 11) {
        let analysis = analyze_schedule(&graph, s.as_mut(), horizon);
        assert!(analysis.all_happy_sets_independent);
        println!(
            "{:<28} {:>10} {:>12} {:>10.3} {:>16}",
            analysis.scheduler,
            analysis.max_unhappiness(),
            if s.is_periodic() { "yes" } else { "no" },
            analysis.jain_fairness(),
            s.init_rounds(),
        );
    }

    // Per-degree view for the two degree-bound algorithms: group parents by
    // degree and report the worst observed wait in each group.
    for (label, mut sched) in [
        (
            "phased greedy (Thm 3.1, bound d+1)",
            Box::new(fhg::core::schedulers::PhasedGreedy::new(&graph))
                as Box<dyn fhg::core::Scheduler>,
        ),
        (
            "periodic degree-bound (Thm 5.3, bound 2d)",
            Box::new(fhg::core::schedulers::PeriodicDegreeBound::new(&graph)),
        ),
    ] {
        let analysis = analyze_schedule(&graph, sched.as_mut(), horizon);
        let mut worst_by_degree: BTreeMap<usize, u64> = BTreeMap::new();
        for node in &analysis.per_node {
            let entry = worst_by_degree.entry(node.degree).or_insert(0);
            *entry = (*entry).max(node.max_unhappiness);
        }
        println!("\n{label}: worst unhappy streak by degree");
        println!("  {:>7} {:>12} {:>12}", "degree", "worst wait", "claimed bound");
        for (degree, worst) in worst_by_degree.iter().take(12) {
            let bound = if label.contains("2d") { 2 * degree.max(&1) } else { degree + 1 };
            println!("  {degree:>7} {worst:>12} {bound:>12}");
        }
    }

    // The zero-alloc serving path: one reused `HappySet` buffer drives the
    // whole horizon through `fill_happy_set`, no per-holiday `Vec`.
    let hub = (0..graph.node_count()).max_by_key(|&p| graph.degree(p)).unwrap();
    let mut sched = fhg::core::schedulers::PeriodicDegreeBound::new(&graph);
    let mut happy = fhg::core::HappySet::new(graph.node_count());
    let mut hub_hosts = 0u64;
    for t in 0..horizon {
        sched.fill_happy_set(t, &mut happy);
        hub_hosts += u64::from(happy.contains(hub));
    }
    println!(
        "\nHub family {hub} (degree {}) is happy on {hub_hosts} of {horizon} holidays \
         (zero-alloc fill_happy_set sweep)",
        graph.degree(hub)
    );
}
