//! Quickstart: schedule holiday gatherings for a random extended family.
//!
//! Builds a random conflict graph, runs the three main schedulers of the
//! paper (§3 phased greedy, §4 Elias-omega colour-bound, §5 periodic
//! degree-bound) and prints, for a few representative parents, how long they
//! ever wait between happy holidays compared with the bound each theorem
//! promises.
//!
//! Run with: `cargo run --release --example quickstart`

use fhg::core::analysis::analyze_schedule;
use fhg::core::prelude::*;
use fhg::graph::generators;

fn main() {
    // 200 families; each pair of families has a 2% chance of being in-laws.
    let graph = generators::erdos_renyi(200, 0.02, 42);
    println!(
        "Conflict graph: {} parents, {} couples, max degree {}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    let horizon = 1024;
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RoundRobinColoring::new(&graph)),
        Box::new(PhasedGreedy::new(&graph)),
        Box::new(PrefixCodeScheduler::omega(&graph)),
        Box::new(PeriodicDegreeBound::new(&graph)),
    ];

    println!(
        "\n{:<28} {:>10} {:>12} {:>14} {:>10}",
        "scheduler", "max wait", "periodic?", "mean set size", "fairness"
    );
    for s in &mut schedulers {
        let analysis = analyze_schedule(&graph, s.as_mut(), horizon);
        assert!(analysis.all_happy_sets_independent, "schedules must be conflict-free");
        println!(
            "{:<28} {:>10} {:>12} {:>14.2} {:>10.3}",
            analysis.scheduler,
            analysis.max_unhappiness(),
            if analysis.all_periodic() { "yes" } else { "no" },
            analysis.mean_happy_set_size,
            analysis.jain_fairness(),
        );
    }

    // Zoom in on one low-degree and one high-degree parent under the §5
    // scheduler: the whole point of the paper is that the wait should track
    // the parent's own degree, not the graph's maximum degree.
    let mut degree_bound = PeriodicDegreeBound::new(&graph);

    // Serve a few gatherings through the zero-alloc API: `fill_happy_set`
    // reuses one `HappySet` buffer instead of allocating a `Vec` per holiday.
    let mut happy = HappySet::new(graph.node_count());
    let sizes: Vec<String> = (0..8)
        .map(|t| {
            degree_bound.fill_happy_set(t, &mut happy);
            happy.len().to_string()
        })
        .collect();
    println!(
        "\nGathering sizes over the first 8 holidays (one reused buffer): {}",
        sizes.join(", ")
    );

    let analysis = analyze_schedule(&graph, &mut degree_bound, horizon);
    let low = analysis.per_node.iter().filter(|n| n.degree > 0).min_by_key(|n| n.degree).unwrap();
    let high = analysis.per_node.iter().max_by_key(|n| n.degree).unwrap();
    println!("\nPeriodic degree-bound (Theorem 5.3, period = 2^ceil(log2(d+1)) <= 2d):");
    for node in [low, high] {
        println!(
            "  parent {:>3}: degree {:>2}, period {:>3}, longest unhappy streak {:>3} (bound 2d = {})",
            node.node,
            node.degree,
            degree_bound.period(node.node).unwrap(),
            node.max_unhappiness,
            2 * node.degree.max(1),
        );
    }
}
