//! # fhg — The Family Holiday Gathering Problem
//!
//! An umbrella crate re-exporting the whole Family Holiday Gathering (FHG)
//! workspace: a Rust reproduction of *"The Family Holiday Gathering Problem
//! or Fair and Periodic Scheduling of Independent Sets"* (Amir, Kapah,
//! Kopelowitz, Naor, Porat — SPAA 2016).
//!
//! The problem: given a conflict graph over parents, emit an infinite
//! sequence of independent sets ("which parents host a full family dinner
//! this holiday") such that every parent's longest unhappy streak is bounded
//! by a *local* quantity — its degree or its colour — rather than by global
//! graph parameters, ideally with a perfectly periodic, lightweight and
//! distributed schedule.
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`graph`] | conflict-graph substrate, generators, properties, dynamic edges, the [`graph::HappySet`] engine buffer |
//! | [`codes`] | prefix-free integer codes (Elias γ/δ/ω), `φ`, iterated logs |
//! | [`coloring`] | sequential colouring algorithms |
//! | [`distributed`] | synchronous LOCAL-model simulator + distributed colouring/MIS |
//! | [`core`] | the schedulers and analysis from the paper (§3, §4, §5, §6) |
//! | [`matching`] | Appendix A algorithms (matching, satisfaction, MIS) |
//! | [`radio`] | cellular-radio TDMA application layer |
//!
//! ## The `HappySet` engine
//!
//! Every scheduler implements `core::Scheduler::fill_happy_set(t, &mut
//! HappySet)`, which writes one holiday's happy parents into a caller-owned
//! word-packed buffer with **zero heap allocations per holiday** after
//! warm-up; perfectly periodic schedulers (§4/§5) emit via precomputed
//! residue bit rows (one word-wise OR per distinct period) and the analysis
//! verifies independence word-wise against adjacency rows.  The original
//! `happy_set(t) -> Vec<NodeId>` remains as a compatibility shim over the
//! buffer path.  Contract: implementations reset the buffer to
//! `node_count()` themselves, and stateful schedulers (§3 phased greedy, the
//! random baseline) must see **consecutive** holidays through either entry
//! point, starting at `first_holiday()`.
//!
//! Perfectly periodic schedulers additionally expose a
//! `core::Scheduler::residue_schedule` view — a pure function of the holiday
//! number — which lets `core::analyze_schedule` shard the horizon across
//! worker threads (`FHG_THREADS`) and verify independence once per residue
//! class `t mod cycle` instead of once per holiday, with results
//! bitwise-identical to the sequential sweep at every thread count.
//!
//! ## Quickstart
//!
//! ```
//! use fhg::core::prelude::*;
//! use fhg::graph::generators;
//!
//! // A random conflict graph over 200 families.
//! let g = generators::erdos_renyi(200, 0.03, 7);
//!
//! // The periodic degree-bound scheduler of paper §5: every parent of degree
//! // d is happy exactly every 2^ceil(log2(d+1)) <= 2d holidays.
//! let mut scheduler = PeriodicDegreeBound::new(&g);
//! let analysis = analyze_schedule(&g, &mut scheduler, 512);
//! assert!(analysis.all_happy_sets_independent);
//! for p in g.nodes() {
//!     let bound = 2 * g.degree(p).max(1);
//!     assert!((analysis.per_node[p].max_unhappiness as usize) < bound.max(2));
//! }
//! ```

pub use fhg_codes as codes;
pub use fhg_coloring as coloring;
pub use fhg_core as core;
pub use fhg_distributed as distributed;
pub use fhg_graph as graph;
pub use fhg_matching as matching;
pub use fhg_radio as radio;
