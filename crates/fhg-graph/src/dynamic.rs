//! Dynamic conflict graphs (paper §6).
//!
//! Relationships are not fixed: new couples form (edge insertions) and old
//! ones dissolve (edge deletions).  [`DynamicGraph`] wraps a [`Graph`] with
//! an applied-event log so that schedulers can observe *which nodes were
//! affected* by each event and react locally (recolouring only the endpoints,
//! as §6 prescribes for the colour-bound algorithm).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::error::GraphError;
use crate::{Graph, NodeId};

/// The kind of a dynamic edge event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeEventKind {
    /// A new conflict (marriage) appears.
    Insert,
    /// An existing conflict dissolves.
    Delete,
}

/// A single edge event applied to a dynamic graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeEvent {
    /// Insert or delete.
    pub kind: EdgeEventKind,
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// The holiday index at which the event takes effect.
    pub holiday: u64,
}

/// A conflict graph subject to edge insertions and deletions over time.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    graph: Graph,
    history: Vec<EdgeEvent>,
}

impl DynamicGraph {
    /// Wraps an initial graph.
    pub fn new(initial: Graph) -> Self {
        DynamicGraph { graph: initial, history: Vec::new() }
    }

    /// The current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// All events applied so far, in application order.
    pub fn history(&self) -> &[EdgeEvent] {
        &self.history
    }

    /// Number of events applied so far.
    pub fn event_count(&self) -> usize {
        self.history.len()
    }

    /// Inserts edge `(u, v)` at `holiday`; returns the affected endpoints.
    pub fn insert_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        holiday: u64,
    ) -> Result<[NodeId; 2], GraphError> {
        self.graph.add_edge(u, v)?;
        self.history.push(EdgeEvent { kind: EdgeEventKind::Insert, u, v, holiday });
        Ok([u, v])
    }

    /// Deletes edge `(u, v)` at `holiday`; returns the affected endpoints.
    pub fn delete_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        holiday: u64,
    ) -> Result<[NodeId; 2], GraphError> {
        self.graph.remove_edge(u, v)?;
        self.history.push(EdgeEvent { kind: EdgeEventKind::Delete, u, v, holiday });
        Ok([u, v])
    }

    /// Applies a pre-computed event, dispatching on its kind.
    pub fn apply(&mut self, event: EdgeEvent) -> Result<[NodeId; 2], GraphError> {
        match event.kind {
            EdgeEventKind::Insert => self.insert_edge(event.u, event.v, event.holiday),
            EdgeEventKind::Delete => self.delete_edge(event.u, event.v, event.holiday),
        }
    }

    /// Replays the event history onto a copy of `initial`, returning the graph
    /// that results.  Used by tests to confirm the history fully describes
    /// the current state.
    pub fn replay(initial: Graph, events: &[EdgeEvent]) -> Result<Graph, GraphError> {
        let mut dynamic = DynamicGraph::new(initial);
        for &e in events {
            dynamic.apply(e)?;
        }
        Ok(dynamic.graph)
    }
}

/// Generates a random churn workload of `count` events against `graph`.
///
/// Each event is an insertion of a uniformly random missing edge with
/// probability `insert_prob`, otherwise a deletion of a uniformly random
/// existing edge (skipped if the graph has no edges).  Events are spaced one
/// holiday apart starting at `start_holiday`.  This is the adversary used by
/// experiment E8.
pub fn random_churn(
    graph: &Graph,
    count: usize,
    insert_prob: f64,
    start_holiday: u64,
    seed: u64,
) -> Vec<EdgeEvent> {
    assert!((0.0..=1.0).contains(&insert_prob), "insert_prob must be in [0,1]");
    let n = graph.node_count();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut current = graph.clone();
    let mut events = Vec::with_capacity(count);
    let mut holiday = start_holiday;
    let mut attempts_left = count * 50 + 100;
    while events.len() < count && attempts_left > 0 {
        attempts_left -= 1;
        let insert = rng.gen_bool(insert_prob);
        if insert {
            if n < 2 {
                continue;
            }
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || current.has_edge(u, v) {
                continue;
            }
            current.add_edge(u, v).expect("checked absent");
            events.push(EdgeEvent { kind: EdgeEventKind::Insert, u, v, holiday });
        } else {
            if current.edge_count() == 0 {
                continue;
            }
            let edges: Vec<_> = current.edges().collect();
            let e = edges[rng.gen_range(0..edges.len())];
            current.remove_edge(e.u, e.v).expect("edge listed as present");
            events.push(EdgeEvent { kind: EdgeEventKind::Delete, u: e.u, v: e.v, holiday });
        }
        holiday += 1;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, structured::cycle};

    #[test]
    fn insert_and_delete_update_graph_and_history() {
        let mut d = DynamicGraph::new(Graph::new(4));
        assert_eq!(d.insert_edge(0, 1, 3).unwrap(), [0, 1]);
        assert_eq!(d.insert_edge(1, 2, 4).unwrap(), [1, 2]);
        assert!(d.graph().has_edge(0, 1));
        assert_eq!(d.event_count(), 2);
        assert_eq!(d.delete_edge(0, 1, 7).unwrap(), [0, 1]);
        assert!(!d.graph().has_edge(0, 1));
        assert_eq!(d.history()[2].kind, EdgeEventKind::Delete);
        assert_eq!(d.history()[2].holiday, 7);
    }

    #[test]
    fn invalid_events_are_rejected_and_not_logged() {
        let mut d = DynamicGraph::new(cycle(4));
        assert!(d.insert_edge(0, 1, 0).is_err(), "edge already exists");
        assert!(d.delete_edge(0, 2, 0).is_err(), "edge missing");
        assert!(d.insert_edge(0, 9, 0).is_err(), "node out of range");
        assert_eq!(d.event_count(), 0);
    }

    #[test]
    fn apply_dispatches_on_kind() {
        let mut d = DynamicGraph::new(Graph::new(3));
        d.apply(EdgeEvent { kind: EdgeEventKind::Insert, u: 0, v: 2, holiday: 1 }).unwrap();
        assert!(d.graph().has_edge(0, 2));
        d.apply(EdgeEvent { kind: EdgeEventKind::Delete, u: 0, v: 2, holiday: 2 }).unwrap();
        assert!(!d.graph().has_edge(0, 2));
    }

    #[test]
    fn replay_reconstructs_current_graph() {
        let initial = erdos_renyi(30, 0.1, 1);
        let events = random_churn(&initial, 40, 0.5, 100, 2);
        let mut d = DynamicGraph::new(initial.clone());
        for &e in &events {
            d.apply(e).unwrap();
        }
        let replayed = DynamicGraph::replay(initial, &events).unwrap();
        assert_eq!(&replayed, d.graph());
    }

    #[test]
    fn random_churn_produces_requested_count_and_valid_events() {
        let g = erdos_renyi(50, 0.1, 3);
        let events = random_churn(&g, 100, 0.6, 10, 4);
        assert_eq!(events.len(), 100);
        // All events must be applicable in sequence.
        DynamicGraph::replay(g, &events).unwrap();
        // Holidays are non-decreasing.
        assert!(events.windows(2).all(|w| w[0].holiday <= w[1].holiday));
        assert!(events.iter().all(|e| e.holiday >= 10));
    }

    #[test]
    fn random_churn_pure_insertions_and_pure_deletions() {
        let g = erdos_renyi(20, 0.2, 5);
        let inserts = random_churn(&g, 15, 1.0, 0, 6);
        assert!(inserts.iter().all(|e| e.kind == EdgeEventKind::Insert));
        let deletes = random_churn(&g, 10, 0.0, 0, 6);
        assert!(deletes.iter().all(|e| e.kind == EdgeEventKind::Delete));
    }

    #[test]
    fn random_churn_on_degenerate_graphs_terminates() {
        // Single node: no insertion or deletion is ever possible.
        let g = Graph::new(1);
        let events = random_churn(&g, 5, 0.5, 0, 0);
        assert!(events.is_empty());
        // Complete graph with pure insertions: nothing can be inserted.
        let g = crate::generators::structured::complete(5);
        let events = random_churn(&g, 5, 1.0, 0, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn event_value_semantics_roundtrip() {
        let e = EdgeEvent { kind: EdgeEventKind::Insert, u: 1, v: 2, holiday: 9 };
        let copy = e;
        assert_eq!(e, copy, "EdgeEvent is a plain value type");
        let different = EdgeEvent { kind: EdgeEventKind::Delete, ..e };
        assert_ne!(e, different);
    }
}
