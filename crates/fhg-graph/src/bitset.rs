//! A small fixed-capacity bit set.
//!
//! Several hot paths in the schedulers (independence verification, palette
//! bookkeeping, visited marks in traversals) need a dense set of node ids.
//! A `Vec<bool>` works but wastes 8x the memory and defeats the cache; this
//! minimal word-packed bit set keeps those scans tight without pulling in an
//! external dependency.  The bulk operations (union, intersection probes,
//! popcounts, member walks) run on the fused word loops in
//! [`crate::kernels`], so every consumer gets the runtime-dispatched wide
//! path for free.
//!
//! Invariant: the backing words never contain a set bit at a position `>=
//! capacity()` — every mutator bounds-checks, and the bulk operations only
//! combine sets of equal capacity — so word-level kernels may walk the raw
//! words without a capacity guard.

use crate::kernels;

const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` values in `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// Creates an empty set with capacity for values `0..len`.
    pub fn new(len: usize) -> Self {
        FixedBitSet { words: vec![0; len.div_ceil(WORD_BITS)], len }
    }

    /// Creates a set with capacity `len` with every bit set.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// The capacity (number of representable values), *not* the cardinality.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `value`. Returns `true` if it was not present before.
    ///
    /// # Panics
    /// Panics if `value >= capacity()`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.len, "bitset insert out of bounds: {value} >= {}", self.len);
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `value`. Returns `true` if it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.len {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Returns whether `value` is in the set.
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.len {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements currently stored.
    pub fn count(&self) -> usize {
        kernels::count(&self.words) as usize
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the stored values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let base = wi * WORD_BITS;
            let len = self.len;
            BitIter { word, base }.take_while(move |&v| v < len)
        })
    }

    /// Calls `f` with every stored value in increasing order — the
    /// set-bit-extraction kernel ([`kernels::for_each_set_bit`]) behind the
    /// hot member walks (`hosts_into`, attendance recording), cheaper than
    /// driving [`FixedBitSet::iter`] through a `flat_map` chain.
    #[inline]
    pub fn for_each(&self, f: impl FnMut(usize)) {
        // Sound without a capacity guard: no word ever holds a bit at a
        // position >= capacity() (module invariant).
        kernels::for_each_set_bit(&self.words, f);
    }

    /// Smallest value in `0..capacity()` *not* in the set, if any.
    ///
    /// This is the "first free colour" primitive used by greedy colouring.
    pub fn first_zero(&self) -> Option<usize> {
        for (wi, &word) in self.words.iter().enumerate() {
            if word != u64::MAX {
                let bit = (!word).trailing_zeros() as usize;
                let v = wi * WORD_BITS + bit;
                if v < self.len {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Read-only view of the backing words, least-significant bit first
    /// (value `v` lives at bit `v % 64` of word `v / 64`).
    ///
    /// Exposed so hot paths (the scheduler engine's independence checks) can
    /// run word-wise ANDs against adjacency rows instead of per-element
    /// probes.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable view of the backing words, for the in-crate kernel callers
    /// ([`crate::happy_set::HappySet`]'s fused union) — crate-private so the
    /// no-stray-high-bits invariant stays enforceable.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Whether the two sets share any element, computed word-wise with the
    /// fused AND-any kernel (per-block early exit).
    ///
    /// Capacities may differ; values beyond the shorter capacity cannot
    /// intersect.
    pub fn intersects(&self, other: &FixedBitSet) -> bool {
        kernels::intersects(&self.words, &other.words)
    }

    /// In-place union with another set of the same capacity.
    pub fn union_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        kernels::or_rows(&mut self.words, &[&other.words]);
    }

    /// In-place intersection with another set of the same capacity.
    pub fn intersect_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = FixedBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 4);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn contains_and_remove_out_of_range_are_false() {
        let mut s = FixedBitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
        assert!(!s.remove(10));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_range_panics() {
        FixedBitSet::new(10).insert(10);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = FixedBitSet::new(200);
        for v in [5usize, 1, 64, 128, 199, 63] {
            s.insert(v);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![1, 5, 63, 64, 128, 199]);
    }

    #[test]
    fn for_each_matches_iter_at_word_boundaries() {
        for capacity in [0usize, 1, 63, 64, 65, 130, 256] {
            let mut s = FixedBitSet::new(capacity);
            for v in (0..capacity).step_by(3) {
                s.insert(v);
            }
            let mut walked = Vec::new();
            s.for_each(|v| walked.push(v));
            assert_eq!(walked, s.iter().collect::<Vec<_>>(), "capacity {capacity}");
        }
    }

    #[test]
    fn first_zero_finds_smallest_missing() {
        let mut s = FixedBitSet::new(70);
        for v in 0..65 {
            s.insert(v);
        }
        assert_eq!(s.first_zero(), Some(65));
        s.remove(3);
        assert_eq!(s.first_zero(), Some(3));
        let full = FixedBitSet::full(70);
        assert_eq!(full.first_zero(), None);
    }

    #[test]
    fn full_and_clear() {
        let mut s = FixedBitSet::full(67);
        assert_eq!(s.count(), 67);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = FixedBitSet::new(100);
        let mut b = FixedBitSet::new(100);
        a.insert(1);
        a.insert(50);
        b.insert(50);
        b.insert(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 50, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![50]);
    }

    #[test]
    fn intersects_is_word_accurate_and_capacity_tolerant() {
        let mut a = FixedBitSet::new(130);
        let mut b = FixedBitSet::new(130);
        a.insert(129);
        b.insert(128);
        assert!(!a.intersects(&b), "neighbouring bits in the top word must not intersect");
        b.insert(129);
        assert!(a.intersects(&b));
        let mut short = FixedBitSet::new(10);
        short.insert(3);
        assert!(!a.intersects(&short), "disjoint values across different capacities");
        let mut short2 = FixedBitSet::new(10);
        short2.insert(3);
        let mut long = FixedBitSet::new(500);
        long.insert(3);
        assert!(long.intersects(&short2));
    }

    #[test]
    fn as_words_matches_bit_layout() {
        let mut s = FixedBitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        let words = s.as_words();
        assert_eq!(words.len(), 3);
        assert_eq!(words[0], 1);
        assert_eq!(words[1], 1);
        assert_eq!(words[2], 2);
    }

    proptest! {
        #[test]
        fn behaves_like_btreeset(values in proptest::collection::vec(0usize..500, 0..200)) {
            let mut bits = FixedBitSet::new(500);
            let mut reference = BTreeSet::new();
            for &v in &values {
                prop_assert_eq!(bits.insert(v), reference.insert(v));
            }
            prop_assert_eq!(bits.count(), reference.len());
            prop_assert_eq!(bits.iter().collect::<Vec<_>>(),
                            reference.iter().copied().collect::<Vec<_>>());
            for &v in &values {
                prop_assert_eq!(bits.remove(v), reference.remove(&v));
            }
            prop_assert!(bits.is_empty());
        }

        #[test]
        fn first_zero_matches_linear_scan(values in proptest::collection::vec(0usize..64, 0..64)) {
            let mut bits = FixedBitSet::new(64);
            for &v in &values {
                bits.insert(v);
            }
            let expected = (0..64).find(|v| !bits.contains(*v));
            prop_assert_eq!(bits.first_zero(), expected);
        }
    }
}
