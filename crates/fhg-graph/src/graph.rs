//! Mutable adjacency-list graph.
//!
//! [`Graph`] is the workhorse representation used while building conflict
//! graphs (generators), while applying dynamic edge events (paper §6) and by
//! algorithms that need cheap mutation.  Algorithms that only *read* the
//! graph usually convert to [`crate::CsrGraph`] first.

use crate::error::GraphError;
use crate::NodeId;

/// An undirected edge, stored with `u <= v` when produced by [`Graph::edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Creates an edge, normalising so that `u <= v`.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Returns the endpoint different from `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of the edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("node {x} is not an endpoint of edge ({}, {})", self.u, self.v)
        }
    }
}

/// A mutable, undirected, simple graph stored as sorted adjacency lists.
///
/// Invariants maintained by every method:
///
/// * no self-loops, no parallel edges;
/// * each adjacency list is sorted in increasing node order;
/// * `edge_count` equals the number of unordered edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Creates a graph from an edge list over nodes `0..n`.
    ///
    /// Duplicate edges and self-loops are rejected.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (unordered) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns an iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count()
    }

    /// Adds an isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Degree of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of bounds.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u].len()
    }

    /// Sorted slice of neighbours of `u`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u]
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        self.adj[u].binary_search(&v).is_ok()
    }

    fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if u >= self.node_count() {
            Err(GraphError::NodeOutOfBounds { node: u, node_count: self.node_count() })
        } else {
            Ok(())
        }
    }

    /// Adds the undirected edge `(u, v)`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        match self.adj[u].binary_search(&v) {
            Ok(_) => Err(GraphError::DuplicateEdge(u, v)),
            Err(pos_u) => {
                self.adj[u].insert(pos_u, v);
                let pos_v = self.adj[v].binary_search(&u).unwrap_err();
                self.adj[v].insert(pos_v, u);
                self.edge_count += 1;
                Ok(())
            }
        }
    }

    /// Adds the edge `(u, v)` if it is absent; returns whether it was added.
    pub fn add_edge_if_absent(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Removes the undirected edge `(u, v)`.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        match self.adj[u].binary_search(&v) {
            Ok(pos_u) => {
                self.adj[u].remove(pos_u);
                let pos_v = self.adj[v].binary_search(&u).expect("adjacency symmetry");
                self.adj[v].remove(pos_v);
                self.edge_count -= 1;
                Ok(())
            }
            Err(_) => Err(GraphError::MissingEdge(u, v)),
        }
    }

    /// Iterator over all edges with `u <= v`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| Edge { u, v }))
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree δ of the graph (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Vector of all node degrees, indexed by node id.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Average degree `2m / n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }

    /// Consumes self and returns the adjacency lists.
    pub fn into_adjacency(self) -> Vec<Vec<NodeId>> {
        self.adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_graph_is_empty() {
        let g = Graph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.nodes().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(3, 1).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(1), 3);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.neighbors(1), &[0, 2, 3]);

        g.remove_edge(1, 2).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(2, 1));
        assert_eq!(g.neighbors(1), &[0, 3]);
    }

    #[test]
    fn rejects_self_loops_duplicates_and_bad_nodes() {
        let mut g = Graph::new(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.add_edge(0, 1), Err(GraphError::DuplicateEdge(0, 1)));
        assert_eq!(g.add_edge(1, 0), Err(GraphError::DuplicateEdge(1, 0)));
        assert!(matches!(g.add_edge(0, 9), Err(GraphError::NodeOutOfBounds { node: 9, .. })));
        assert_eq!(g.remove_edge(0, 2), Err(GraphError::MissingEdge(0, 2)));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn add_edge_if_absent_is_idempotent() {
        let mut g = Graph::new(3);
        assert!(g.add_edge_if_absent(0, 1).unwrap());
        assert!(!g.add_edge_if_absent(1, 0).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert!(g.add_edge_if_absent(0, 7).is_err());
    }

    #[test]
    fn edges_are_lexicographic_and_unique() {
        let g = Graph::from_edges(4, [(2, 3), (0, 3), (0, 1)]).unwrap();
        let e: Vec<(usize, usize)> = g.edges().map(|e| (e.u, e.v)).collect();
        assert_eq!(e, vec![(0, 1), (0, 3), (2, 3)]);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = Graph::new(1);
        let v = g.add_node();
        assert_eq!(v, 1);
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(5, 2);
        assert_eq!((e.u, e.v), (2, 5));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(0, 1).other(2);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.degrees(), vec![3, 1, 1, 1]);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edge_list_text_roundtrip() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let text = crate::io::to_edge_list(&g);
        let back = crate::io::from_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    fn arb_edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
        proptest::collection::vec((0..n, 0..n), 0..max_edges)
    }

    proptest! {
        #[test]
        fn adjacency_is_always_symmetric_and_sorted(pairs in arb_edges(30, 120)) {
            let mut g = Graph::new(30);
            for (u, v) in pairs {
                if u != v {
                    let _ = g.add_edge_if_absent(u, v);
                }
            }
            let mut m = 0;
            for u in g.nodes() {
                let nbrs = g.neighbors(u);
                prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, no dup");
                for &v in nbrs {
                    prop_assert!(g.neighbors(v).contains(&u), "symmetry");
                    prop_assert_ne!(v, u, "no self loops");
                }
                m += nbrs.len();
            }
            prop_assert_eq!(m, 2 * g.edge_count());
            prop_assert_eq!(g.edges().count(), g.edge_count());
        }

        #[test]
        fn remove_undoes_add(pairs in arb_edges(20, 60)) {
            let mut g = Graph::new(20);
            let mut added = Vec::new();
            for (u, v) in pairs {
                if u != v && g.add_edge_if_absent(u, v).unwrap() {
                    added.push((u, v));
                }
            }
            for &(u, v) in added.iter().rev() {
                g.remove_edge(u, v).unwrap();
            }
            prop_assert_eq!(g.edge_count(), 0);
            for u in g.nodes() {
                prop_assert_eq!(g.degree(u), 0);
            }
        }
    }
}
