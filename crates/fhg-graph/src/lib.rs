//! # fhg-graph
//!
//! Graph substrate for the Family Holiday Gathering (FHG) library.
//!
//! The paper "The Family Holiday Gathering Problem or Fair and Periodic
//! Scheduling of Independent Sets" (Amir, Kapah, Kopelowitz, Naor, Porat)
//! models the world as a *conflict graph* `G = (P, E)`: nodes are parents and
//! an edge connects two parents whose children are in a relationship.  Every
//! scheduler in the companion crates consumes graphs produced by this crate.
//!
//! The crate provides:
//!
//! * [`Graph`] — a mutable, adjacency-list undirected simple graph used while
//!   building or dynamically updating a conflict graph.
//! * [`CsrGraph`] — a compact, immutable compressed-sparse-row view used by
//!   the schedulers and the distributed simulator for cache-friendly
//!   neighbourhood scans.
//! * [`generators`] — synthetic conflict-graph families (Erdős–Rényi,
//!   unit-disk/radio, Barabási–Albert, bipartite "two villages", cliques,
//!   cycles, grids, trees, regular circulants, …) used by the experiments.
//! * [`properties`] — structural measurements (degree statistics, components,
//!   bipartiteness, degeneracy, triangles, independence checks).
//! * [`happy_set`] — the reusable word-packed [`HappySet`] buffer the
//!   scheduler engine fills once per holiday without allocating.
//! * [`kernels`] — the fused word kernels (OR+popcount emission, AND-any
//!   independence probes, set-bit extraction) every hot bit loop runs on,
//!   with runtime-dispatched AVX-512 and AVX2 wide paths and a portable
//!   unrolled fallback (`FHG_KERNEL=portable|wide|wide512` override).
//! * [`dynamic`] — the dynamic-setting substrate of paper §6: an edge-event
//!   stream applied to a graph with notification of affected nodes.
//!
//! ## Quick example
//!
//! ```
//! use fhg_graph::{Graph, generators, properties};
//!
//! let g = generators::erdos_renyi(100, 0.05, 42);
//! assert_eq!(g.node_count(), 100);
//! let comps = properties::connected_components(&g);
//! assert!(comps.component_count() >= 1);
//! ```

// `kernels` is the one module allowed to use `unsafe` (AVX2 intrinsics
// behind a runtime feature check); everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod csr;
pub mod dynamic;
pub mod error;
pub mod generators;
pub mod graph;
pub mod happy_set;
pub mod io;
pub mod kernels;
pub mod properties;

pub use bitset::FixedBitSet;
pub use csr::CsrGraph;
pub use dynamic::{DynamicGraph, EdgeEvent, EdgeEventKind};
pub use error::GraphError;
pub use graph::{Edge, Graph};
pub use happy_set::HappySet;
pub use kernels::KernelMode;

/// Identifier of a node (a "parent" in the paper's terminology).
///
/// Nodes are always numbered `0..n` densely; all graph types in this crate
/// and every algorithm in the workspace rely on that invariant.
pub type NodeId = usize;
