//! Barabási–Albert preferential attachment graphs.
//!
//! Heavy-tailed degree distributions are the regime where the paper's
//! *local* bounds (degree `d_p`, colour `c_p`) dramatically beat the global
//! `Δ + 1` bound: a handful of hub parents have enormous degree while the
//! median parent has degree close to `m`.  Experiment E6 uses this family.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{Graph, NodeId};

/// Generates a Barabási–Albert preferential-attachment graph.
///
/// Starts from a clique on `m + 1` nodes (or a single node when `m == 0`),
/// then attaches each new node to `m` distinct existing nodes chosen with
/// probability proportional to their current degree (implemented with the
/// standard "repeated endpoints" urn).
///
/// # Panics
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment count m must be at least 1");
    assert!(n > m, "need at least m+1 = {} nodes, got {n}", m + 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Urn of node ids, each appearing once per incident edge endpoint.
    let mut urn: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    // Seed clique on the first m+1 nodes.
    for u in 0..=m {
        for v in (u + 1)..=m {
            g.add_edge(u, v).expect("clique edges are simple");
            urn.push(u);
            urn.push(v);
        }
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
    for new in (m + 1)..n {
        chosen.clear();
        // Sample m distinct targets by preferential attachment.
        while chosen.len() < m {
            let target = urn[rng.gen_range(0..urn.len())];
            if !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &target in &chosen {
            g.add_edge(new, target).expect("new node has no prior edges");
            urn.push(new);
            urn.push(target);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_edge_counts() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, 42);
        assert_eq!(g.node_count(), n);
        // Seed clique has C(m+1, 2) edges, each later node adds exactly m.
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
    }

    #[test]
    fn minimum_degree_is_m() {
        let g = barabasi_albert(300, 4, 7);
        assert!(g.min_degree() >= 4);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = barabasi_albert(3000, 2, 11);
        let max = g.max_degree();
        let avg = g.average_degree();
        // Hubs should be far above the average degree (which is about 2m = 4).
        assert!(max as f64 > 5.0 * avg, "expected heavy tail: max degree {max} vs average {avg}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(barabasi_albert(200, 2, 5), barabasi_albert(200, 2, 5));
        assert_ne!(barabasi_albert(200, 2, 5), barabasi_albert(200, 2, 6));
    }

    #[test]
    fn smallest_valid_instance_is_a_clique() {
        let g = barabasi_albert(3, 2, 0);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_m_panics() {
        barabasi_albert(10, 0, 0);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_nodes_panics() {
        barabasi_albert(3, 3, 0);
    }
}
