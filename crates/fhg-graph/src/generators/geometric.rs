//! Random geometric (unit-disk) graphs.
//!
//! The paper's introduction motivates the Holiday Gathering Problem with
//! cellular radios: two radios conflict when their transmission disks
//! overlap.  A random geometric graph places `n` radios uniformly in the unit
//! square and connects pairs at Euclidean distance at most `r` — exactly the
//! conflict structure the `fhg-radio` crate schedules.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{Graph, NodeId};

/// A point in the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A unit-disk graph together with the node positions that induced it.
///
/// The positions are retained because the radio application (`fhg-radio`)
/// needs them to compute interference statistics and to draw schedules.
#[derive(Debug, Clone)]
pub struct GeometricGraph {
    graph: Graph,
    positions: Vec<Point>,
    radius: f64,
}

impl GeometricGraph {
    /// The conflict graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes self, returning only the conflict graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Position of node `u`.
    pub fn position(&self, u: NodeId) -> Point {
        self.positions[u]
    }

    /// All positions, indexed by node id.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The connection radius used to build the graph.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

/// Generates a random geometric graph: `n` points uniform in the unit square,
/// edges between pairs at distance `<= radius`.
///
/// Uses a uniform grid of cell size `radius` so construction is close to
/// linear for sparse graphs instead of the naive `O(n^2)` pair scan.
///
/// # Panics
/// Panics if `radius` is negative or NaN.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> GeometricGraph {
    assert!(radius >= 0.0 && radius.is_finite(), "radius must be non-negative, got {radius}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let positions: Vec<Point> =
        (0..n).map(|_| Point { x: rng.gen::<f64>(), y: rng.gen::<f64>() }).collect();
    let mut graph = Graph::new(n);
    if n >= 2 && radius > 0.0 {
        // Bucket points into a grid of cell width `radius`; only neighbouring
        // cells can contain points within range.
        let cells_per_side = ((1.0 / radius).floor() as usize).clamp(1, n.max(1));
        let cell_of = |p: &Point| -> (usize, usize) {
            let cx = ((p.x * cells_per_side as f64) as usize).min(cells_per_side - 1);
            let cy = ((p.y * cells_per_side as f64) as usize).min(cells_per_side - 1);
            (cx, cy)
        };
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); cells_per_side * cells_per_side];
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            buckets[cy * cells_per_side + cx].push(i);
        }
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0
                        || ny < 0
                        || nx >= cells_per_side as i64
                        || ny >= cells_per_side as i64
                    {
                        continue;
                    }
                    for &j in &buckets[ny as usize * cells_per_side + nx as usize] {
                        if j > i && p.distance(&positions[j]) <= radius {
                            graph.add_edge(i, j).expect("grid enumeration visits each pair once");
                        }
                    }
                }
            }
        }
    }
    GeometricGraph { graph, positions, radius }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference construction.
    fn naive(positions: &[Point], radius: f64) -> Graph {
        let mut g = Graph::new(positions.len());
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if positions[i].distance(&positions[j]) <= radius {
                    g.add_edge(i, j).unwrap();
                }
            }
        }
        g
    }

    #[test]
    fn matches_naive_construction() {
        for seed in 0..5u64 {
            for &radius in &[0.05, 0.15, 0.4, 1.5] {
                let gg = random_geometric(150, radius, seed);
                let reference = naive(gg.positions(), radius);
                assert_eq!(
                    gg.graph(),
                    &reference,
                    "grid construction differs from naive at r={radius} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn zero_radius_has_no_edges() {
        let gg = random_geometric(100, 0.0, 3);
        assert_eq!(gg.graph().edge_count(), 0);
    }

    #[test]
    fn huge_radius_is_complete() {
        let gg = random_geometric(40, 2.0, 3);
        assert_eq!(gg.graph().edge_count(), 40 * 39 / 2);
    }

    #[test]
    fn positions_are_in_unit_square_and_retained() {
        let gg = random_geometric(64, 0.1, 11);
        assert_eq!(gg.positions().len(), 64);
        assert!((gg.radius() - 0.1).abs() < 1e-15);
        for u in 0..64 {
            let p = gg.position(u);
            assert!((0.0..=1.0).contains(&p.x));
            assert!((0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_geometric(80, 0.12, 5);
        let b = random_geometric(80, 0.12, 5);
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let p = Point { x: 0.25, y: 0.75 };
        let q = Point { x: 0.5, y: 0.25 };
        assert!((p.distance(&q) - q.distance(&p)).abs() < 1e-15);
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_panics() {
        random_geometric(10, -0.1, 0);
    }

    #[test]
    fn empty_and_single_node_graphs() {
        assert_eq!(random_geometric(0, 0.3, 0).graph().node_count(), 0);
        let g = random_geometric(1, 0.3, 0);
        assert_eq!(g.graph().node_count(), 1);
        assert_eq!(g.graph().edge_count(), 0);
    }
}
