//! Deterministic structured graph families.
//!
//! These families are the worst cases and sanity checks referenced throughout
//! the paper: the clique (where `d + 1` is unbeatable), the cycle (odd cycles
//! need 3 colours), complete bipartite "two villages" graphs (period 2 for
//! everyone), grids, stars, caterpillars, trees and circulants.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::Graph;

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("complete graph edges are simple");
        }
    }
    g
}

/// Simple path `P_n` on `n` nodes (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n {
        g.add_edge(u - 1, u).expect("path edges are simple");
    }
    g
}

/// Simple cycle `C_n`.  For `n < 3` this degenerates to a path.
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(n - 1, 0).expect("closing edge is new");
    }
    g
}

/// Star `K_{1,n-1}`: node 0 is the centre.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v).expect("star edges are simple");
    }
    g
}

/// Complete bipartite graph `K_{a,b}`; the first `a` nodes form one side.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(u, a + v).expect("bipartite edges are simple");
        }
    }
    g
}

/// `rows x cols` 2D grid graph; node `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                g.add_edge(id, id + 1).expect("grid edges are simple");
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols).expect("grid edges are simple");
            }
        }
    }
    g
}

/// Uniform random labelled tree on `n` nodes via a random Prüfer sequence.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    if n == 2 {
        g.add_edge(0, 1).expect("single edge");
        return g;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    // Standard Prüfer decoding with a pointer + leaf variable, O(n) time.
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &x in &prufer {
        g.add_edge(leaf, x).expect("Prüfer decoding yields a simple tree");
        degree[x] -= 1;
        if degree[x] == 1 && x < ptr {
            leaf = x;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    g.add_edge(leaf, n - 1).expect("final Prüfer edge");
    g
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant leaves.
///
/// Caterpillars exercise the degree-bound schedulers with a mix of degree-2
/// spine nodes and degree-1 leaves hanging off higher-degree hubs.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut g = Graph::new(n);
    for u in 1..spine {
        g.add_edge(u - 1, u).expect("spine edges are simple");
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            g.add_edge(s, leaf).expect("leg edges are simple");
        }
    }
    g
}

/// Circulant graph `C_n(1..=k)`: node `i` is adjacent to `i ± 1, …, i ± k`
/// (mod `n`), giving a `2k`-regular graph when `2k < n`.
///
/// Regular graphs make every node's local bound identical, isolating the
/// scheduler's behaviour from degree variance.
///
/// # Panics
/// Panics if `2 * k >= n` and `n > 0` (the construction would not be simple).
pub fn regular_circulant(n: usize, k: usize) -> Graph {
    if n == 0 {
        return Graph::new(0);
    }
    assert!(2 * k < n, "circulant requires 2k < n (got n={n}, k={k})");
    let mut g = Graph::new(n);
    for u in 0..n {
        for d in 1..=k {
            let v = (u + d) % n;
            g.add_edge_if_absent(u, v).expect("nodes are in range");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.min_degree(), 5);
        assert_eq!(complete(0).node_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn path_and_cycle_counts() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(0).edge_count(), 0);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(cycle(2).edge_count(), 1, "C_2 degenerates to an edge");
        assert_eq!(cycle(3).max_degree(), 2);
    }

    #[test]
    fn cycle_parity_and_bipartiteness() {
        assert!(properties::is_bipartite(&cycle(8)));
        assert!(!properties::is_bipartite(&cycle(7)));
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        for v in 1..10 {
            assert_eq!(g.degree(v), 1);
        }
        assert_eq!(star(1).edge_count(), 0);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(properties::is_bipartite(&g));
        for u in 0..3 {
            assert_eq!(g.degree(u), 4);
        }
        for v in 3..7 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn grid_counts_and_degrees() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.degree(0), 2); // corner
        assert!(properties::is_bipartite(&g));
        assert_eq!(grid(1, 1).edge_count(), 0);
        assert_eq!(grid(0, 5).node_count(), 0);
    }

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..10u64 {
            for &n in &[2usize, 3, 5, 17, 64, 301] {
                let g = random_tree(n, seed);
                assert_eq!(g.edge_count(), n - 1, "tree edge count, n={n}");
                let comps = properties::connected_components(&g);
                assert_eq!(comps.component_count(), 1, "tree is connected, n={n}");
            }
        }
        assert_eq!(random_tree(1, 0).edge_count(), 0);
        assert_eq!(random_tree(0, 0).node_count(), 0);
    }

    #[test]
    fn random_tree_varies_with_seed() {
        assert_ne!(random_tree(50, 1), random_tree(50, 2));
        assert_eq!(random_tree(50, 1), random_tree(50, 1));
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(4, 3);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 3 + 12);
        // Interior spine node: 2 spine neighbours + 3 legs.
        assert_eq!(g.degree(1), 5);
        // Leaves have degree 1.
        assert_eq!(g.degree(15), 1);
        assert_eq!(caterpillar(0, 3).node_count(), 0);
        assert_eq!(caterpillar(3, 0).edge_count(), 2);
    }

    #[test]
    fn circulant_is_regular() {
        let g = regular_circulant(11, 3);
        assert_eq!(g.edge_count(), 11 * 3);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 6);
        }
        assert_eq!(regular_circulant(0, 2).node_count(), 0);
        let g = regular_circulant(5, 2);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    #[should_panic(expected = "2k < n")]
    fn circulant_rejects_wraparound() {
        regular_circulant(6, 3);
    }
}
