//! Synthetic conflict-graph generators.
//!
//! The experiments in `fhg-bench` sweep the schedulers over several graph
//! families that stress different aspects of the paper's bounds:
//!
//! * **Erdős–Rényi** `G(n, p)` and `G(n, m)` — homogeneous degrees, the
//!   "generic" conflict graph ([`erdos_renyi`], [`gnm`]).
//! * **Unit-disk / random geometric** — the cellular-radio interference model
//!   the paper's introduction motivates ([`random_geometric`]).
//! * **Barabási–Albert preferential attachment** — heavy-tailed degrees, the
//!   regime where local (degree/colour) bounds beat the global `Δ+1` bound by
//!   the widest margin ([`barabasi_albert`]).
//! * **Two-village bipartite marriages** — the paper's motivating example in
//!   which a 2-colouring gives every parent a period of 2
//!   ([`bipartite_villages`], [`complete_bipartite`]).
//! * **Structured families** — cliques, cycles, paths, stars, grids, trees,
//!   circulants: worst cases and sanity checks ([`structured`]).
//!
//! All generators are deterministic given a seed, so every experiment row in
//! `EXPERIMENTS.md` is exactly reproducible.

mod geometric;
mod preferential;
mod random;
pub mod structured;

pub use geometric::{random_geometric, GeometricGraph};
pub use preferential::barabasi_albert;
pub use random::{bipartite_villages, erdos_renyi, gnm};
pub use structured::{
    caterpillar, complete, complete_bipartite, cycle, grid, path, random_tree, regular_circulant,
    star,
};

use crate::Graph;

/// The graph families used by the experiment sweeps, as an enum so that the
/// bench harness can iterate over them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Erdős–Rényi `G(n, p)` with expected average degree given by the parameter.
    ErdosRenyi,
    /// Random geometric (unit-disk) graph in the unit square.
    UnitDisk,
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert,
    /// Two-village random bipartite marriages.
    BipartiteVillages,
    /// Complete graph (clique).
    Complete,
    /// Simple cycle.
    Cycle,
    /// Two-dimensional grid.
    Grid,
    /// Uniform random labelled tree.
    RandomTree,
}

impl Family {
    /// All families, in the order used by the experiment tables.
    pub const ALL: [Family; 8] = [
        Family::ErdosRenyi,
        Family::UnitDisk,
        Family::BarabasiAlbert,
        Family::BipartiteVillages,
        Family::Complete,
        Family::Cycle,
        Family::Grid,
        Family::RandomTree,
    ];

    /// Short machine-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Family::ErdosRenyi => "erdos-renyi",
            Family::UnitDisk => "unit-disk",
            Family::BarabasiAlbert => "barabasi-albert",
            Family::BipartiteVillages => "bipartite-villages",
            Family::Complete => "complete",
            Family::Cycle => "cycle",
            Family::Grid => "grid",
            Family::RandomTree => "random-tree",
        }
    }

    /// Generates an instance of the family with roughly `n` nodes and an
    /// average degree close to `target_avg_degree` where the family permits.
    ///
    /// Families whose degree is structurally fixed (cycle, tree, complete,
    /// grid) ignore `target_avg_degree`.
    pub fn generate(&self, n: usize, target_avg_degree: f64, seed: u64) -> Graph {
        match self {
            Family::ErdosRenyi => {
                let p = if n <= 1 { 0.0 } else { (target_avg_degree / (n as f64 - 1.0)).min(1.0) };
                erdos_renyi(n, p, seed)
            }
            Family::UnitDisk => {
                // Expected degree of a node away from the border is
                // (n-1) * pi * r^2, so pick r to hit the target.
                let r = if n <= 1 {
                    0.0
                } else {
                    (target_avg_degree / ((n as f64 - 1.0) * std::f64::consts::PI)).sqrt()
                };
                random_geometric(n, r, seed).into_graph()
            }
            Family::BarabasiAlbert => {
                if n < 2 {
                    return Graph::new(n);
                }
                let m = ((target_avg_degree / 2.0).round() as usize).clamp(1, n - 1);
                barabasi_albert(n, m, seed)
            }
            Family::BipartiteVillages => {
                let half = n / 2;
                let p = if half == 0 { 0.0 } else { (target_avg_degree / half as f64).min(1.0) };
                bipartite_villages(half, n - half, p, seed)
            }
            Family::Complete => complete(n),
            Family::Cycle => cycle(n),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                grid(side, side)
            }
            Family::RandomTree => random_tree(n, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_are_unique() {
        let names: std::collections::HashSet<_> = Family::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn family_generate_produces_simple_graphs() {
        for family in Family::ALL {
            let g = family.generate(64, 6.0, 7);
            assert!(g.node_count() >= 1, "{}", family.name());
            for u in g.nodes() {
                assert!(!g.has_edge(u, u));
            }
        }
    }

    #[test]
    fn family_generate_respects_target_degree_roughly() {
        let g = Family::ErdosRenyi.generate(2000, 10.0, 3);
        let avg = g.average_degree();
        assert!((avg - 10.0).abs() < 2.0, "ER average degree {avg} too far from 10");

        let g = Family::BarabasiAlbert.generate(2000, 10.0, 3);
        let avg = g.average_degree();
        assert!((avg - 10.0).abs() < 2.0, "BA average degree {avg} too far from 10");
    }

    #[test]
    fn family_generate_small_n_edge_cases() {
        for family in Family::ALL {
            let g = family.generate(1, 4.0, 1);
            assert!(g.node_count() <= 2, "{} blew up on n=1", family.name());
            assert_eq!(g.edge_count(), 0);
            let g = family.generate(2, 4.0, 1);
            assert!(g.node_count() >= 1);
        }
    }

    #[test]
    fn family_names_are_unique_and_stable() {
        let names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "family names must be distinct: {names:?}");
    }
}
