//! Random graph models: Erdős–Rényi and the "two villages" bipartite model.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::Graph;

/// Generates an Erdős–Rényi `G(n, p)` graph: every unordered pair is an edge
/// independently with probability `p`.
///
/// Uses the geometric-skipping technique so the running time is
/// `O(n + m)` rather than `O(n^2)`, which matters for the large sparse
/// instances used in experiment E1/E5.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]` or is NaN.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0, 1], got {p}");
    let mut g = Graph::new(n);
    if n < 2 || p == 0.0 {
        return g;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v).expect("complete graph edges are simple");
            }
        }
        return g;
    }
    // Iterate over the pairs (u, v), u < v, in lexicographic order, skipping
    // ahead by geometrically distributed gaps.
    let log_q = (1.0 - p).ln();
    let mut u: usize = 0;
    let mut v: i64 = 0; // candidate index within row u, offset from u+1
    while u < n - 1 {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as i64;
        v += skip + 1;
        // Move to the next rows while v overflows the current row.
        loop {
            let row_len = (n - u - 1) as i64;
            if v < row_len {
                break;
            }
            v -= row_len;
            u += 1;
            if u >= n - 1 {
                return g;
            }
        }
        let w = u + 1 + v as usize;
        g.add_edge(u, w).expect("pair enumeration never repeats an edge");
    }
    g
}

/// Generates a uniform `G(n, m)` graph with exactly `m` distinct edges.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n(n-1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_edges, "requested {m} edges but only {max_edges} are possible");
    let mut g = Graph::new(n);
    if m == 0 {
        return g;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Dense request: sample by enumerating all pairs and shuffling a prefix.
    if m * 3 >= max_edges {
        let mut pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))).collect();
        // Partial Fisher-Yates: we only need the first m entries.
        for i in 0..m {
            let j = rng.gen_range(i..pairs.len());
            pairs.swap(i, j);
            let (u, v) = pairs[i];
            g.add_edge(u, v).expect("distinct pairs");
        }
        return g;
    }
    // Sparse request: rejection sampling.
    while g.edge_count() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            let _ = g.add_edge_if_absent(u, v);
        }
    }
    g
}

/// The paper's motivating "two villages" example: parents split into groups
/// `A` (size `a`) and `B` (size `b`); only inter-group marriages occur, each
/// with probability `p`.  The resulting conflict graph is bipartite, so a
/// 2-colouring schedules every parent with period 2 regardless of degree.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn bipartite_villages(a: usize, b: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0, 1], got {p}");
    let mut g = Graph::new(a + b);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for u in 0..a {
        for v in 0..b {
            if rng.gen_bool(p) {
                g.add_edge(u, a + v).expect("bipartite pairs are simple");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, 1).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).edge_count(), 45);
        assert_eq!(erdos_renyi(0, 0.5, 1).node_count(), 0);
        assert_eq!(erdos_renyi(1, 0.5, 1).edge_count(), 0);
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(50, 0.2, 9);
        let b = erdos_renyi(50, 0.2, 9);
        let c = erdos_renyi(50, 0.2, 10);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should almost surely differ");
    }

    #[test]
    fn erdos_renyi_edge_density_close_to_p() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, 123);
        let possible = (n * (n - 1) / 2) as f64;
        let density = g.edge_count() as f64 / possible;
        assert!((density - p).abs() < 0.01, "density {density} too far from {p}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn erdos_renyi_rejects_bad_p() {
        erdos_renyi(10, 1.5, 0);
    }

    #[test]
    fn gnm_exact_edge_count_sparse_and_dense() {
        let g = gnm(30, 20, 5);
        assert_eq!(g.edge_count(), 20);
        let g = gnm(30, 400, 5);
        assert_eq!(g.edge_count(), 400);
        let g = gnm(30, 435, 5);
        assert_eq!(g.edge_count(), 435); // complete graph
        assert_eq!(gnm(10, 0, 5).edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn gnm_rejects_too_many_edges() {
        gnm(5, 11, 0);
    }

    #[test]
    fn bipartite_villages_is_bipartite() {
        let g = bipartite_villages(20, 30, 0.3, 77);
        assert_eq!(g.node_count(), 50);
        assert!(properties::is_bipartite(&g));
        // No intra-village edges.
        for u in 0..20 {
            for v in 0..20 {
                assert!(!g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn bipartite_villages_full_probability_is_complete_bipartite() {
        let g = bipartite_villages(4, 6, 1.0, 0);
        assert_eq!(g.edge_count(), 24);
    }
}
