//! Compressed-sparse-row (CSR) immutable graph.
//!
//! Schedulers and the distributed simulator scan neighbourhoods billions of
//! times across an experiment sweep; the CSR layout keeps each node's
//! neighbour list contiguous so those scans stay in cache.  A [`CsrGraph`]
//! is built once from a [`Graph`] (or directly from an edge list) and never
//! mutated.

use crate::error::GraphError;
use crate::graph::{Edge, Graph};
use crate::NodeId;

/// An immutable undirected simple graph in compressed-sparse-row form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u+1]` indexes `targets` with the neighbours of `u`.
    offsets: Vec<usize>,
    /// Concatenated, per-node-sorted neighbour lists.
    targets: Vec<NodeId>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl CsrGraph {
    /// Builds a CSR graph from a mutable graph.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0);
        for u in 0..n {
            targets.extend_from_slice(g.neighbors(u));
            offsets.push(targets.len());
        }
        CsrGraph { offsets, targets, edge_count: g.edge_count() }
    }

    /// Builds a CSR graph over `n` nodes directly from an edge list.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        Ok(Self::from_graph(&Graph::from_edges(n, edges)?))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count()
    }

    /// Sorted neighbours of `u`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Whether edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Vector of degrees indexed by node id.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.node_count()).map(|u| self.degree(u)).collect()
    }

    /// Iterator over edges with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u).iter().filter(move |&&v| u < v).map(move |&v| Edge { u, v })
        })
    }

    /// Whether `set` (as a bit set over node ids) is an independent set.
    ///
    /// Walks the set's backing words through the set-bit-extraction kernel
    /// ([`crate::kernels::all_set_bits`], early exit on the first conflict)
    /// and probes each member's CSR neighbourhood against the raw words with
    /// branchless OR-accumulation (the conditional per neighbour is a data
    /// dependency, not a branch — measurably faster than short-circuit
    /// probes on scattered members).  Members `>= node_count()` make the set
    /// invalid, mirroring [`crate::properties::is_independent_set`].  This
    /// is the big-graph complement to
    /// [`crate::properties::AdjacencyBitmap::is_independent`], whose dense
    /// rows are fully word-wise but cost `n²/8` bytes.
    pub fn is_independent(&self, set: &crate::bitset::FixedBitSet) -> bool {
        let n = self.node_count();
        if set.capacity() < n {
            // Undersized sets cannot be probed word-raw (a neighbour's word
            // may not exist); use the checked probe instead.
            return set
                .iter()
                .all(|u| u < n && self.neighbors(u).iter().all(|&v| !set.contains(v)));
        }
        let words = set.as_words();
        crate::kernels::all_set_bits(words, |u| {
            if u >= n {
                return false;
            }
            let mut hit = 0u64;
            for &v in self.neighbors(u) {
                hit |= words[v >> 6] & (1u64 << (v & 63));
            }
            hit == 0
        })
    }

    /// Batched independence over a
    /// [`MembershipTable`](crate::properties::MembershipTable): bit `i` of
    /// the result is set iff class `i` is *not* independent.  Walks the
    /// batch union once and gathers each member's neighbour lanes through
    /// [`crate::kernels::intersects_many_indexed`], so every neighbour list
    /// is loaded once for the whole batch instead of once per class.
    pub fn batch_violations(&self, table: &crate::properties::MembershipTable) -> u64 {
        let mut violations = table.invalid();
        let lanes = table.lanes();
        crate::kernels::for_each_set_bit(table.union(), |u| {
            let hits = crate::kernels::intersects_many_indexed(self.neighbors(u), lanes);
            violations |= hits & table.lane(u);
        });
        violations
    }

    /// Converts back into a mutable [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.node_count());
        for e in self.edges() {
            g.add_edge(e.u, e.v).expect("CSR edges are simple");
        }
        g
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        CsrGraph::from_graph(g)
    }
}

impl From<Graph> for CsrGraph {
    fn from(g: Graph) -> Self {
        CsrGraph::from_graph(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Graph {
        Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 4)]).unwrap()
    }

    #[test]
    fn csr_mirrors_graph() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.node_count(), 5);
        assert_eq!(c.edge_count(), 4);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(3), &[4]);
        assert_eq!(c.degree(1), 2);
        assert_eq!(c.max_degree(), 2);
        assert!(c.has_edge(2, 1));
        assert!(!c.has_edge(2, 3));
        assert!(!c.has_edge(2, 99));
        assert_eq!(c.degrees(), g.degrees());
    }

    #[test]
    fn csr_from_edges_and_back() {
        let c = CsrGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let g = c.to_graph();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn csr_rejects_invalid_edges() {
        assert!(CsrGraph::from_edges(2, [(0, 0)]).is_err());
        assert!(CsrGraph::from_edges(2, [(0, 5)]).is_err());
    }

    #[test]
    fn empty_csr() {
        let c = CsrGraph::from_graph(&Graph::new(0));
        assert_eq!(c.node_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(c.max_degree(), 0);
        assert_eq!(c.edges().count(), 0);
    }

    #[test]
    fn conversion_traits() {
        let g = sample();
        let c1: CsrGraph = (&g).into();
        let c2: CsrGraph = g.clone().into();
        assert_eq!(c1, c2);
    }

    #[test]
    fn edge_iterator_matches_graph() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        let ge: Vec<Edge> = g.edges().collect();
        let ce: Vec<Edge> = c.edges().collect();
        assert_eq!(ge, ce);
    }

    #[test]
    fn is_independent_handles_range_and_capacity_edge_cases() {
        use crate::bitset::FixedBitSet;
        let g = Graph::from_edges(70, [(0, 1), (0, 69), (2, 3)]).unwrap();
        let c = CsrGraph::from_graph(&g);
        let mut ok = FixedBitSet::new(70);
        ok.insert(1);
        ok.insert(69);
        ok.insert(2);
        assert!(c.is_independent(&ok));
        ok.insert(0); // adjacent to both 1 and 69, in a different word than 69
        assert!(!c.is_independent(&ok));

        // Oversized capacity with an out-of-range member is invalid.
        let mut oversized = FixedBitSet::new(100);
        oversized.insert(99);
        assert!(!c.is_independent(&oversized));

        // Undersized capacity takes the checked path.
        let mut small = FixedBitSet::new(1);
        small.insert(0);
        assert!(c.is_independent(&small), "node 0's neighbours lie beyond the set capacity");
        let empty = FixedBitSet::new(0);
        assert!(c.is_independent(&empty));
    }

    proptest! {
        #[test]
        fn roundtrip_graph_csr_graph(pairs in proptest::collection::vec((0usize..25, 0usize..25), 0..100)) {
            let mut g = Graph::new(25);
            for (u, v) in pairs {
                if u != v {
                    let _ = g.add_edge_if_absent(u, v);
                }
            }
            let c = CsrGraph::from_graph(&g);
            prop_assert_eq!(c.to_graph(), g.clone());
            prop_assert_eq!(c.edge_count(), g.edge_count());
            for u in g.nodes() {
                prop_assert_eq!(c.neighbors(u), g.neighbors(u));
            }
        }
    }
}
