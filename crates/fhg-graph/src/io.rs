//! Plain-text serialisation of conflict graphs.
//!
//! Two interchange formats are supported so conflict graphs can be moved in
//! and out of the library (e.g. to schedule a *real* extended family, or to
//! feed the same instance to an external solver):
//!
//! * **edge list** — one `u v` pair per line, with an initial `n m` header
//!   line; comments start with `#`.
//! * **DIMACS** — the classic `p edge n m` / `e u v` format used by graph
//!   colouring benchmarks (1-based vertex ids on disk, converted to this
//!   crate's 0-based ids in memory).

use std::fmt::Write as _;

use crate::error::GraphError;
use crate::{Graph, NodeId};

/// Serialises a graph as an edge list (`n m` header, one `u v` line per edge).
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", graph.node_count(), graph.edge_count());
    for e in graph.edges() {
        let _ = writeln!(out, "{} {}", e.u, e.v);
    }
    out
}

/// Parses a graph from the edge-list format produced by [`to_edge_list`].
///
/// Blank lines and lines starting with `#` are ignored.  Edges must reference
/// nodes below the declared count; duplicate edges and self-loops are
/// rejected (conflict graphs are simple).
pub fn from_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines
        .next()
        .ok_or_else(|| GraphError::InvalidParameter("missing `n m` header line".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parse_field(parts.next(), "node count")?;
    let declared_edges: usize = parse_field(parts.next(), "edge count")?;
    let mut graph = Graph::new(n);
    for line in lines {
        let mut fields = line.split_whitespace();
        let u: NodeId = parse_field(fields.next(), "edge endpoint")?;
        let v: NodeId = parse_field(fields.next(), "edge endpoint")?;
        graph.add_edge(u, v)?;
    }
    if graph.edge_count() != declared_edges {
        return Err(GraphError::InvalidParameter(format!(
            "header declares {declared_edges} edges but {} were listed",
            graph.edge_count()
        )));
    }
    Ok(graph)
}

/// Serialises a graph in DIMACS `p edge` format (1-based vertex ids).
pub fn to_dimacs(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "c family holiday gathering conflict graph");
    let _ = writeln!(out, "p edge {} {}", graph.node_count(), graph.edge_count());
    for e in graph.edges() {
        let _ = writeln!(out, "e {} {}", e.u + 1, e.v + 1);
    }
    out
}

/// Parses a graph from DIMACS `p edge` format (1-based vertex ids on disk).
///
/// `c` lines are comments; duplicate `e` lines are tolerated (DIMACS files in
/// the wild often list both orientations) but self-loops are rejected.
pub fn from_dimacs(text: &str) -> Result<Graph, GraphError> {
    let mut graph: Option<Graph> = None;
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let mut fields = line.split_whitespace();
        match fields.next() {
            Some("c") => {}
            Some("p") => {
                let kind = fields.next().unwrap_or_default();
                if kind != "edge" && kind != "col" {
                    return Err(GraphError::InvalidParameter(format!(
                        "unsupported DIMACS problem kind {kind:?}"
                    )));
                }
                let n: usize = parse_field(fields.next(), "node count")?;
                graph = Some(Graph::new(n));
            }
            Some("e") => {
                let g = graph.as_mut().ok_or_else(|| {
                    GraphError::InvalidParameter("`e` line before the `p` line".into())
                })?;
                let u: usize = parse_field(fields.next(), "edge endpoint")?;
                let v: usize = parse_field(fields.next(), "edge endpoint")?;
                if u == 0 || v == 0 {
                    return Err(GraphError::InvalidParameter(
                        "DIMACS vertex ids are 1-based; found 0".into(),
                    ));
                }
                let _ = g.add_edge_if_absent(u - 1, v - 1)?;
            }
            Some(other) => {
                return Err(GraphError::InvalidParameter(format!(
                    "unrecognised DIMACS line prefix {other:?}"
                )));
            }
            None => {}
        }
    }
    graph.ok_or_else(|| GraphError::InvalidParameter("no `p edge` line found".into()))
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, GraphError> {
    field
        .ok_or_else(|| GraphError::InvalidParameter(format!("missing {what}")))?
        .parse()
        .map_err(|_| GraphError::InvalidParameter(format!("malformed {what}: {field:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, structured::cycle};
    use proptest::prelude::*;

    #[test]
    fn edge_list_roundtrip() {
        let g = erdos_renyi(40, 0.1, 5);
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn edge_list_with_comments_and_blank_lines() {
        let text = "# a tiny family\n\n3 2\n0 1\n# the in-laws\n1 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn edge_list_errors() {
        assert!(from_edge_list("").is_err(), "missing header");
        assert!(from_edge_list("abc def").is_err(), "malformed header");
        assert!(from_edge_list("2 1\n0 5").is_err(), "endpoint out of range");
        assert!(from_edge_list("2 1\n0 0").is_err(), "self loop");
        assert!(from_edge_list("3 2\n0 1").is_err(), "edge count mismatch");
        assert!(from_edge_list("3 1\n0 x").is_err(), "malformed endpoint");
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = cycle(9);
        let text = to_dimacs(&g);
        assert!(text.contains("p edge 9 9"));
        let back = from_dimacs(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn dimacs_tolerates_duplicate_edges_and_comments() {
        let text = "c comment\np edge 3 2\ne 1 2\ne 2 1\ne 2 3\n";
        let g = from_dimacs(text).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn dimacs_errors() {
        assert!(from_dimacs("").is_err(), "no p line");
        assert!(from_dimacs("e 1 2\np edge 3 1").is_err(), "e before p");
        assert!(from_dimacs("p matrix 3 1").is_err(), "unsupported kind");
        assert!(from_dimacs("p edge 3 1\ne 0 2").is_err(), "zero-based id rejected");
        assert!(from_dimacs("p edge 3 1\nx 1 2").is_err(), "unknown prefix");
    }

    proptest! {
        #[test]
        fn both_formats_roundtrip_random_graphs(seed in 0u64..40, p in 0.0f64..0.3) {
            let g = erdos_renyi(25, p, seed);
            prop_assert_eq!(from_edge_list(&to_edge_list(&g)).unwrap(), g.clone());
            prop_assert_eq!(from_dimacs(&to_dimacs(&g)).unwrap(), g);
        }
    }
}
