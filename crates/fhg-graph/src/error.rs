//! Error type shared by the graph substrate.

use std::fmt;

use crate::NodeId;

/// Errors raised by graph construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier was outside `0..node_count()`.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph at the time of the call.
        node_count: usize,
    },
    /// A self-loop `(u, u)` was requested; conflict graphs are simple.
    SelfLoop(NodeId),
    /// The edge already exists and duplicates are not allowed.
    DuplicateEdge(NodeId, NodeId),
    /// The edge was expected to exist but does not.
    MissingEdge(NodeId, NodeId),
    /// A generator was asked for an impossible parameter combination.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(f, "node {node} out of bounds for graph with {node_count} nodes")
            }
            GraphError::SelfLoop(u) => write!(f, "self-loop on node {u} is not allowed"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offenders() {
        let e = GraphError::NodeOutOfBounds { node: 7, node_count: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        assert!(GraphError::SelfLoop(4).to_string().contains('4'));
        assert!(GraphError::DuplicateEdge(1, 2).to_string().contains("(1, 2)"));
        assert!(GraphError::MissingEdge(1, 2).to_string().contains("(1, 2)"));
        assert!(GraphError::InvalidParameter("p must be in [0,1]".into())
            .to_string()
            .contains("[0,1]"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GraphError::SelfLoop(0));
    }
}
