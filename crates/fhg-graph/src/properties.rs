//! Structural graph properties.
//!
//! Measurements used throughout the workspace: degree statistics for the
//! experiment tables, bipartiteness (the paper's two-village example),
//! connected components, degeneracy orderings (the greedy colouring bound),
//! triangle counting (triangle-free graphs admit better colourings, §5
//! footnote) and independent-set verification (every gathering's happy set
//! must be independent).
//!
//! Verification comes in three adjacency layouts — the flat
//! [`AdjacencyBitmap`], the cache-blocked [`BlockedAdjacency`] hybrid and
//! raw [`CsrGraph`](crate::CsrGraph) probes — and two granularities: one
//! set at a time, or a **batch of up to 64 sets at once** through a
//! bit-sliced [`MembershipTable`], where every adjacency row is loaded once
//! and answers the AND-any question for the whole batch via
//! [`crate::kernels::intersects_many`].

use crate::bitset::FixedBitSet;
use crate::csr::CsrGraph;
use crate::{Graph, NodeId};

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree δ.
    pub min: usize,
    /// Maximum degree Δ.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Median degree.
    pub median: f64,
    /// Standard deviation of the degree sequence.
    pub std_dev: f64,
}

/// Computes [`DegreeStats`] for a graph.  Returns all-zero stats for the
/// empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let mut degrees = g.degrees();
    if degrees.is_empty() {
        return DegreeStats { min: 0, max: 0, mean: 0.0, median: 0.0, std_dev: 0.0 };
    }
    degrees.sort_unstable();
    let n = degrees.len();
    let min = degrees[0];
    let max = degrees[n - 1];
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let median = if n % 2 == 1 {
        degrees[n / 2] as f64
    } else {
        (degrees[n / 2 - 1] + degrees[n / 2]) as f64 / 2.0
    };
    let var = degrees.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    DegreeStats { min, max, mean, median, std_dev: var.sqrt() }
}

/// Connected components of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `component[u]` is the id of the component containing `u`.
    pub component: Vec<usize>,
    /// Number of nodes in each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Computes connected components with an iterative BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut component = vec![usize::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let id = sizes.len();
        let mut size = 0usize;
        component[start] = id;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if component[v] == usize::MAX {
                    component[v] = id;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { component, sizes }
}

/// Attempts to 2-colour the graph; returns the side assignment if bipartite.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let n = g.node_count();
    let mut side = vec![u8::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if side[start] != u8::MAX {
            continue;
        }
        side[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if side[v] == u8::MAX {
                    side[v] = 1 - side[u];
                    queue.push_back(v);
                } else if side[v] == side[u] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// Whether the graph is bipartite (contains no odd cycle).
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

/// Degeneracy ordering and the graph's degeneracy.
///
/// Returned as `(ordering, degeneracy)` where `ordering` lists nodes in the
/// order produced by repeatedly removing a minimum-degree node.  Colouring
/// greedily in the *reverse* of this ordering uses at most `degeneracy + 1`
/// colours.
pub fn degeneracy_ordering(g: &Graph) -> (Vec<NodeId>, usize) {
    let n = g.node_count();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut degree = g.degrees();
    let max_deg = *degree.iter().max().unwrap_or(&0);
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for (u, &d) in degree.iter().enumerate() {
        buckets[d].push(u);
    }
    let mut removed = FixedBitSet::new(n);
    let mut ordering = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the smallest non-empty bucket at or after `cursor`, falling
        // back to scanning from zero (degrees only decrease by one at a time,
        // so cursor-1 is a valid restart point).
        cursor = cursor.saturating_sub(1);
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Pop a node that is still current (lazy deletion).
        let u = loop {
            match buckets[cursor].pop() {
                Some(u) if !removed.contains(u) && degree[u] == cursor => break u,
                Some(_) => continue,
                None => {
                    cursor += 1;
                    while buckets[cursor].is_empty() {
                        cursor += 1;
                    }
                }
            }
        };
        removed.insert(u);
        degeneracy = degeneracy.max(cursor);
        ordering.push(u);
        for &v in g.neighbors(u) {
            if !removed.contains(v) {
                degree[v] -= 1;
                buckets[degree[v]].push(v);
            }
        }
    }
    (ordering, degeneracy)
}

/// Counts the triangles in the graph.
///
/// Uses the standard forward/degree-ordered algorithm which runs in
/// `O(m^{3/2})`.
pub fn triangle_count(g: &Graph) -> usize {
    let n = g.node_count();
    // Order nodes by (degree, id); orient each edge from lower to higher rank.
    let mut rank = vec![0usize; n];
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by_key(|&u| (g.degree(u), u));
    for (r, &u) in order.iter().enumerate() {
        rank[u] = r;
    }
    let mut forward: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for e in g.edges() {
        let (a, b) = if rank[e.u] < rank[e.v] { (e.u, e.v) } else { (e.v, e.u) };
        forward[a].push(b);
    }
    for list in &mut forward {
        list.sort_unstable();
    }
    let mut count = 0usize;
    for u in 0..n {
        for &v in &forward[u] {
            // Intersect forward[u] and forward[v].
            let (mut i, mut j) = (0, 0);
            let (fu, fv) = (&forward[u], &forward[v]);
            while i < fu.len() && j < fv.len() {
                match fu[i].cmp(&fv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Dense adjacency rows packed 64 nodes per word, for word-wise independence
/// checks.
///
/// Row `u` is the neighbourhood `N(u)` as a bitmask, so "does any member of
/// `S` conflict with `u`" is one AND-scan of `⌈n/64⌉` words instead of a
/// per-neighbour probe.  Memory is `n²/8` bytes — callers should gate
/// construction on graph size (the schedule analysis uses it up to a few
/// thousand nodes and falls back to CSR scans beyond that).
#[derive(Debug, Clone)]
pub struct AdjacencyBitmap {
    rows: Vec<FixedBitSet>,
}

impl AdjacencyBitmap {
    /// Builds the dense rows from a graph.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let rows = (0..n)
            .map(|u| {
                let mut row = FixedBitSet::new(n);
                for &v in g.neighbors(u) {
                    row.insert(v);
                }
                row
            })
            .collect();
        AdjacencyBitmap { rows }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// The neighbourhood of `u` as a bit row.
    pub fn row(&self, u: NodeId) -> &FixedBitSet {
        &self.rows[u]
    }

    /// Whether `set` is an independent set, verified by ANDing every member's
    /// adjacency row against the set — the member walk runs on the
    /// set-bit-extraction kernel and each row probe on the fused AND-any
    /// kernel ([`crate::kernels`]), both with early exit on the first
    /// conflict.  Members `>= node_count()` make the set invalid (mirroring
    /// [`is_independent_set`]).
    pub fn is_independent(&self, set: &FixedBitSet) -> bool {
        crate::kernels::all_set_bits(set.as_words(), |u| {
            u < self.rows.len() && !self.rows[u].intersects(set)
        })
    }

    /// Batched independence: which classes of `table` contain an edge?
    /// Walks the batch **union** once; each member's adjacency row is loaded
    /// once and broadcast against all classes through
    /// [`crate::kernels::intersects_many`].  Bit `i` of the result is set
    /// iff class `i` is *not* independent (it contains an edge, or a member
    /// out of range).
    pub fn batch_violations(&self, table: &MembershipTable) -> u64 {
        let mut violations = table.invalid();
        crate::kernels::for_each_set_bit(table.union(), |u| {
            let hits = crate::kernels::intersects_many(self.rows[u].as_words(), table.lanes());
            violations |= hits & table.lane(u);
        });
        violations
    }
}

/// The number of classes a single [`MembershipTable`] fill can hold (one
/// lane bit per class).
pub const BATCH_WIDTH: usize = 64;

/// Side length, in bits, of one [`BlockedAdjacency`] tile (256×256 bits =
/// 8 KiB per tile, four words per row segment).
const TILE_BITS: usize = 256;

/// Words per tile row segment.
const TILE_WORDS: usize = TILE_BITS / 64;

/// Words per tile.
const TILE_AREA_WORDS: usize = TILE_BITS * TILE_WORDS;

/// Bit-sliced membership table: the transposed view of up to
/// [`BATCH_WIDTH`] class bitmaps that batched verification runs on.
///
/// After [`MembershipTable::fill`], bit `i` of lane `v` says node `v`
/// belongs to class `i`, [`MembershipTable::union`] holds the OR of all
/// class bitmaps (the nodes the batch touches at all) and
/// [`MembershipTable::invalid`] flags classes containing an out-of-range
/// member.  A checker then walks the union once: each member's adjacency
/// row, tested against the lane table with
/// [`crate::kernels::intersects_many`], yields the violating classes of
/// every edge it covers — the row is loaded once for the whole batch.
///
/// The buffers grow once to the graph's size and are re-used across fills
/// (clearing walks the previous union instead of memsetting the table), so
/// steady-state fills allocate nothing.
#[derive(Debug, Default)]
pub struct MembershipTable {
    /// `lanes[v]` bit `i` ⇔ node `v` ∈ class `i`.  Padded to a whole
    /// number of 256-lane tile blocks so blocked row segments can always
    /// take a full-width slice.
    lanes: Vec<u64>,
    /// OR of all class bitmaps, masked to the node range.
    union: Vec<u64>,
    /// Classes with a member `>= n` (always a violation).
    invalid: u64,
    /// Lanes in use for the current fill (`n` padded to a tile block).
    lanes_used: usize,
    /// Union words in use for the current fill.
    union_used: usize,
}

impl MembershipTable {
    /// An empty table; buffers are sized lazily by [`MembershipTable::fill`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Transposes `classes` (at most [`BATCH_WIDTH`] of them) into the lane
    /// table for a graph of `n` nodes.  Members `>= n` do not enter the
    /// table; their class is flagged in [`MembershipTable::invalid`]
    /// instead.  Steady-state fills allocate nothing once the buffers have
    /// grown to `n`.
    ///
    /// # Panics
    /// Panics if more than [`BATCH_WIDTH`] classes are passed.
    pub fn fill<'a>(&mut self, n: usize, classes: impl IntoIterator<Item = &'a FixedBitSet>) {
        // Clear the previous fill by re-walking its union — proportional to
        // the previous batch's members, not the graph.
        crate::kernels::for_each_set_bit(&self.union[..self.union_used], |v| self.lanes[v] = 0);
        self.union[..self.union_used].iter_mut().for_each(|w| *w = 0);
        self.invalid = 0;

        let words = n.div_ceil(64);
        self.lanes_used = n.div_ceil(TILE_BITS) * TILE_BITS;
        self.union_used = words;
        if self.lanes.len() < self.lanes_used {
            self.lanes.resize(self.lanes_used, 0);
        }
        if self.union.len() < words {
            self.union.resize(words, 0);
        }

        let last_mask = if n.is_multiple_of(64) { u64::MAX } else { (1u64 << (n % 64)) - 1 };
        for (i, set) in classes.into_iter().enumerate() {
            assert!(i < BATCH_WIDTH, "membership table holds at most {BATCH_WIDTH} classes");
            let bit = 1u64 << i;
            let cw = set.as_words();
            let in_range = cw.len().min(words);
            // Members beyond the node range: whole words past the range,
            // plus the tail bits of the last in-range word.
            let mut oob = cw[in_range..].iter().fold(0u64, |acc, &w| acc | w);
            if words > 0 && cw.len() >= words {
                oob |= cw[words - 1] & !last_mask;
            }
            if oob != 0 {
                self.invalid |= bit;
            }
            for (wi, &raw) in cw.iter().enumerate().take(in_range) {
                let mut word = raw;
                if wi == words - 1 {
                    word &= last_mask;
                }
                self.union[wi] |= word;
                let base = wi * 64;
                while word != 0 {
                    self.lanes[base + word.trailing_zeros() as usize] |= bit;
                    word &= word - 1;
                }
            }
        }
    }

    /// The lane table: `lanes()[v]` has bit `i` set iff node `v` belongs to
    /// class `i`.  Sized to the fill's node count padded to a whole tile
    /// block, as [`crate::kernels::intersects_many`] requires.
    pub fn lanes(&self) -> &[u64] {
        &self.lanes[..self.lanes_used]
    }

    /// One lane: the classes node `v` belongs to.
    pub fn lane(&self, v: NodeId) -> u64 {
        self.lanes[v]
    }

    /// The OR of all class bitmaps, masked to the node range — the nodes
    /// batched verification must walk at all.
    pub fn union(&self) -> &[u64] {
        &self.union[..self.union_used]
    }

    /// Classes containing a member `>= n` (bit `i` ⇔ class `i` invalid).
    pub fn invalid(&self) -> u64 {
        self.invalid
    }
}

/// Cache-blocked, degree-sorted hybrid adjacency: the dense layout for the
/// 4k–64k node range, where a flat [`AdjacencyBitmap`] would cost `n²/8`
/// bytes regardless of the edge count.
///
/// Nodes whose degree reaches the cutoff get **tiled rows**: their
/// neighbourhoods live in 256×256-bit tiles (8 KiB each), materialised only
/// where those rows actually have edges, so memory is bounded by the edges
/// of the dense nodes rather than `n²`.  The sparse remainder — nodes a
/// row-scan would be slower for than walking their few neighbours — probes
/// an internally-owned [`CsrGraph`].  The default cutoff is the break-even
/// point `max(64, n/64)`: a full row scan touches `n/64` words, so a node
/// wants the tiled form once its degree passes that.
///
/// Both granularities are served: [`BlockedAdjacency::is_independent`]
/// checks one set, [`BlockedAdjacency::batch_violations`] a whole
/// [`MembershipTable`] with each row segment broadcast against all classes.
#[derive(Debug, Clone)]
pub struct BlockedAdjacency {
    n: usize,
    /// Tile-blocks per side (`⌈n/256⌉`).
    nb: usize,
    /// Nodes with materialised tile rows.
    dense: FixedBitSet,
    /// `grid[rb * nb + cb]` is the arena tile index for block `(rb, cb)`,
    /// or `u32::MAX` if no dense row has an edge there.
    grid: Vec<u32>,
    /// Tile storage, [`TILE_AREA_WORDS`] words per tile: row `r` of a tile
    /// is the 4-word segment at `tile * TILE_AREA_WORDS + r * TILE_WORDS`.
    arena: Vec<u64>,
    /// All edges, probed for the sparse remainder.
    csr: CsrGraph,
}

impl BlockedAdjacency {
    /// Builds the hybrid with the break-even cutoff `max(64, n/64)`.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        Self::with_cutoff(g, 64.max(n / 64))
    }

    /// Builds the hybrid with an explicit degree cutoff: nodes with
    /// `degree >= cutoff` get tiled rows (`0` tiles every non-isolated
    /// node, `usize::MAX` none — pure CSR probing).
    pub fn with_cutoff(g: &Graph, cutoff: usize) -> Self {
        let n = g.node_count();
        let nb = n.div_ceil(TILE_BITS);
        let mut dense = FixedBitSet::new(n);
        let mut grid = vec![u32::MAX; nb * nb];
        let mut arena = Vec::new();
        for u in 0..n {
            if g.degree(u) < cutoff {
                continue;
            }
            dense.insert(u);
            let row_base = (u / TILE_BITS) * nb;
            let seg = (u % TILE_BITS) * TILE_WORDS;
            for &v in g.neighbors(u) {
                let cell = row_base + v / TILE_BITS;
                let tile = if grid[cell] == u32::MAX {
                    let t = arena.len() / TILE_AREA_WORDS;
                    grid[cell] = t as u32;
                    arena.resize(arena.len() + TILE_AREA_WORDS, 0);
                    t
                } else {
                    grid[cell] as usize
                };
                arena[tile * TILE_AREA_WORDS + seg + (v % TILE_BITS) / 64] |= 1u64 << (v % 64);
            }
        }
        BlockedAdjacency { n, nb, dense, grid, arena, csr: CsrGraph::from_graph(g) }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of nodes with materialised tile rows.
    pub fn dense_node_count(&self) -> usize {
        self.dense.count()
    }

    /// Number of materialised tiles.
    pub fn tile_count(&self) -> usize {
        self.arena.len() / TILE_AREA_WORDS
    }

    /// Peak adjacency memory of this layout in bytes: tile arena + grid
    /// index + the CSR arrays for the sparse remainder.  The comparison
    /// point is the `n²/8` a flat bitmap would pin.
    pub fn memory_bytes(&self) -> usize {
        self.arena.len() * 8
            + self.grid.len() * 4
            + (self.csr.node_count() + 1) * 8
            + 2 * self.csr.edge_count() * 8
    }

    /// Whether the tiled row of dense node `u` intersects `set`.
    fn row_intersects(&self, u: NodeId, set: &FixedBitSet) -> bool {
        let words = set.as_words();
        let row_base = (u / TILE_BITS) * self.nb;
        let seg = (u % TILE_BITS) * TILE_WORDS;
        for (cb, &tile) in self.grid[row_base..row_base + self.nb].iter().enumerate() {
            if tile == u32::MAX {
                continue;
            }
            let start = tile as usize * TILE_AREA_WORDS + seg;
            let segment = &self.arena[start..start + TILE_WORDS];
            // `intersects` stops at the common prefix, which trims the last
            // block to the set's actual word count.
            if crate::kernels::intersects(segment, &words[(cb * TILE_WORDS).min(words.len())..]) {
                return true;
            }
        }
        false
    }

    /// Whether `set` is an independent set: dense members scan their tiled
    /// row segments, sparse members probe the CSR remainder, and members
    /// `>= node_count()` make the set invalid (mirroring
    /// [`is_independent_set`]).
    pub fn is_independent(&self, set: &FixedBitSet) -> bool {
        crate::kernels::all_set_bits(set.as_words(), |u| {
            if u >= self.n {
                return false;
            }
            if self.dense.contains(u) {
                !self.row_intersects(u, set)
            } else {
                !self.csr.neighbors(u).iter().any(|&v| set.contains(v))
            }
        })
    }

    /// Batched independence over a [`MembershipTable`]: bit `i` of the
    /// result is set iff class `i` is *not* independent.  Dense members
    /// broadcast each 4-word row segment against the matching 256-lane
    /// block of the table ([`crate::kernels::intersects_many`]); sparse
    /// members gather their neighbours' lanes.
    pub fn batch_violations(&self, table: &MembershipTable) -> u64 {
        let mut violations = table.invalid();
        let lanes = table.lanes();
        crate::kernels::for_each_set_bit(table.union(), |u| {
            let hits = if self.dense.contains(u) {
                let row_base = (u / TILE_BITS) * self.nb;
                let seg = (u % TILE_BITS) * TILE_WORDS;
                let mut acc = 0u64;
                for (cb, &tile) in self.grid[row_base..row_base + self.nb].iter().enumerate() {
                    if tile == u32::MAX {
                        continue;
                    }
                    let start = tile as usize * TILE_AREA_WORDS + seg;
                    acc |= crate::kernels::intersects_many(
                        &self.arena[start..start + TILE_WORDS],
                        &lanes[cb * TILE_BITS..(cb + 1) * TILE_BITS],
                    );
                }
                acc
            } else {
                crate::kernels::intersects_many_indexed(self.csr.neighbors(u), lanes)
            };
            violations |= hits & table.lane(u);
        });
        violations
    }
}

/// Whether `set` is an independent set of `g` (no two members adjacent).
pub fn is_independent_set(g: &Graph, set: &[NodeId]) -> bool {
    let mut members = FixedBitSet::new(g.node_count());
    for &u in set {
        if u >= g.node_count() {
            return false;
        }
        members.insert(u);
    }
    for &u in set {
        for &v in g.neighbors(u) {
            if members.contains(v) {
                return false;
            }
        }
    }
    true
}

/// Whether `set` is a *maximal* independent set (independent and no node can
/// be added).
pub fn is_maximal_independent_set(g: &Graph, set: &[NodeId]) -> bool {
    if !is_independent_set(g, set) {
        return false;
    }
    let mut members = FixedBitSet::new(g.node_count());
    for &u in set {
        members.insert(u);
    }
    for u in g.nodes() {
        if !members.contains(u) && g.neighbors(u).iter().all(|&v| !members.contains(v)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured::{complete, complete_bipartite, cycle, grid, path, star};
    use crate::generators::{erdos_renyi, random_tree};
    use proptest::prelude::*;

    #[test]
    fn degree_stats_of_star() {
        let s = degree_stats(&star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.median, 1.0);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn degree_stats_empty_graph() {
        let s = degree_stats(&Graph::new(0));
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn degree_stats_median_even_count() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = path(3);
        g.add_node();
        g.add_node();
        let extra = g.add_node();
        g.add_edge(4, extra).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.component_count(), 3);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.component[0], c.component[2]);
        assert_ne!(c.component[0], c.component[3]);
        assert_eq!(c.sizes.iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn components_empty_graph() {
        let c = connected_components(&Graph::new(0));
        assert_eq!(c.component_count(), 0);
        assert_eq!(c.largest(), 0);
    }

    #[test]
    fn bipartiteness_classics() {
        assert!(is_bipartite(&path(10)));
        assert!(is_bipartite(&cycle(10)));
        assert!(!is_bipartite(&cycle(9)));
        assert!(is_bipartite(&grid(4, 7)));
        assert!(is_bipartite(&complete_bipartite(3, 5)));
        assert!(!is_bipartite(&complete(3)));
        assert!(is_bipartite(&Graph::new(4)), "edgeless graph is bipartite");
    }

    #[test]
    fn bipartition_is_a_proper_2_colouring() {
        let g = grid(5, 6);
        let side = bipartition(&g).unwrap();
        for e in g.edges() {
            assert_ne!(side[e.u], side[e.v]);
        }
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        assert_eq!(degeneracy_ordering(&complete(7)).1, 6);
        assert_eq!(degeneracy_ordering(&cycle(10)).1, 2);
        assert_eq!(degeneracy_ordering(&path(10)).1, 1);
        assert_eq!(degeneracy_ordering(&random_tree(100, 3)).1, 1);
        assert_eq!(degeneracy_ordering(&grid(5, 5)).1, 2);
        assert_eq!(degeneracy_ordering(&Graph::new(0)).1, 0);
        assert_eq!(degeneracy_ordering(&Graph::new(5)).1, 0);
    }

    #[test]
    fn degeneracy_ordering_is_a_permutation() {
        let g = erdos_renyi(80, 0.1, 4);
        let (order, _) = degeneracy_ordering(&g);
        let mut seen = [false; 80];
        for &u in &order {
            assert!(!seen[u]);
            seen[u] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn triangle_counts_of_known_graphs() {
        assert_eq!(triangle_count(&complete(4)), 4);
        assert_eq!(triangle_count(&complete(6)), 20);
        assert_eq!(triangle_count(&cycle(3)), 1);
        assert_eq!(triangle_count(&cycle(4)), 0);
        assert_eq!(triangle_count(&star(10)), 0);
        assert_eq!(triangle_count(&grid(4, 4)), 0);
        assert_eq!(triangle_count(&Graph::new(0)), 0);
    }

    #[test]
    fn independent_set_checks() {
        let g = cycle(5);
        assert!(is_independent_set(&g, &[0, 2]));
        assert!(is_independent_set(&g, &[]));
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(!is_independent_set(&g, &[0, 99]), "out-of-range member rejected");
        assert!(is_maximal_independent_set(&g, &[0, 2]));
        assert!(!is_maximal_independent_set(&g, &[0]));
        assert!(!is_maximal_independent_set(&g, &[0, 1]));
    }

    #[test]
    fn adjacency_bitmap_mirrors_neighbourhoods() {
        let g = cycle(5);
        let adj = AdjacencyBitmap::from_graph(&g);
        assert_eq!(adj.node_count(), 5);
        assert_eq!(adj.row(0).iter().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(adj.row(3).iter().collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn blocked_adjacency_splits_by_degree() {
        // A star inside a larger sparse graph: the hub crosses any small
        // cutoff, the leaves do not.
        let mut g = star(40);
        for u in 1..39 {
            g.add_edge(u, u + 1).unwrap();
        }
        let blocked = BlockedAdjacency::with_cutoff(&g, 10);
        assert_eq!(blocked.node_count(), 40);
        assert_eq!(blocked.dense_node_count(), 1, "only the hub is dense");
        assert_eq!(blocked.tile_count(), 1, "one block covers 40 nodes");
        assert!(blocked.memory_bytes() > 0);

        let all_dense = BlockedAdjacency::with_cutoff(&g, 0);
        assert_eq!(all_dense.dense_node_count(), 40);
        let none_dense = BlockedAdjacency::with_cutoff(&g, usize::MAX);
        assert_eq!(none_dense.dense_node_count(), 0);
        assert_eq!(none_dense.tile_count(), 0, "pure CSR probing pins no tiles");

        let mut set = FixedBitSet::new(40);
        set.insert(0);
        set.insert(1);
        for adj in [&blocked, &all_dense, &none_dense] {
            assert!(!adj.is_independent(&set), "hub and a leaf are adjacent");
        }
        let mut odd = FixedBitSet::new(40);
        for u in (1..40).step_by(2) {
            odd.insert(u);
        }
        for adj in [&blocked, &all_dense, &none_dense] {
            assert!(adj.is_independent(&odd), "odd leaves avoid the hub and the leaf path");
        }
    }

    #[test]
    fn membership_table_flags_out_of_range_members() {
        // Classes live in a 70-node id space; the graph has 65 nodes, so
        // member 68 is out of range (and sits in the last, partial word).
        let g = cycle(65);
        let adj = AdjacencyBitmap::from_graph(&g);
        let mut ok = FixedBitSet::new(70);
        ok.insert(0);
        ok.insert(2);
        let mut oob = FixedBitSet::new(70);
        oob.insert(1);
        oob.insert(68);
        let mut table = MembershipTable::new();
        table.fill(65, [&ok, &oob]);
        assert_eq!(table.invalid(), 0b10);
        assert_eq!(adj.batch_violations(&table), 0b10, "oob class invalid, ok class clean");
        // Refill reuses the buffers and fully clears the previous batch.
        table.fill(65, [&ok]);
        assert_eq!(table.invalid(), 0);
        assert_eq!(adj.batch_violations(&table), 0);
        assert_eq!(table.lane(1), 0, "member of the dropped class cleared");
    }

    proptest! {
        /// The independence checkers — slice scan, dense word-wise bitmap,
        /// blocked hybrid at several cutoffs, CSR bit probes — agree on
        /// arbitrary subsets of random graphs.
        #[test]
        fn independence_checkers_agree(seed in 0u64..40, mask in 0u64..(1 << 20)) {
            let g = erdos_renyi(20, 0.2, seed);
            let adj = AdjacencyBitmap::from_graph(&g);
            let csr = crate::CsrGraph::from_graph(&g);
            let members: Vec<usize> = (0..20).filter(|u| mask & (1 << u) != 0).collect();
            let mut bits = FixedBitSet::new(20);
            for &u in &members {
                bits.insert(u);
            }
            let reference = is_independent_set(&g, &members);
            prop_assert_eq!(adj.is_independent(&bits), reference);
            prop_assert_eq!(csr.is_independent(&bits), reference);
            for cutoff in [0usize, 3, usize::MAX] {
                let blocked = BlockedAdjacency::with_cutoff(&g, cutoff);
                prop_assert_eq!(blocked.is_independent(&bits), reference, "cutoff {}", cutoff);
            }
        }

        /// Batched verification agrees bitwise with the per-set checkers on
        /// every layout: each class's violation bit matches its individual
        /// `is_independent` verdict.
        #[test]
        fn batch_violations_agree_with_per_set_checks(
            seed in 0u64..20,
            masks in prop::collection::vec(0u64..(1 << 30), 1..8),
        ) {
            // 30-bit masks over a 30-node graph that straddles no tile
            // boundary; a second run at 300 nodes crosses word boundaries.
            for n in [30usize, 300] {
                let g = erdos_renyi(n, 0.08, seed);
                let adj = AdjacencyBitmap::from_graph(&g);
                let csr = crate::CsrGraph::from_graph(&g);
                let classes: Vec<FixedBitSet> = masks
                    .iter()
                    .enumerate()
                    .map(|(i, &m)| {
                        let mut s = FixedBitSet::new(n);
                        for b in 0..30 {
                            if m & (1 << b) != 0 {
                                s.insert((b * (i + 7)) % n);
                            }
                        }
                        s
                    })
                    .collect();
                let mut table = MembershipTable::new();
                table.fill(n, classes.iter());
                let expected = classes.iter().enumerate().fold(0u64, |acc, (i, s)| {
                    if adj.is_independent(s) { acc } else { acc | (1 << i) }
                });
                prop_assert_eq!(adj.batch_violations(&table), expected);
                prop_assert_eq!(csr.batch_violations(&table), expected);
                for cutoff in [0usize, 2, usize::MAX] {
                    let blocked = BlockedAdjacency::with_cutoff(&g, cutoff);
                    prop_assert_eq!(
                        blocked.batch_violations(&table), expected, "cutoff {}", cutoff
                    );
                }
            }
        }

        #[test]
        fn degeneracy_is_at_most_max_degree(seed in 0u64..50) {
            let g = erdos_renyi(60, 0.08, seed);
            let (_, d) = degeneracy_ordering(&g);
            prop_assert!(d <= g.max_degree());
        }

        #[test]
        fn triangle_count_matches_brute_force(seed in 0u64..20) {
            let g = erdos_renyi(25, 0.25, seed);
            let mut brute = 0usize;
            for a in 0..25 {
                for b in (a + 1)..25 {
                    for c in (b + 1)..25 {
                        if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                            brute += 1;
                        }
                    }
                }
            }
            prop_assert_eq!(triangle_count(&g), brute);
        }

        #[test]
        fn component_sizes_partition_nodes(seed in 0u64..20) {
            let g = erdos_renyi(60, 0.02, seed);
            let c = connected_components(&g);
            prop_assert_eq!(c.sizes.iter().sum::<usize>(), 60);
            for e in g.edges() {
                prop_assert_eq!(c.component[e.u], c.component[e.v]);
            }
        }
    }
}
