//! Structural graph properties.
//!
//! Measurements used throughout the workspace: degree statistics for the
//! experiment tables, bipartiteness (the paper's two-village example),
//! connected components, degeneracy orderings (the greedy colouring bound),
//! triangle counting (triangle-free graphs admit better colourings, §5
//! footnote) and independent-set verification (every gathering's happy set
//! must be independent).

use crate::bitset::FixedBitSet;
use crate::{Graph, NodeId};

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree δ.
    pub min: usize,
    /// Maximum degree Δ.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Median degree.
    pub median: f64,
    /// Standard deviation of the degree sequence.
    pub std_dev: f64,
}

/// Computes [`DegreeStats`] for a graph.  Returns all-zero stats for the
/// empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let mut degrees = g.degrees();
    if degrees.is_empty() {
        return DegreeStats { min: 0, max: 0, mean: 0.0, median: 0.0, std_dev: 0.0 };
    }
    degrees.sort_unstable();
    let n = degrees.len();
    let min = degrees[0];
    let max = degrees[n - 1];
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let median = if n % 2 == 1 {
        degrees[n / 2] as f64
    } else {
        (degrees[n / 2 - 1] + degrees[n / 2]) as f64 / 2.0
    };
    let var = degrees.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    DegreeStats { min, max, mean, median, std_dev: var.sqrt() }
}

/// Connected components of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `component[u]` is the id of the component containing `u`.
    pub component: Vec<usize>,
    /// Number of nodes in each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Computes connected components with an iterative BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut component = vec![usize::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let id = sizes.len();
        let mut size = 0usize;
        component[start] = id;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if component[v] == usize::MAX {
                    component[v] = id;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { component, sizes }
}

/// Attempts to 2-colour the graph; returns the side assignment if bipartite.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let n = g.node_count();
    let mut side = vec![u8::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if side[start] != u8::MAX {
            continue;
        }
        side[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if side[v] == u8::MAX {
                    side[v] = 1 - side[u];
                    queue.push_back(v);
                } else if side[v] == side[u] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// Whether the graph is bipartite (contains no odd cycle).
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

/// Degeneracy ordering and the graph's degeneracy.
///
/// Returned as `(ordering, degeneracy)` where `ordering` lists nodes in the
/// order produced by repeatedly removing a minimum-degree node.  Colouring
/// greedily in the *reverse* of this ordering uses at most `degeneracy + 1`
/// colours.
pub fn degeneracy_ordering(g: &Graph) -> (Vec<NodeId>, usize) {
    let n = g.node_count();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut degree = g.degrees();
    let max_deg = *degree.iter().max().unwrap_or(&0);
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for (u, &d) in degree.iter().enumerate() {
        buckets[d].push(u);
    }
    let mut removed = FixedBitSet::new(n);
    let mut ordering = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the smallest non-empty bucket at or after `cursor`, falling
        // back to scanning from zero (degrees only decrease by one at a time,
        // so cursor-1 is a valid restart point).
        cursor = cursor.saturating_sub(1);
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Pop a node that is still current (lazy deletion).
        let u = loop {
            match buckets[cursor].pop() {
                Some(u) if !removed.contains(u) && degree[u] == cursor => break u,
                Some(_) => continue,
                None => {
                    cursor += 1;
                    while buckets[cursor].is_empty() {
                        cursor += 1;
                    }
                }
            }
        };
        removed.insert(u);
        degeneracy = degeneracy.max(cursor);
        ordering.push(u);
        for &v in g.neighbors(u) {
            if !removed.contains(v) {
                degree[v] -= 1;
                buckets[degree[v]].push(v);
            }
        }
    }
    (ordering, degeneracy)
}

/// Counts the triangles in the graph.
///
/// Uses the standard forward/degree-ordered algorithm which runs in
/// `O(m^{3/2})`.
pub fn triangle_count(g: &Graph) -> usize {
    let n = g.node_count();
    // Order nodes by (degree, id); orient each edge from lower to higher rank.
    let mut rank = vec![0usize; n];
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by_key(|&u| (g.degree(u), u));
    for (r, &u) in order.iter().enumerate() {
        rank[u] = r;
    }
    let mut forward: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for e in g.edges() {
        let (a, b) = if rank[e.u] < rank[e.v] { (e.u, e.v) } else { (e.v, e.u) };
        forward[a].push(b);
    }
    for list in &mut forward {
        list.sort_unstable();
    }
    let mut count = 0usize;
    for u in 0..n {
        for &v in &forward[u] {
            // Intersect forward[u] and forward[v].
            let (mut i, mut j) = (0, 0);
            let (fu, fv) = (&forward[u], &forward[v]);
            while i < fu.len() && j < fv.len() {
                match fu[i].cmp(&fv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Dense adjacency rows packed 64 nodes per word, for word-wise independence
/// checks.
///
/// Row `u` is the neighbourhood `N(u)` as a bitmask, so "does any member of
/// `S` conflict with `u`" is one AND-scan of `⌈n/64⌉` words instead of a
/// per-neighbour probe.  Memory is `n²/8` bytes — callers should gate
/// construction on graph size (the schedule analysis uses it up to a few
/// thousand nodes and falls back to CSR scans beyond that).
#[derive(Debug, Clone)]
pub struct AdjacencyBitmap {
    rows: Vec<FixedBitSet>,
}

impl AdjacencyBitmap {
    /// Builds the dense rows from a graph.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let rows = (0..n)
            .map(|u| {
                let mut row = FixedBitSet::new(n);
                for &v in g.neighbors(u) {
                    row.insert(v);
                }
                row
            })
            .collect();
        AdjacencyBitmap { rows }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// The neighbourhood of `u` as a bit row.
    pub fn row(&self, u: NodeId) -> &FixedBitSet {
        &self.rows[u]
    }

    /// Whether `set` is an independent set, verified by ANDing every member's
    /// adjacency row against the set — the member walk runs on the
    /// set-bit-extraction kernel and each row probe on the fused AND-any
    /// kernel ([`crate::kernels`]), both with early exit on the first
    /// conflict.  Members `>= node_count()` make the set invalid (mirroring
    /// [`is_independent_set`]).
    pub fn is_independent(&self, set: &FixedBitSet) -> bool {
        crate::kernels::all_set_bits(set.as_words(), |u| {
            u < self.rows.len() && !self.rows[u].intersects(set)
        })
    }
}

/// Whether `set` is an independent set of `g` (no two members adjacent).
pub fn is_independent_set(g: &Graph, set: &[NodeId]) -> bool {
    let mut members = FixedBitSet::new(g.node_count());
    for &u in set {
        if u >= g.node_count() {
            return false;
        }
        members.insert(u);
    }
    for &u in set {
        for &v in g.neighbors(u) {
            if members.contains(v) {
                return false;
            }
        }
    }
    true
}

/// Whether `set` is a *maximal* independent set (independent and no node can
/// be added).
pub fn is_maximal_independent_set(g: &Graph, set: &[NodeId]) -> bool {
    if !is_independent_set(g, set) {
        return false;
    }
    let mut members = FixedBitSet::new(g.node_count());
    for &u in set {
        members.insert(u);
    }
    for u in g.nodes() {
        if !members.contains(u) && g.neighbors(u).iter().all(|&v| !members.contains(v)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured::{complete, complete_bipartite, cycle, grid, path, star};
    use crate::generators::{erdos_renyi, random_tree};
    use proptest::prelude::*;

    #[test]
    fn degree_stats_of_star() {
        let s = degree_stats(&star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.median, 1.0);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn degree_stats_empty_graph() {
        let s = degree_stats(&Graph::new(0));
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn degree_stats_median_even_count() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = path(3);
        g.add_node();
        g.add_node();
        let extra = g.add_node();
        g.add_edge(4, extra).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.component_count(), 3);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.component[0], c.component[2]);
        assert_ne!(c.component[0], c.component[3]);
        assert_eq!(c.sizes.iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn components_empty_graph() {
        let c = connected_components(&Graph::new(0));
        assert_eq!(c.component_count(), 0);
        assert_eq!(c.largest(), 0);
    }

    #[test]
    fn bipartiteness_classics() {
        assert!(is_bipartite(&path(10)));
        assert!(is_bipartite(&cycle(10)));
        assert!(!is_bipartite(&cycle(9)));
        assert!(is_bipartite(&grid(4, 7)));
        assert!(is_bipartite(&complete_bipartite(3, 5)));
        assert!(!is_bipartite(&complete(3)));
        assert!(is_bipartite(&Graph::new(4)), "edgeless graph is bipartite");
    }

    #[test]
    fn bipartition_is_a_proper_2_colouring() {
        let g = grid(5, 6);
        let side = bipartition(&g).unwrap();
        for e in g.edges() {
            assert_ne!(side[e.u], side[e.v]);
        }
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        assert_eq!(degeneracy_ordering(&complete(7)).1, 6);
        assert_eq!(degeneracy_ordering(&cycle(10)).1, 2);
        assert_eq!(degeneracy_ordering(&path(10)).1, 1);
        assert_eq!(degeneracy_ordering(&random_tree(100, 3)).1, 1);
        assert_eq!(degeneracy_ordering(&grid(5, 5)).1, 2);
        assert_eq!(degeneracy_ordering(&Graph::new(0)).1, 0);
        assert_eq!(degeneracy_ordering(&Graph::new(5)).1, 0);
    }

    #[test]
    fn degeneracy_ordering_is_a_permutation() {
        let g = erdos_renyi(80, 0.1, 4);
        let (order, _) = degeneracy_ordering(&g);
        let mut seen = [false; 80];
        for &u in &order {
            assert!(!seen[u]);
            seen[u] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn triangle_counts_of_known_graphs() {
        assert_eq!(triangle_count(&complete(4)), 4);
        assert_eq!(triangle_count(&complete(6)), 20);
        assert_eq!(triangle_count(&cycle(3)), 1);
        assert_eq!(triangle_count(&cycle(4)), 0);
        assert_eq!(triangle_count(&star(10)), 0);
        assert_eq!(triangle_count(&grid(4, 4)), 0);
        assert_eq!(triangle_count(&Graph::new(0)), 0);
    }

    #[test]
    fn independent_set_checks() {
        let g = cycle(5);
        assert!(is_independent_set(&g, &[0, 2]));
        assert!(is_independent_set(&g, &[]));
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(!is_independent_set(&g, &[0, 99]), "out-of-range member rejected");
        assert!(is_maximal_independent_set(&g, &[0, 2]));
        assert!(!is_maximal_independent_set(&g, &[0]));
        assert!(!is_maximal_independent_set(&g, &[0, 1]));
    }

    #[test]
    fn adjacency_bitmap_mirrors_neighbourhoods() {
        let g = cycle(5);
        let adj = AdjacencyBitmap::from_graph(&g);
        assert_eq!(adj.node_count(), 5);
        assert_eq!(adj.row(0).iter().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(adj.row(3).iter().collect::<Vec<_>>(), vec![2, 4]);
    }

    proptest! {
        /// The three independence checkers — slice scan, dense word-wise
        /// bitmap, CSR bit probes — agree on arbitrary subsets of random
        /// graphs.
        #[test]
        fn independence_checkers_agree(seed in 0u64..40, mask in 0u64..(1 << 20)) {
            let g = erdos_renyi(20, 0.2, seed);
            let adj = AdjacencyBitmap::from_graph(&g);
            let csr = crate::CsrGraph::from_graph(&g);
            let members: Vec<usize> = (0..20).filter(|u| mask & (1 << u) != 0).collect();
            let mut bits = FixedBitSet::new(20);
            for &u in &members {
                bits.insert(u);
            }
            let reference = is_independent_set(&g, &members);
            prop_assert_eq!(adj.is_independent(&bits), reference);
            prop_assert_eq!(csr.is_independent(&bits), reference);
        }

        #[test]
        fn degeneracy_is_at_most_max_degree(seed in 0u64..50) {
            let g = erdos_renyi(60, 0.08, seed);
            let (_, d) = degeneracy_ordering(&g);
            prop_assert!(d <= g.max_degree());
        }

        #[test]
        fn triangle_count_matches_brute_force(seed in 0u64..20) {
            let g = erdos_renyi(25, 0.25, seed);
            let mut brute = 0usize;
            for a in 0..25 {
                for b in (a + 1)..25 {
                    for c in (b + 1)..25 {
                        if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                            brute += 1;
                        }
                    }
                }
            }
            prop_assert_eq!(triangle_count(&g), brute);
        }

        #[test]
        fn component_sizes_partition_nodes(seed in 0u64..20) {
            let g = erdos_renyi(60, 0.02, seed);
            let c = connected_components(&g);
            prop_assert_eq!(c.sizes.iter().sum::<usize>(), 60);
            for e in g.edges() {
                prop_assert_eq!(c.component[e.u], c.component[e.v]);
            }
        }
    }
}
