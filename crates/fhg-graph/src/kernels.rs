//! Fused word kernels: the one audited surface every hot bit loop runs on.
//!
//! PR 3 made the horizon analytically free for periodic schedules, which
//! left the closed-form analysis *emission-bound*: the `cycle` calls to
//! `ResidueTable::fill` / `HappySet::union_many` (OR residue rows, count the
//! result) and the word-wise independence probes dominate what is left.
//! Those are all straight-line bit kernels — exactly the shape that rewards
//! wide, fused word loops — so this module centralises them behind a small,
//! heavily-tested API and routes every hot caller through it:
//!
//! * [`set_rows_count`] — the **multi-row gather**: overwrite `dst` with the
//!   OR of any number of rows, rows indexed in the *inner* loop, counting
//!   the set bits of the result in the same pass.  One write-only sweep of
//!   `dst` replaces the old reset-memset + one-OR-pass-per-row +
//!   count-rescan emission shape.  Backs `HappySet::assign_many`, and
//!   through it `ResidueTable::fill`.
//! * [`or_rows_count`] — the **fused OR + popcount**: like the gather but
//!   OR-ing *into* the existing `dst` bits.  Backs `HappySet::union_many` /
//!   `union_with`.
//! * [`or_rows`] — the same multi-row OR without the count, for interior
//!   batches when a caller fuses the count into its final batch only.
//! * [`intersects`] — the **fused AND-any** with per-block early exit,
//!   backing `FixedBitSet::intersects` and the dense adjacency-row
//!   independence checker.
//! * [`intersects_many`] / [`intersects_many_indexed`] — the **row-broadcast
//!   gather** behind batched independence verification: one adjacency row
//!   (a bit row, or a CSR neighbour list) is tested against up to 64 class
//!   bitmaps at once by OR-ing the lanes of a bit-sliced membership table
//!   selected by the row's set bits.  Bit `i` of the returned word is set
//!   iff the row intersects class `i` — one row load serves the whole
//!   batch.
//! * [`count`] — unrolled popcount of a word slice.
//! * [`for_each_set_bit`] / [`all_set_bits`] — **set-bit extraction** via
//!   `trailing_zeros` word scans, backing `hosts_into`, the `CycleProfile`
//!   attendance recording and the word-raw member walks of both
//!   independence checkers.
//!
//! # The arithmetic (column) family
//!
//! PR 5 moved the analysis accumulator bank from an array-of-structs to a
//! struct-of-arrays layout (`fhg-core`'s `AccumBank`): per-node statistics
//! live in contiguous `u64` columns, and the replicate/merge/finalise
//! algebra becomes a sequence of element-wise column passes.  Those passes
//! run on this second kernel family, which operates on equal-length `u64`
//! columns instead of bit rows:
//!
//! * [`wrapping_scale_offset`] / [`saturating_add_scaled`] — the scaled
//!   accumulator folds `dst[i] = dst[i]·k + c` and `dst[i] += src[i]·k`
//!   (the closed-form repetition fold: counts and gap totals scale by the
//!   repetition count; the saturating variant protects the totals that can
//!   genuinely overflow at astronomical horizons).
//! * [`max_assign`] — element-wise unsigned max (streak folding).
//! * [`wrapping_sub_into`] — element-wise difference (boundary gaps,
//!   trailing-stretch computation).
//! * [`mask_eq_scalar`] / [`mask_ne_scalar`] / [`mask_eq_into`] /
//!   [`mask_ne_into`] — comparisons producing **word masks** (`u64::MAX`
//!   where the predicate holds, `0` elsewhere), the branchless encoding of
//!   the merge algebra's per-node conditionals.
//! * [`and_assign`] / [`or_assign`] / [`andnot_assign`] — mask algebra.
//! * [`blend_assign`] / [`blend_scalar_assign`] — **masked select/merge**:
//!   `dst[i] = mask[i] ? src[i] : dst[i]` with word masks, the conditional
//!   assignment every masked merge step compiles to.
//! * [`ratio_to_f64`] — the u64→f64 finalise `num[i] / den[i]` with an
//!   explicit [`f64::NAN`] (never a hardware `0/0`, whose sign bit differs)
//!   where the denominator is zero — the `mean_gap` statistic.
//!
//! The arithmetic family follows the same dispatch contract: masks,
//! comparisons, max, blends and subtraction have AVX2 wide paths (plus
//! `name_in` explicit-mode twins).  The multiply-based folds and the
//! u64→f64 conversion have no profitable 256-bit form (no packed 64-bit
//! multiply, no packed u64→f64 convert in AVX2), so under `portable` and
//! `wide` they run the portable loop — but under [`KernelMode::Wide512`]
//! they get their **first real wide forms**: `vpmullq` for the scaled
//! folds and `vcvtuqq2pd` for the ratio finalise.  Every member is
//! property-tested against its naive [`scalar`] specification at
//! adversarial lengths under every available mode.
//!
//! # Dispatch contract
//!
//! Every data-plane kernel exists in up to three implementations:
//!
//! * **portable** — unrolled `u64x4`-style scalar loops, available on every
//!   target,
//! * **wide** — 256-bit AVX2 loops, compiled only for `x86_64` and executed
//!   only after a successful runtime `avx2` detection, and
//! * **wide512** — 512-bit AVX-512 loops (`avx512f` + `avx512dq`), again
//!   `x86_64`-only behind a runtime detection.
//!
//! Not every kernel has all three: a kernel adds an arm only where the
//! wider ISA genuinely buys something.  The per-kernel dispatch table:
//!
//! | kernel | portable | wide (AVX2) | wide512 (AVX-512) |
//! |---|---|---|---|
//! | [`set_rows_count`], [`set_rows`], [`or_rows_count`], [`or_rows`] | ✓ | ✓ | runs the AVX2 arm |
//! | [`intersects`], [`intersects_many`] | ✓ | ✓ | runs the AVX2 arm |
//! | [`intersects_many_indexed`] | ✓ | gather-bound: portable | gather-bound: portable |
//! | [`count`], [`for_each_set_bit`], [`all_set_bits`] | ✓ | scalar popcount unit: portable | portable |
//! | masks, compares, [`max_assign`], blends, [`wrapping_sub_into`] | ✓ | ✓ | runs the AVX2 arm |
//! | [`wrapping_scale_offset`]`(_into)`, [`saturating_add_scaled`] | ✓ | no packed 64-bit multiply: portable | ✓ (`vpmullq`) |
//! | [`ratio_to_f64`] | ✓ | no packed u64→f64: portable | ✓ (`vcvtuqq2pd`) |
//!
//! [`KernelMode::active`] decides the mode **once per process** and caches
//! the decision in a `OnceLock` (so the hot path never re-detects and
//! never re-reads the environment): the `FHG_KERNEL` environment variable
//! (`portable` | `wide` | `wide512`) overrides for parity testing,
//! otherwise the widest supported path is used.  Requesting `wide` or
//! `wide512` on a machine without the feature falls back to the best
//! supported mode — the override selects an implementation, it cannot make
//! unsupported instructions execute.
//!
//! All implementations are **bitwise-identical by contract**: for every
//! input, every kernel returns the same bits in `dst` and the same scalar
//! result under every mode.  The property tests in this module pin that at
//! adversarial capacities (0, 1, 63, 64, 65, 255, 256, 4095, 4097 bits)
//! against a deliberately naive scalar reference ([`scalar`]), and CI
//! runs the full workspace suite with `FHG_KERNEL=portable` and
//! `FHG_KERNEL=wide512` forced so no arm can silently diverge.
//!
//! # How to add a kernel
//!
//! 1. Write the naive loop in [`scalar`] — that is the specification.
//! 2. Add the unrolled portable version to [`portable`] and (only if the
//!    inner loop genuinely vectorises) the AVX2 version to the
//!    `x86_64`-gated `wide` module and/or the AVX-512 version to the
//!    `wide512` module, as an `unsafe fn` with the matching
//!    `#[target_feature(enable = ...)]` and a safety comment.
//! 3. Export a dispatching wrapper (`fn name(...)`) that validates slice
//!    lengths **before** dispatch plus an explicit-mode twin (`name_in`) for
//!    differential tests, following [`or_rows_count`] / [`or_rows_count_in`].
//!    A kernel without its own `wide512` arm lists `Wide512` alongside
//!    `Wide` in the AVX2 arm so the wider mode still takes its best path.
//! 4. Extend `proptest` parity below to cover the new kernel at the
//!    adversarial capacities, under every mode, against the scalar
//!    reference.
//!
//! This is the single module in the crate allowed to use `unsafe` (the
//! crate is otherwise `deny(unsafe_code)`); the only unsafe operations are
//! the AVX2 intrinsics behind the runtime feature check.

#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Which implementation the word kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Unrolled portable `u64x4`-style loops; available on every target.
    Portable,
    /// 256-bit AVX2 loops; `x86_64` with runtime `avx2` support only.
    Wide,
    /// 512-bit AVX-512 loops (`avx512f` + `avx512dq`); kernels without a
    /// 512-bit form run their AVX2 arm under this mode.
    Wide512,
}

impl KernelMode {
    /// Whether the [`KernelMode::Wide`] path can execute on this machine.
    pub fn wide_supported() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Whether the [`KernelMode::Wide512`] path can execute on this machine
    /// (`avx512f` for the 512-bit integer core, `avx512dq` for the 64-bit
    /// multiply and u64→f64 conversion the arithmetic family needs).
    pub fn wide512_supported() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// The mode every dispatching kernel entry point uses, decided once per
    /// process and cached in a `OnceLock`: the `FHG_KERNEL` override
    /// (`portable` | `wide` | `wide512`) when set, otherwise the widest
    /// supported mode — so the per-call cost is one atomic load, never a
    /// feature re-detection or an environment read.  An unrecognised
    /// override is not fatal: it logs one warning to stderr and falls back
    /// to auto-detection (a long-lived serving process must not be killable
    /// by a typo in its environment).
    pub fn active() -> KernelMode {
        static MODE: OnceLock<KernelMode> = OnceLock::new();
        *MODE.get_or_init(|| Self::from_env(std::env::var("FHG_KERNEL").ok().as_deref()))
    }

    /// Parses the `FHG_KERNEL` override (factored out of [`KernelMode::active`]
    /// so the policy is testable despite the process-wide cache).
    fn from_env(var: Option<&str>) -> KernelMode {
        let auto = if Self::wide512_supported() {
            KernelMode::Wide512
        } else if Self::wide_supported() {
            KernelMode::Wide
        } else {
            KernelMode::Portable
        };
        match var {
            None | Some("") => auto,
            Some("portable") => KernelMode::Portable,
            // The override selects an implementation; it cannot make
            // unsupported instructions execute, so a wide request degrades
            // to the best supported mode.  `wide` never upgrades to
            // `wide512` — parity runs pin the exact arm they ask for.
            Some("wide") => {
                if Self::wide_supported() {
                    KernelMode::Wide
                } else {
                    KernelMode::Portable
                }
            }
            Some("wide512") => auto,
            Some(other) => {
                eprintln!(
                    "warning: FHG_KERNEL={other:?} is not a kernel mode \
                     (use \"portable\", \"wide\" or \"wide512\"); auto-detecting"
                );
                auto
            }
        }
    }
}

/// Asserts every row spans exactly the destination's words, so the
/// implementations below may trust their indices.
fn check_rows(dst_len: usize, rows: &[&[u64]]) {
    for row in rows {
        assert_eq!(row.len(), dst_len, "kernel row length mismatch");
    }
}

/// Overwrites `dst` with the OR of the rows and returns the number of set
/// bits in the result, in **one write-only pass** over the `dst` words
/// (rows indexed in the inner loop, count fused) — the multi-row gather
/// behind `HappySet::assign_many` and the table emission path.  Unlike
/// [`or_rows_count`] the previous contents of `dst` do not participate, so
/// emission skips both the reset memset and the per-block `dst` load.
///
/// With no rows this zeroes `dst` and returns 0.
///
/// # Panics
/// Panics if some row's length differs from `dst`'s.
pub fn set_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
    set_rows_count_in(KernelMode::active(), dst, rows)
}

/// [`set_rows_count`] under an explicit [`KernelMode`] — the entry point
/// differential tests and benchmarks use to compare the two implementations
/// in one process.  [`KernelMode::Wide`] degrades to portable where
/// unsupported.
pub fn set_rows_count_in(mode: KernelMode, dst: &mut [u64], rows: &[&[u64]]) -> u64 {
    check_rows(dst.len(), rows);
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::set_rows_count(dst, rows) }
        }
        _ => portable::set_rows_count(dst, rows),
    }
}

/// [`set_rows_count`] without the count — the interior-batch variant for
/// callers that fuse the cardinality into their final batch only.
///
/// # Panics
/// Panics if some row's length differs from `dst`'s.
pub fn set_rows(dst: &mut [u64], rows: &[&[u64]]) {
    set_rows_in(KernelMode::active(), dst, rows);
}

/// [`set_rows`] under an explicit [`KernelMode`].
pub fn set_rows_in(mode: KernelMode, dst: &mut [u64], rows: &[&[u64]]) {
    check_rows(dst.len(), rows);
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::set_rows(dst, rows) }
        }
        _ => portable::set_rows(dst, rows),
    }
}

/// ORs every row into `dst` and returns the number of set bits in the
/// result, in **one fused pass** over the `dst` words (rows indexed in the
/// inner loop) — the emission kernel behind `HappySet::union_many`.
///
/// With no rows this is a pure popcount of `dst`.
///
/// # Panics
/// Panics if some row's length differs from `dst`'s.
pub fn or_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
    or_rows_count_in(KernelMode::active(), dst, rows)
}

/// [`or_rows_count`] under an explicit [`KernelMode`] — the entry point
/// differential tests and benchmarks use to compare the two implementations
/// in one process.  [`KernelMode::Wide`] degrades to portable where
/// unsupported.
pub fn or_rows_count_in(mode: KernelMode, dst: &mut [u64], rows: &[&[u64]]) -> u64 {
    check_rows(dst.len(), rows);
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::or_rows_count(dst, rows) }
        }
        _ => portable::or_rows_count(dst, rows),
    }
}

/// ORs every row into `dst` without counting — the interior-batch variant of
/// [`or_rows_count`] for callers that fuse the count into their final batch.
///
/// # Panics
/// Panics if some row's length differs from `dst`'s.
pub fn or_rows(dst: &mut [u64], rows: &[&[u64]]) {
    or_rows_in(KernelMode::active(), dst, rows);
}

/// [`or_rows`] under an explicit [`KernelMode`].
pub fn or_rows_in(mode: KernelMode, dst: &mut [u64], rows: &[&[u64]]) {
    check_rows(dst.len(), rows);
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::or_rows(dst, rows) }
        }
        _ => portable::or_rows(dst, rows),
    }
}

/// Whether `a` and `b` share any set bit — the fused AND-any with per-block
/// early exit behind `FixedBitSet::intersects` and the dense independence
/// checker.  Lengths may differ; only the common prefix can intersect.
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    intersects_in(KernelMode::active(), a, b)
}

/// [`intersects`] under an explicit [`KernelMode`].
pub fn intersects_in(mode: KernelMode, a: &[u64], b: &[u64]) -> bool {
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::intersects(a, b) }
        }
        _ => portable::intersects(a, b),
    }
}

/// The row-broadcast gather behind batched independence verification: ORs
/// together `table[v]` for every set bit `v` of `row` and returns the
/// resulting word.  `table` is a bit-sliced membership table — bit `i` of
/// `table[v]` says node `v` belongs to class `i` of the batch — so bit `i`
/// of the result is set iff `row` intersects class `i`: one adjacency-row
/// load answers the AND-any question for up to 64 classes at once.
///
/// Empty row words are skipped (adjacency rows are sparse at scale), so the
/// cost is one word test per 64 nodes plus one table load per neighbour.
///
/// # Panics
/// Panics if `table` has fewer than `row.len() * 64` lanes (one per
/// possible set bit).
pub fn intersects_many(row: &[u64], table: &[u64]) -> u64 {
    intersects_many_in(KernelMode::active(), row, table)
}

/// [`intersects_many`] under an explicit [`KernelMode`].
pub fn intersects_many_in(mode: KernelMode, row: &[u64], table: &[u64]) -> u64 {
    assert!(
        table.len() >= row.len() * 64,
        "kernel table too short: {} lanes for a {}-word row",
        table.len(),
        row.len()
    );
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide512 if KernelMode::wide512_supported() => {
            // SAFETY: the avx512f/dq features were verified at runtime on
            // this line.
            unsafe { wide512::intersects_many(row, table) }
        }
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::intersects_many(row, table) }
        }
        _ => portable::intersects_many(row, table),
    }
}

/// [`intersects_many`] for a CSR neighbour list: ORs `table[v]` for every
/// `v` in `indices`.  The access pattern is a data-dependent gather, which
/// no supported ISA beats scalar loads at, so — like [`count`] — this runs
/// the (unrolled) portable loop under every mode.
///
/// # Panics
/// Panics if some index is out of the table's bounds.
pub fn intersects_many_indexed(indices: &[usize], table: &[u64]) -> u64 {
    portable::intersects_many_indexed(indices, table)
}

/// Number of set bits in `words` (unrolled popcount; the popcount unit is
/// scalar on every supported target, so there is no wide variant).
pub fn count(words: &[u64]) -> u64 {
    portable::count(words)
}

/// Calls `f` with the index of every set bit of `words`, ascending — the
/// set-bit extraction kernel (`trailing_zeros` word scan) behind
/// `hosts_into` and the `CycleProfile` attendance recording.
#[inline]
pub fn for_each_set_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            f(wi * 64 + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

/// Whether `pred` holds for every set bit of `words` (ascending, early
/// exit on the first `false`) — the member walk of both independence
/// checkers.
#[inline]
pub fn all_set_bits(words: &[u64], mut pred: impl FnMut(usize) -> bool) -> bool {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            if !pred(wi * 64 + w.trailing_zeros() as usize) {
                return false;
            }
            w &= w - 1;
        }
    }
    true
}

/// Asserts two columns have equal length, so the implementations below may
/// trust their indices.
fn check_columns(a: usize, b: usize) {
    assert_eq!(a, b, "kernel column length mismatch");
}

/// `dst[i] = dst[i] · k + c`, wrapping — the scalar-coefficient fold of the
/// closed-form repetition arithmetic (counts and gap counts scale by the
/// repetition count, endpoints shift by whole cycles).  Per-node statistics
/// are bounded by the horizon, so wrapping never fires on live lanes; lanes
/// that can hold garbage (empty nodes) are restored by a masked blend
/// afterwards, which is why this fold wraps rather than saturates.
///
/// No packed 64-bit multiply exists in AVX2, so `portable` and `wide` run
/// the portable loop; [`KernelMode::Wide512`] runs `vpmullq`.
pub fn wrapping_scale_offset(dst: &mut [u64], k: u64, c: u64) {
    wrapping_scale_offset_in(KernelMode::active(), dst, k, c);
}

/// [`wrapping_scale_offset`] under an explicit [`KernelMode`].
pub fn wrapping_scale_offset_in(mode: KernelMode, dst: &mut [u64], k: u64, c: u64) {
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide512 if KernelMode::wide512_supported() => {
            // SAFETY: the avx512f/dq features were verified at runtime on
            // this line.
            unsafe { wide512::wrapping_scale_offset(dst, k, c) }
        }
        _ => portable::wrapping_scale_offset(dst, k, c),
    }
}

/// `out[i] = src[i] · k + c`, wrapping — the out-of-place twin of
/// [`wrapping_scale_offset`], so a fold can read one bank and write
/// another without a separate copy pass.
///
/// No packed 64-bit multiply exists in AVX2, so `portable` and `wide` run
/// the portable loop; [`KernelMode::Wide512`] runs `vpmullq`.
///
/// # Panics
/// Panics if the column lengths differ.
pub fn wrapping_scale_offset_into(out: &mut [u64], src: &[u64], k: u64, c: u64) {
    wrapping_scale_offset_into_in(KernelMode::active(), out, src, k, c);
}

/// [`wrapping_scale_offset_into`] under an explicit [`KernelMode`].
pub fn wrapping_scale_offset_into_in(
    mode: KernelMode,
    out: &mut [u64],
    src: &[u64],
    k: u64,
    c: u64,
) {
    check_columns(out.len(), src.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide512 if KernelMode::wide512_supported() => {
            // SAFETY: the avx512f/dq features were verified at runtime on
            // this line.
            unsafe { wide512::wrapping_scale_offset_into(out, src, k, c) }
        }
        _ => portable::wrapping_scale_offset_into(out, src, k, c),
    }
}

/// `dst[i] = dst[i].saturating_add(src[i].saturating_mul(k))` — the
/// saturating scaled accumulate behind the gap-sum repetition fold and any
/// total that can genuinely overflow at astronomical horizons (the
/// whole-schedule happiness total saturates rather than wraps).
///
/// No packed 64-bit multiply exists in AVX2, so `portable` and `wide` run
/// the portable loop; [`KernelMode::Wide512`] runs `vpmullq` with the
/// saturation masks derived from native unsigned 64-bit compares.
///
/// # Panics
/// Panics if the column lengths differ.
pub fn saturating_add_scaled(dst: &mut [u64], src: &[u64], k: u64) {
    saturating_add_scaled_in(KernelMode::active(), dst, src, k);
}

/// [`saturating_add_scaled`] under an explicit [`KernelMode`].
pub fn saturating_add_scaled_in(mode: KernelMode, dst: &mut [u64], src: &[u64], k: u64) {
    check_columns(dst.len(), src.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide512 if KernelMode::wide512_supported() => {
            // SAFETY: the avx512f/dq features were verified at runtime on
            // this line.
            unsafe { wide512::saturating_add_scaled(dst, src, k) }
        }
        _ => portable::saturating_add_scaled(dst, src, k),
    }
}

/// `dst[i] = max(dst[i], src[i])` (unsigned) — streak folding.
///
/// # Panics
/// Panics if the column lengths differ.
pub fn max_assign(dst: &mut [u64], src: &[u64]) {
    max_assign_in(KernelMode::active(), dst, src);
}

/// [`max_assign`] under an explicit [`KernelMode`].
pub fn max_assign_in(mode: KernelMode, dst: &mut [u64], src: &[u64]) {
    check_columns(dst.len(), src.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::max_assign(dst, src) }
        }
        _ => portable::max_assign(dst, src),
    }
}

/// `out[i] = a[i].wrapping_sub(b[i])` — element-wise difference (boundary
/// gaps between segment endpoints; garbage on masked-out lanes is fine by
/// construction, hence wrapping).
///
/// # Panics
/// Panics if the column lengths differ.
pub fn wrapping_sub_into(out: &mut [u64], a: &[u64], b: &[u64]) {
    wrapping_sub_into_in(KernelMode::active(), out, a, b);
}

/// [`wrapping_sub_into`] under an explicit [`KernelMode`].
pub fn wrapping_sub_into_in(mode: KernelMode, out: &mut [u64], a: &[u64], b: &[u64]) {
    check_columns(out.len(), a.len());
    check_columns(out.len(), b.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::wrapping_sub_into(out, a, b) }
        }
        _ => portable::wrapping_sub_into(out, a, b),
    }
}

/// `out[i] = if src[i] == c { u64::MAX } else { 0 }` — scalar comparison
/// producing a word mask (the branchless encoding of the merge algebra's
/// per-node conditionals).
///
/// # Panics
/// Panics if the column lengths differ.
pub fn mask_eq_scalar(out: &mut [u64], src: &[u64], c: u64) {
    mask_cmp_scalar_in(KernelMode::active(), out, src, c, false);
}

/// `out[i] = if src[i] != c { u64::MAX } else { 0 }` — the complement of
/// [`mask_eq_scalar`].
///
/// # Panics
/// Panics if the column lengths differ.
pub fn mask_ne_scalar(out: &mut [u64], src: &[u64], c: u64) {
    mask_cmp_scalar_in(KernelMode::active(), out, src, c, true);
}

/// [`mask_eq_scalar`] / [`mask_ne_scalar`] under an explicit
/// [`KernelMode`] (`negate` selects the `!=` polarity).
pub fn mask_cmp_scalar_in(mode: KernelMode, out: &mut [u64], src: &[u64], c: u64, negate: bool) {
    check_columns(out.len(), src.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::mask_cmp_scalar(out, src, c, negate) }
        }
        _ => portable::mask_cmp_scalar(out, src, c, negate),
    }
}

/// `out[i] = if a[i] == b[i] { u64::MAX } else { 0 }` — element-wise
/// comparison producing a word mask.
///
/// # Panics
/// Panics if the column lengths differ.
pub fn mask_eq_into(out: &mut [u64], a: &[u64], b: &[u64]) {
    mask_cmp_into_in(KernelMode::active(), out, a, b, false);
}

/// `out[i] = if a[i] != b[i] { u64::MAX } else { 0 }` — the complement of
/// [`mask_eq_into`].
///
/// # Panics
/// Panics if the column lengths differ.
pub fn mask_ne_into(out: &mut [u64], a: &[u64], b: &[u64]) {
    mask_cmp_into_in(KernelMode::active(), out, a, b, true);
}

/// [`mask_eq_into`] / [`mask_ne_into`] under an explicit [`KernelMode`]
/// (`negate` selects the `!=` polarity).
pub fn mask_cmp_into_in(mode: KernelMode, out: &mut [u64], a: &[u64], b: &[u64], negate: bool) {
    check_columns(out.len(), a.len());
    check_columns(out.len(), b.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::mask_cmp_into(out, a, b, negate) }
        }
        _ => portable::mask_cmp_into(out, a, b, negate),
    }
}

/// `dst[i] &= src[i]` — mask conjunction.
///
/// # Panics
/// Panics if the column lengths differ.
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    bitop_assign_in(KernelMode::active(), dst, src, BitOp::And);
}

/// `dst[i] |= src[i]` — mask disjunction.
///
/// # Panics
/// Panics if the column lengths differ.
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    bitop_assign_in(KernelMode::active(), dst, src, BitOp::Or);
}

/// `dst[i] &= !src[i]` — mask subtraction (clears `dst` lanes where `src`
/// holds, the "uniformity broken" update of the merge algebra).
///
/// # Panics
/// Panics if the column lengths differ.
pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
    bitop_assign_in(KernelMode::active(), dst, src, BitOp::AndNot);
}

/// The element-wise bit operation applied by [`bitop_assign_in`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitOp {
    /// `dst &= src`
    And,
    /// `dst |= src`
    Or,
    /// `dst &= !src`
    AndNot,
}

/// [`and_assign`] / [`or_assign`] / [`andnot_assign`] under an explicit
/// [`KernelMode`].
pub fn bitop_assign_in(mode: KernelMode, dst: &mut [u64], src: &[u64], op: BitOp) {
    check_columns(dst.len(), src.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::bitop_assign(dst, src, op) }
        }
        _ => portable::bitop_assign(dst, src, op),
    }
}

/// `dst[i] = if mask[i] != 0 { src[i] } else { dst[i] }` — the masked
/// select/merge.  Masks are word masks (`0` or `u64::MAX`); the blend is
/// pure bit arithmetic `(src & mask) | (dst & !mask)`, so a partial mask
/// word blends bitwise (callers produce masks through the comparison
/// kernels, which only emit `0`/`MAX`).
///
/// # Panics
/// Panics if the column lengths differ.
pub fn blend_assign(dst: &mut [u64], mask: &[u64], src: &[u64]) {
    blend_assign_in(KernelMode::active(), dst, mask, src);
}

/// [`blend_assign`] under an explicit [`KernelMode`].
pub fn blend_assign_in(mode: KernelMode, dst: &mut [u64], mask: &[u64], src: &[u64]) {
    check_columns(dst.len(), mask.len());
    check_columns(dst.len(), src.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::blend_assign(dst, mask, src) }
        }
        _ => portable::blend_assign(dst, mask, src),
    }
}

/// `dst[i] = if mask[i] != 0 { c } else { dst[i] }` — [`blend_assign`] with
/// a broadcast scalar source (restoring sentinel values on masked lanes).
///
/// # Panics
/// Panics if the column lengths differ.
pub fn blend_scalar_assign(dst: &mut [u64], mask: &[u64], c: u64) {
    blend_scalar_assign_in(KernelMode::active(), dst, mask, c);
}

/// [`blend_scalar_assign`] under an explicit [`KernelMode`].
pub fn blend_scalar_assign_in(mode: KernelMode, dst: &mut [u64], mask: &[u64], c: u64) {
    check_columns(dst.len(), mask.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide | KernelMode::Wide512 if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::blend_scalar_assign(dst, mask, c) }
        }
        _ => portable::blend_scalar_assign(dst, mask, c),
    }
}

/// `out[i] = num[i] as f64 / den[i] as f64`, with an explicit [`f64::NAN`]
/// where `den[i] == 0` — the u64→f64 finalise behind the `mean_gap`
/// statistic.  The NaN is the *constant* `f64::NAN`, never a hardware
/// `0.0/0.0` (whose sign bit differs on x86), so `to_bits` parity across
/// engines holds.
///
/// No packed u64→f64 conversion exists in AVX2, so `portable` and `wide`
/// run the portable loop; [`KernelMode::Wide512`] runs `vcvtuqq2pd` with
/// the NaN constant blended in by mask (bit pattern pinned by test).
///
/// # Panics
/// Panics if the column lengths differ.
pub fn ratio_to_f64(out: &mut [f64], num: &[u64], den: &[u64]) {
    ratio_to_f64_in(KernelMode::active(), out, num, den);
}

/// [`ratio_to_f64`] under an explicit [`KernelMode`].
pub fn ratio_to_f64_in(mode: KernelMode, out: &mut [f64], num: &[u64], den: &[u64]) {
    check_columns(out.len(), num.len());
    check_columns(out.len(), den.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide512 if KernelMode::wide512_supported() => {
            // SAFETY: the avx512f/dq features were verified at runtime on
            // this line.
            unsafe { wide512::ratio_to_f64(out, num, den) }
        }
        _ => portable::ratio_to_f64(out, num, den),
    }
}

/// The deliberately naive reference implementations: one full `dst` pass per
/// row followed by a separate popcount rescan — the exact pre-kernel (PR 3)
/// emission shape.  These are the *specification* the fused kernels are
/// property-tested against, and the differential baseline experiment `e13`
/// and `benches/kernels.rs` time the fused paths over.
pub mod scalar {
    /// One OR pass over `dst` per row, then a separate count rescan.
    ///
    /// # Panics
    /// Panics if some row's length differs from `dst`'s.
    pub fn or_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        super::check_rows(dst.len(), rows);
        for row in rows {
            for (d, r) in dst.iter_mut().zip(*row) {
                *d |= r;
            }
        }
        dst.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Zero `dst`, then one OR pass per row, then a count rescan — the
    /// exact pre-kernel emission sequence (`reset` memset + `union_with`
    /// loop + cardinality recount).
    ///
    /// # Panics
    /// Panics if some row's length differs from `dst`'s.
    pub fn set_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        dst.iter_mut().for_each(|w| *w = 0);
        or_rows_count(dst, rows)
    }

    /// Word-at-a-time AND-any over the common prefix.
    pub fn intersects(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).any(|(x, y)| x & y != 0)
    }

    /// Bit-by-bit row-broadcast gather: walk every set bit of `row` and OR
    /// the matching membership-table lane.
    ///
    /// # Panics
    /// Panics if `table` has fewer than `row.len() * 64` lanes.
    pub fn intersects_many(row: &[u64], table: &[u64]) -> u64 {
        let mut acc = 0u64;
        for (wi, &word) in row.iter().enumerate() {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    acc |= table[wi * 64 + bit];
                }
            }
        }
        acc
    }

    /// One-by-one indexed gather.
    ///
    /// # Panics
    /// Panics if some index is out of the table's bounds.
    pub fn intersects_many_indexed(indices: &[usize], table: &[u64]) -> u64 {
        indices.iter().fold(0u64, |acc, &i| acc | table[i])
    }

    /// One-by-one `dst[i]·k + c`, wrapping.
    pub fn wrapping_scale_offset(dst: &mut [u64], k: u64, c: u64) {
        for d in dst {
            *d = d.wrapping_mul(k).wrapping_add(c);
        }
    }

    /// One-by-one `out[i] = src[i]·k + c`, wrapping.
    pub fn wrapping_scale_offset_into(out: &mut [u64], src: &[u64], k: u64, c: u64) {
        for (o, s) in out.iter_mut().zip(src) {
            *o = s.wrapping_mul(k).wrapping_add(c);
        }
    }

    /// One-by-one saturating `dst[i] += src[i]·k`.
    pub fn saturating_add_scaled(dst: &mut [u64], src: &[u64], k: u64) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = d.saturating_add(s.saturating_mul(k));
        }
    }

    /// One-by-one branchy unsigned max.
    pub fn max_assign(dst: &mut [u64], src: &[u64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            if *s > *d {
                *d = *s;
            }
        }
    }

    /// One-by-one wrapping difference.
    pub fn wrapping_sub_into(out: &mut [u64], a: &[u64], b: &[u64]) {
        for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
            *o = x.wrapping_sub(*y);
        }
    }

    /// One-by-one branchy scalar comparison mask.
    pub fn mask_cmp_scalar(out: &mut [u64], src: &[u64], c: u64, negate: bool) {
        for (o, s) in out.iter_mut().zip(src) {
            *o = if (*s == c) != negate { u64::MAX } else { 0 };
        }
    }

    /// One-by-one branchy element-wise comparison mask.
    pub fn mask_cmp_into(out: &mut [u64], a: &[u64], b: &[u64], negate: bool) {
        for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
            *o = if (*x == *y) != negate { u64::MAX } else { 0 };
        }
    }

    /// One-by-one mask algebra.
    pub fn bitop_assign(dst: &mut [u64], src: &[u64], op: super::BitOp) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = match op {
                super::BitOp::And => *d & *s,
                super::BitOp::Or => *d | *s,
                super::BitOp::AndNot => *d & !*s,
            };
        }
    }

    /// One-by-one bitwise blend `(src & mask) | (dst & !mask)` — bitwise
    /// (not branchy) by specification, so partial mask words blend bitwise
    /// in every implementation.
    pub fn blend_assign(dst: &mut [u64], mask: &[u64], src: &[u64]) {
        for (d, (m, s)) in dst.iter_mut().zip(mask.iter().zip(src)) {
            *d = (*s & *m) | (*d & !*m);
        }
    }

    /// One-by-one bitwise blend with a broadcast scalar source.
    pub fn blend_scalar_assign(dst: &mut [u64], mask: &[u64], c: u64) {
        for (d, m) in dst.iter_mut().zip(mask) {
            *d = (c & *m) | (*d & !*m);
        }
    }

    /// One-by-one branchy ratio with the explicit NaN constant.
    pub fn ratio_to_f64(out: &mut [f64], num: &[u64], den: &[u64]) {
        for (o, (n, d)) in out.iter_mut().zip(num.iter().zip(den)) {
            *o = if *d > 0 { *n as f64 / *d as f64 } else { f64::NAN };
        }
    }
}

/// Unrolled portable loops — `u64x4`-style: four words per iteration, rows
/// in the inner loop, so the compiler can keep the four accumulators in
/// registers (and autovectorise where profitable).
mod portable {
    /// One write-only gather pass at compile-time arity `K` (the row count
    /// of every table the experiments build is tiny).  The `..n` re-slices
    /// prove the lengths to LLVM, so the loop autovectorises with the inner
    /// row loop fully unrolled.
    fn gather_fixed<const K: usize>(dst: &mut [u64], rows: &[&[u64]]) {
        let n = dst.len();
        let rows: [&[u64]; K] = std::array::from_fn(|k| &rows[k][..n]);
        for (i, d) in dst.iter_mut().enumerate() {
            let mut w = 0u64;
            for row in &rows {
                w |= row[i];
            }
            *d = w;
        }
    }

    pub(super) fn set_rows(dst: &mut [u64], rows: &[&[u64]]) {
        match rows.len() {
            0 => dst.iter_mut().for_each(|w| *w = 0),
            1 => gather_fixed::<1>(dst, rows),
            2 => gather_fixed::<2>(dst, rows),
            3 => gather_fixed::<3>(dst, rows),
            4 => gather_fixed::<4>(dst, rows),
            5 => gather_fixed::<5>(dst, rows),
            6 => gather_fixed::<6>(dst, rows),
            7 => gather_fixed::<7>(dst, rows),
            8 => gather_fixed::<8>(dst, rows),
            // Beyond the batch width callers already split; degrade to the
            // gather-into-zeroed-destination shape.
            _ => {
                dst.iter_mut().for_each(|w| *w = 0);
                or_rows(dst, rows);
            }
        }
    }

    pub(super) fn set_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        set_rows(dst, rows);
        count(dst)
    }

    pub(super) fn or_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        let n = dst.len();
        let mut total = 0u64;
        let mut i = 0usize;
        while i + 4 <= n {
            let (mut w0, mut w1, mut w2, mut w3) = (dst[i], dst[i + 1], dst[i + 2], dst[i + 3]);
            for row in rows {
                w0 |= row[i];
                w1 |= row[i + 1];
                w2 |= row[i + 2];
                w3 |= row[i + 3];
            }
            dst[i] = w0;
            dst[i + 1] = w1;
            dst[i + 2] = w2;
            dst[i + 3] = w3;
            total +=
                u64::from(w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones());
            i += 4;
        }
        while i < n {
            let mut w = dst[i];
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            total += u64::from(w.count_ones());
            i += 1;
        }
        total
    }

    pub(super) fn or_rows(dst: &mut [u64], rows: &[&[u64]]) {
        let n = dst.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let (mut w0, mut w1, mut w2, mut w3) = (dst[i], dst[i + 1], dst[i + 2], dst[i + 3]);
            for row in rows {
                w0 |= row[i];
                w1 |= row[i + 1];
                w2 |= row[i + 2];
                w3 |= row[i + 3];
            }
            dst[i] = w0;
            dst[i + 1] = w1;
            dst[i + 2] = w2;
            dst[i + 3] = w3;
            i += 4;
        }
        while i < n {
            let mut w = dst[i];
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            i += 1;
        }
    }

    pub(super) fn intersects(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let mut i = 0usize;
        while i + 4 <= n {
            let hit = (a[i] & b[i])
                | (a[i + 1] & b[i + 1])
                | (a[i + 2] & b[i + 2])
                | (a[i + 3] & b[i + 3]);
            if hit != 0 {
                return true;
            }
            i += 4;
        }
        while i < n {
            if a[i] & b[i] != 0 {
                return true;
            }
            i += 1;
        }
        false
    }

    pub(super) fn intersects_many(row: &[u64], table: &[u64]) -> u64 {
        let mut acc = 0u64;
        for (wi, &word) in row.iter().enumerate() {
            // Empty words are the common case on sparse adjacency rows;
            // non-empty ones walk set bits via trailing_zeros like the
            // extraction kernel.
            let mut w = word;
            let base = wi * 64;
            while w != 0 {
                acc |= table[base + w.trailing_zeros() as usize];
                w &= w - 1;
            }
        }
        acc
    }

    pub(super) fn intersects_many_indexed(indices: &[usize], table: &[u64]) -> u64 {
        // Four independent OR chains hide the gather latency.
        let n = indices.len();
        let mut i = 0usize;
        let (mut a0, mut a1, mut a2, mut a3) = (0u64, 0u64, 0u64, 0u64);
        while i + 4 <= n {
            a0 |= table[indices[i]];
            a1 |= table[indices[i + 1]];
            a2 |= table[indices[i + 2]];
            a3 |= table[indices[i + 3]];
            i += 4;
        }
        while i < n {
            a0 |= table[indices[i]];
            i += 1;
        }
        a0 | a1 | a2 | a3
    }

    pub(super) fn count(words: &[u64]) -> u64 {
        let n = words.len();
        let mut total = 0u64;
        let mut i = 0usize;
        while i + 4 <= n {
            total += u64::from(
                words[i].count_ones()
                    + words[i + 1].count_ones()
                    + words[i + 2].count_ones()
                    + words[i + 3].count_ones(),
            );
            i += 4;
        }
        while i < n {
            total += u64::from(words[i].count_ones());
            i += 1;
        }
        total
    }

    // The arithmetic (column) family: straight-line element-wise loops over
    // `iter_mut().zip(..)` pairs — branchless bodies LLVM unrolls and
    // autovectorises to the width the target supports.

    pub(super) fn wrapping_scale_offset(dst: &mut [u64], k: u64, c: u64) {
        for d in dst {
            *d = d.wrapping_mul(k).wrapping_add(c);
        }
    }

    pub(super) fn wrapping_scale_offset_into(out: &mut [u64], src: &[u64], k: u64, c: u64) {
        for (o, s) in out.iter_mut().zip(src) {
            *o = s.wrapping_mul(k).wrapping_add(c);
        }
    }

    pub(super) fn saturating_add_scaled(dst: &mut [u64], src: &[u64], k: u64) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = d.saturating_add(s.saturating_mul(k));
        }
    }

    pub(super) fn max_assign(dst: &mut [u64], src: &[u64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = (*d).max(*s);
        }
    }

    pub(super) fn wrapping_sub_into(out: &mut [u64], a: &[u64], b: &[u64]) {
        for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
            *o = x.wrapping_sub(*y);
        }
    }

    pub(super) fn mask_cmp_scalar(out: &mut [u64], src: &[u64], c: u64, negate: bool) {
        // `negate` hoisted to an XOR constant so the loop body stays
        // branchless and vectorisable.
        let flip = if negate { u64::MAX } else { 0 };
        for (o, s) in out.iter_mut().zip(src) {
            let eq = if *s == c { u64::MAX } else { 0 };
            *o = eq ^ flip;
        }
    }

    pub(super) fn mask_cmp_into(out: &mut [u64], a: &[u64], b: &[u64], negate: bool) {
        let flip = if negate { u64::MAX } else { 0 };
        for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
            let eq = if *x == *y { u64::MAX } else { 0 };
            *o = eq ^ flip;
        }
    }

    pub(super) fn bitop_assign(dst: &mut [u64], src: &[u64], op: super::BitOp) {
        match op {
            super::BitOp::And => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d &= *s;
                }
            }
            super::BitOp::Or => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d |= *s;
                }
            }
            super::BitOp::AndNot => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d &= !*s;
                }
            }
        }
    }

    pub(super) fn blend_assign(dst: &mut [u64], mask: &[u64], src: &[u64]) {
        for (d, (m, s)) in dst.iter_mut().zip(mask.iter().zip(src)) {
            *d = (*s & *m) | (*d & !*m);
        }
    }

    pub(super) fn blend_scalar_assign(dst: &mut [u64], mask: &[u64], c: u64) {
        for (d, m) in dst.iter_mut().zip(mask) {
            *d = (c & *m) | (*d & !*m);
        }
    }

    pub(super) fn ratio_to_f64(out: &mut [f64], num: &[u64], den: &[u64]) {
        for (o, (n, d)) in out.iter_mut().zip(num.iter().zip(den)) {
            *o = if *d > 0 { *n as f64 / *d as f64 } else { f64::NAN };
        }
    }
}

/// 256-bit AVX2 loops.  Every function here carries
/// `#[target_feature(enable = "avx2")]` and must only be called after a
/// successful runtime `avx2` detection (the dispatch wrappers above
/// guarantee it); slice lengths were validated by the wrapper, so the raw
/// pointer arithmetic stays in bounds.
#[cfg(target_arch = "x86_64")]
mod wide {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_extract_epi64,
        _mm256_loadu_si256, _mm256_or_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_storeu_si256,
        _mm256_testz_si256,
    };

    /// Adds the popcount of `v` to the four 64-bit lane counters of `acc` —
    /// the classic nibble-LUT vector popcount (`pshufb` twice, byte-sum via
    /// `sad_epu8`): the count stays in registers block after block, never
    /// re-reading the words just stored and never leaving the vector domain
    /// until [`sum_lanes`] folds the counters once per call.
    ///
    /// # Safety
    /// Requires runtime `avx2` support.
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_add(acc: __m256i, v: __m256i) -> __m256i {
        // Register-only intrinsics: safe to call once the avx2 target
        // feature is in effect (the caller contract).
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
        let per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_add_epi64(acc, _mm256_sad_epu8(per_byte, _mm256_setzero_si256()))
    }

    /// Folds the four 64-bit lane counters into one scalar total.
    ///
    /// # Safety
    /// Requires runtime `avx2` support.
    #[target_feature(enable = "avx2")]
    unsafe fn sum_lanes(acc: __m256i) -> u64 {
        // Register-only intrinsics: safe to call once the avx2 target
        // feature is in effect (the caller contract).
        (_mm256_extract_epi64::<0>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<1>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<2>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<3>(acc) as u64)
    }

    /// # Safety
    /// Requires runtime `avx2` support and `row.len() == dst.len()` for
    /// every row.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn set_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY (whole block): the loop guards keep every load/store of 4
        // words within `n`, and every row spans n words (wrapper
        // invariant); avx2 is guaranteed by the caller contract.
        let mut total = unsafe {
            // Two independent accumulator chains (8 words per iteration):
            // amortises the loop and row-pointer overhead and keeps the
            // popcount chains from serialising on one counter register.
            let mut counters0 = _mm256_setzero_si256();
            let mut counters1 = _mm256_setzero_si256();
            while i + 8 <= n {
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                for row in rows {
                    let p = row.as_ptr().add(i);
                    acc0 = _mm256_or_si256(acc0, _mm256_loadu_si256(p as *const __m256i));
                    acc1 = _mm256_or_si256(acc1, _mm256_loadu_si256(p.add(4) as *const __m256i));
                }
                let q = dst.as_mut_ptr().add(i);
                _mm256_storeu_si256(q as *mut __m256i, acc0);
                _mm256_storeu_si256(q.add(4) as *mut __m256i, acc1);
                counters0 = popcount_add(counters0, acc0);
                counters1 = popcount_add(counters1, acc1);
                i += 8;
            }
            if i + 4 <= n {
                let mut acc = _mm256_setzero_si256();
                for row in rows {
                    acc = _mm256_or_si256(
                        acc,
                        _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i),
                    );
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, acc);
                counters0 = popcount_add(counters0, acc);
                i += 4;
            }
            sum_lanes(_mm256_add_epi64(counters0, counters1))
        };
        while i < n {
            let mut w = 0u64;
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            total += u64::from(w.count_ones());
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires runtime `avx2` support and `row.len() == dst.len()` for
    /// every row.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn set_rows(dst: &mut [u64], rows: &[&[u64]]) {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY (whole block): the loop guards keep every load/store of 8
        // (then 4) words within `n`, and every row spans n words (wrapper
        // invariant); avx2 is guaranteed by the caller contract.
        unsafe {
            while i + 8 <= n {
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                for row in rows {
                    let p = row.as_ptr().add(i);
                    acc0 = _mm256_or_si256(acc0, _mm256_loadu_si256(p as *const __m256i));
                    acc1 = _mm256_or_si256(acc1, _mm256_loadu_si256(p.add(4) as *const __m256i));
                }
                let q = dst.as_mut_ptr().add(i);
                _mm256_storeu_si256(q as *mut __m256i, acc0);
                _mm256_storeu_si256(q.add(4) as *mut __m256i, acc1);
                i += 8;
            }
            if i + 4 <= n {
                let mut acc = _mm256_setzero_si256();
                for row in rows {
                    acc = _mm256_or_si256(
                        acc,
                        _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i),
                    );
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, acc);
                i += 4;
            }
        }
        while i < n {
            let mut w = 0u64;
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx2` support and `row.len() == dst.len()` for
    /// every row.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn or_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY (whole block): i + 4 <= n and every row spans n words
        // (wrapper invariant), so all four-word unaligned loads are in
        // bounds; avx2 is guaranteed by the caller contract.
        let mut total = unsafe {
            let mut counters = _mm256_setzero_si256();
            while i + 4 <= n {
                let p = dst.as_ptr().add(i) as *const __m256i;
                let mut acc = _mm256_loadu_si256(p);
                for row in rows {
                    acc = _mm256_or_si256(
                        acc,
                        _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i),
                    );
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, acc);
                counters = popcount_add(counters, acc);
                i += 4;
            }
            sum_lanes(counters)
        };
        while i < n {
            let mut w = dst[i];
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            total += u64::from(w.count_ones());
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires runtime `avx2` support and `row.len() == dst.len()` for
    /// every row.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn or_rows(dst: &mut [u64], rows: &[&[u64]]) {
        let n = dst.len();
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n and every row spans n words (wrapper
            // invariant), so all four-word unaligned loads are in bounds.
            unsafe {
                let p = dst.as_ptr().add(i) as *const __m256i;
                let mut acc = _mm256_loadu_si256(p);
                for row in rows {
                    acc = _mm256_or_si256(
                        acc,
                        _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i),
                    );
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, acc);
            }
            i += 4;
        }
        while i < n {
            let mut w = dst[i];
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            i += 1;
        }
    }

    use std::arch::x86_64::{
        _mm256_andnot_si256, _mm256_cmpeq_epi64, _mm256_cmpgt_epi64, _mm256_set1_epi64x,
        _mm256_sub_epi64, _mm256_xor_si256,
    };

    /// Loads 4 words from `s[i..]`.
    ///
    /// # Safety
    /// Requires runtime `avx2` support and `i + 4 <= s.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn load(s: &[u64], i: usize) -> __m256i {
        // SAFETY: caller guarantees i + 4 <= s.len().
        unsafe { _mm256_loadu_si256(s.as_ptr().add(i) as *const __m256i) }
    }

    /// Stores 4 words to `d[i..]`.
    ///
    /// # Safety
    /// Requires runtime `avx2` support and `i + 4 <= d.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn store(d: &mut [u64], i: usize, v: __m256i) {
        // SAFETY: caller guarantees i + 4 <= d.len().
        unsafe { _mm256_storeu_si256(d.as_mut_ptr().add(i) as *mut __m256i, v) }
    }

    /// # Safety
    /// Requires runtime `avx2` support and equal column lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn max_assign(dst: &mut [u64], src: &[u64]) {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY (whole block): the loop guard keeps every 4-word access in
        // bounds and the wrapper validated equal lengths; avx2 is
        // guaranteed by the caller contract.
        unsafe {
            // Unsigned 64-bit max via the sign-bias trick: a >u b  iff
            // (a ^ SIGN) >s (b ^ SIGN); the all-ones compare lanes then
            // drive a bitwise blend.
            let sign = _mm256_set1_epi64x(i64::MIN);
            while i + 4 <= n {
                let d = load(dst, i);
                let s = load(src, i);
                let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(s, sign), _mm256_xor_si256(d, sign));
                store(dst, i, blend(d, s, gt));
                i += 4;
            }
        }
        while i < n {
            dst[i] = dst[i].max(src[i]);
            i += 1;
        }
    }

    /// `(s & m) | (d & !m)` in registers.
    ///
    /// # Safety
    /// Requires runtime `avx2` support.
    #[target_feature(enable = "avx2")]
    unsafe fn blend(d: __m256i, s: __m256i, m: __m256i) -> __m256i {
        // Register-only intrinsics: safe once the avx2 target feature is in
        // effect (the caller contract).
        _mm256_or_si256(_mm256_and_si256(s, m), _mm256_andnot_si256(m, d))
    }

    /// # Safety
    /// Requires runtime `avx2` support and equal column lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn wrapping_sub_into(out: &mut [u64], a: &[u64], b: &[u64]) {
        let n = out.len();
        let mut i = 0usize;
        // SAFETY: loop guard + wrapper-validated lengths keep the 4-word
        // accesses in bounds; avx2 guaranteed by the caller contract.
        unsafe {
            while i + 4 <= n {
                store(out, i, _mm256_sub_epi64(load(a, i), load(b, i)));
                i += 4;
            }
        }
        while i < n {
            out[i] = a[i].wrapping_sub(b[i]);
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx2` support and equal column lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mask_cmp_scalar(out: &mut [u64], src: &[u64], c: u64, negate: bool) {
        let n = out.len();
        let mut i = 0usize;
        let flip_word = if negate { u64::MAX } else { 0 };
        // SAFETY: loop guard + wrapper-validated lengths keep the 4-word
        // accesses in bounds; avx2 guaranteed by the caller contract.
        unsafe {
            let needle = _mm256_set1_epi64x(c as i64);
            let flip = _mm256_set1_epi64x(flip_word as i64);
            while i + 4 <= n {
                let eq = _mm256_cmpeq_epi64(load(src, i), needle);
                store(out, i, _mm256_xor_si256(eq, flip));
                i += 4;
            }
        }
        while i < n {
            let eq = if src[i] == c { u64::MAX } else { 0 };
            out[i] = eq ^ flip_word;
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx2` support and equal column lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mask_cmp_into(out: &mut [u64], a: &[u64], b: &[u64], negate: bool) {
        let n = out.len();
        let mut i = 0usize;
        let flip_word = if negate { u64::MAX } else { 0 };
        // SAFETY: loop guard + wrapper-validated lengths keep the 4-word
        // accesses in bounds; avx2 guaranteed by the caller contract.
        unsafe {
            let flip = _mm256_set1_epi64x(flip_word as i64);
            while i + 4 <= n {
                let eq = _mm256_cmpeq_epi64(load(a, i), load(b, i));
                store(out, i, _mm256_xor_si256(eq, flip));
                i += 4;
            }
        }
        while i < n {
            let eq = if a[i] == b[i] { u64::MAX } else { 0 };
            out[i] = eq ^ flip_word;
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx2` support and equal column lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bitop_assign(dst: &mut [u64], src: &[u64], op: super::BitOp) {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY: loop guard + wrapper-validated lengths keep the 4-word
        // accesses in bounds; avx2 guaranteed by the caller contract.
        unsafe {
            while i + 4 <= n {
                let d = load(dst, i);
                let s = load(src, i);
                let r = match op {
                    super::BitOp::And => _mm256_and_si256(d, s),
                    super::BitOp::Or => _mm256_or_si256(d, s),
                    super::BitOp::AndNot => _mm256_andnot_si256(s, d),
                };
                store(dst, i, r);
                i += 4;
            }
        }
        while i < n {
            dst[i] = match op {
                super::BitOp::And => dst[i] & src[i],
                super::BitOp::Or => dst[i] | src[i],
                super::BitOp::AndNot => dst[i] & !src[i],
            };
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx2` support and equal column lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn blend_assign(dst: &mut [u64], mask: &[u64], src: &[u64]) {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY: loop guard + wrapper-validated lengths keep the 4-word
        // accesses in bounds; avx2 guaranteed by the caller contract.
        unsafe {
            while i + 4 <= n {
                store(dst, i, blend(load(dst, i), load(src, i), load(mask, i)));
                i += 4;
            }
        }
        while i < n {
            dst[i] = (src[i] & mask[i]) | (dst[i] & !mask[i]);
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx2` support and equal column lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn blend_scalar_assign(dst: &mut [u64], mask: &[u64], c: u64) {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY: loop guard + wrapper-validated lengths keep the 4-word
        // accesses in bounds; avx2 guaranteed by the caller contract.
        unsafe {
            let broadcast = _mm256_set1_epi64x(c as i64);
            while i + 4 <= n {
                store(dst, i, blend(load(dst, i), broadcast, load(mask, i)));
                i += 4;
            }
        }
        while i < n {
            dst[i] = (c & mask[i]) | (dst[i] & !mask[i]);
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx2` support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn intersects(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n <= min(a.len(), b.len()), so both
            // four-word unaligned loads are in bounds.
            let disjoint = unsafe {
                let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
                _mm256_testz_si256(va, vb)
            };
            if disjoint == 0 {
                return true;
            }
            i += 4;
        }
        while i < n {
            if a[i] & b[i] != 0 {
                return true;
            }
            i += 1;
        }
        false
    }

    /// # Safety
    /// Requires runtime `avx2` support and `table.len() >= row.len() * 64`
    /// (wrapper invariant).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn intersects_many(row: &[u64], table: &[u64]) -> u64 {
        let n = row.len();
        let mut acc = 0u64;
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n, so the four-word unaligned load is in
            // bounds; avx2 is guaranteed by the caller contract.
            let empty = unsafe {
                let v = _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i);
                _mm256_testz_si256(v, v)
            };
            // One vector test rejects 256 empty row bits — the common case
            // on sparse adjacency rows; non-empty chunks fall back to the
            // scalar set-bit walk (the table loads are a data-dependent
            // gather either way).
            if empty == 0 {
                for (wi, &word) in row.iter().enumerate().take(i + 4).skip(i) {
                    let mut w = word;
                    let base = wi * 64;
                    while w != 0 {
                        acc |= table[base + w.trailing_zeros() as usize];
                        w &= w - 1;
                    }
                }
            }
            i += 4;
        }
        while i < n {
            let mut w = row[i];
            let base = i * 64;
            while w != 0 {
                acc |= table[base + w.trailing_zeros() as usize];
                w &= w - 1;
            }
            i += 1;
        }
        acc
    }
}

/// 512-bit AVX-512 loops (`avx512f` + `avx512dq`): the arithmetic family's
/// first real wide forms — `vpmullq` gives the 64-bit multiply folds a
/// packed implementation and `vcvtuqq2pd` the u64→f64 finalise — plus the
/// wider empty-chunk rejection for the row-broadcast gather.  Every
/// function carries the matching `#[target_feature]` and must only be
/// called after a successful runtime detection (the dispatch wrappers
/// guarantee it); slice lengths were validated by the wrapper, so the raw
/// pointer arithmetic stays in bounds.
#[cfg(target_arch = "x86_64")]
mod wide512 {
    use std::arch::x86_64::{
        __m512d, __m512i, _mm512_add_epi64, _mm512_castsi512_pd, _mm512_cmpeq_epu64_mask,
        _mm512_cmplt_epu64_mask, _mm512_cvtepu64_pd, _mm512_div_pd, _mm512_loadu_si512,
        _mm512_mask_mov_epi64, _mm512_mask_mov_pd, _mm512_mullo_epi64, _mm512_set1_epi64,
        _mm512_setzero_si512, _mm512_storeu_pd, _mm512_storeu_si512, _mm512_test_epi64_mask,
    };

    /// Loads 8 words from `s[i..]`.
    ///
    /// # Safety
    /// Requires runtime `avx512f` support and `i + 8 <= s.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn load(s: &[u64], i: usize) -> __m512i {
        // SAFETY: caller guarantees i + 8 <= s.len().
        unsafe { _mm512_loadu_si512(s.as_ptr().add(i) as *const __m512i) }
    }

    /// Stores 8 words to `d[i..]`.
    ///
    /// # Safety
    /// Requires runtime `avx512f` support and `i + 8 <= d.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn store(d: &mut [u64], i: usize, v: __m512i) {
        // SAFETY: caller guarantees i + 8 <= d.len().
        unsafe { _mm512_storeu_si512(d.as_mut_ptr().add(i) as *mut __m512i, v) }
    }

    /// # Safety
    /// Requires runtime `avx512f` + `avx512dq` support.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn wrapping_scale_offset(dst: &mut [u64], k: u64, c: u64) {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY: the loop guard keeps every 8-word access in bounds;
        // avx512f/dq are guaranteed by the caller contract.
        unsafe {
            let vk = _mm512_set1_epi64(k as i64);
            let vc = _mm512_set1_epi64(c as i64);
            while i + 8 <= n {
                let d = load(dst, i);
                store(dst, i, _mm512_add_epi64(_mm512_mullo_epi64(d, vk), vc));
                i += 8;
            }
        }
        while i < n {
            dst[i] = dst[i].wrapping_mul(k).wrapping_add(c);
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx512f` + `avx512dq` support and equal column
    /// lengths.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn wrapping_scale_offset_into(out: &mut [u64], src: &[u64], k: u64, c: u64) {
        let n = out.len();
        let mut i = 0usize;
        // SAFETY: loop guard + wrapper-validated lengths keep the 8-word
        // accesses in bounds; avx512f/dq guaranteed by the caller contract.
        unsafe {
            let vk = _mm512_set1_epi64(k as i64);
            let vc = _mm512_set1_epi64(c as i64);
            while i + 8 <= n {
                let s = load(src, i);
                store(out, i, _mm512_add_epi64(_mm512_mullo_epi64(s, vk), vc));
                i += 8;
            }
        }
        while i < n {
            out[i] = src[i].wrapping_mul(k).wrapping_add(c);
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx512f` + `avx512dq` support and equal column
    /// lengths.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn saturating_add_scaled(dst: &mut [u64], src: &[u64], k: u64) {
        if k == 0 {
            // src[i]·0 saturates to 0; dst is unchanged.
            return;
        }
        let n = dst.len();
        let mut i = 0usize;
        // The product s·k (k > 0) overflows exactly when s > u64::MAX / k,
        // so one scalar division turns saturating_mul into an unsigned
        // compare; the saturating add overflows exactly when the wrapped
        // sum is less than either addend.
        let threshold = u64::MAX / k;
        // SAFETY: loop guard + wrapper-validated lengths keep the 8-word
        // accesses in bounds; avx512f/dq guaranteed by the caller contract.
        unsafe {
            let vk = _mm512_set1_epi64(k as i64);
            let vmax = _mm512_set1_epi64(u64::MAX as i64);
            let vthreshold = _mm512_set1_epi64(threshold as i64);
            while i + 8 <= n {
                let d = load(dst, i);
                let s = load(src, i);
                let mul_sat = _mm512_cmplt_epu64_mask(vthreshold, s);
                let m = _mm512_mask_mov_epi64(_mm512_mullo_epi64(s, vk), mul_sat, vmax);
                let sum = _mm512_add_epi64(d, m);
                let add_sat = _mm512_cmplt_epu64_mask(sum, d);
                store(dst, i, _mm512_mask_mov_epi64(sum, add_sat, vmax));
                i += 8;
            }
        }
        while i < n {
            dst[i] = dst[i].saturating_add(src[i].saturating_mul(k));
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx512f` + `avx512dq` support and equal column
    /// lengths.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn ratio_to_f64(out: &mut [f64], num: &[u64], den: &[u64]) {
        let n = out.len();
        let mut i = 0usize;
        // SAFETY: loop guard + wrapper-validated lengths keep the 8-lane
        // accesses in bounds; avx512f/dq guaranteed by the caller contract.
        unsafe {
            // The NaN is built from the constant's exact bit pattern (a
            // broadcast move, never an arithmetic 0/0), preserving the
            // to_bits contract of the scalar specification.
            let nan: __m512d = _mm512_castsi512_pd(_mm512_set1_epi64(f64::NAN.to_bits() as i64));
            let zero = _mm512_setzero_si512();
            while i + 8 <= n {
                let vn = load(num, i);
                let vd = load(den, i);
                let q = _mm512_div_pd(_mm512_cvtepu64_pd(vn), _mm512_cvtepu64_pd(vd));
                let den_zero = _mm512_cmpeq_epu64_mask(vd, zero);
                _mm512_storeu_pd(out.as_mut_ptr().add(i), _mm512_mask_mov_pd(q, den_zero, nan));
                i += 8;
            }
        }
        while i < n {
            out[i] = if den[i] > 0 { num[i] as f64 / den[i] as f64 } else { f64::NAN };
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx512f` support and `table.len() >= row.len() * 64`
    /// (wrapper invariant).
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn intersects_many(row: &[u64], table: &[u64]) -> u64 {
        let n = row.len();
        let mut acc = 0u64;
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n, so the eight-word unaligned load is in
            // bounds; avx512f is guaranteed by the caller contract.
            let occupied = unsafe {
                let v = load(row, i);
                _mm512_test_epi64_mask(v, v)
            };
            // One vector test rejects 512 empty row bits; each remaining
            // non-empty word (flagged in the test mask) walks its set bits
            // scalar — the table loads are a data-dependent gather.
            let mut words = occupied;
            while words != 0 {
                let wi = i + words.trailing_zeros() as usize;
                let mut w = row[wi];
                let base = wi * 64;
                while w != 0 {
                    acc |= table[base + w.trailing_zeros() as usize];
                    w &= w - 1;
                }
                words &= words - 1;
            }
            i += 8;
        }
        while i < n {
            let mut w = row[i];
            let base = i * 64;
            while w != 0 {
                acc |= table[base + w.trailing_zeros() as usize];
                w &= w - 1;
            }
            i += 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The adversarial capacities (bits) from the dispatch contract: word
    /// boundaries, the unroll width (4 words = 256 bits) and off-by-ones
    /// around both.
    const CAPACITIES: [usize; 9] = [0, 1, 63, 64, 65, 255, 256, 4095, 4097];

    /// Every mode the machine can actually execute (an unsupported mode
    /// would silently degrade to the same code as a supported one).
    fn modes() -> Vec<KernelMode> {
        let mut modes = vec![KernelMode::Portable];
        if KernelMode::wide_supported() {
            modes.push(KernelMode::Wide);
        }
        if KernelMode::wide512_supported() {
            modes.push(KernelMode::Wide512);
        }
        modes
    }

    /// Deterministic word soup from a seed (splitmix64), masked to `bits`.
    fn words_for(bits: usize, mut seed: u64) -> Vec<u64> {
        let mut words = vec![0u64; bits.div_ceil(64)];
        for w in &mut words {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        if !bits.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (bits % 64)) - 1;
            }
        }
        words
    }

    #[test]
    fn from_env_parses_overrides_and_defaults() {
        let auto = KernelMode::from_env(None);
        assert_eq!(KernelMode::from_env(Some("")), auto);
        assert_eq!(KernelMode::from_env(Some("portable")), KernelMode::Portable);
        let wide = KernelMode::from_env(Some("wide"));
        let wide512 = KernelMode::from_env(Some("wide512"));
        assert_eq!(wide512, auto, "wide512 degrades to the best supported mode");
        if KernelMode::wide512_supported() {
            assert_eq!(auto, KernelMode::Wide512);
            assert_eq!(wide, KernelMode::Wide, "wide pins the AVX2 arm, never upgrades");
        } else if KernelMode::wide_supported() {
            assert_eq!(auto, KernelMode::Wide);
            assert_eq!(wide, KernelMode::Wide);
        } else {
            assert_eq!(auto, KernelMode::Portable);
            assert_eq!(wide, KernelMode::Portable, "unsupported wide degrades to portable");
        }
    }

    #[test]
    fn from_env_falls_back_to_auto_on_unknown_values() {
        // A typo in the environment must never kill a serving process: the
        // unrecognised override warns and auto-detects.
        let auto = KernelMode::from_env(None);
        assert_eq!(KernelMode::from_env(Some("avx512")), auto);
        assert_eq!(KernelMode::from_env(Some("WIDE")), auto, "overrides are case-sensitive");
    }

    #[test]
    fn active_mode_is_stable_across_calls() {
        assert_eq!(KernelMode::active(), KernelMode::active());
    }

    #[test]
    fn kernels_agree_with_scalar_at_adversarial_capacities() {
        for &bits in &CAPACITIES {
            for seed in 0..4u64 {
                let dst0 = words_for(bits, seed);
                let rows: Vec<Vec<u64>> =
                    (0..5).map(|r| words_for(bits, seed * 31 + r + 1)).collect();
                for take in [0usize, 1, 2, 5] {
                    let refs: Vec<&[u64]> = rows[..take].iter().map(Vec::as_slice).collect();
                    let mut expected = dst0.clone();
                    let expected_count = scalar::or_rows_count(&mut expected, &refs);
                    for mode in modes() {
                        let mut dst = dst0.clone();
                        let got = or_rows_count_in(mode, &mut dst, &refs);
                        assert_eq!(dst, expected, "{bits} bits, {take} rows, {mode:?}");
                        assert_eq!(got, expected_count, "{bits} bits, {take} rows, {mode:?}");

                        let mut dst = dst0.clone();
                        or_rows_in(mode, &mut dst, &refs);
                        assert_eq!(dst, expected, "or_rows: {bits} bits, {take} rows, {mode:?}");

                        // The gather: previous dst contents must not leak in.
                        let mut set_expected = dst0.clone();
                        let set_count = scalar::set_rows_count(&mut set_expected, &refs);
                        let mut dst = dst0.clone();
                        let got = set_rows_count_in(mode, &mut dst, &refs);
                        assert_eq!(dst, set_expected, "set: {bits} bits, {take} rows, {mode:?}");
                        assert_eq!(got, set_count, "set count: {bits} bits, {take} rows, {mode:?}");

                        let mut dst = dst0.clone();
                        set_rows_in(mode, &mut dst, &refs);
                        assert_eq!(
                            dst, set_expected,
                            "set_rows: {bits} bits, {take} rows, {mode:?}"
                        );

                        for row in &refs {
                            assert_eq!(
                                intersects_in(mode, &dst0, row),
                                scalar::intersects(&dst0, row),
                                "intersects: {bits} bits, {mode:?}"
                            );
                        }
                    }
                    assert_eq!(count(&expected), expected_count, "count: {bits} bits");
                }
            }
        }
    }

    #[test]
    fn intersects_many_agrees_with_scalar() {
        for &bits in &CAPACITIES {
            for seed in 0..3u64 {
                let row = words_for(bits, seed * 13 + 1);
                let table = column_for(row.len() * 64, seed * 13 + 2);
                let expected = scalar::intersects_many(&row, &table);
                for mode in modes() {
                    assert_eq!(
                        intersects_many_in(mode, &row, &table),
                        expected,
                        "intersects_many: {bits} bits, {mode:?}"
                    );
                }
                // The indexed twin over the same members must see the same
                // table lanes.
                let mut indices = Vec::new();
                for_each_set_bit(&row, |b| indices.push(b));
                assert_eq!(
                    intersects_many_indexed(&indices, &table),
                    scalar::intersects_many_indexed(&indices, &table),
                    "indexed: {bits} bits"
                );
                assert_eq!(intersects_many_indexed(&indices, &table), expected);
            }
        }
        assert_eq!(intersects_many_indexed(&[], &[]), 0, "no indices, no intersections");
    }

    #[test]
    #[should_panic(expected = "table too short")]
    fn short_membership_tables_are_rejected() {
        let row = vec![1u64; 2];
        let table = vec![0u64; 127];
        intersects_many(&row, &table);
    }

    #[test]
    fn intersects_handles_length_mismatch_like_scalar() {
        let long = words_for(4097, 7);
        let short = words_for(65, 8);
        for mode in modes() {
            assert_eq!(intersects_in(mode, &long, &short), scalar::intersects(&long, &short));
            assert_eq!(intersects_in(mode, &short, &long), scalar::intersects(&short, &long));
            assert!(!intersects_in(mode, &long, &[]));
            assert!(!intersects_in(mode, &[], &long));
        }
    }

    #[test]
    fn set_bit_extraction_matches_a_naive_scan() {
        for &bits in &CAPACITIES {
            let words = words_for(bits, 3);
            let mut got = Vec::new();
            for_each_set_bit(&words, |b| got.push(b));
            let expected: Vec<usize> =
                (0..bits).filter(|&b| words[b / 64] & (1u64 << (b % 64)) != 0).collect();
            assert_eq!(got, expected, "{bits} bits");
            assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending order");
            assert_eq!(got.len() as u64, count(&words));

            assert!(all_set_bits(&words, |b| expected.contains(&b)));
            if let Some(&first) = expected.first() {
                let mut seen = 0usize;
                assert!(!all_set_bits(&words, |b| {
                    seen += 1;
                    b != first
                }));
                assert_eq!(seen, 1, "early exit after the first failing bit");
            }
        }
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn mismatched_rows_are_rejected() {
        let mut dst = vec![0u64; 4];
        let row = vec![0u64; 3];
        or_rows_count(&mut dst, &[&row]);
    }

    /// Column lengths exercising the 4-word unroll boundaries of the
    /// arithmetic family (and zero / single-element edges).
    const COLUMN_LENS: [usize; 7] = [0, 1, 3, 4, 5, 129, 1000];

    /// A word soup with sentinel-heavy content: ordinary values, zeros and
    /// `u64::MAX` (the `NONE` sentinel of the accumulator bank) mixed in.
    fn column_for(len: usize, seed: u64) -> Vec<u64> {
        let raw = words_for(len.max(1) * 64, seed);
        (0..len)
            .map(|i| match raw[i] % 5 {
                0 => 0,
                1 => u64::MAX,
                2 => raw[i] >> 32,
                _ => raw[i],
            })
            .collect()
    }

    /// A word-mask column (`0` / `u64::MAX` lanes only).
    fn mask_for(len: usize, seed: u64) -> Vec<u64> {
        column_for(len, seed).iter().map(|&w| if w % 2 == 0 { 0 } else { u64::MAX }).collect()
    }

    #[test]
    fn arithmetic_family_agrees_with_scalar_at_unroll_boundaries() {
        for &len in &COLUMN_LENS {
            for seed in 0..3u64 {
                let a = column_for(len, seed * 7 + 1);
                let b = column_for(len, seed * 7 + 2);
                let m = mask_for(len, seed * 7 + 3);
                for (k, c) in [(0u64, 0u64), (1, 0), (3, 17), (u64::MAX, 1), (1 << 40, u64::MAX)] {
                    let mut expected = a.clone();
                    scalar::wrapping_scale_offset(&mut expected, k, c);
                    let mut expected_sat = a.clone();
                    scalar::saturating_add_scaled(&mut expected_sat, &b, k);
                    for mode in modes() {
                        let mut got = a.clone();
                        wrapping_scale_offset_in(mode, &mut got, k, c);
                        assert_eq!(got, expected, "scale_offset len {len} k {k} c {c} {mode:?}");
                        let mut got_into = vec![0u64; len];
                        wrapping_scale_offset_into_in(mode, &mut got_into, &a, k, c);
                        assert_eq!(
                            got_into, expected,
                            "scale_offset_into len {len} k {k} c {c} {mode:?}"
                        );

                        let mut got = a.clone();
                        saturating_add_scaled_in(mode, &mut got, &b, k);
                        assert_eq!(got, expected_sat, "add_scaled len {len} k {k} {mode:?}");
                    }
                }
                let mut expected_f = vec![0.0f64; len];
                scalar::ratio_to_f64(&mut expected_f, &a, &b);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                for mode in modes() {
                    let mut got_f = vec![0.0f64; len];
                    ratio_to_f64_in(mode, &mut got_f, &a, &b);
                    assert_eq!(
                        bits(&got_f),
                        bits(&expected_f),
                        "ratio len {len} {mode:?} (NaN-aware)"
                    );
                }

                for mode in modes() {
                    let mut expected = a.clone();
                    scalar::max_assign(&mut expected, &b);
                    let mut got = a.clone();
                    max_assign_in(mode, &mut got, &b);
                    assert_eq!(got, expected, "max len {len} {mode:?}");

                    let mut expected = vec![0u64; len];
                    scalar::wrapping_sub_into(&mut expected, &a, &b);
                    let mut got = vec![0u64; len];
                    wrapping_sub_into_in(mode, &mut got, &a, &b);
                    assert_eq!(got, expected, "sub len {len} {mode:?}");

                    for negate in [false, true] {
                        for needle in [0u64, u64::MAX, a.first().copied().unwrap_or(7)] {
                            let mut expected = vec![0u64; len];
                            scalar::mask_cmp_scalar(&mut expected, &a, needle, negate);
                            let mut got = vec![0u64; len];
                            mask_cmp_scalar_in(mode, &mut got, &a, needle, negate);
                            assert_eq!(got, expected, "cmp_scalar len {len} {mode:?} {negate}");
                        }
                        let mut expected = vec![0u64; len];
                        scalar::mask_cmp_into(&mut expected, &a, &b, negate);
                        let mut got = vec![0u64; len];
                        mask_cmp_into_in(mode, &mut got, &a, &b, negate);
                        assert_eq!(got, expected, "cmp_into len {len} {mode:?} {negate}");
                    }

                    for op in [BitOp::And, BitOp::Or, BitOp::AndNot] {
                        let mut expected = a.clone();
                        scalar::bitop_assign(&mut expected, &b, op);
                        let mut got = a.clone();
                        bitop_assign_in(mode, &mut got, &b, op);
                        assert_eq!(got, expected, "bitop {op:?} len {len} {mode:?}");
                    }

                    let mut expected = a.clone();
                    scalar::blend_assign(&mut expected, &m, &b);
                    let mut got = a.clone();
                    blend_assign_in(mode, &mut got, &m, &b);
                    assert_eq!(got, expected, "blend len {len} {mode:?}");

                    let mut expected = a.clone();
                    scalar::blend_scalar_assign(&mut expected, &m, 0xABCD_EF01);
                    let mut got = a.clone();
                    blend_scalar_assign_in(mode, &mut got, &m, 0xABCD_EF01);
                    assert_eq!(got, expected, "blend_scalar len {len} {mode:?}");
                }
            }
        }
    }

    #[test]
    fn ratio_nan_uses_the_constant_bit_pattern() {
        // The spec demands the *constant* f64::NAN where the denominator is
        // zero — a hardware 0.0/0.0 has its sign bit set on x86 and would
        // break to_bits parity with the scalar finalise.  Nine lanes force
        // the 8-lane wide512 body (not just its scalar tail) through the
        // masked NaN blend.
        let num = [5u64, 7, 1, 2, 3, 4, 5, 6, 9];
        let den = [0u64, 2, 0, 1, 0, 2, 0, 3, 0];
        for mode in modes() {
            let mut out = [0.0f64; 9];
            ratio_to_f64_in(mode, &mut out, &num, &den);
            for i in 0..9 {
                if den[i] == 0 {
                    assert_eq!(out[i].to_bits(), f64::NAN.to_bits(), "lane {i} {mode:?}");
                } else {
                    assert_eq!(out[i].to_bits(), (num[i] as f64 / den[i] as f64).to_bits());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn mismatched_columns_are_rejected() {
        let mut dst = vec![0u64; 4];
        let src = vec![0u64; 3];
        max_assign(&mut dst, &src);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The arithmetic family, fuzzed: both modes match the scalar
        /// specification on arbitrary columns (sentinel-heavy content,
        /// arbitrary masks including partial words).
        #[test]
        fn arithmetic_kernels_are_bitwise_equal_to_scalar(
            len_index in 0usize..COLUMN_LENS.len(),
            seed in 0u64..1_000_000,
            k in prop::sample::select(vec![0u64, 1, 2, 31, u64::MAX, 1 << 33]),
        ) {
            let len = COLUMN_LENS[len_index];
            let a = column_for(len, seed);
            let b = column_for(len, seed ^ 0x5555_5555);
            // Raw (non-canonical) masks: the blend spec is bitwise, so any
            // word is a valid mask.
            let m = column_for(len, seed ^ 0xAAAA_AAAA);

            for mode in modes() {
                let mut expected = a.clone();
                scalar::wrapping_scale_offset(&mut expected, k, seed);
                let mut got = a.clone();
                wrapping_scale_offset_in(mode, &mut got, k, seed);
                prop_assert_eq!(&got, &expected);

                let mut expected = a.clone();
                scalar::saturating_add_scaled(&mut expected, &b, k);
                let mut got = a.clone();
                saturating_add_scaled_in(mode, &mut got, &b, k);
                prop_assert_eq!(&got, &expected);

                let mut expected = a.clone();
                scalar::max_assign(&mut expected, &b);
                let mut got = a.clone();
                max_assign_in(mode, &mut got, &b);
                prop_assert_eq!(&got, &expected);

                let mut expected = vec![0u64; len];
                scalar::mask_cmp_scalar(&mut expected, &a, k, true);
                let mut got = vec![0u64; len];
                mask_cmp_scalar_in(mode, &mut got, &a, k, true);
                prop_assert_eq!(&got, &expected);

                let mut expected = a.clone();
                scalar::blend_assign(&mut expected, &m, &b);
                let mut got = a.clone();
                blend_assign_in(mode, &mut got, &m, &b);
                prop_assert_eq!(&got, &expected);

                let mut expected = a.clone();
                scalar::bitop_assign(&mut expected, &m, BitOp::AndNot);
                let mut got = a.clone();
                bitop_assign_in(mode, &mut got, &m, BitOp::AndNot);
                prop_assert_eq!(&got, &expected);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The dispatch contract, fuzzed: both modes produce the scalar
        /// reference's bits and count for arbitrary word soups and row
        /// counts at every adversarial capacity.
        #[test]
        fn fused_kernels_are_bitwise_equal_to_scalar(
            cap_index in 0usize..CAPACITIES.len(),
            seed in 0u64..1_000_000,
            row_count in 0usize..9,
        ) {
            let bits = CAPACITIES[cap_index];
            let dst0 = words_for(bits, seed);
            let rows: Vec<Vec<u64>> =
                (0..row_count as u64).map(|r| words_for(bits, seed ^ (r + 1).wrapping_mul(0xDEAD_BEEF))).collect();
            let refs: Vec<&[u64]> = rows.iter().map(Vec::as_slice).collect();
            let mut expected = dst0.clone();
            let expected_count = scalar::or_rows_count(&mut expected, &refs);
            let mut set_expected = dst0.clone();
            let set_count = scalar::set_rows_count(&mut set_expected, &refs);
            let table = column_for(dst0.len() * 64, seed ^ 0x00C0_FFEE);
            let many_expected = scalar::intersects_many(&dst0, &table);
            for mode in modes() {
                prop_assert_eq!(intersects_many_in(mode, &dst0, &table), many_expected);
                let mut dst = dst0.clone();
                prop_assert_eq!(or_rows_count_in(mode, &mut dst, &refs), expected_count);
                prop_assert_eq!(&dst, &expected);
                let mut dst = dst0.clone();
                prop_assert_eq!(set_rows_count_in(mode, &mut dst, &refs), set_count);
                prop_assert_eq!(&dst, &set_expected);
                let mut dst = dst0.clone();
                set_rows_in(mode, &mut dst, &refs);
                prop_assert_eq!(&dst, &set_expected);
                for row in &refs {
                    prop_assert_eq!(
                        intersects_in(mode, &dst0, row),
                        scalar::intersects(&dst0, row)
                    );
                }
            }
        }
    }
}
