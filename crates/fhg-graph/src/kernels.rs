//! Fused word kernels: the one audited surface every hot bit loop runs on.
//!
//! PR 3 made the horizon analytically free for periodic schedules, which
//! left the closed-form analysis *emission-bound*: the `cycle` calls to
//! `ResidueTable::fill` / `HappySet::union_many` (OR residue rows, count the
//! result) and the word-wise independence probes dominate what is left.
//! Those are all straight-line bit kernels — exactly the shape that rewards
//! wide, fused word loops — so this module centralises them behind a small,
//! heavily-tested API and routes every hot caller through it:
//!
//! * [`set_rows_count`] — the **multi-row gather**: overwrite `dst` with the
//!   OR of any number of rows, rows indexed in the *inner* loop, counting
//!   the set bits of the result in the same pass.  One write-only sweep of
//!   `dst` replaces the old reset-memset + one-OR-pass-per-row +
//!   count-rescan emission shape.  Backs `HappySet::assign_many`, and
//!   through it `ResidueTable::fill`.
//! * [`or_rows_count`] — the **fused OR + popcount**: like the gather but
//!   OR-ing *into* the existing `dst` bits.  Backs `HappySet::union_many` /
//!   `union_with`.
//! * [`or_rows`] — the same multi-row OR without the count, for interior
//!   batches when a caller fuses the count into its final batch only.
//! * [`intersects`] — the **fused AND-any** with per-block early exit,
//!   backing `FixedBitSet::intersects` and the dense adjacency-row
//!   independence checker.
//! * [`count`] — unrolled popcount of a word slice.
//! * [`for_each_set_bit`] / [`all_set_bits`] — **set-bit extraction** via
//!   `trailing_zeros` word scans, backing `hosts_into`, the `CycleProfile`
//!   attendance recording and the word-raw member walks of both
//!   independence checkers.
//!
//! # Dispatch contract
//!
//! Every data-plane kernel exists in two implementations:
//!
//! * **portable** — unrolled `u64x4`-style scalar loops, available on every
//!   target, and
//! * **wide** — 256-bit AVX2 loops, compiled only for `x86_64` and executed
//!   only after a successful runtime `avx2` detection.
//!
//! [`KernelMode::active`] decides between them **once per process** and
//! caches the decision in a `OnceLock` (so the hot path never re-detects and
//! never re-reads the environment): the `FHG_KERNEL` environment variable
//! (`portable` | `wide`) overrides for parity testing, otherwise the wide
//! path is used wherever it is supported.  Requesting `wide` on a machine
//! without AVX2 falls back to portable — the override selects an
//! implementation, it cannot make unsupported instructions execute.
//!
//! Both implementations are **bitwise-identical by contract**: for every
//! input, every kernel returns the same bits in `dst` and the same scalar
//! result under either mode.  The property tests in this module pin that at
//! adversarial capacities (0, 1, 63, 64, 65, 255, 256, 4095, 4097 bits)
//! against a third, deliberately naive scalar reference ([`scalar`]), and CI
//! runs the full workspace suite with `FHG_KERNEL=portable` forced so the
//! wide path can never silently diverge.
//!
//! # How to add a kernel
//!
//! 1. Write the naive loop in [`scalar`] — that is the specification.
//! 2. Add the unrolled portable version to [`portable`] and (only if the
//!    inner loop genuinely vectorises) the AVX2 version to the
//!    `x86_64`-gated `wide` module, as an `unsafe fn` with
//!    `#[target_feature(enable = "avx2")]` and a safety comment.
//! 3. Export a dispatching wrapper (`fn name(...)`) that validates slice
//!    lengths **before** dispatch plus an explicit-mode twin (`name_in`) for
//!    differential tests, following [`or_rows_count`] / [`or_rows_count_in`].
//! 4. Extend `proptest` parity below to cover the new kernel at the
//!    adversarial capacities, under both modes, against the scalar
//!    reference.
//!
//! This is the single module in the crate allowed to use `unsafe` (the
//! crate is otherwise `deny(unsafe_code)`); the only unsafe operations are
//! the AVX2 intrinsics behind the runtime feature check.

#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Which implementation the word kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Unrolled portable `u64x4`-style loops; available on every target.
    Portable,
    /// 256-bit AVX2 loops; `x86_64` with runtime `avx2` support only.
    Wide,
}

impl KernelMode {
    /// Whether the [`KernelMode::Wide`] path can execute on this machine.
    pub fn wide_supported() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// The mode every dispatching kernel entry point uses, decided once per
    /// process and cached in a `OnceLock`: the `FHG_KERNEL` override
    /// (`portable` | `wide`) when set, otherwise [`KernelMode::Wide`]
    /// wherever [`KernelMode::wide_supported`] — so the per-call cost is one
    /// atomic load, never a feature re-detection or an environment read.
    ///
    /// # Panics
    /// Panics if `FHG_KERNEL` is set to an unrecognised value.
    pub fn active() -> KernelMode {
        static MODE: OnceLock<KernelMode> = OnceLock::new();
        *MODE.get_or_init(|| Self::from_env(std::env::var("FHG_KERNEL").ok().as_deref()))
    }

    /// Parses the `FHG_KERNEL` override (factored out of [`KernelMode::active`]
    /// so the policy is testable despite the process-wide cache).
    fn from_env(var: Option<&str>) -> KernelMode {
        let auto = if Self::wide_supported() { KernelMode::Wide } else { KernelMode::Portable };
        match var {
            None | Some("") => auto,
            Some("portable") => KernelMode::Portable,
            // The override selects an implementation; it cannot make
            // unsupported instructions execute, so `wide` degrades to the
            // best supported mode.
            Some("wide") => auto,
            Some(other) => {
                panic!("FHG_KERNEL={other:?} is not a kernel mode (use \"portable\" or \"wide\")")
            }
        }
    }
}

/// Asserts every row spans exactly the destination's words, so the
/// implementations below may trust their indices.
fn check_rows(dst_len: usize, rows: &[&[u64]]) {
    for row in rows {
        assert_eq!(row.len(), dst_len, "kernel row length mismatch");
    }
}

/// Overwrites `dst` with the OR of the rows and returns the number of set
/// bits in the result, in **one write-only pass** over the `dst` words
/// (rows indexed in the inner loop, count fused) — the multi-row gather
/// behind `HappySet::assign_many` and the table emission path.  Unlike
/// [`or_rows_count`] the previous contents of `dst` do not participate, so
/// emission skips both the reset memset and the per-block `dst` load.
///
/// With no rows this zeroes `dst` and returns 0.
///
/// # Panics
/// Panics if some row's length differs from `dst`'s.
pub fn set_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
    set_rows_count_in(KernelMode::active(), dst, rows)
}

/// [`set_rows_count`] under an explicit [`KernelMode`] — the entry point
/// differential tests and benchmarks use to compare the two implementations
/// in one process.  [`KernelMode::Wide`] degrades to portable where
/// unsupported.
pub fn set_rows_count_in(mode: KernelMode, dst: &mut [u64], rows: &[&[u64]]) -> u64 {
    check_rows(dst.len(), rows);
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::set_rows_count(dst, rows) }
        }
        _ => portable::set_rows_count(dst, rows),
    }
}

/// [`set_rows_count`] without the count — the interior-batch variant for
/// callers that fuse the cardinality into their final batch only.
///
/// # Panics
/// Panics if some row's length differs from `dst`'s.
pub fn set_rows(dst: &mut [u64], rows: &[&[u64]]) {
    set_rows_in(KernelMode::active(), dst, rows);
}

/// [`set_rows`] under an explicit [`KernelMode`].
pub fn set_rows_in(mode: KernelMode, dst: &mut [u64], rows: &[&[u64]]) {
    check_rows(dst.len(), rows);
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::set_rows(dst, rows) }
        }
        _ => portable::set_rows(dst, rows),
    }
}

/// ORs every row into `dst` and returns the number of set bits in the
/// result, in **one fused pass** over the `dst` words (rows indexed in the
/// inner loop) — the emission kernel behind `HappySet::union_many`.
///
/// With no rows this is a pure popcount of `dst`.
///
/// # Panics
/// Panics if some row's length differs from `dst`'s.
pub fn or_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
    or_rows_count_in(KernelMode::active(), dst, rows)
}

/// [`or_rows_count`] under an explicit [`KernelMode`] — the entry point
/// differential tests and benchmarks use to compare the two implementations
/// in one process.  [`KernelMode::Wide`] degrades to portable where
/// unsupported.
pub fn or_rows_count_in(mode: KernelMode, dst: &mut [u64], rows: &[&[u64]]) -> u64 {
    check_rows(dst.len(), rows);
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::or_rows_count(dst, rows) }
        }
        _ => portable::or_rows_count(dst, rows),
    }
}

/// ORs every row into `dst` without counting — the interior-batch variant of
/// [`or_rows_count`] for callers that fuse the count into their final batch.
///
/// # Panics
/// Panics if some row's length differs from `dst`'s.
pub fn or_rows(dst: &mut [u64], rows: &[&[u64]]) {
    or_rows_in(KernelMode::active(), dst, rows);
}

/// [`or_rows`] under an explicit [`KernelMode`].
pub fn or_rows_in(mode: KernelMode, dst: &mut [u64], rows: &[&[u64]]) {
    check_rows(dst.len(), rows);
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::or_rows(dst, rows) }
        }
        _ => portable::or_rows(dst, rows),
    }
}

/// Whether `a` and `b` share any set bit — the fused AND-any with per-block
/// early exit behind `FixedBitSet::intersects` and the dense independence
/// checker.  Lengths may differ; only the common prefix can intersect.
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    intersects_in(KernelMode::active(), a, b)
}

/// [`intersects`] under an explicit [`KernelMode`].
pub fn intersects_in(mode: KernelMode, a: &[u64], b: &[u64]) -> bool {
    match mode {
        #[cfg(target_arch = "x86_64")]
        KernelMode::Wide if KernelMode::wide_supported() => {
            // SAFETY: the avx2 feature was verified at runtime on this line.
            unsafe { wide::intersects(a, b) }
        }
        _ => portable::intersects(a, b),
    }
}

/// Number of set bits in `words` (unrolled popcount; the popcount unit is
/// scalar on every supported target, so there is no wide variant).
pub fn count(words: &[u64]) -> u64 {
    portable::count(words)
}

/// Calls `f` with the index of every set bit of `words`, ascending — the
/// set-bit extraction kernel (`trailing_zeros` word scan) behind
/// `hosts_into` and the `CycleProfile` attendance recording.
#[inline]
pub fn for_each_set_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            f(wi * 64 + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

/// Whether `pred` holds for every set bit of `words` (ascending, early
/// exit on the first `false`) — the member walk of both independence
/// checkers.
#[inline]
pub fn all_set_bits(words: &[u64], mut pred: impl FnMut(usize) -> bool) -> bool {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            if !pred(wi * 64 + w.trailing_zeros() as usize) {
                return false;
            }
            w &= w - 1;
        }
    }
    true
}

/// The deliberately naive reference implementations: one full `dst` pass per
/// row followed by a separate popcount rescan — the exact pre-kernel (PR 3)
/// emission shape.  These are the *specification* the fused kernels are
/// property-tested against, and the differential baseline experiment `e13`
/// and `benches/kernels.rs` time the fused paths over.
pub mod scalar {
    /// One OR pass over `dst` per row, then a separate count rescan.
    ///
    /// # Panics
    /// Panics if some row's length differs from `dst`'s.
    pub fn or_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        super::check_rows(dst.len(), rows);
        for row in rows {
            for (d, r) in dst.iter_mut().zip(*row) {
                *d |= r;
            }
        }
        dst.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Zero `dst`, then one OR pass per row, then a count rescan — the
    /// exact pre-kernel emission sequence (`reset` memset + `union_with`
    /// loop + cardinality recount).
    ///
    /// # Panics
    /// Panics if some row's length differs from `dst`'s.
    pub fn set_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        dst.iter_mut().for_each(|w| *w = 0);
        or_rows_count(dst, rows)
    }

    /// Word-at-a-time AND-any over the common prefix.
    pub fn intersects(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).any(|(x, y)| x & y != 0)
    }
}

/// Unrolled portable loops — `u64x4`-style: four words per iteration, rows
/// in the inner loop, so the compiler can keep the four accumulators in
/// registers (and autovectorise where profitable).
mod portable {
    /// One write-only gather pass at compile-time arity `K` (the row count
    /// of every table the experiments build is tiny).  The `..n` re-slices
    /// prove the lengths to LLVM, so the loop autovectorises with the inner
    /// row loop fully unrolled.
    fn gather_fixed<const K: usize>(dst: &mut [u64], rows: &[&[u64]]) {
        let n = dst.len();
        let rows: [&[u64]; K] = std::array::from_fn(|k| &rows[k][..n]);
        for (i, d) in dst.iter_mut().enumerate() {
            let mut w = 0u64;
            for row in &rows {
                w |= row[i];
            }
            *d = w;
        }
    }

    pub(super) fn set_rows(dst: &mut [u64], rows: &[&[u64]]) {
        match rows.len() {
            0 => dst.iter_mut().for_each(|w| *w = 0),
            1 => gather_fixed::<1>(dst, rows),
            2 => gather_fixed::<2>(dst, rows),
            3 => gather_fixed::<3>(dst, rows),
            4 => gather_fixed::<4>(dst, rows),
            5 => gather_fixed::<5>(dst, rows),
            6 => gather_fixed::<6>(dst, rows),
            7 => gather_fixed::<7>(dst, rows),
            8 => gather_fixed::<8>(dst, rows),
            // Beyond the batch width callers already split; degrade to the
            // gather-into-zeroed-destination shape.
            _ => {
                dst.iter_mut().for_each(|w| *w = 0);
                or_rows(dst, rows);
            }
        }
    }

    pub(super) fn set_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        set_rows(dst, rows);
        count(dst)
    }

    pub(super) fn or_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        let n = dst.len();
        let mut total = 0u64;
        let mut i = 0usize;
        while i + 4 <= n {
            let (mut w0, mut w1, mut w2, mut w3) = (dst[i], dst[i + 1], dst[i + 2], dst[i + 3]);
            for row in rows {
                w0 |= row[i];
                w1 |= row[i + 1];
                w2 |= row[i + 2];
                w3 |= row[i + 3];
            }
            dst[i] = w0;
            dst[i + 1] = w1;
            dst[i + 2] = w2;
            dst[i + 3] = w3;
            total +=
                u64::from(w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones());
            i += 4;
        }
        while i < n {
            let mut w = dst[i];
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            total += u64::from(w.count_ones());
            i += 1;
        }
        total
    }

    pub(super) fn or_rows(dst: &mut [u64], rows: &[&[u64]]) {
        let n = dst.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let (mut w0, mut w1, mut w2, mut w3) = (dst[i], dst[i + 1], dst[i + 2], dst[i + 3]);
            for row in rows {
                w0 |= row[i];
                w1 |= row[i + 1];
                w2 |= row[i + 2];
                w3 |= row[i + 3];
            }
            dst[i] = w0;
            dst[i + 1] = w1;
            dst[i + 2] = w2;
            dst[i + 3] = w3;
            i += 4;
        }
        while i < n {
            let mut w = dst[i];
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            i += 1;
        }
    }

    pub(super) fn intersects(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let mut i = 0usize;
        while i + 4 <= n {
            let hit = (a[i] & b[i])
                | (a[i + 1] & b[i + 1])
                | (a[i + 2] & b[i + 2])
                | (a[i + 3] & b[i + 3]);
            if hit != 0 {
                return true;
            }
            i += 4;
        }
        while i < n {
            if a[i] & b[i] != 0 {
                return true;
            }
            i += 1;
        }
        false
    }

    pub(super) fn count(words: &[u64]) -> u64 {
        let n = words.len();
        let mut total = 0u64;
        let mut i = 0usize;
        while i + 4 <= n {
            total += u64::from(
                words[i].count_ones()
                    + words[i + 1].count_ones()
                    + words[i + 2].count_ones()
                    + words[i + 3].count_ones(),
            );
            i += 4;
        }
        while i < n {
            total += u64::from(words[i].count_ones());
            i += 1;
        }
        total
    }
}

/// 256-bit AVX2 loops.  Every function here carries
/// `#[target_feature(enable = "avx2")]` and must only be called after a
/// successful runtime `avx2` detection (the dispatch wrappers above
/// guarantee it); slice lengths were validated by the wrapper, so the raw
/// pointer arithmetic stays in bounds.
#[cfg(target_arch = "x86_64")]
mod wide {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_extract_epi64,
        _mm256_loadu_si256, _mm256_or_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_storeu_si256,
        _mm256_testz_si256,
    };

    /// Adds the popcount of `v` to the four 64-bit lane counters of `acc` —
    /// the classic nibble-LUT vector popcount (`pshufb` twice, byte-sum via
    /// `sad_epu8`): the count stays in registers block after block, never
    /// re-reading the words just stored and never leaving the vector domain
    /// until [`sum_lanes`] folds the counters once per call.
    ///
    /// # Safety
    /// Requires runtime `avx2` support.
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_add(acc: __m256i, v: __m256i) -> __m256i {
        // Register-only intrinsics: safe to call once the avx2 target
        // feature is in effect (the caller contract).
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
        let per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_add_epi64(acc, _mm256_sad_epu8(per_byte, _mm256_setzero_si256()))
    }

    /// Folds the four 64-bit lane counters into one scalar total.
    ///
    /// # Safety
    /// Requires runtime `avx2` support.
    #[target_feature(enable = "avx2")]
    unsafe fn sum_lanes(acc: __m256i) -> u64 {
        // Register-only intrinsics: safe to call once the avx2 target
        // feature is in effect (the caller contract).
        (_mm256_extract_epi64::<0>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<1>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<2>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<3>(acc) as u64)
    }

    /// # Safety
    /// Requires runtime `avx2` support and `row.len() == dst.len()` for
    /// every row.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn set_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY (whole block): the loop guards keep every load/store of 4
        // words within `n`, and every row spans n words (wrapper
        // invariant); avx2 is guaranteed by the caller contract.
        let mut total = unsafe {
            // Two independent accumulator chains (8 words per iteration):
            // amortises the loop and row-pointer overhead and keeps the
            // popcount chains from serialising on one counter register.
            let mut counters0 = _mm256_setzero_si256();
            let mut counters1 = _mm256_setzero_si256();
            while i + 8 <= n {
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                for row in rows {
                    let p = row.as_ptr().add(i);
                    acc0 = _mm256_or_si256(acc0, _mm256_loadu_si256(p as *const __m256i));
                    acc1 = _mm256_or_si256(acc1, _mm256_loadu_si256(p.add(4) as *const __m256i));
                }
                let q = dst.as_mut_ptr().add(i);
                _mm256_storeu_si256(q as *mut __m256i, acc0);
                _mm256_storeu_si256(q.add(4) as *mut __m256i, acc1);
                counters0 = popcount_add(counters0, acc0);
                counters1 = popcount_add(counters1, acc1);
                i += 8;
            }
            if i + 4 <= n {
                let mut acc = _mm256_setzero_si256();
                for row in rows {
                    acc = _mm256_or_si256(
                        acc,
                        _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i),
                    );
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, acc);
                counters0 = popcount_add(counters0, acc);
                i += 4;
            }
            sum_lanes(_mm256_add_epi64(counters0, counters1))
        };
        while i < n {
            let mut w = 0u64;
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            total += u64::from(w.count_ones());
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires runtime `avx2` support and `row.len() == dst.len()` for
    /// every row.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn set_rows(dst: &mut [u64], rows: &[&[u64]]) {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY (whole block): the loop guards keep every load/store of 8
        // (then 4) words within `n`, and every row spans n words (wrapper
        // invariant); avx2 is guaranteed by the caller contract.
        unsafe {
            while i + 8 <= n {
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                for row in rows {
                    let p = row.as_ptr().add(i);
                    acc0 = _mm256_or_si256(acc0, _mm256_loadu_si256(p as *const __m256i));
                    acc1 = _mm256_or_si256(acc1, _mm256_loadu_si256(p.add(4) as *const __m256i));
                }
                let q = dst.as_mut_ptr().add(i);
                _mm256_storeu_si256(q as *mut __m256i, acc0);
                _mm256_storeu_si256(q.add(4) as *mut __m256i, acc1);
                i += 8;
            }
            if i + 4 <= n {
                let mut acc = _mm256_setzero_si256();
                for row in rows {
                    acc = _mm256_or_si256(
                        acc,
                        _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i),
                    );
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, acc);
                i += 4;
            }
        }
        while i < n {
            let mut w = 0u64;
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx2` support and `row.len() == dst.len()` for
    /// every row.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn or_rows_count(dst: &mut [u64], rows: &[&[u64]]) -> u64 {
        let n = dst.len();
        let mut i = 0usize;
        // SAFETY (whole block): i + 4 <= n and every row spans n words
        // (wrapper invariant), so all four-word unaligned loads are in
        // bounds; avx2 is guaranteed by the caller contract.
        let mut total = unsafe {
            let mut counters = _mm256_setzero_si256();
            while i + 4 <= n {
                let p = dst.as_ptr().add(i) as *const __m256i;
                let mut acc = _mm256_loadu_si256(p);
                for row in rows {
                    acc = _mm256_or_si256(
                        acc,
                        _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i),
                    );
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, acc);
                counters = popcount_add(counters, acc);
                i += 4;
            }
            sum_lanes(counters)
        };
        while i < n {
            let mut w = dst[i];
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            total += u64::from(w.count_ones());
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires runtime `avx2` support and `row.len() == dst.len()` for
    /// every row.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn or_rows(dst: &mut [u64], rows: &[&[u64]]) {
        let n = dst.len();
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n and every row spans n words (wrapper
            // invariant), so all four-word unaligned loads are in bounds.
            unsafe {
                let p = dst.as_ptr().add(i) as *const __m256i;
                let mut acc = _mm256_loadu_si256(p);
                for row in rows {
                    acc = _mm256_or_si256(
                        acc,
                        _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i),
                    );
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, acc);
            }
            i += 4;
        }
        while i < n {
            let mut w = dst[i];
            for row in rows {
                w |= row[i];
            }
            dst[i] = w;
            i += 1;
        }
    }

    /// # Safety
    /// Requires runtime `avx2` support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn intersects(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n <= min(a.len(), b.len()), so both
            // four-word unaligned loads are in bounds.
            let disjoint = unsafe {
                let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
                _mm256_testz_si256(va, vb)
            };
            if disjoint == 0 {
                return true;
            }
            i += 4;
        }
        while i < n {
            if a[i] & b[i] != 0 {
                return true;
            }
            i += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The adversarial capacities (bits) from the dispatch contract: word
    /// boundaries, the unroll width (4 words = 256 bits) and off-by-ones
    /// around both.
    const CAPACITIES: [usize; 9] = [0, 1, 63, 64, 65, 255, 256, 4095, 4097];

    /// Both modes when the machine can execute both, otherwise portable
    /// alone (Wide would silently degrade to the same code).
    fn modes() -> Vec<KernelMode> {
        if KernelMode::wide_supported() {
            vec![KernelMode::Portable, KernelMode::Wide]
        } else {
            vec![KernelMode::Portable]
        }
    }

    /// Deterministic word soup from a seed (splitmix64), masked to `bits`.
    fn words_for(bits: usize, mut seed: u64) -> Vec<u64> {
        let mut words = vec![0u64; bits.div_ceil(64)];
        for w in &mut words {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        if !bits.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (bits % 64)) - 1;
            }
        }
        words
    }

    #[test]
    fn from_env_parses_overrides_and_defaults() {
        let auto = KernelMode::from_env(None);
        assert_eq!(KernelMode::from_env(Some("")), auto);
        assert_eq!(KernelMode::from_env(Some("portable")), KernelMode::Portable);
        let wide = KernelMode::from_env(Some("wide"));
        if KernelMode::wide_supported() {
            assert_eq!(auto, KernelMode::Wide);
            assert_eq!(wide, KernelMode::Wide);
        } else {
            assert_eq!(auto, KernelMode::Portable);
            assert_eq!(wide, KernelMode::Portable, "unsupported wide degrades to portable");
        }
    }

    #[test]
    #[should_panic(expected = "not a kernel mode")]
    fn from_env_rejects_unknown_values() {
        KernelMode::from_env(Some("avx512"));
    }

    #[test]
    fn active_mode_is_stable_across_calls() {
        assert_eq!(KernelMode::active(), KernelMode::active());
    }

    #[test]
    fn kernels_agree_with_scalar_at_adversarial_capacities() {
        for &bits in &CAPACITIES {
            for seed in 0..4u64 {
                let dst0 = words_for(bits, seed);
                let rows: Vec<Vec<u64>> =
                    (0..5).map(|r| words_for(bits, seed * 31 + r + 1)).collect();
                for take in [0usize, 1, 2, 5] {
                    let refs: Vec<&[u64]> = rows[..take].iter().map(Vec::as_slice).collect();
                    let mut expected = dst0.clone();
                    let expected_count = scalar::or_rows_count(&mut expected, &refs);
                    for mode in modes() {
                        let mut dst = dst0.clone();
                        let got = or_rows_count_in(mode, &mut dst, &refs);
                        assert_eq!(dst, expected, "{bits} bits, {take} rows, {mode:?}");
                        assert_eq!(got, expected_count, "{bits} bits, {take} rows, {mode:?}");

                        let mut dst = dst0.clone();
                        or_rows_in(mode, &mut dst, &refs);
                        assert_eq!(dst, expected, "or_rows: {bits} bits, {take} rows, {mode:?}");

                        // The gather: previous dst contents must not leak in.
                        let mut set_expected = dst0.clone();
                        let set_count = scalar::set_rows_count(&mut set_expected, &refs);
                        let mut dst = dst0.clone();
                        let got = set_rows_count_in(mode, &mut dst, &refs);
                        assert_eq!(dst, set_expected, "set: {bits} bits, {take} rows, {mode:?}");
                        assert_eq!(got, set_count, "set count: {bits} bits, {take} rows, {mode:?}");

                        let mut dst = dst0.clone();
                        set_rows_in(mode, &mut dst, &refs);
                        assert_eq!(
                            dst, set_expected,
                            "set_rows: {bits} bits, {take} rows, {mode:?}"
                        );

                        for row in &refs {
                            assert_eq!(
                                intersects_in(mode, &dst0, row),
                                scalar::intersects(&dst0, row),
                                "intersects: {bits} bits, {mode:?}"
                            );
                        }
                    }
                    assert_eq!(count(&expected), expected_count, "count: {bits} bits");
                }
            }
        }
    }

    #[test]
    fn intersects_handles_length_mismatch_like_scalar() {
        let long = words_for(4097, 7);
        let short = words_for(65, 8);
        for mode in modes() {
            assert_eq!(intersects_in(mode, &long, &short), scalar::intersects(&long, &short));
            assert_eq!(intersects_in(mode, &short, &long), scalar::intersects(&short, &long));
            assert!(!intersects_in(mode, &long, &[]));
            assert!(!intersects_in(mode, &[], &long));
        }
    }

    #[test]
    fn set_bit_extraction_matches_a_naive_scan() {
        for &bits in &CAPACITIES {
            let words = words_for(bits, 3);
            let mut got = Vec::new();
            for_each_set_bit(&words, |b| got.push(b));
            let expected: Vec<usize> =
                (0..bits).filter(|&b| words[b / 64] & (1u64 << (b % 64)) != 0).collect();
            assert_eq!(got, expected, "{bits} bits");
            assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending order");
            assert_eq!(got.len() as u64, count(&words));

            assert!(all_set_bits(&words, |b| expected.contains(&b)));
            if let Some(&first) = expected.first() {
                let mut seen = 0usize;
                assert!(!all_set_bits(&words, |b| {
                    seen += 1;
                    b != first
                }));
                assert_eq!(seen, 1, "early exit after the first failing bit");
            }
        }
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn mismatched_rows_are_rejected() {
        let mut dst = vec![0u64; 4];
        let row = vec![0u64; 3];
        or_rows_count(&mut dst, &[&row]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The dispatch contract, fuzzed: both modes produce the scalar
        /// reference's bits and count for arbitrary word soups and row
        /// counts at every adversarial capacity.
        #[test]
        fn fused_kernels_are_bitwise_equal_to_scalar(
            cap_index in 0usize..CAPACITIES.len(),
            seed in 0u64..1_000_000,
            row_count in 0usize..9,
        ) {
            let bits = CAPACITIES[cap_index];
            let dst0 = words_for(bits, seed);
            let rows: Vec<Vec<u64>> =
                (0..row_count as u64).map(|r| words_for(bits, seed ^ (r + 1).wrapping_mul(0xDEAD_BEEF))).collect();
            let refs: Vec<&[u64]> = rows.iter().map(Vec::as_slice).collect();
            let mut expected = dst0.clone();
            let expected_count = scalar::or_rows_count(&mut expected, &refs);
            let mut set_expected = dst0.clone();
            let set_count = scalar::set_rows_count(&mut set_expected, &refs);
            for mode in modes() {
                let mut dst = dst0.clone();
                prop_assert_eq!(or_rows_count_in(mode, &mut dst, &refs), expected_count);
                prop_assert_eq!(&dst, &expected);
                let mut dst = dst0.clone();
                prop_assert_eq!(set_rows_count_in(mode, &mut dst, &refs), set_count);
                prop_assert_eq!(&dst, &set_expected);
                let mut dst = dst0.clone();
                set_rows_in(mode, &mut dst, &refs);
                prop_assert_eq!(&dst, &set_expected);
                for row in &refs {
                    prop_assert_eq!(
                        intersects_in(mode, &dst0, row),
                        scalar::intersects(&dst0, row)
                    );
                }
            }
        }
    }
}
