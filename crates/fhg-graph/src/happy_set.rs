//! The reusable happy-set buffer at the heart of the scheduler engine.
//!
//! Every scheduler in the workspace answers the same question each holiday:
//! *which parents are happy at time `t`?*  Returning a fresh `Vec<NodeId>`
//! per holiday costs an allocation plus per-element pushes on a path executed
//! 10⁵–10⁶ times per experiment.  A [`HappySet`] is the zero-allocation
//! alternative: a word-packed [`FixedBitSet`] with a cached cardinality that
//! callers allocate once and hand to `Scheduler::fill_happy_set` for every
//! holiday.  Membership tests are O(1) bit probes and independence
//! verification ANDs whole 64-bit words against adjacency rows.
//!
//! The type lives in `fhg-graph` (rather than next to the `Scheduler` trait
//! in `fhg-core`) so that lower layers — the distributed slot assignment, the
//! MIS outcomes — can fill the same buffers without a dependency cycle.

use crate::bitset::FixedBitSet;
use crate::kernels;
use crate::NodeId;

/// A set of happy parents for one holiday, backed by a word-packed bit set.
///
/// The buffer is designed for reuse: [`HappySet::reset`] only reallocates
/// when the requested capacity actually changes, so driving a scheduler over
/// a long horizon performs zero heap allocations after the first holiday.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HappySet {
    bits: FixedBitSet,
    len: usize,
}

impl HappySet {
    /// Creates an empty happy set able to hold nodes `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        HappySet { bits: FixedBitSet::new(capacity), len: 0 }
    }

    /// Creates a happy set from explicit members (convenience for tests).
    ///
    /// # Panics
    /// Panics if a member is `>= capacity`.
    pub fn from_members(capacity: usize, members: impl IntoIterator<Item = NodeId>) -> Self {
        let mut s = Self::new(capacity);
        for p in members {
            s.insert(p);
        }
        s
    }

    /// Number of representable nodes (`0..capacity`), *not* the cardinality.
    pub fn capacity(&self) -> usize {
        self.bits.capacity()
    }

    /// Empties the set and ensures it can hold nodes `0..capacity`.
    ///
    /// Reallocates only when `capacity` differs from the current capacity;
    /// the steady-state cost is a `memset` of the backing words.
    pub fn reset(&mut self, capacity: usize) {
        if self.bits.capacity() != capacity {
            self.bits = FixedBitSet::new(capacity);
        } else {
            self.bits.clear();
        }
        self.len = 0;
    }

    /// Empties the set, keeping the capacity.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.len = 0;
    }

    /// Inserts node `p`. Returns `true` if it was not present before.
    ///
    /// # Panics
    /// Panics if `p >= capacity()`.
    pub fn insert(&mut self, p: NodeId) -> bool {
        let fresh = self.bits.insert(p);
        self.len += usize::from(fresh);
        fresh
    }

    /// Whether node `p` is happy.
    pub fn contains(&self, p: NodeId) -> bool {
        self.bits.contains(p)
    }

    /// Number of happy nodes (cached; O(1)).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no node is happy.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the happy nodes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits.iter()
    }

    /// Calls `f` with every happy node in increasing order (the set-bit
    /// extraction kernel — the cheap member walk the analysis engines and
    /// the `hosts_into` shims use).
    #[inline]
    pub fn for_each(&self, f: impl FnMut(NodeId)) {
        self.bits.for_each(f);
    }

    /// Collects the happy nodes into a sorted `Vec` (the compatibility shim
    /// behind `Scheduler::happy_set`).
    pub fn to_vec(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.len);
        self.for_each(|p| v.push(p));
        v
    }

    /// In-place union with a raw bit row of the same capacity — the
    /// word-packed bulk insert used by precomputed periodic schedules.  The
    /// OR and the cardinality recount are fused into one pass
    /// ([`kernels::or_rows_count`]).
    ///
    /// # Panics
    /// Panics if `row.capacity() != self.capacity()`.
    pub fn union_with(&mut self, row: &FixedBitSet) {
        assert_eq!(row.capacity(), self.bits.capacity(), "bitset capacity mismatch");
        self.len = kernels::or_rows_count(self.bits.words_mut(), &[row.as_words()]) as usize;
    }

    /// Overwrites the set with the union of `rows`, at `capacity` — the
    /// per-holiday table emission path.  Equivalent to
    /// [`HappySet::reset`]`(capacity)` followed by
    /// [`HappySet::union_many`]`(rows)`, but the reset memset, the OR passes
    /// and the cardinality count collapse into **one write-only gather over
    /// the backing words** ([`kernels::set_rows_count`], rows indexed in the
    /// inner loop): the old contents are never read and never zeroed
    /// separately.  Reallocates only when `capacity` changes.
    ///
    /// # Panics
    /// Panics if any row's capacity differs from `capacity`.
    pub fn assign_many<'a>(
        &mut self,
        capacity: usize,
        rows: impl IntoIterator<Item = &'a FixedBitSet>,
    ) {
        if self.bits.capacity() != capacity {
            self.bits = FixedBitSet::new(capacity);
        }
        let mut it = rows.into_iter();
        let Some(first) = it.next() else {
            // No rows: the overwrite semantics degrade to a clear.
            self.bits.clear();
            self.len = 0;
            return;
        };
        self.combine_batched(true, first, it);
    }

    /// In-place union with several rows at once (keeping existing members —
    /// for a pure overwrite see [`HappySet::assign_many`], the emission
    /// path).  Rows are gathered into batches and OR'd with the rows indexed
    /// in the *inner* loop ([`kernels::or_rows_count`]): one interleaved
    /// pass over the backing words per batch instead of one full sweep per
    /// row, with the popcount fused into the final batch, so the
    /// cardinality costs no separate rescan.  An empty iterator is a
    /// guaranteed no-op: nothing is OR'd and nothing is recounted.
    ///
    /// # Panics
    /// Panics if any row's capacity differs from `self.capacity()`.
    pub fn union_many<'a>(&mut self, rows: impl IntoIterator<Item = &'a FixedBitSet>) {
        let mut it = rows.into_iter();
        // Short-circuit: zero rows OR'd means the set (and its cached
        // cardinality) are already correct — skip the backing-store scan
        // entirely.
        let Some(first) = it.next() else { return };
        self.combine_batched(false, first, it);
    }

    /// The shared batch driver behind [`HappySet::assign_many`] (`overwrite`
    /// true) and [`HappySet::union_many`] (`overwrite` false): gathers the
    /// rows into stack batches of up to `BATCH` word slices and picks the
    /// kernel per batch — overwrite semantics use the write-only gather on
    /// the first batch, the count is fused into whichever batch is last,
    /// and interior batches skip counting entirely.  Callers decide the
    /// empty-iterator semantics and hand over the first row.
    ///
    /// # Panics
    /// Panics if any row's capacity differs from `self.capacity()`.
    fn combine_batched<'a>(
        &mut self,
        overwrite: bool,
        first: &'a FixedBitSet,
        mut it: impl Iterator<Item = &'a FixedBitSet>,
    ) {
        /// Rows fused per pass; beyond this the batch spills into a
        /// non-counting interior pass.  8 rows covers every residue table
        /// the experiments build (one row per distinct modulus) while
        /// keeping the gather's register pressure sane.
        const BATCH: usize = 8;
        let capacity = self.bits.capacity();
        let mut pending = Some(first);
        let mut first_batch = true;
        while let Some(first) = pending.take() {
            assert_eq!(first.capacity(), capacity, "bitset capacity mismatch");
            let mut batch: [&[u64]; BATCH] = [&[]; BATCH];
            batch[0] = first.as_words();
            let mut len = 1;
            while len < BATCH {
                match it.next() {
                    Some(row) => {
                        assert_eq!(row.capacity(), capacity, "bitset capacity mismatch");
                        batch[len] = row.as_words();
                        len += 1;
                    }
                    None => break,
                }
            }
            if len == BATCH {
                pending = it.next();
            }
            let last = pending.is_none();
            let words = self.bits.words_mut();
            let batch = &batch[..len];
            match (first_batch && overwrite, last) {
                (true, true) => self.len = kernels::set_rows_count(words, batch) as usize,
                (true, false) => kernels::set_rows(words, batch),
                (false, true) => self.len = kernels::or_rows_count(words, batch) as usize,
                (false, false) => kernels::or_rows(words, batch),
            }
            first_batch = false;
        }
    }

    /// The backing bit set, for word-wise algorithms.
    pub fn as_bitset(&self) -> &FixedBitSet {
        &self.bits
    }
}

/// Runs `f` with this thread's shared scratch [`HappySet`] — the one
/// per-thread buffer behind every "fill into scratch, copy members out"
/// compatibility shim (`Scheduler::happy_set`, the residue `hosts_into`
/// entry points), so the steady-state cost of those paths is the output
/// copy alone and the mechanism lives in exactly one place.
///
/// `f` must reset the buffer to the capacity it needs (every scheduler
/// `fill` contract already does) and must not re-enter `with_thread_scratch`
/// — the scratch is a `RefCell`, so re-entry panics rather than aliasing.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut HappySet) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<HappySet> = std::cell::RefCell::new(HappySet::new(0));
    }
    SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_iter_roundtrip() {
        let mut s = HappySet::new(200);
        for p in [3usize, 199, 64, 3] {
            s.insert(p);
        }
        assert_eq!(s.len(), 3, "duplicate insert must not inflate the cardinality");
        assert_eq!(s.to_vec(), vec![3, 64, 199]);
        assert!(s.contains(64));
        assert!(!s.contains(65));
    }

    #[test]
    fn reset_reuses_capacity_and_reallocates_on_change() {
        let mut s = HappySet::new(100);
        s.insert(7);
        s.reset(100);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 100);
        s.reset(50);
        assert_eq!(s.capacity(), 50);
        assert!(s.is_empty());
    }

    #[test]
    fn from_members_and_equality() {
        let a = HappySet::from_members(10, [1, 4, 9]);
        let b = HappySet::from_members(10, [9, 1, 4]);
        assert_eq!(a, b, "membership equality is order-independent");
        assert_ne!(a, HappySet::from_members(10, [1, 4]));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = HappySet::from_members(80, [0, 79]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 80);
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_beyond_capacity_panics() {
        HappySet::new(4).insert(4);
    }

    #[test]
    fn union_with_merges_rows_and_recounts() {
        let mut s = HappySet::from_members(130, [0, 64]);
        let mut row = FixedBitSet::new(130);
        row.insert(64);
        row.insert(129);
        s.union_with(&row);
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![0, 64, 129]);
    }

    #[test]
    fn union_many_matches_repeated_union_with() {
        let mut a = FixedBitSet::new(100);
        a.insert(1);
        let mut b = FixedBitSet::new(100);
        b.insert(64);
        b.insert(1);
        let mut c = FixedBitSet::new(100);
        c.insert(99);
        let mut many = HappySet::new(100);
        many.union_many([&a, &b, &c]);
        let mut repeated = HappySet::new(100);
        for row in [&a, &b, &c] {
            repeated.union_with(row);
        }
        assert_eq!(many, repeated);
        assert_eq!(many.len(), 3);
        assert_eq!(many.to_vec(), vec![1, 64, 99]);
        many.union_many(std::iter::empty());
        assert_eq!(many.len(), 3, "empty union is a no-op");
    }

    #[test]
    fn union_many_spills_across_batches_exactly() {
        // 8, 16 and 17 rows exercise the exact-batch and spill paths of the
        // fused gather; parity against repeated union_with at each count.
        for rows in [1usize, 7, 8, 9, 16, 17] {
            let sets: Vec<FixedBitSet> = (0..rows)
                .map(|r| {
                    let mut s = FixedBitSet::new(300);
                    s.insert(r * 17 % 300);
                    s.insert((r * 63 + 5) % 300);
                    s
                })
                .collect();
            let mut fused = HappySet::new(300);
            fused.insert(299);
            fused.union_many(sets.iter());
            let mut repeated = HappySet::new(300);
            repeated.insert(299);
            for s in &sets {
                repeated.union_with(s);
            }
            assert_eq!(fused, repeated, "{rows} rows");
            assert_eq!(fused.len(), repeated.len(), "{rows} rows");
            assert_eq!(fused.len(), fused.as_bitset().count(), "cached cardinality is exact");
        }
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_many_rejects_capacity_mismatch() {
        let mut s = HappySet::new(100);
        let row = FixedBitSet::new(99);
        s.union_many([&row]);
    }

    #[test]
    fn assign_many_equals_reset_then_union_many() {
        for rows in [0usize, 1, 3, 8, 9, 17] {
            let sets: Vec<FixedBitSet> = (0..rows)
                .map(|r| {
                    let mut s = FixedBitSet::new(200);
                    s.insert((r * 31 + 2) % 200);
                    s.insert((r * 7 + 100) % 200);
                    s
                })
                .collect();
            // Stale content (including a stale capacity) must never leak
            // into the overwrite.
            let mut assigned = HappySet::from_members(64, [0, 63]);
            assigned.assign_many(200, sets.iter());
            let mut reference = HappySet::from_members(64, [0, 63]);
            reference.reset(200);
            reference.union_many(sets.iter());
            assert_eq!(assigned, reference, "{rows} rows");
            assert_eq!(assigned.len(), reference.len(), "{rows} rows");
            assert_eq!(assigned.len(), assigned.as_bitset().count(), "exact cardinality");

            // Same capacity, stale members: still a pure overwrite.
            let mut stale = HappySet::from_members(200, [5, 150, 199]);
            stale.assign_many(200, sets.iter());
            assert_eq!(stale, reference, "{rows} rows, stale members");
        }
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn assign_many_rejects_capacity_mismatch() {
        let mut s = HappySet::new(100);
        let row = FixedBitSet::new(50);
        s.assign_many(100, [&row]);
    }
}
