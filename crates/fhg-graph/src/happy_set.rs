//! The reusable happy-set buffer at the heart of the scheduler engine.
//!
//! Every scheduler in the workspace answers the same question each holiday:
//! *which parents are happy at time `t`?*  Returning a fresh `Vec<NodeId>`
//! per holiday costs an allocation plus per-element pushes on a path executed
//! 10⁵–10⁶ times per experiment.  A [`HappySet`] is the zero-allocation
//! alternative: a word-packed [`FixedBitSet`] with a cached cardinality that
//! callers allocate once and hand to `Scheduler::fill_happy_set` for every
//! holiday.  Membership tests are O(1) bit probes and independence
//! verification ANDs whole 64-bit words against adjacency rows.
//!
//! The type lives in `fhg-graph` (rather than next to the `Scheduler` trait
//! in `fhg-core`) so that lower layers — the distributed slot assignment, the
//! MIS outcomes — can fill the same buffers without a dependency cycle.

use crate::bitset::FixedBitSet;
use crate::NodeId;

/// A set of happy parents for one holiday, backed by a word-packed bit set.
///
/// The buffer is designed for reuse: [`HappySet::reset`] only reallocates
/// when the requested capacity actually changes, so driving a scheduler over
/// a long horizon performs zero heap allocations after the first holiday.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HappySet {
    bits: FixedBitSet,
    len: usize,
}

impl HappySet {
    /// Creates an empty happy set able to hold nodes `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        HappySet { bits: FixedBitSet::new(capacity), len: 0 }
    }

    /// Creates a happy set from explicit members (convenience for tests).
    ///
    /// # Panics
    /// Panics if a member is `>= capacity`.
    pub fn from_members(capacity: usize, members: impl IntoIterator<Item = NodeId>) -> Self {
        let mut s = Self::new(capacity);
        for p in members {
            s.insert(p);
        }
        s
    }

    /// Number of representable nodes (`0..capacity`), *not* the cardinality.
    pub fn capacity(&self) -> usize {
        self.bits.capacity()
    }

    /// Empties the set and ensures it can hold nodes `0..capacity`.
    ///
    /// Reallocates only when `capacity` differs from the current capacity;
    /// the steady-state cost is a `memset` of the backing words.
    pub fn reset(&mut self, capacity: usize) {
        if self.bits.capacity() != capacity {
            self.bits = FixedBitSet::new(capacity);
        } else {
            self.bits.clear();
        }
        self.len = 0;
    }

    /// Empties the set, keeping the capacity.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.len = 0;
    }

    /// Inserts node `p`. Returns `true` if it was not present before.
    ///
    /// # Panics
    /// Panics if `p >= capacity()`.
    pub fn insert(&mut self, p: NodeId) -> bool {
        let fresh = self.bits.insert(p);
        self.len += usize::from(fresh);
        fresh
    }

    /// Whether node `p` is happy.
    pub fn contains(&self, p: NodeId) -> bool {
        self.bits.contains(p)
    }

    /// Number of happy nodes (cached; O(1)).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no node is happy.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the happy nodes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits.iter()
    }

    /// Collects the happy nodes into a sorted `Vec` (the compatibility shim
    /// behind `Scheduler::happy_set`).
    pub fn to_vec(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.len);
        v.extend(self.iter());
        v
    }

    /// In-place union with a raw bit row of the same capacity — the
    /// word-packed bulk insert used by precomputed periodic schedules.
    ///
    /// # Panics
    /// Panics if `row.capacity() != self.capacity()`.
    pub fn union_with(&mut self, row: &FixedBitSet) {
        self.bits.union_with(row);
        self.len = self.bits.count();
    }

    /// In-place union with several rows at once, recounting the cardinality
    /// only after the last OR — one count scan instead of one per row, which
    /// matters on the per-holiday emission path.
    ///
    /// # Panics
    /// Panics if any row's capacity differs from `self.capacity()`.
    pub fn union_many<'a>(&mut self, rows: impl IntoIterator<Item = &'a FixedBitSet>) {
        for row in rows {
            self.bits.union_with(row);
        }
        self.len = self.bits.count();
    }

    /// The backing bit set, for word-wise algorithms.
    pub fn as_bitset(&self) -> &FixedBitSet {
        &self.bits
    }
}

/// Runs `f` with this thread's shared scratch [`HappySet`] — the one
/// per-thread buffer behind every "fill into scratch, copy members out"
/// compatibility shim (`Scheduler::happy_set`, the residue `hosts_into`
/// entry points), so the steady-state cost of those paths is the output
/// copy alone and the mechanism lives in exactly one place.
///
/// `f` must reset the buffer to the capacity it needs (every scheduler
/// `fill` contract already does) and must not re-enter `with_thread_scratch`
/// — the scratch is a `RefCell`, so re-entry panics rather than aliasing.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut HappySet) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<HappySet> = std::cell::RefCell::new(HappySet::new(0));
    }
    SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_iter_roundtrip() {
        let mut s = HappySet::new(200);
        for p in [3usize, 199, 64, 3] {
            s.insert(p);
        }
        assert_eq!(s.len(), 3, "duplicate insert must not inflate the cardinality");
        assert_eq!(s.to_vec(), vec![3, 64, 199]);
        assert!(s.contains(64));
        assert!(!s.contains(65));
    }

    #[test]
    fn reset_reuses_capacity_and_reallocates_on_change() {
        let mut s = HappySet::new(100);
        s.insert(7);
        s.reset(100);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 100);
        s.reset(50);
        assert_eq!(s.capacity(), 50);
        assert!(s.is_empty());
    }

    #[test]
    fn from_members_and_equality() {
        let a = HappySet::from_members(10, [1, 4, 9]);
        let b = HappySet::from_members(10, [9, 1, 4]);
        assert_eq!(a, b, "membership equality is order-independent");
        assert_ne!(a, HappySet::from_members(10, [1, 4]));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = HappySet::from_members(80, [0, 79]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 80);
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_beyond_capacity_panics() {
        HappySet::new(4).insert(4);
    }

    #[test]
    fn union_with_merges_rows_and_recounts() {
        let mut s = HappySet::from_members(130, [0, 64]);
        let mut row = FixedBitSet::new(130);
        row.insert(64);
        row.insert(129);
        s.union_with(&row);
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![0, 64, 129]);
    }

    #[test]
    fn union_many_matches_repeated_union_with() {
        let mut a = FixedBitSet::new(100);
        a.insert(1);
        let mut b = FixedBitSet::new(100);
        b.insert(64);
        b.insert(1);
        let mut c = FixedBitSet::new(100);
        c.insert(99);
        let mut many = HappySet::new(100);
        many.union_many([&a, &b, &c]);
        let mut repeated = HappySet::new(100);
        for row in [&a, &b, &c] {
            repeated.union_with(row);
        }
        assert_eq!(many, repeated);
        assert_eq!(many.len(), 3);
        assert_eq!(many.to_vec(), vec![1, 64, 99]);
        many.union_many(std::iter::empty());
        assert_eq!(many.len(), 3, "empty union is a no-op");
    }
}
