//! Greedy (first-fit) colouring under several node orderings.
//!
//! Greedy colouring assigns each node, in the chosen order, the smallest
//! positive colour not used by an already-coloured neighbour.  Two properties
//! matter for the paper:
//!
//! * **Degree bound** — under *any* ordering, the colour a node receives is at
//!   most `deg + 1`; this is exactly the property the §3 phased-greedy and §4
//!   colour-bound schedulers require of the initial colouring (the paper gets
//!   it from the BEPS distributed algorithm; sequentially, greedy suffices).
//! * **Ordering quality** — smarter orderings (degeneracy / smallest-last,
//!   decreasing degree) use fewer colours, directly shrinking the §4 periods.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use fhg_graph::{properties, Graph, NodeId};

use crate::coloring::Coloring;
use crate::recolor::smallest_free_color;
use crate::Color;

/// Node orderings for greedy colouring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GreedyOrder {
    /// Nodes in id order `0, 1, 2, …`.
    Natural,
    /// Decreasing degree (Welsh–Powell).
    DegreeDescending,
    /// Increasing degree — deliberately bad, used as an ablation baseline.
    DegreeAscending,
    /// Reverse degeneracy (smallest-last) order: guarantees at most
    /// `degeneracy + 1` colours.
    SmallestLast,
    /// Uniformly random order with the given seed.
    Random(u64),
}

impl GreedyOrder {
    /// Computes the node visit order for `graph`.
    pub fn order(&self, graph: &Graph) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = graph.nodes().collect();
        match self {
            GreedyOrder::Natural => nodes,
            GreedyOrder::DegreeDescending => {
                nodes.sort_by_key(|&u| std::cmp::Reverse(graph.degree(u)));
                nodes
            }
            GreedyOrder::DegreeAscending => {
                nodes.sort_by_key(|&u| graph.degree(u));
                nodes
            }
            GreedyOrder::SmallestLast => {
                let (mut order, _) = properties::degeneracy_ordering(graph);
                order.reverse();
                order
            }
            GreedyOrder::Random(seed) => {
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                nodes.shuffle(&mut rng);
                nodes
            }
        }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            GreedyOrder::Natural => "natural",
            GreedyOrder::DegreeDescending => "degree-desc",
            GreedyOrder::DegreeAscending => "degree-asc",
            GreedyOrder::SmallestLast => "smallest-last",
            GreedyOrder::Random(_) => "random",
        }
    }
}

/// Greedily colours `graph` visiting nodes in the given order.
///
/// The returned colouring is proper and satisfies
/// `color(u) <= deg(u) + 1` for every node `u`.
pub fn greedy_coloring(graph: &Graph, order: GreedyOrder) -> Coloring {
    greedy_coloring_with_order(graph, &order.order(graph))
}

/// Greedily colours `graph` visiting nodes in exactly the supplied order.
///
/// # Panics
/// Panics if `order` is not a permutation of the node ids.
pub fn greedy_coloring_with_order(graph: &Graph, order: &[NodeId]) -> Coloring {
    let n = graph.node_count();
    assert_eq!(order.len(), n, "order must list every node exactly once");
    let mut colors: Vec<Color> = vec![0; n];
    let mut seen = vec![false; n];
    for &u in order {
        assert!(!seen[u], "node {u} appears twice in the ordering");
        seen[u] = true;
        colors[u] = smallest_free_color(graph, &colors, u);
    }
    Coloring::from_vec_unchecked(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::structured::{complete, complete_bipartite, cycle, path, star};
    use fhg_graph::generators::{barabasi_albert, erdos_renyi, random_tree};
    use proptest::prelude::*;

    const ALL_ORDERS: [GreedyOrder; 5] = [
        GreedyOrder::Natural,
        GreedyOrder::DegreeDescending,
        GreedyOrder::DegreeAscending,
        GreedyOrder::SmallestLast,
        GreedyOrder::Random(17),
    ];

    #[test]
    fn colors_complete_graph_with_n_colors() {
        for order in ALL_ORDERS {
            let g = complete(6);
            let c = greedy_coloring(&g, order);
            assert!(c.is_proper(&g), "{}", order.name());
            assert_eq!(c.color_count(), 6, "{}", order.name());
        }
    }

    #[test]
    fn colors_even_cycle_with_two_colors() {
        let g = cycle(10);
        let c = greedy_coloring(&g, GreedyOrder::Natural);
        assert!(c.is_proper(&g));
        assert_eq!(c.max_color(), 2);
    }

    #[test]
    fn colors_odd_cycle_with_three_colors() {
        let g = cycle(9);
        let c = greedy_coloring(&g, GreedyOrder::Natural);
        assert!(c.is_proper(&g));
        assert_eq!(c.max_color(), 3);
    }

    #[test]
    fn star_and_path_use_few_colors() {
        for order in ALL_ORDERS {
            let c = greedy_coloring(&star(20), order);
            assert!(c.max_color() <= 2, "{} on star", order.name());
            // Bad orderings (degree-ascending, random) may need a third colour
            // on a path; good orderings must not.
            let c = greedy_coloring(&path(20), order);
            assert!(c.max_color() <= 3, "{} on path", order.name());
        }
        for order in [GreedyOrder::Natural, GreedyOrder::SmallestLast] {
            let c = greedy_coloring(&path(20), order);
            assert!(c.max_color() <= 2, "{} on path", order.name());
        }
    }

    #[test]
    fn smallest_last_uses_at_most_degeneracy_plus_one_colors() {
        for seed in 0..5u64 {
            let g = erdos_renyi(120, 0.07, seed);
            let (_, degeneracy) = properties::degeneracy_ordering(&g);
            let c = greedy_coloring(&g, GreedyOrder::SmallestLast);
            assert!(c.is_proper(&g));
            assert!(
                (c.max_color() as usize) <= degeneracy + 1,
                "smallest-last used {} colours but degeneracy is {degeneracy}",
                c.max_color()
            );
        }
    }

    #[test]
    fn trees_get_two_colors_with_smallest_last() {
        let g = random_tree(200, 3);
        let c = greedy_coloring(&g, GreedyOrder::SmallestLast);
        assert!(c.max_color() <= 2);
    }

    #[test]
    fn degree_descending_on_bipartite() {
        let g = complete_bipartite(8, 13);
        let c = greedy_coloring(&g, GreedyOrder::DegreeDescending);
        assert!(c.is_proper(&g));
        assert_eq!(c.max_color(), 2);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::new(0);
        let c = greedy_coloring(&g, GreedyOrder::Natural);
        assert!(c.is_empty());
        let g = Graph::new(7);
        let c = greedy_coloring(&g, GreedyOrder::Random(3));
        assert_eq!(c.max_color(), 1);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn order_is_a_permutation_for_every_strategy() {
        let g = barabasi_albert(100, 3, 5);
        for order in ALL_ORDERS {
            let o = order.order(&g);
            let mut sorted = o.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "{}", order.name());
        }
    }

    #[test]
    fn custom_order_rejects_duplicates() {
        let g = path(3);
        let result = std::panic::catch_unwind(|| greedy_coloring_with_order(&g, &[0, 0, 1]));
        assert!(result.is_err());
    }

    #[test]
    fn order_names_are_stable() {
        assert_eq!(GreedyOrder::Natural.name(), "natural");
        assert_eq!(GreedyOrder::Random(9).name(), "random");
        assert_eq!(GreedyOrder::SmallestLast.name(), "smallest-last");
    }

    proptest! {
        #[test]
        fn greedy_is_proper_and_degree_bounded(seed in 0u64..40, p in 0.01f64..0.3) {
            let g = erdos_renyi(60, p, seed);
            for order in ALL_ORDERS {
                let c = greedy_coloring(&g, order);
                prop_assert!(c.is_proper(&g), "{} not proper", order.name());
                prop_assert!(
                    c.is_degree_plus_one_bounded(&g),
                    "{} violates colour <= degree + 1", order.name()
                );
                prop_assert!((c.max_color() as usize) <= g.max_degree() + 1);
            }
        }

        #[test]
        fn random_orders_with_same_seed_agree(seed in 0u64..50) {
            let g = erdos_renyi(40, 0.1, 3);
            let a = greedy_coloring(&g, GreedyOrder::Random(seed));
            let b = greedy_coloring(&g, GreedyOrder::Random(seed));
            prop_assert_eq!(a, b);
        }
    }
}
