//! The [`Coloring`] type: a complete proper-colouring candidate with
//! validation helpers.

use std::fmt;

use fhg_graph::{Graph, NodeId};

use crate::Color;

/// Why a colour assignment is not a proper colouring of a given graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// The assignment has a different number of entries than the graph has nodes.
    LengthMismatch {
        /// Number of colour entries supplied.
        colors: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// Colour 0 appeared; colours must be positive.
    ZeroColor(NodeId),
    /// Two adjacent nodes share a colour.
    Conflict(NodeId, NodeId),
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::LengthMismatch { colors, nodes } => {
                write!(f, "colour vector has {colors} entries but the graph has {nodes} nodes")
            }
            ColoringError::ZeroColor(u) => write!(f, "node {u} has colour 0; colours are 1-based"),
            ColoringError::Conflict(u, v) => {
                write!(f, "adjacent nodes {u} and {v} share a colour")
            }
        }
    }
}

impl std::error::Error for ColoringError {}

/// A complete assignment of a positive colour to every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<Color>,
}

impl Coloring {
    /// Wraps a colour vector after validating it against `graph`.
    pub fn new(graph: &Graph, colors: Vec<Color>) -> Result<Self, ColoringError> {
        if colors.len() != graph.node_count() {
            return Err(ColoringError::LengthMismatch {
                colors: colors.len(),
                nodes: graph.node_count(),
            });
        }
        if let Some(u) = colors.iter().position(|&c| c == 0) {
            return Err(ColoringError::ZeroColor(u));
        }
        for e in graph.edges() {
            if colors[e.u] == colors[e.v] {
                return Err(ColoringError::Conflict(e.u, e.v));
            }
        }
        Ok(Coloring { colors })
    }

    /// Wraps a colour vector without validating adjacency (still checks that
    /// colours are positive).  Used by algorithms whose construction already
    /// guarantees properness; debug builds re-validate in tests.
    pub fn from_vec_unchecked(colors: Vec<Color>) -> Self {
        debug_assert!(colors.iter().all(|&c| c > 0), "colours must be positive");
        Coloring { colors }
    }

    /// Colour of node `u`.
    pub fn color(&self, u: NodeId) -> Color {
        self.colors[u]
    }

    /// The underlying colour vector, indexed by node id.
    pub fn as_slice(&self) -> &[Color] {
        &self.colors
    }

    /// Number of nodes coloured.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the colouring covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Number of *distinct* colours used.
    pub fn color_count(&self) -> usize {
        let mut sorted = self.colors.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// The largest colour used (0 for an empty colouring).
    pub fn max_color(&self) -> Color {
        self.colors.iter().copied().max().unwrap_or(0)
    }

    /// Whether this is a proper colouring of `graph`.
    pub fn is_proper(&self, graph: &Graph) -> bool {
        self.validate(graph).is_ok()
    }

    /// Full validation, returning the first violation found.
    pub fn validate(&self, graph: &Graph) -> Result<(), ColoringError> {
        if self.colors.len() != graph.node_count() {
            return Err(ColoringError::LengthMismatch {
                colors: self.colors.len(),
                nodes: graph.node_count(),
            });
        }
        if let Some(u) = self.colors.iter().position(|&c| c == 0) {
            return Err(ColoringError::ZeroColor(u));
        }
        for e in graph.edges() {
            if self.colors[e.u] == self.colors[e.v] {
                return Err(ColoringError::Conflict(e.u, e.v));
            }
        }
        Ok(())
    }

    /// Whether every node's colour is at most its degree plus one — the
    /// property the §3 and §5 schedulers rely on (provided by greedy and by
    /// the BEPS/Johansson distributed colouring).
    pub fn is_degree_plus_one_bounded(&self, graph: &Graph) -> bool {
        self.colors.len() == graph.node_count()
            && graph.nodes().all(|u| self.colors[u] as usize <= graph.degree(u) + 1)
    }

    /// The nodes of a given colour (a "colour class"), which is always an
    /// independent set in a proper colouring.
    pub fn color_class(&self, color: Color) -> Vec<NodeId> {
        self.colors.iter().enumerate().filter_map(|(u, &c)| (c == color).then_some(u)).collect()
    }

    /// Consumes self, returning the colour vector.
    pub fn into_vec(self) -> Vec<Color> {
        self.colors
    }

    /// Mutable access for local recolouring (paper §3 and §6).  The caller is
    /// responsible for keeping the colouring proper; `validate` can be used
    /// to re-check.
    pub fn set_color(&mut self, u: NodeId, color: Color) {
        assert!(color > 0, "colours must be positive");
        self.colors[u] = color;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::structured::{complete, cycle, path};

    #[test]
    fn valid_coloring_accepted() {
        let g = path(4);
        let c = Coloring::new(&g, vec![1, 2, 1, 2]).unwrap();
        assert_eq!(c.color(0), 1);
        assert_eq!(c.color_count(), 2);
        assert_eq!(c.max_color(), 2);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!(c.is_proper(&g));
        assert!(c.is_degree_plus_one_bounded(&g));
        assert_eq!(c.color_class(1), vec![0, 2]);
        assert_eq!(c.color_class(3), Vec::<usize>::new());
    }

    #[test]
    fn conflicts_rejected() {
        let g = path(3);
        assert_eq!(Coloring::new(&g, vec![1, 1, 2]), Err(ColoringError::Conflict(0, 1)));
    }

    #[test]
    fn zero_color_rejected() {
        let g = path(2);
        assert_eq!(Coloring::new(&g, vec![1, 0]), Err(ColoringError::ZeroColor(1)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let g = path(3);
        assert!(matches!(
            Coloring::new(&g, vec![1, 2]),
            Err(ColoringError::LengthMismatch { colors: 2, nodes: 3 })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ColoringError::Conflict(3, 5).to_string().contains('3'));
        assert!(ColoringError::ZeroColor(2).to_string().contains("1-based"));
        assert!(ColoringError::LengthMismatch { colors: 1, nodes: 2 }
            .to_string()
            .contains("1 entries"));
    }

    #[test]
    fn degree_plus_one_bound_detection() {
        let g = complete(3);
        let tight = Coloring::new(&g, vec![1, 2, 3]).unwrap();
        assert!(tight.is_degree_plus_one_bounded(&g));
        let loose = Coloring::new(&g, vec![1, 2, 9]).unwrap();
        assert!(!loose.is_degree_plus_one_bounded(&g));
    }

    #[test]
    fn color_classes_are_independent_sets() {
        let g = cycle(6);
        let c = Coloring::new(&g, vec![1, 2, 1, 2, 1, 2]).unwrap();
        for color in 1..=2 {
            assert!(fhg_graph::properties::is_independent_set(&g, &c.color_class(color)));
        }
    }

    #[test]
    fn set_color_and_revalidate() {
        let g = path(3);
        let mut c = Coloring::new(&g, vec![1, 2, 1]).unwrap();
        c.set_color(2, 3);
        assert!(c.validate(&g).is_ok());
        c.set_color(2, 2);
        assert_eq!(c.validate(&g), Err(ColoringError::Conflict(1, 2)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn set_color_zero_panics() {
        let g = path(2);
        let mut c = Coloring::new(&g, vec![1, 2]).unwrap();
        c.set_color(0, 0);
    }

    #[test]
    fn empty_graph_coloring() {
        let g = Graph::new(0);
        let c = Coloring::new(&g, vec![]).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.max_color(), 0);
        assert_eq!(c.color_count(), 0);
    }

    #[test]
    fn into_vec_roundtrip() {
        let g = path(3);
        let c = Coloring::new(&g, vec![1, 2, 3]).unwrap();
        assert_eq!(c.clone().into_vec(), vec![1, 2, 3]);
        assert_eq!(c.as_slice(), &[1, 2, 3]);
    }
}
