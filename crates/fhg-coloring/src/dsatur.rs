//! DSATUR (degree of saturation) colouring.
//!
//! DSATUR repeatedly colours the node whose neighbours already use the most
//! distinct colours (ties broken by degree).  It is exact on bipartite graphs
//! and usually needs noticeably fewer colours than plain greedy on random
//! graphs, which directly shrinks the §4 colour-bound periods — the reason it
//! is included as an initial-colouring ablation in experiment E1/E2.

use std::collections::BTreeSet;

use fhg_graph::{Graph, NodeId};

use crate::coloring::Coloring;
use crate::recolor::smallest_free_color;
use crate::Color;

/// Colours `graph` with the DSATUR heuristic.
///
/// The result is a proper colouring; like any sequential first-fit scheme it
/// also satisfies `color(u) ≤ deg(u) + 1`.
pub fn dsatur(graph: &Graph) -> Coloring {
    let n = graph.node_count();
    let mut colors: Vec<Color> = vec![0; n];
    if n == 0 {
        return Coloring::from_vec_unchecked(colors);
    }
    // saturation[u] = set of distinct neighbour colours.
    let mut saturation: Vec<BTreeSet<Color>> = vec![BTreeSet::new(); n];
    let mut uncolored: BTreeSet<NodeId> = (0..n).collect();

    while !uncolored.is_empty() {
        // Pick the uncoloured node with maximum saturation, tie-broken by
        // degree then id (deterministic).
        let &u = uncolored
            .iter()
            .max_by_key(|&&u| (saturation[u].len(), graph.degree(u), std::cmp::Reverse(u)))
            .expect("uncolored set is non-empty");
        let c = smallest_free_color(graph, &colors, u);
        colors[u] = c;
        uncolored.remove(&u);
        for &v in graph.neighbors(u) {
            if colors[v] == 0 {
                saturation[v].insert(c);
            }
        }
    }
    Coloring::from_vec_unchecked(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_coloring, GreedyOrder};
    use fhg_graph::generators::structured::{
        complete, complete_bipartite, cycle, grid, path, star,
    };
    use fhg_graph::generators::{erdos_renyi, random_tree};
    use proptest::prelude::*;

    #[test]
    fn exact_on_bipartite_graphs() {
        // DSATUR is provably exact on bipartite graphs: 2 colours.
        for g in [
            complete_bipartite(7, 9),
            grid(6, 8),
            path(30),
            cycle(12),
            star(15),
            random_tree(80, 4),
        ] {
            let c = dsatur(&g);
            assert!(c.is_proper(&g));
            assert!(
                c.max_color() <= 2,
                "DSATUR used {} colours on a bipartite graph",
                c.max_color()
            );
        }
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = complete(8);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.color_count(), 8);
    }

    #[test]
    fn odd_cycle_needs_three() {
        let c = dsatur(&cycle(11));
        assert_eq!(c.max_color(), 3);
    }

    #[test]
    fn empty_graphs() {
        assert!(dsatur(&Graph::new(0)).is_empty());
        let c = dsatur(&Graph::new(5));
        assert_eq!(c.max_color(), 1);
    }

    #[test]
    fn never_worse_than_natural_greedy_on_random_graphs() {
        // Not a theorem, but holds overwhelmingly in practice; a fixed set of
        // seeds keeps this deterministic.
        let mut dsatur_total = 0usize;
        let mut greedy_total = 0usize;
        for seed in 0..10u64 {
            let g = erdos_renyi(100, 0.1, seed);
            dsatur_total += dsatur(&g).color_count();
            greedy_total += greedy_coloring(&g, GreedyOrder::Natural).color_count();
        }
        assert!(
            dsatur_total <= greedy_total,
            "DSATUR ({dsatur_total}) should not use more colours than greedy ({greedy_total}) in aggregate"
        );
    }

    proptest! {
        #[test]
        fn dsatur_is_proper_and_degree_bounded(seed in 0u64..40, p in 0.02f64..0.35) {
            let g = erdos_renyi(70, p, seed);
            let c = dsatur(&g);
            prop_assert!(c.is_proper(&g));
            prop_assert!(c.is_degree_plus_one_bounded(&g));
            prop_assert!((c.max_color() as usize) <= g.max_degree() + 1);
        }
    }
}
