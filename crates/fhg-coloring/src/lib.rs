//! # fhg-coloring
//!
//! Sequential graph-colouring algorithms for the Family Holiday Gathering
//! library.
//!
//! Every scheduler in the paper starts from (or maintains) a proper colouring
//! of the conflict graph:
//!
//! * The §3 phased-greedy scheduler needs an initial colouring where each
//!   node's colour is at most `deg + 1` — any greedy colouring provides this
//!   ([`greedy`]).
//! * The §4 colour-bound scheduler works with *any* proper colouring and its
//!   quality depends directly on how small the colours are, so we provide
//!   several orderings plus DSATUR ([`dsatur`]) and exact bipartite
//!   2-colouring ([`bipartite`]).
//! * The §5 degree-bound scheduler needs a *palette-restricted* colouring
//!   where a node's colour must avoid collisions modulo `2^j` with its
//!   already-coloured neighbours ([`palette`]).
//! * The §6 dynamic setting needs local recolouring of a single node
//!   ([`recolor`]).
//!
//! Colours are positive integers (`1, 2, 3, …`), matching the paper's
//! convention and the domain of the prefix-free codes in `fhg-codes`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod coloring;
pub mod dsatur;
pub mod greedy;
pub mod palette;
pub mod recolor;

pub use bipartite::two_coloring;
pub use coloring::{Coloring, ColoringError};
pub use dsatur::dsatur;
pub use greedy::{greedy_coloring, GreedyOrder};
pub use palette::{restricted_greedy_slot, slot_exponent};
pub use recolor::{recolor_node, smallest_free_color};

/// A colour: a positive integer, `1`-based as in the paper.
pub type Color = u32;
