//! Palette-restricted slot assignment (paper §5).
//!
//! The §5 periodic degree-bound algorithm colours nodes in decreasing degree
//! order; a node of degree `d` must pick an integer `x ∈ [0, 2^j)` with
//! `j = ⌈log₂(d + 1)⌉` such that no already-assigned neighbour holds an
//! integer congruent to `x` modulo `2^j`.  Because a node has only `d`
//! neighbours and `2^j ≥ d + 1` residues are available, such an `x` always
//! exists (Lemma 5.1's counting argument).  The node is then happy at every
//! holiday `t ≡ x (mod 2^j)`, a perfectly periodic schedule with period
//! `2^j ≤ 2d`.

use fhg_graph::{Graph, NodeId};

/// The §5 slot exponent of a node of degree `d`: `j = ⌈log₂(d + 1)⌉`, so the
/// node's period is `2^j ≤ 2·max(d, 1)`.
pub fn slot_exponent(degree: usize) -> u32 {
    ((degree + 1) as u64).next_power_of_two().trailing_zeros()
}

/// The smallest integer `x ∈ [0, 2^exponent)` such that no neighbour of `u`
/// with an assigned slot holds an integer congruent to `x` mod `2^exponent`.
///
/// `assigned[v] == None` means `v` has not picked a slot yet.  Returns `None`
/// when every residue is blocked — which Lemma 5.1 shows cannot happen when
/// `exponent = slot_exponent(deg(u))` and only neighbours of degree `>= deg(u)`
/// have been assigned, but *can* happen if the decreasing-degree order is
/// violated (the ablation in experiment E4 exercises exactly this failure).
pub fn restricted_greedy_slot(
    graph: &Graph,
    assigned: &[Option<u64>],
    u: NodeId,
    exponent: u32,
) -> Option<u64> {
    assert!(exponent < 63, "slot exponent {exponent} too large");
    let modulus = 1u64 << exponent;
    let mut blocked = vec![false; modulus as usize];
    let mut blocked_count = 0u64;
    for &v in graph.neighbors(u) {
        if let Some(x) = assigned[v] {
            let r = (x % modulus) as usize;
            if !blocked[r] {
                blocked[r] = true;
                blocked_count += 1;
                if blocked_count == modulus {
                    return None;
                }
            }
        }
    }
    blocked.iter().position(|&b| !b).map(|x| x as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{complete, star};
    use proptest::prelude::*;

    #[test]
    fn slot_exponent_values() {
        assert_eq!(slot_exponent(0), 0); // isolated node: period 1
        assert_eq!(slot_exponent(1), 1); // period 2
        assert_eq!(slot_exponent(2), 2); // period 4
        assert_eq!(slot_exponent(3), 2);
        assert_eq!(slot_exponent(4), 3);
        assert_eq!(slot_exponent(7), 3);
        assert_eq!(slot_exponent(8), 4);
        assert_eq!(slot_exponent(1000), 10);
    }

    #[test]
    fn slot_exponent_gives_period_at_most_two_d() {
        for d in 1..10_000usize {
            let period = 1u64 << slot_exponent(d);
            assert!(period >= (d + 1) as u64, "period must exceed degree at d={d}");
            assert!(period <= (2 * d) as u64, "period must be at most 2d at d={d}");
        }
    }

    #[test]
    fn restricted_slot_picks_smallest_free_residue() {
        let g = complete(4);
        // Node 0's neighbours hold 0, 5 (=1 mod 4) and nothing.
        let assigned = vec![None, Some(0), Some(5), None];
        assert_eq!(restricted_greedy_slot(&g, &assigned, 0, 2), Some(2));
    }

    #[test]
    fn restricted_slot_none_when_all_blocked() {
        let g = complete(3);
        let assigned = vec![None, Some(0), Some(1)];
        assert_eq!(restricted_greedy_slot(&g, &assigned, 0, 1), None);
        // With the correct exponent (ceil log2(3) = 2) a slot exists.
        assert_eq!(restricted_greedy_slot(&g, &assigned, 0, 2), Some(2));
    }

    #[test]
    fn unassigned_neighbors_do_not_block() {
        let g = star(5);
        let assigned = vec![None; 5];
        assert_eq!(restricted_greedy_slot(&g, &assigned, 0, 3), Some(0));
    }

    #[test]
    fn exponent_zero_has_single_slot() {
        let g = fhg_graph::Graph::new(2);
        let assigned = vec![None, None];
        assert_eq!(restricted_greedy_slot(&g, &assigned, 0, 0), Some(0));
    }

    proptest! {
        #[test]
        fn decreasing_degree_assignment_always_succeeds(seed in 0u64..40, p in 0.02f64..0.4) {
            // Reproduce the Lemma 5.1 counting argument empirically: assigning
            // in decreasing-degree order with exponent ceil(log2(d+1)) never
            // runs out of residues.
            let g = erdos_renyi(50, p, seed);
            let mut order: Vec<usize> = g.nodes().collect();
            order.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
            let mut assigned: Vec<Option<u64>> = vec![None; 50];
            for &u in &order {
                let j = slot_exponent(g.degree(u));
                let slot = restricted_greedy_slot(&g, &assigned, u, j);
                prop_assert!(slot.is_some(), "node {u} of degree {} found no slot", g.degree(u));
                assigned[u] = slot;
            }
            // And the resulting assignment is conflict-free: adjacent nodes
            // never share a residue modulo the smaller of their moduli.
            for e in g.edges() {
                let (ju, jv) = (slot_exponent(g.degree(e.u)), slot_exponent(g.degree(e.v)));
                let m = 1u64 << ju.min(jv);
                prop_assert_ne!(assigned[e.u].unwrap() % m, assigned[e.v].unwrap() % m);
            }
        }
    }
}
