//! Exact 2-colouring of bipartite conflict graphs.
//!
//! The paper's opening example: a society of two villages where only
//! inter-village marriages occur.  The conflict graph is bipartite, a
//! 2-colouring exists, and the §4 scheduler then gives *every* parent a happy
//! holiday every 2 years regardless of how many children they have — the
//! best possible outcome and the benchmark the colour-bound algorithm
//! approaches as the chromatic number shrinks.

use fhg_graph::{properties, Graph};

use crate::coloring::Coloring;

/// Returns the exact 2-colouring of a bipartite graph (colours 1 and 2), or
/// `None` if the graph contains an odd cycle.
///
/// Isolated nodes receive colour 1.
pub fn two_coloring(graph: &Graph) -> Option<Coloring> {
    let sides = properties::bipartition(graph)?;
    Some(Coloring::from_vec_unchecked(sides.into_iter().map(|s| u32::from(s) + 1).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::structured::{complete, complete_bipartite, cycle, grid};
    use fhg_graph::generators::{bipartite_villages, random_tree};
    use proptest::prelude::*;

    #[test]
    fn colors_bipartite_families_with_two_colors() {
        for g in [complete_bipartite(5, 8), grid(4, 9), cycle(10), random_tree(60, 2)] {
            let c = two_coloring(&g).expect("graph is bipartite");
            assert!(c.is_proper(&g));
            assert!(c.max_color() <= 2);
        }
    }

    #[test]
    fn rejects_odd_cycles_and_cliques() {
        assert!(two_coloring(&cycle(7)).is_none());
        assert!(two_coloring(&complete(4)).is_none());
    }

    #[test]
    fn edgeless_graph_gets_all_ones() {
        let g = Graph::new(5);
        let c = two_coloring(&g).unwrap();
        assert!(c.as_slice().iter().all(|&x| x == 1));
    }

    #[test]
    fn two_villages_example() {
        // The paper's §1 example: inter-village marriages only.
        let g = bipartite_villages(40, 35, 0.2, 9);
        let c = two_coloring(&g).expect("villages graph is bipartite");
        assert!(c.is_proper(&g));
        assert!(c.max_color() <= 2);
    }

    proptest! {
        #[test]
        fn two_coloring_agrees_with_bipartiteness(a in 1usize..20, b in 1usize..20, seed in 0u64..20) {
            let g = bipartite_villages(a, b, 0.3, seed);
            prop_assert!(two_coloring(&g).is_some());
        }
    }
}
