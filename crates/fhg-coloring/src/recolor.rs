//! Local (re)colouring primitives.
//!
//! Both the §3 phased-greedy scheduler and the §6 dynamic setting repeatedly
//! recolour a *single* node using only its neighbours' colours — the
//! "smallest free colour" rule.  These helpers are shared by the sequential
//! colourers, the schedulers in `fhg-core` and the distributed algorithms.

use fhg_graph::{Graph, NodeId};

use crate::Color;

/// The smallest positive colour not used by any neighbour of `u`.
///
/// `colors[v] == 0` means "uncoloured" and does not block any colour.
/// Because `u` has `deg(u)` neighbours, the result is at most `deg(u) + 1`.
pub fn smallest_free_color(graph: &Graph, colors: &[Color], u: NodeId) -> Color {
    smallest_free_color_above(graph, colors, u, 0)
}

/// The smallest colour strictly greater than `lower` not used by any
/// neighbour of `u`.
///
/// This is the recolouring rule of the §3 Phased Greedy Coloring algorithm:
/// at holiday `i` a node that was just happy picks the smallest `s > i` such
/// that no neighbour has colour `s`; the result never exceeds
/// `lower + deg(u) + 1`.
pub fn smallest_free_color_above(
    graph: &Graph,
    colors: &[Color],
    u: NodeId,
    lower: Color,
) -> Color {
    let neighbors = graph.neighbors(u);
    // Collect neighbour colours in the candidate window (lower, lower+deg+1].
    let window = neighbors.len() + 1;
    let mut used = vec![false; window];
    for &v in neighbors {
        let c = colors[v];
        if c > lower && (c - lower) as usize <= window {
            used[(c - lower - 1) as usize] = true;
        }
    }
    for (i, &taken) in used.iter().enumerate() {
        if !taken {
            return lower + i as Color + 1;
        }
    }
    // Unreachable: there are deg+1 candidates and at most deg blockers.
    lower + window as Color
}

/// Recolours node `u` in place with the smallest free colour, returning the
/// new colour.  This is the §6 local repair applied after an edge insertion
/// makes `u`'s colour clash with a new neighbour.
pub fn recolor_node(graph: &Graph, colors: &mut [Color], u: NodeId) -> Color {
    let c = smallest_free_color(graph, colors, u);
    colors[u] = c;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{complete, star};
    use fhg_graph::Graph;
    use proptest::prelude::*;

    #[test]
    fn smallest_free_color_on_uncolored_graph_is_one() {
        let g = star(4);
        let colors = vec![0; 4];
        assert_eq!(smallest_free_color(&g, &colors, 0), 1);
        assert_eq!(smallest_free_color(&g, &colors, 3), 1);
    }

    #[test]
    fn smallest_free_color_skips_neighbor_colors() {
        let g = complete(4);
        let colors = vec![0, 1, 2, 4];
        assert_eq!(smallest_free_color(&g, &colors, 0), 3);
    }

    #[test]
    fn smallest_free_color_is_at_most_degree_plus_one() {
        let g = complete(5);
        let colors = vec![0, 1, 2, 3, 4];
        assert_eq!(smallest_free_color(&g, &colors, 0), 5);
    }

    #[test]
    fn above_variant_respects_lower_bound() {
        let g = complete(4);
        // Neighbours of node 0 have colours 11, 12, 14.
        let colors = vec![0, 11, 12, 14];
        assert_eq!(smallest_free_color_above(&g, &colors, 0, 10), 13);
        // With lower = 14 every neighbour colour is out of the window.
        assert_eq!(smallest_free_color_above(&g, &colors, 0, 14), 15);
        // Plain variant ignores all of them because they exceed deg + 1 window.
        assert_eq!(smallest_free_color(&g, &colors, 0), 1);
    }

    #[test]
    fn above_variant_with_dense_blockers() {
        let g = complete(4);
        let colors = vec![0, 5, 6, 7];
        assert_eq!(smallest_free_color_above(&g, &colors, 0, 4), 8);
        let colors = vec![0, 5, 7, 8];
        assert_eq!(smallest_free_color_above(&g, &colors, 0, 4), 6);
    }

    #[test]
    fn isolated_node_gets_color_one() {
        let g = Graph::new(3);
        let colors = vec![0, 0, 0];
        assert_eq!(smallest_free_color(&g, &colors, 1), 1);
    }

    #[test]
    fn recolor_node_updates_in_place() {
        let g = star(3);
        let mut colors = vec![1, 1, 2];
        let new = recolor_node(&g, &mut colors, 0);
        assert_eq!(new, 3);
        assert_eq!(colors[0], 3);
        // Now it is proper.
        for &v in g.neighbors(0) {
            assert_ne!(colors[0], colors[v]);
        }
    }

    proptest! {
        #[test]
        fn free_color_is_free_and_bounded(seed in 0u64..30, u in 0usize..40) {
            let g = erdos_renyi(40, 0.15, seed);
            // Arbitrary partial colouring of everyone else.
            let mut colors: Vec<Color> = (0..40).map(|v| (v as Color * 7 + seed as Color) % 9).collect();
            colors[u] = 0;
            let c = smallest_free_color(&g, &colors, u);
            prop_assert!(c >= 1);
            prop_assert!((c as usize) <= g.degree(u) + 1);
            for &v in g.neighbors(u) {
                prop_assert_ne!(colors[v], c);
            }
        }

        #[test]
        fn free_color_above_is_free_and_bounded(seed in 0u64..30, u in 0usize..40, lower in 0u32..50) {
            let g = erdos_renyi(40, 0.15, seed);
            let colors: Vec<Color> = (0..40).map(|v| (v as Color * 13 + 1) % 60 + 1).collect();
            let c = smallest_free_color_above(&g, &colors, u, lower);
            prop_assert!(c > lower);
            prop_assert!((c - lower) as usize <= g.degree(u) + 1);
            for &v in g.neighbors(u) {
                prop_assert_ne!(colors[v], c);
            }
        }
    }
}
