//! Deterministic fault injection — an offline stand-in for the `fail`
//! crate's failpoints, built for the crash-only serving tier.
//!
//! A *failpoint* is a named site in the code (`fail_point!("patch.commit")`)
//! that compiles to a two-atomic-load no-op branch unless fault injection is
//! active.  Activation is either the `FHG_FAILPOINTS` environment variable
//! (read once, at the first site evaluation) or an explicit
//! [`configure`] call (chaos tests); the spec format is
//!
//! ```text
//! FHG_FAILPOINTS=patch.after_rows=panic,checker.batch=err@0.1
//! ```
//!
//! — a comma-separated list of `site=action[@probability]` rules, where
//! `action` is `panic` (unwind at the site), `err` (take the site's
//! error arm, e.g. a typed `Err` return or a flipped verdict) or `off`
//! (explicitly disable the site while leaving injection active).  A
//! probability in `(0, 1]` arms the site on that fraction of evaluations,
//! drawn from a **per-site deterministic LCG**: the stream of armed/unarmed
//! decisions at a site is a pure function of the site name, the
//! `FHG_FAILPOINT_SEED` value (default 0) and the number of prior
//! evaluations of that site — never of wall-clock, thread identity or
//! pointer addresses — so a chaos schedule replays bit-for-bit.
//!
//! Same warn-and-fall-back contract as every other `FHG_*` knob: a
//! malformed rule warns on stderr and is skipped; fault injection can make
//! the server *fail on purpose*, but a typo in the environment must never
//! change what the healthy paths compute (pinned by the unit tests below).
//!
//! # Disabled cost
//!
//! When no spec is active every site costs one `Once` fast-path load plus
//! one relaxed [`AtomicBool`] load — no locks, no hashing, no branch the
//! optimiser cannot predict.  Experiment `e18` records this overhead on the
//! e16 serving qps path; the acceptance bound is ≤ 2 %.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Once, OnceLock, RwLock};

/// What an armed failpoint tells its site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Unwind at the site (`panic!`), simulating a crash mid-operation.
    Panic,
    /// Take the site's error arm: the expression the `fail_point!` caller
    /// supplied (typically a typed `Err` return or a flipped verdict).
    Err,
}

/// One configured site: the action, an arming threshold in millionths
/// (1_000_000 = always), and the site's private LCG state.
struct Site {
    action: FailAction,
    prob_millionths: u64,
    lcg: AtomicU64,
}

impl Site {
    /// Draws the site's next deterministic decision; `true` arms the site.
    fn armed(&self) -> bool {
        if self.prob_millionths >= 1_000_000 {
            return true;
        }
        let next = self
            .lcg
            .fetch_update(Relaxed, Relaxed, |s| {
                Some(s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407))
            })
            .expect("fetch_update closure always returns Some")
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (next >> 16) % 1_000_000 < self.prob_millionths
    }
}

/// Whether any failpoint spec is active — the relaxed fast-path gate every
/// site loads before touching the registry.
static ENABLED: AtomicBool = AtomicBool::new(false);
static INIT: Once = Once::new();

fn registry() -> &'static RwLock<HashMap<String, Site>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// FNV-1a over the site name, mixed into the per-site LCG seed so distinct
/// sites draw decorrelated (but individually deterministic) streams.
fn site_seed(name: &str, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // One LCG step over the xor keeps seed 0 from zeroing short names.
    (h ^ seed).wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Parses one `site=action[@prob]` rule; `None` (with a warning) on
/// malformed input.  Factored out of [`configure_with_seed`] so the
/// fallback policy is testable.
fn parse_rule(rule: &str) -> Option<(String, Option<(FailAction, u64)>)> {
    let rule = rule.trim();
    let (site, spec) = rule.split_once('=')?;
    let (site, spec) = (site.trim(), spec.trim());
    if site.is_empty() {
        return None;
    }
    let (action, prob, had_prob) = match spec.split_once('@') {
        Some((a, p)) => {
            let p: f64 = p.trim().parse().ok()?;
            if !(0.0..=1.0).contains(&p) {
                return None;
            }
            (a.trim(), (p * 1e6).round() as u64, true)
        }
        None => (spec, 1_000_000, false),
    };
    let action = match action {
        "panic" => Some((FailAction::Panic, prob)),
        "err" => Some((FailAction::Err, prob)),
        "off" if !had_prob => None,
        _ => return None,
    };
    Some((site.to_string(), action))
}

/// Installs a failpoint spec (see the module docs for the format), replacing
/// any previous configuration, with an explicit LCG seed for the per-site
/// probability streams.  Malformed rules warn on stderr and are skipped —
/// the warn-and-fall-back `FHG_*` contract.
pub fn configure_with_seed(spec: &str, seed: u64) {
    INIT.call_once(|| {}); // claim env init; an explicit config wins
    let mut map = HashMap::new();
    for rule in spec.split(',') {
        if rule.trim().is_empty() {
            continue;
        }
        match parse_rule(rule) {
            Some((site, Some((action, prob)))) => {
                let lcg = AtomicU64::new(site_seed(&site, seed));
                map.insert(site, Site { action, prob_millionths: prob, lcg });
            }
            Some((_, None)) => {} // explicit `off`
            None => {
                eprintln!(
                    "warning: FHG_FAILPOINTS rule {rule:?} is not site=panic|err|off[@prob]; \
                     skipping it"
                );
            }
        }
    }
    let enabled = !map.is_empty();
    *registry().write().expect("failpoint registry poisoned") = map;
    ENABLED.store(enabled, Relaxed);
}

/// [`configure_with_seed`] with the `FHG_FAILPOINT_SEED` environment
/// variable (default 0) as the seed.
pub fn configure(spec: &str) {
    configure_with_seed(spec, env_seed());
}

/// Removes every configured site and disables injection; sites return to
/// their compiled no-op branch.
pub fn clear() {
    INIT.call_once(|| {});
    registry().write().expect("failpoint registry poisoned").clear();
    ENABLED.store(false, Relaxed);
}

/// Re-reads `FHG_FAILPOINTS` / `FHG_FAILPOINT_SEED` and installs whatever
/// they currently say (the state a fresh process would start in).  Chaos
/// tests use this to hand control back to an externally-pinned schedule
/// after programmatic [`configure`] calls.
pub fn reset_to_env() {
    match std::env::var("FHG_FAILPOINTS") {
        Ok(spec) => configure_with_seed(&spec, env_seed()),
        Err(_) => clear(),
    }
}

fn env_seed() -> u64 {
    match std::env::var("FHG_FAILPOINT_SEED") {
        Ok(raw) => match raw.trim().parse() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("warning: FHG_FAILPOINT_SEED={raw:?} is not an integer; using 0");
                0
            }
        },
        Err(_) => 0,
    }
}

/// Whether any failpoint spec is currently active (observability; `e18`
/// reports it next to its overhead rows).
pub fn active() -> bool {
    INIT.call_once(init_from_env);
    ENABLED.load(Relaxed)
}

fn init_from_env() {
    if let Ok(spec) = std::env::var("FHG_FAILPOINTS") {
        // configure() re-enters INIT.call_once, which would deadlock from
        // inside the closure — inline the install instead.
        let seed = env_seed();
        let mut map = HashMap::new();
        for rule in spec.split(',') {
            if rule.trim().is_empty() {
                continue;
            }
            match parse_rule(rule) {
                Some((site, Some((action, prob)))) => {
                    let lcg = AtomicU64::new(site_seed(&site, seed));
                    map.insert(site, Site { action, prob_millionths: prob, lcg });
                }
                Some((_, None)) => {}
                None => eprintln!(
                    "warning: FHG_FAILPOINTS rule {rule:?} is not site=panic|err|off[@prob]; \
                     skipping it"
                ),
            }
        }
        let enabled = !map.is_empty();
        *registry().write().expect("failpoint registry poisoned") = map;
        ENABLED.store(enabled, Relaxed);
    }
}

/// Evaluates the failpoint `site`: `None` on the (overwhelmingly common)
/// disabled or unarmed path, `Some(action)` when the site fires.  Callers
/// normally go through the [`fail_point!`](crate::fail_point) macro rather
/// than calling this directly.
pub fn check(site: &str) -> Option<FailAction> {
    INIT.call_once(init_from_env);
    if !ENABLED.load(Relaxed) {
        return None;
    }
    let registry = registry().read().expect("failpoint registry poisoned");
    let entry = registry.get(site)?;
    entry.armed().then_some(entry.action)
}

/// Declares a named failpoint site.
///
/// * `fail_point!("site")` — panics when the site fires with the `panic`
///   action; an `err` action at a bare site also panics (the site offers no
///   error arm, so the misconfiguration must be loud, not silent).
/// * `fail_point!("site", expr)` — panics on `panic`; evaluates `expr` on
///   `err`.  `expr` is typically a `return Err(...)` in the enclosing
///   function, which is what makes the site a *typed* fault.
///
/// Disabled cost is two relaxed atomic loads; see the
/// [module docs](crate::failpoint).
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        if let Some(action) = $crate::failpoint::check($name) {
            match action {
                $crate::failpoint::FailAction::Panic | $crate::failpoint::FailAction::Err => {
                    panic!("failpoint {} fired", $name)
                }
            }
        }
    };
    ($name:expr, $err:expr) => {
        if let Some(action) = $crate::failpoint::check($name) {
            match action {
                $crate::failpoint::FailAction::Panic => panic!("failpoint {} fired", $name),
                $crate::failpoint::FailAction::Err => $err,
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoint state is process-global; every test that configures it
    /// serialises on this lock (ignoring poisoning — a failed test must not
    /// cascade) and clears on the way out.
    pub(crate) fn with_exclusive_failpoints<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let out = f();
        clear();
        out
    }

    #[test]
    fn disabled_sites_are_no_ops() {
        with_exclusive_failpoints(|| {
            clear();
            assert!(!active());
            assert_eq!(check("nowhere"), None);
        });
    }

    #[test]
    fn configure_arms_and_clear_disarms() {
        with_exclusive_failpoints(|| {
            configure("a.site=panic, b.site=err");
            assert!(active());
            assert_eq!(check("a.site"), Some(FailAction::Panic));
            assert_eq!(check("b.site"), Some(FailAction::Err));
            assert_eq!(check("c.site"), None, "unconfigured sites stay silent");
            clear();
            assert_eq!(check("a.site"), None);
        });
    }

    #[test]
    fn probability_streams_are_deterministic_per_seed() {
        with_exclusive_failpoints(|| {
            let draw = |seed: u64| -> Vec<bool> {
                configure_with_seed("p.site=err@0.3", seed);
                (0..64).map(|_| check("p.site").is_some()).collect()
            };
            let a = draw(7);
            let b = draw(7);
            assert_eq!(a, b, "same seed must replay the same decision stream");
            let fired = a.iter().filter(|&&x| x).count();
            assert!(fired > 0 && fired < 64, "p=0.3 must fire sometimes, not always ({fired})");
            let c = draw(8);
            assert_ne!(a, c, "a different seed must eventually diverge");
        });
    }

    #[test]
    fn probability_bounds_are_exact_at_zero_and_one() {
        with_exclusive_failpoints(|| {
            configure("never=err@0.0,always=panic@1.0");
            assert!((0..32).all(|_| check("never").is_none()));
            assert!((0..32).all(|_| check("always") == Some(FailAction::Panic)));
        });
    }

    #[test]
    fn malformed_rules_warn_and_are_skipped() {
        with_exclusive_failpoints(|| {
            // Every rule here is broken except the last; the healthy rule
            // must survive its malformed neighbours.
            configure("nonsense,=panic,x=explode,y=err@1.5,z=err@-1,ok.site=err");
            assert_eq!(check("ok.site"), Some(FailAction::Err));
            assert_eq!(check("x"), None);
            assert_eq!(check("y"), None);
            assert_eq!(check("z"), None);
        });
    }

    #[test]
    fn off_rules_disable_a_site_without_disabling_injection() {
        with_exclusive_failpoints(|| {
            configure("muted=off,live=panic");
            assert!(active());
            assert_eq!(check("muted"), None);
            assert_eq!(check("live"), Some(FailAction::Panic));
        });
    }

    #[test]
    fn parse_rule_grammar() {
        assert_eq!(parse_rule("a=panic"), Some(("a".into(), Some((FailAction::Panic, 1_000_000)))));
        assert_eq!(
            parse_rule(" a = err @ 0.5 "),
            Some(("a".into(), Some((FailAction::Err, 500_000))))
        );
        assert_eq!(parse_rule("a=off"), Some(("a".into(), None)));
        assert_eq!(parse_rule("a=off@0.5"), None, "off takes no probability");
        assert_eq!(parse_rule("no-equals"), None);
        assert_eq!(parse_rule("=panic"), None);
        assert_eq!(parse_rule("a=panik"), None);
        assert_eq!(parse_rule("a=err@two"), None);
        assert_eq!(parse_rule("a=err@1.01"), None);
    }

    #[test]
    fn bare_macro_panics_on_either_action() {
        with_exclusive_failpoints(|| {
            configure("bare=err");
            let out = std::panic::catch_unwind(|| fail_point!("bare"));
            assert!(out.is_err(), "a bare site must be loud about an err action");
        });
    }

    #[test]
    fn err_arm_takes_the_supplied_expression() {
        with_exclusive_failpoints(|| {
            configure("typed=err");
            fn guarded() -> Result<u32, &'static str> {
                fail_point!("typed", return Err("injected"));
                Ok(7)
            }
            assert_eq!(guarded(), Err("injected"));
            clear();
            assert_eq!(guarded(), Ok(7));
        });
    }
}
