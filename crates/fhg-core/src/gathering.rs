//! Gatherings: the per-holiday outcome.
//!
//! Definition 2.1 of the paper: a *family holiday gathering* is an
//! orientation of the conflict edges; a parent is *happy* if it is a sink.
//! The set of happy parents is therefore an independent set.  Schedulers in
//! this crate produce happy sets directly; this module provides the
//! orientation view and the checks connecting the two.

use fhg_graph::{properties, FixedBitSet, Graph, HappySet, NodeId};

/// One holiday's outcome: which parents are happy, plus the holiday index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gathering {
    /// The holiday index this gathering belongs to.
    pub holiday: u64,
    /// The happy parents, sorted by node id.
    pub happy: Vec<NodeId>,
}

impl Gathering {
    /// Creates a gathering, sorting and deduplicating the happy set.
    pub fn new(holiday: u64, mut happy: Vec<NodeId>) -> Self {
        happy.sort_unstable();
        happy.dedup();
        Gathering { holiday, happy }
    }

    /// Creates a gathering from an engine [`HappySet`] buffer — the bridge
    /// between the zero-allocation scheduler/analysis hot path and the
    /// Definition 2.1 orientation view.  The buffer iterates ascending with
    /// no duplicates, so no normalisation pass is needed.
    pub fn from_happy_set(holiday: u64, happy: &HappySet) -> Self {
        Gathering { holiday, happy: happy.to_vec() }
    }

    /// Whether parent `p` is happy in this gathering.
    pub fn is_happy(&self, p: NodeId) -> bool {
        self.happy.binary_search(&p).is_ok()
    }

    /// Number of happy parents.
    pub fn happy_count(&self) -> usize {
        self.happy.len()
    }

    /// Whether the happy set is an independent set of `graph` — the
    /// correctness requirement every scheduler must satisfy.
    pub fn is_valid(&self, graph: &Graph) -> bool {
        self.happy.iter().all(|&p| p < graph.node_count())
            && properties::is_independent_set(graph, &self.happy)
    }
}

/// Builds an explicit edge orientation realising a happy set (Definition 2.1):
/// each edge incident to a happy node is directed towards it; the remaining
/// edges are directed towards their lower-id endpoint.
///
/// Returns, for every edge of `graph.edges()` in order, the node the edge
/// points *to*.  Returns `None` if the happy set is not independent (two
/// adjacent happy parents would both demand the shared edge).
pub fn orientation_from_happy_set(graph: &Graph, happy: &[NodeId]) -> Option<Vec<NodeId>> {
    if !properties::is_independent_set(graph, happy) {
        return None;
    }
    let mut is_happy = FixedBitSet::new(graph.node_count());
    for &p in happy {
        is_happy.insert(p);
    }
    Some(
        graph
            .edges()
            .map(|e| {
                if is_happy.contains(e.u) {
                    e.u
                } else if is_happy.contains(e.v) {
                    e.v
                } else {
                    e.u.min(e.v)
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{cycle, star};
    use proptest::prelude::*;

    #[test]
    fn gathering_normalises_its_happy_set() {
        let g = Gathering::new(7, vec![3, 1, 3, 2]);
        assert_eq!(g.happy, vec![1, 2, 3]);
        assert_eq!(g.holiday, 7);
        assert!(g.is_happy(2));
        assert!(!g.is_happy(0));
        assert_eq!(g.happy_count(), 3);
    }

    #[test]
    fn from_happy_set_bridges_the_engine_buffer() {
        let mut buf = fhg_graph::HappySet::new(6);
        for p in [4, 1, 3] {
            buf.insert(p);
        }
        let g = Gathering::from_happy_set(9, &buf);
        assert_eq!(g.holiday, 9);
        assert_eq!(g.happy, vec![1, 3, 4], "buffer iteration is ascending");
        assert_eq!(g.happy_count(), 3);
    }

    #[test]
    fn validity_requires_independence_and_range() {
        let graph = cycle(5);
        assert!(Gathering::new(0, vec![0, 2]).is_valid(&graph));
        assert!(!Gathering::new(0, vec![0, 1]).is_valid(&graph), "adjacent parents");
        assert!(!Gathering::new(0, vec![0, 9]).is_valid(&graph), "out of range");
        assert!(Gathering::new(0, vec![]).is_valid(&graph), "empty set is vacuously fine");
    }

    #[test]
    fn orientation_points_every_incident_edge_at_happy_nodes() {
        let graph = star(6);
        let orientation = orientation_from_happy_set(&graph, &[0]).unwrap();
        // Every edge of the star is incident to the centre, so all point to 0.
        assert!(orientation.iter().all(|&sink| sink == 0));

        let orientation = orientation_from_happy_set(&graph, &[1, 2, 3, 4, 5]).unwrap();
        let edges: Vec<_> = graph.edges().collect();
        for (e, &sink) in edges.iter().zip(&orientation) {
            assert_eq!(sink, e.v, "each leaf edge must point to the leaf");
        }
    }

    #[test]
    fn orientation_rejects_non_independent_sets() {
        let graph = cycle(4);
        assert!(orientation_from_happy_set(&graph, &[0, 1]).is_none());
    }

    #[test]
    fn happy_nodes_are_exactly_the_sinks_of_the_orientation() {
        let graph = cycle(6);
        let happy = vec![0, 2, 4];
        let orientation = orientation_from_happy_set(&graph, &happy).unwrap();
        let edges: Vec<_> = graph.edges().collect();
        for &p in &happy {
            for (e, &sink) in edges.iter().zip(&orientation) {
                if e.u == p || e.v == p {
                    assert_eq!(sink, p, "edge ({}, {}) must point at happy node {p}", e.u, e.v);
                }
            }
        }
    }

    proptest! {
        #[test]
        fn orientation_exists_iff_independent(seed in 0u64..30, k in 0usize..10) {
            let graph = erdos_renyi(25, 0.15, seed);
            // Take an arbitrary candidate subset.
            let candidate: Vec<NodeId> = (0..25).filter(|u| (u * 7 + k) % 3 == 0).collect();
            let independent = properties::is_independent_set(&graph, &candidate);
            prop_assert_eq!(orientation_from_happy_set(&graph, &candidate).is_some(), independent);
        }
    }
}
