//! The [`Scheduler`] trait: the common interface of every algorithm in the
//! paper.
//!
//! A scheduler is queried holiday by holiday and produces the set of happy
//! parents.  The engine interface is [`Scheduler::fill_happy_set`], which
//! writes into a caller-provided [`HappySet`] buffer and performs **zero heap
//! allocations per holiday** once the buffer has warmed up to the right
//! capacity; [`Scheduler::happy_set`] is a compatibility shim that allocates
//! a fresh sorted `Vec<NodeId>` on every call.
//!
//! Stateful schedulers (the §3 phased-greedy algorithm and the random
//! baseline) must be queried with consecutive holiday numbers starting from
//! [`Scheduler::first_holiday`] — through *either* entry point, which share
//! the same internal state; perfectly periodic schedulers (§4, §5) are pure
//! functions of the holiday number.

use fhg_graph::{HappySet, NodeId};

use crate::gathering::Gathering;
use crate::schedulers::residue::ResidueSchedule;

/// A (possibly stateful) holiday-gathering scheduler.
pub trait Scheduler {
    /// Number of parents in the conflict graph this scheduler was built for.
    ///
    /// [`fill_happy_set`](Scheduler::fill_happy_set) resets its output buffer
    /// to exactly this capacity.
    fn node_count(&self) -> usize;

    /// Writes the happy parents of holiday `t` into `out`.
    ///
    /// # Contract
    ///
    /// * Implementations begin with `out.reset(self.node_count())`, so the
    ///   caller never has to clear the buffer between holidays and may reuse
    ///   one buffer across different schedulers.  `reset` only reallocates
    ///   when the capacity changes, so driving one scheduler over a horizon
    ///   allocates nothing after the first call.
    /// * Stateful schedulers (those with
    ///   [`rounds_per_holiday`](Scheduler::rounds_per_holiday) `> 0` or
    ///   internal randomness) must be called with **consecutive** values of
    ///   `t` starting at [`first_holiday`](Scheduler::first_holiday); calls
    ///   advance the same state as [`happy_set`](Scheduler::happy_set), so
    ///   the two entry points can be mixed but not replayed.  Perfectly
    ///   periodic schedulers accept any `t` in any order.
    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet);

    /// The happy parents of holiday `t` as a freshly allocated sorted `Vec`.
    ///
    /// Compatibility shim over [`fill_happy_set`](Scheduler::fill_happy_set);
    /// prefer the buffer API on hot paths.  The consecutive-`t` requirement
    /// for stateful schedulers applies here too.
    ///
    /// The intermediate [`HappySet`] is the process-wide per-thread scratch
    /// buffer ([`fhg_graph::happy_set::with_thread_scratch`]) reused across
    /// calls (and across schedulers of the same `node_count`), so the only
    /// steady-state allocation is the returned `Vec` itself.
    /// Implementations of `fill_happy_set` must not call back into
    /// `happy_set` (none has a reason to), or the scratch borrow panics.
    fn happy_set(&mut self, t: u64) -> Vec<NodeId> {
        fhg_graph::happy_set::with_thread_scratch(|buf| {
            self.fill_happy_set(t, buf);
            buf.to_vec()
        })
    }

    /// The first holiday index this scheduler is defined for (the paper
    /// starts at 1; purely periodic schedulers also accept 0).
    fn first_holiday(&self) -> u64 {
        1
    }

    /// Short machine-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Whether the schedule is perfectly periodic (every node is happy every
    /// fixed number of holidays).
    fn is_periodic(&self) -> bool;

    /// The exact period of node `p`, when the schedule is perfectly periodic.
    fn period(&self, p: NodeId) -> Option<u64>;

    /// The scheduler's *a-priori* upper bound on the maximum unhappiness
    /// interval of node `p`, if it offers one (e.g. `d_p + 1` for the §3
    /// algorithm, `2^ρ(c_p)` for §4, `2^⌈log(d_p+1)⌉` for §5).
    fn unhappiness_bound(&self, p: NodeId) -> Option<u64>;

    /// A thread-safe residue view of this schedule, when the happy set is a
    /// **pure function of the holiday number**: for every `t`,
    /// `view.fill(t, out)` must produce exactly the set
    /// [`fill_happy_set`](Scheduler::fill_happy_set) would, evaluable through
    /// `&self` from any thread.
    ///
    /// Returning `Some` is what unlocks the fast analysis engines
    /// ([`crate::analysis::AnalysisEngine`]): the closed-form cycle profile
    /// (each residue class `t mod` [`ResidueSchedule::cycle`] emitted and
    /// verified once, the whole horizon derived analytically) when the
    /// horizon spans at least one cycle, and the sharded, residue-cached
    /// sweep otherwise.  Stateful schedulers must return `None` (the
    /// default) and take the sequential, fully verified path.
    fn residue_schedule(&self) -> Option<&ResidueSchedule> {
        None
    }

    /// The global cycle length of this schedule — the smallest `C` such that
    /// the happy set of holiday `t` depends only on `t mod C` — when the
    /// scheduler exposes a residue view.  Convenience over
    /// [`residue_schedule`](Scheduler::residue_schedule) for engine
    /// selection, experiment tables and horizon sizing.
    fn schedule_cycle(&self) -> Option<u64> {
        self.residue_schedule().map(ResidueSchedule::cycle)
    }

    /// Number of LOCAL-model communication rounds charged to the
    /// initialisation of this scheduler (0 for purely sequential ones).
    fn init_rounds(&self) -> u64 {
        0
    }

    /// Number of LOCAL-model communication rounds charged to *each holiday*
    /// (the §3 algorithm pays O(1) per holiday; periodic schedulers pay 0).
    fn rounds_per_holiday(&self) -> u64 {
        0
    }
}

/// Convenience blanket helpers available on every scheduler.
pub trait SchedulerExt: Scheduler {
    /// Collects the happy sets of the first `horizon` holidays, starting at
    /// [`Scheduler::first_holiday`].
    fn run(&mut self, horizon: u64) -> Vec<Vec<NodeId>> {
        let start = self.first_holiday();
        (start..start + horizon).map(|t| self.happy_set(t)).collect()
    }

    /// Collects the first `horizon` [`Gathering`]s (the Definition 2.1
    /// orientation view), driving the engine through **one** reused
    /// [`HappySet`] buffer — the only steady-state allocations are the
    /// returned gatherings themselves.
    fn gatherings(&mut self, horizon: u64) -> Vec<Gathering> {
        let start = self.first_holiday();
        let mut buf = HappySet::new(self.node_count());
        (start..start + horizon)
            .map(|t| {
                self.fill_happy_set(t, &mut buf);
                Gathering::from_happy_set(t, &buf)
            })
            .collect()
    }
}

impl<S: Scheduler + ?Sized> SchedulerExt for S {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal scheduler for exercising the trait defaults.
    struct EveryOther {
        n: usize,
    }

    impl Scheduler for EveryOther {
        fn node_count(&self) -> usize {
            self.n
        }
        fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
            out.reset(self.n);
            if t.is_multiple_of(2) {
                for p in 0..self.n {
                    out.insert(p);
                }
            }
        }
        fn name(&self) -> &'static str {
            "every-other"
        }
        fn is_periodic(&self) -> bool {
            true
        }
        fn period(&self, _p: NodeId) -> Option<u64> {
            Some(2)
        }
        fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
            Some(2)
        }
    }

    #[test]
    fn trait_defaults() {
        let s = EveryOther { n: 3 };
        assert_eq!(s.first_holiday(), 1);
        assert_eq!(s.init_rounds(), 0);
        assert_eq!(s.rounds_per_holiday(), 0);
        assert_eq!(s.node_count(), 3);
        assert!(s.residue_schedule().is_none(), "no residue view unless opted in");
        assert!(s.schedule_cycle().is_none(), "no cycle without a residue view");
    }

    #[test]
    fn shim_scratch_is_reused_across_interleaved_schedulers() {
        // The thread-local scratch buffer must survive interleaved calls from
        // schedulers of different capacities: each call resets it to its own
        // node_count, so results stay bitwise-identical to the buffer API.
        let mut small = EveryOther { n: 3 };
        let mut large = EveryOther { n: 10 };
        for t in 0..6u64 {
            let s = small.happy_set(t);
            let l = large.happy_set(t);
            if t % 2 == 0 {
                assert_eq!(s, vec![0, 1, 2], "holiday {t}");
                assert_eq!(l, (0..10).collect::<Vec<_>>(), "holiday {t}");
            } else {
                assert!(s.is_empty(), "holiday {t}");
                assert!(l.is_empty(), "holiday {t}");
            }
        }
    }

    #[test]
    fn happy_set_shim_matches_fill() {
        let mut s = EveryOther { n: 4 };
        let via_vec = s.happy_set(2);
        let mut buf = HappySet::new(0); // wrong capacity on purpose
        s.fill_happy_set(2, &mut buf);
        assert_eq!(buf.capacity(), 4, "fill must reset the buffer to node_count");
        assert_eq!(via_vec, buf.to_vec());
        assert_eq!(via_vec, vec![0, 1, 2, 3]);
        s.fill_happy_set(3, &mut buf);
        assert!(buf.is_empty(), "fill must clear previous members");
    }

    #[test]
    fn run_collects_consecutive_holidays() {
        let mut s = EveryOther { n: 2 };
        let sets = s.run(4); // holidays 1, 2, 3, 4
        assert_eq!(sets.len(), 4);
        assert!(sets[0].is_empty());
        assert_eq!(sets[1], vec![0, 1]);
        assert!(sets[2].is_empty());
        assert_eq!(sets[3], vec![0, 1]);
    }

    #[test]
    fn gatherings_mirror_run_with_holiday_indices() {
        let mut a = EveryOther { n: 3 };
        let mut b = EveryOther { n: 3 };
        let gatherings = a.gatherings(4);
        let sets = b.run(4);
        assert_eq!(gatherings.len(), 4);
        for (g, (offset, set)) in gatherings.iter().zip(sets.iter().enumerate()) {
            assert_eq!(g.holiday, 1 + offset as u64, "holiday indices carried through");
            assert_eq!(&g.happy, set, "same members as the Vec API");
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut boxed: Box<dyn Scheduler> = Box::new(EveryOther { n: 1 });
        assert_eq!(boxed.name(), "every-other");
        assert_eq!(boxed.happy_set(2), vec![0]);
        let mut buf = HappySet::new(1);
        boxed.fill_happy_set(2, &mut buf);
        assert_eq!(buf.to_vec(), vec![0]);
        let sets = boxed.run(2);
        assert_eq!(sets.len(), 2);
    }
}
