//! The [`Scheduler`] trait: the common interface of every algorithm in the
//! paper.
//!
//! A scheduler is queried holiday by holiday and returns the set of happy
//! parents.  Stateful schedulers (the §3 phased-greedy algorithm and the
//! random baseline) must be queried with consecutive holiday numbers starting
//! from [`Scheduler::first_holiday`]; perfectly periodic schedulers (§4, §5)
//! are pure functions of the holiday number.

use fhg_graph::NodeId;

/// A (possibly stateful) holiday-gathering scheduler.
pub trait Scheduler {
    /// The happy parents of holiday `t`.
    ///
    /// For stateful schedulers this must be called with consecutive values of
    /// `t` starting at [`Scheduler::first_holiday`]; perfectly periodic
    /// schedulers accept any `t`.
    fn happy_set(&mut self, t: u64) -> Vec<NodeId>;

    /// The first holiday index this scheduler is defined for (the paper
    /// starts at 1; purely periodic schedulers also accept 0).
    fn first_holiday(&self) -> u64 {
        1
    }

    /// Short machine-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Whether the schedule is perfectly periodic (every node is happy every
    /// fixed number of holidays).
    fn is_periodic(&self) -> bool;

    /// The exact period of node `p`, when the schedule is perfectly periodic.
    fn period(&self, p: NodeId) -> Option<u64>;

    /// The scheduler's *a-priori* upper bound on the maximum unhappiness
    /// interval of node `p`, if it offers one (e.g. `d_p + 1` for the §3
    /// algorithm, `2^ρ(c_p)` for §4, `2^⌈log(d_p+1)⌉` for §5).
    fn unhappiness_bound(&self, p: NodeId) -> Option<u64>;

    /// Number of LOCAL-model communication rounds charged to the
    /// initialisation of this scheduler (0 for purely sequential ones).
    fn init_rounds(&self) -> u64 {
        0
    }

    /// Number of LOCAL-model communication rounds charged to *each holiday*
    /// (the §3 algorithm pays O(1) per holiday; periodic schedulers pay 0).
    fn rounds_per_holiday(&self) -> u64 {
        0
    }
}

/// Convenience blanket helpers available on every scheduler.
pub trait SchedulerExt: Scheduler {
    /// Collects the happy sets of the first `horizon` holidays, starting at
    /// [`Scheduler::first_holiday`].
    fn run(&mut self, horizon: u64) -> Vec<Vec<NodeId>> {
        let start = self.first_holiday();
        (start..start + horizon).map(|t| self.happy_set(t)).collect()
    }
}

impl<S: Scheduler + ?Sized> SchedulerExt for S {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal scheduler for exercising the trait defaults.
    struct EveryOther {
        n: usize,
    }

    impl Scheduler for EveryOther {
        fn happy_set(&mut self, t: u64) -> Vec<NodeId> {
            if t % 2 == 0 {
                (0..self.n).collect()
            } else {
                Vec::new()
            }
        }
        fn name(&self) -> &'static str {
            "every-other"
        }
        fn is_periodic(&self) -> bool {
            true
        }
        fn period(&self, _p: NodeId) -> Option<u64> {
            Some(2)
        }
        fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
            Some(2)
        }
    }

    #[test]
    fn trait_defaults() {
        let s = EveryOther { n: 3 };
        assert_eq!(s.first_holiday(), 1);
        assert_eq!(s.init_rounds(), 0);
        assert_eq!(s.rounds_per_holiday(), 0);
    }

    #[test]
    fn run_collects_consecutive_holidays() {
        let mut s = EveryOther { n: 2 };
        let sets = s.run(4); // holidays 1, 2, 3, 4
        assert_eq!(sets.len(), 4);
        assert!(sets[0].is_empty());
        assert_eq!(sets[1], vec![0, 1]);
        assert!(sets[2].is_empty());
        assert_eq!(sets[3], vec![0, 1]);
    }

    #[test]
    fn trait_objects_work() {
        let mut boxed: Box<dyn Scheduler> = Box::new(EveryOther { n: 1 });
        assert_eq!(boxed.name(), "every-other");
        assert_eq!(boxed.happy_set(2), vec![0]);
        let sets = boxed.run(2);
        assert_eq!(sets.len(), 2);
    }
}
