//! Schedule analysis: measuring `mul`, periodicity, fairness and validity.
//!
//! [`analyze_schedule`] drives a scheduler over a finite horizon and records,
//! for every node, the quantities the paper's theorems bound:
//!
//! * the **maximum unhappiness streak** — the longest run of consecutive
//!   holidays with no happy appearance (Definition 2.2's `mul`, measured as
//!   the streak length, so a perfectly periodic node of period `π` has streak
//!   `π - 1`);
//! * the **observed period** — `Some(π)` when every gap between consecutive
//!   happy holidays equals `π` (the perfect-periodicity check of §4/§5);
//! * happiness counts and first-happiness times, used for the fairness
//!   comparisons against the `1/(deg+1)` landmark of §1.
//!
//! The analysis also verifies, holiday by holiday, that every happy set is an
//! independent set of the conflict graph — the correctness requirement of
//! Definition 2.1.
//!
//! # Execution engine
//!
//! The driver runs on the zero-allocation engine path: every worker owns one
//! reused [`HappySet`] scratch buffer, independence is verified word-wise
//! against dense adjacency rows ([`properties::AdjacencyBitmap`]) on graphs
//! up to [`DENSE_ADJACENCY_LIMIT`] nodes and by branchless CSR neighbour
//! probes beyond (see [`GraphChecker`]), and streak accounting iterates set
//! bits directly.  Two structural optimisations apply when the scheduler
//! exposes a [`ResidueSchedule`](crate::schedulers::residue::ResidueSchedule)
//! view (a pure function of the holiday number — every perfectly periodic
//! scheduler in the paper does):
//!
//! * **Horizon sharding.** The horizon is split into one contiguous shard per
//!   worker thread ([`rayon::current_num_threads`], the `FHG_THREADS` knob);
//!   each shard sweeps its offsets with private scratch and per-node
//!   accumulators, and the segment summaries are merged **exactly** — gap
//!   sums, streaks and period candidates compose across shard boundaries with
//!   pure integer arithmetic, so the result is bitwise-identical to the
//!   sequential sweep for every thread count (locked down by
//!   `tests/analysis_parity.rs`).
//! * **Residue-cached verification.** A perfectly periodic schedule has only
//!   [`cycle`](crate::schedulers::residue::ResidueSchedule::cycle) distinct
//!   happy sets, so each residue class
//!   `t mod cycle` is verified exactly once (the first `cycle` holidays) and
//!   the cached verdict is replayed for the rest of the horizon, converting
//!   `O(horizon)` independence checks into `O(cycle)` (locked down by
//!   `tests/residue_cache.rs`).
//!
//! Stateful schedulers (no residue view) take the sequential, fully verified
//! path, which is also exposed as [`analyze_schedule_reference`] for
//! differential testing and benchmarking.

use std::ops::Range;

use fhg_graph::{properties, CsrGraph, FixedBitSet, Graph, HappySet, NodeId};
use rayon::prelude::*;

use crate::scheduler::Scheduler;

/// Largest node count for which the analysis materialises dense adjacency
/// bit rows (`n²/8` bytes — 2 MiB at the limit) to verify independence with
/// whole-word ANDs; larger graphs fall back to CSR neighbour probes.
pub const DENSE_ADJACENCY_LIMIT: usize = 4096;

/// Per-node measurements over the analysed horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnalysis {
    /// The node.
    pub node: NodeId,
    /// Its degree in the conflict graph.
    pub degree: usize,
    /// Number of holidays (within the horizon) at which the node was happy.
    pub happy_count: u64,
    /// Longest run of consecutive holidays with no happiness (including the
    /// stretches before the first and after the last happy holiday).
    pub max_unhappiness: u64,
    /// Exact period if every gap between consecutive happy holidays is equal
    /// (requires at least two happy holidays).
    pub observed_period: Option<u64>,
    /// Offset (from the start of the horizon) of the first happy holiday.
    pub first_happy: Option<u64>,
    /// Mean gap between consecutive happy holidays (`NaN` if fewer than two).
    pub mean_gap: f64,
}

/// Whole-schedule measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAnalysis {
    /// Name of the analysed scheduler.
    pub scheduler: String,
    /// Number of holidays simulated.
    pub horizon: u64,
    /// Per-node measurements, indexed by node id.
    pub per_node: Vec<NodeAnalysis>,
    /// Whether every happy set produced was an independent set of the graph.
    pub all_happy_sets_independent: bool,
    /// Nodes that were never happy within the horizon.
    pub never_happy: Vec<NodeId>,
    /// Mean happy-set size per holiday.
    pub mean_happy_set_size: f64,
    /// Total happy appearances across all nodes and holidays.
    pub total_happiness: u64,
}

impl ScheduleAnalysis {
    /// The largest unhappiness streak over all nodes.
    pub fn max_unhappiness(&self) -> u64 {
        self.per_node.iter().map(|n| n.max_unhappiness).max().unwrap_or(0)
    }

    /// Whether every node's observed behaviour is perfectly periodic.
    pub fn all_periodic(&self) -> bool {
        self.per_node.iter().all(|n| n.observed_period.is_some())
    }

    /// Nodes whose measured unhappiness streak reaches or exceeds the
    /// scheduler's claimed bound (i.e. a window of `bound` consecutive
    /// holidays containing no happy one), indicating a violated guarantee.
    pub fn bound_violations<S: Scheduler + ?Sized>(&self, scheduler: &S) -> Vec<NodeId> {
        self.per_node
            .iter()
            .filter(|n| {
                scheduler.unhappiness_bound(n.node).is_some_and(|bound| n.max_unhappiness >= bound)
            })
            .map(|n| n.node)
            .collect()
    }

    /// Jain's fairness index of the degree-normalised happiness rates
    /// `happy_count · (deg + 1) / horizon`.  A value of 1 means every parent
    /// is happy exactly in proportion to the `1/(deg+1)` landmark of §1.
    pub fn jain_fairness(&self) -> f64 {
        if self.per_node.is_empty() || self.horizon == 0 {
            return 1.0;
        }
        let rates: Vec<f64> = self
            .per_node
            .iter()
            .map(|n| n.happy_count as f64 * (n.degree as f64 + 1.0) / self.horizon as f64)
            .collect();
        let sum: f64 = rates.iter().sum();
        let sum_sq: f64 = rates.iter().map(|r| r * r).sum();
        if sum_sq == 0.0 {
            return 0.0;
        }
        sum * sum / (rates.len() as f64 * sum_sq)
    }
}

/// A per-holiday independence verdict source, shareable across worker
/// threads.
///
/// The holiday number is passed alongside the set so instrumented checkers
/// (e.g. the counting checker in `tests/residue_cache.rs`) can observe
/// *which* holidays the analysis actually verifies — the residue cache
/// promises each residue class is probed exactly once.
pub trait HolidayChecker: Sync {
    /// Whether the happy set emitted at holiday `t` is an independent set.
    fn check(&self, t: u64, happy: &FixedBitSet) -> bool;
}

/// The default checker: dense word-wise adjacency rows for graphs up to
/// [`DENSE_ADJACENCY_LIMIT`] nodes, branchless CSR neighbour probes beyond.
pub struct GraphChecker {
    dense: Option<properties::AdjacencyBitmap>,
    csr: Option<CsrGraph>,
}

impl GraphChecker {
    /// Builds the checker for `graph`, choosing the representation by size.
    pub fn new(graph: &Graph) -> Self {
        let dense = (graph.node_count() <= DENSE_ADJACENCY_LIMIT)
            .then(|| properties::AdjacencyBitmap::from_graph(graph));
        let csr = if dense.is_none() { Some(CsrGraph::from_graph(graph)) } else { None };
        GraphChecker { dense, csr }
    }
}

impl HolidayChecker for GraphChecker {
    fn check(&self, _t: u64, happy: &FixedBitSet) -> bool {
        match (&self.dense, &self.csr) {
            (Some(adj), _) => adj.is_independent(happy),
            (None, Some(csr)) => csr.is_independent(happy),
            (None, None) => unreachable!("one independence checker is always built"),
        }
    }
}

/// Sentinel for "no offset/gap recorded yet" in the packed accumulators
/// (horizons never reach `u64::MAX`).
const NONE: u64 = u64::MAX;

/// Per-node accumulator of one horizon segment — one cache line per node, so
/// the counting sweep touches a single line per happy appearance.
#[derive(Clone)]
struct NodeAccum {
    /// Offset of the first happy holiday in the segment (`NONE` if none).
    first: u64,
    /// Offset of the last happy holiday in the segment (`NONE` if none).
    last: u64,
    /// Happy appearances in the segment.
    happy: u64,
    /// Sum of the gaps between consecutive happy holidays in the segment.
    gap_sum: u64,
    /// Number of such gaps.
    gap_count: u64,
    /// The first gap observed (the candidate period); `NONE` if no gaps.
    first_gap: u64,
    /// Largest `gap - 1` streak between happy holidays inside the segment.
    max_streak: u64,
    /// Whether every gap observed so far equals `first_gap`.
    uniform: bool,
}

impl NodeAccum {
    fn empty() -> Self {
        NodeAccum {
            first: NONE,
            last: NONE,
            happy: 0,
            gap_sum: 0,
            gap_count: 0,
            first_gap: NONE,
            max_streak: 0,
            uniform: true,
        }
    }
}

/// Folds segment `s` (the next contiguous stretch of the horizon) into the
/// running accumulator `g`.  This is exactly the arithmetic the sequential
/// sweep performs, applied to segment summaries: the boundary gap between
/// `g`'s last happy offset and `s`'s first one is processed first, then `s`'s
/// internal gaps are absorbed in order — so the merged result is
/// bitwise-identical to a single sequential pass regardless of where the
/// horizon was cut.
fn merge_node(g: &mut NodeAccum, s: &NodeAccum) {
    if s.happy == 0 {
        return;
    }
    if g.last == NONE {
        g.first = s.first;
        // The leading unhappy stretch before the very first happy holiday.
        g.max_streak = g.max_streak.max(s.first);
    } else {
        let gap = s.first - g.last;
        g.max_streak = g.max_streak.max(gap - 1);
        g.gap_sum += gap;
        g.gap_count += 1;
        apply_gap_candidate(g, gap);
    }
    g.max_streak = g.max_streak.max(s.max_streak);
    g.gap_sum += s.gap_sum;
    g.gap_count += s.gap_count;
    if s.gap_count > 0 {
        apply_gap_candidate(g, s.first_gap);
        if !s.uniform {
            g.uniform = false;
        }
    }
    g.happy += s.happy;
    g.last = s.last;
}

fn apply_gap_candidate(g: &mut NodeAccum, gap: u64) {
    if g.first_gap == NONE {
        g.first_gap = gap;
    } else if g.first_gap != gap {
        g.uniform = false;
    }
}

/// One worker's slice of the horizon: a contiguous offset range, private
/// scratch, and per-node segment accumulators.
struct ShardSweep {
    /// Offsets (from the start of the horizon) this shard covers.
    offsets: Range<u64>,
    /// Offsets below this bound get an independence check; at or above it the
    /// cached per-residue verdict is replayed (equal to the horizon when no
    /// cache applies).
    verify_below: u64,
    accum: Vec<NodeAccum>,
    happy: HappySet,
    all_independent: bool,
    total_happiness: u64,
}

impl ShardSweep {
    fn new(n: usize, capacity: usize, offsets: Range<u64>, verify_below: u64) -> Self {
        ShardSweep {
            offsets,
            verify_below,
            accum: vec![NodeAccum::empty(); n],
            happy: HappySet::new(capacity),
            all_independent: true,
            total_happiness: 0,
        }
    }

    /// Sweeps the shard's offsets: emit, verify (below `verify_below`), and
    /// count.  Zero heap allocations per holiday: `fill` reuses the shard's
    /// scratch buffer and every accumulator was sized up front.
    fn sweep<C: HolidayChecker + ?Sized>(
        &mut self,
        start: u64,
        n: usize,
        checker: &C,
        mut fill: impl FnMut(u64, &mut HappySet),
    ) {
        for offset in self.offsets.clone() {
            let t = start + offset;
            fill(t, &mut self.happy);
            if self.all_independent
                && offset < self.verify_below
                && !checker.check(t, self.happy.as_bitset())
            {
                self.all_independent = false;
            }
            self.total_happiness += self.happy.len() as u64;
            for p in self.happy.iter() {
                if p >= n {
                    self.all_independent = false;
                    continue;
                }
                let a = &mut self.accum[p];
                a.happy += 1;
                if a.last == NONE {
                    a.first = offset;
                } else {
                    let gap = offset - a.last;
                    a.max_streak = a.max_streak.max(gap - 1);
                    a.gap_sum += gap;
                    a.gap_count += 1;
                    apply_gap_candidate(a, gap);
                }
                a.last = offset;
            }
        }
    }
}

/// Splits `horizon` offsets into at most `parts` contiguous, non-empty
/// ranges (earlier ranges get the remainder, matching an even split).
fn split_offsets(horizon: u64, parts: usize) -> Vec<Range<u64>> {
    if horizon == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = (parts as u64).min(horizon);
    let base = horizon / parts;
    let remainder = horizon % parts;
    let mut ranges = Vec::with_capacity(parts as usize);
    let mut lo = 0u64;
    for i in 0..parts {
        let len = base + u64::from(i < remainder);
        ranges.push(lo..lo + len);
        lo += len;
    }
    ranges
}

/// Merges the shard summaries (in horizon order) and assembles the final
/// [`ScheduleAnalysis`].
fn finalize(
    scheduler: String,
    horizon: u64,
    graph: &Graph,
    shards: Vec<ShardSweep>,
) -> ScheduleAnalysis {
    let n = graph.node_count();
    let mut global = vec![NodeAccum::empty(); n];
    let mut all_independent = true;
    let mut total_happiness = 0u64;
    for shard in &shards {
        all_independent &= shard.all_independent;
        total_happiness += shard.total_happiness;
        for (g, s) in global.iter_mut().zip(&shard.accum) {
            merge_node(g, s);
        }
    }

    let per_node: Vec<NodeAnalysis> = global
        .iter()
        .enumerate()
        .map(|(p, a)| {
            // Account for the trailing unhappy stretch.
            let trailing = if a.last == NONE { horizon } else { horizon - 1 - a.last };
            let max_unhappiness = a.max_streak.max(trailing);
            let observed_period = (a.uniform && a.first_gap != NONE).then_some(a.first_gap);
            let mean_gap =
                if a.gap_count > 0 { a.gap_sum as f64 / a.gap_count as f64 } else { f64::NAN };
            NodeAnalysis {
                node: p,
                degree: graph.degree(p),
                happy_count: a.happy,
                max_unhappiness,
                observed_period,
                first_happy: (a.first != NONE).then_some(a.first),
                mean_gap,
            }
        })
        .collect();

    let never_happy = per_node.iter().filter(|n| n.happy_count == 0).map(|n| n.node).collect();
    ScheduleAnalysis {
        scheduler,
        horizon,
        mean_happy_set_size: if horizon == 0 {
            0.0
        } else {
            total_happiness as f64 / horizon as f64
        },
        per_node,
        all_happy_sets_independent: all_independent,
        never_happy,
        total_happiness,
    }
}

/// Runs `scheduler` for `horizon` holidays (starting at its
/// [`Scheduler::first_holiday`]) and measures every quantity above, using
/// the sharded, residue-cached engine when the scheduler exposes a
/// [`ResidueSchedule`](crate::schedulers::residue::ResidueSchedule) view
/// (see the module docs).
pub fn analyze_schedule<S: Scheduler + ?Sized>(
    graph: &Graph,
    scheduler: &mut S,
    horizon: u64,
) -> ScheduleAnalysis {
    analyze_schedule_with_checker(graph, scheduler, horizon, &GraphChecker::new(graph))
}

/// Like [`analyze_schedule`], but verifying independence through a custom
/// [`HolidayChecker`] — the instrumentation point the residue-cache tests use
/// to prove each residue class is checked exactly once.
pub fn analyze_schedule_with_checker<S, C>(
    graph: &Graph,
    scheduler: &mut S,
    horizon: u64,
    checker: &C,
) -> ScheduleAnalysis
where
    S: Scheduler + ?Sized,
    C: HolidayChecker + ?Sized,
{
    let n = graph.node_count();
    let start = scheduler.first_holiday();
    if let Some(view) = scheduler.residue_schedule() {
        // Pure function of t: shard the horizon across worker threads and
        // verify each residue class exactly once.
        let verify_below = view.cycle().min(horizon);
        let threads = rayon::current_num_threads().max(1);
        let mut shards: Vec<ShardSweep> = split_offsets(horizon, threads)
            .into_iter()
            .map(|offsets| ShardSweep::new(n, scheduler.node_count(), offsets, verify_below))
            .collect();
        shards
            .par_iter_mut()
            .for_each(|shard| shard.sweep(start, n, checker, |t, out| view.fill(t, out)));
        finalize(scheduler.name().to_string(), horizon, graph, shards)
    } else {
        // Stateful scheduler: single sequential sweep, every holiday verified.
        let mut shard = ShardSweep::new(n, scheduler.node_count(), 0..horizon, horizon);
        shard.sweep(start, n, checker, |t, out| scheduler.fill_happy_set(t, out));
        finalize(scheduler.name().to_string(), horizon, graph, vec![shard])
    }
}

/// The sequential reference analysis: single-threaded, no residue cache,
/// every holiday's independence verified, emission through
/// [`Scheduler::fill_happy_set`].  Exists so the property suite can assert
/// the production engine is bitwise-identical to it, and so benchmarks can
/// measure the engine against the unsharded, uncached baseline.
pub fn analyze_schedule_reference<S: Scheduler + ?Sized>(
    graph: &Graph,
    scheduler: &mut S,
    horizon: u64,
) -> ScheduleAnalysis {
    let n = graph.node_count();
    let start = scheduler.first_holiday();
    let checker = GraphChecker::new(graph);
    let mut shard = ShardSweep::new(n, scheduler.node_count(), 0..horizon, horizon);
    shard.sweep(start, n, &checker, |t, out| scheduler.fill_happy_set(t, out));
    finalize(scheduler.name().to_string(), horizon, graph, vec![shard])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Scheduler;
    use crate::schedulers::PeriodicDegreeBound;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{cycle, path};

    /// A scripted scheduler for exercising the analysis edge cases.
    struct Scripted {
        sets: Vec<Vec<NodeId>>,
    }

    impl Scheduler for Scripted {
        fn node_count(&self) -> usize {
            // Large enough for any scripted member, including the
            // deliberately out-of-range ones the analysis must flag.
            self.sets.iter().flatten().max().map_or(0, |&p| p + 1)
        }
        fn fill_happy_set(&mut self, t: u64, out: &mut fhg_graph::HappySet) {
            out.reset(self.node_count());
            for &p in self.sets.get(t as usize).map_or(&[][..], Vec::as_slice) {
                out.insert(p);
            }
        }
        fn first_holiday(&self) -> u64 {
            0
        }
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn is_periodic(&self) -> bool {
            false
        }
        fn period(&self, _p: NodeId) -> Option<u64> {
            None
        }
        fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
            Some(3)
        }
    }

    #[test]
    fn measures_streaks_periods_and_counts() {
        let g = path(3);
        // Node 0 happy at offsets 1, 3, 5 (period 2); node 1 never happy;
        // node 2 happy only at offset 0.
        let mut s = Scripted { sets: vec![vec![2], vec![0], vec![], vec![0], vec![], vec![0]] };
        let a = analyze_schedule(&g, &mut s, 6);
        assert_eq!(a.scheduler, "scripted");
        assert_eq!(a.horizon, 6);
        assert!(a.all_happy_sets_independent);

        let n0 = &a.per_node[0];
        assert_eq!(n0.happy_count, 3);
        assert_eq!(n0.first_happy, Some(1));
        assert_eq!(n0.observed_period, Some(2));
        assert_eq!(n0.max_unhappiness, 1);
        assert!((n0.mean_gap - 2.0).abs() < 1e-12);

        let n1 = &a.per_node[1];
        assert_eq!(n1.happy_count, 0);
        assert_eq!(n1.max_unhappiness, 6, "never happy: the whole horizon is a streak");
        assert_eq!(n1.observed_period, None);
        assert!(n1.mean_gap.is_nan());

        let n2 = &a.per_node[2];
        assert_eq!(n2.happy_count, 1);
        assert_eq!(n2.first_happy, Some(0));
        assert_eq!(n2.max_unhappiness, 5, "trailing streak after the single happy holiday");
        assert_eq!(n2.observed_period, None, "one occurrence is not enough to call it periodic");

        assert_eq!(a.never_happy, vec![1]);
        assert_eq!(a.total_happiness, 4);
        assert!((a.mean_happy_set_size - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(a.max_unhappiness(), 6);
        assert!(!a.all_periodic());
    }

    #[test]
    fn detects_non_independent_happy_sets() {
        let g = path(3);
        let mut s = Scripted { sets: vec![vec![0, 1]] };
        let a = analyze_schedule(&g, &mut s, 1);
        assert!(!a.all_happy_sets_independent);
    }

    #[test]
    fn detects_out_of_range_nodes() {
        let g = path(2);
        let mut s = Scripted { sets: vec![vec![5]] };
        let a = analyze_schedule(&g, &mut s, 1);
        assert!(!a.all_happy_sets_independent);
    }

    #[test]
    fn bound_violations_reports_nodes_exceeding_the_claim() {
        let g = path(2);
        // Bound claimed by Scripted is 3; node 0 has a streak of exactly 3.
        let mut s = Scripted { sets: vec![vec![0], vec![], vec![], vec![], vec![0]] };
        let a = analyze_schedule(&g, &mut s, 5);
        let violations = a.bound_violations(&s);
        assert!(violations.contains(&0), "streak of 3 >= bound 3 is a violation");
        assert!(violations.contains(&1), "never-happy node violates any bound");
    }

    #[test]
    fn irregular_gaps_are_not_periodic() {
        let g = path(1);
        let mut s = Scripted { sets: vec![vec![0], vec![0], vec![], vec![0]] };
        let a = analyze_schedule(&g, &mut s, 4);
        assert_eq!(a.per_node[0].observed_period, None);
        assert_eq!(a.per_node[0].max_unhappiness, 1);
    }

    #[test]
    fn jain_fairness_of_uniform_and_skewed_schedules() {
        let g = cycle(4);
        // Perfectly alternating 2-colour schedule: everyone happy every other
        // holiday; all degrees equal; fairness must be 1.
        let mut s = Scripted {
            sets: (0..8).map(|t| if t % 2 == 0 { vec![0, 2] } else { vec![1, 3] }).collect(),
        };
        let a = analyze_schedule(&g, &mut s, 8);
        assert!((a.jain_fairness() - 1.0).abs() < 1e-12);

        // Only node 0 is ever happy: fairness drops to 1/n.
        let mut s = Scripted { sets: (0..8).map(|_| vec![0]).collect() };
        let a = analyze_schedule(&g, &mut s, 8);
        assert!((a.jain_fairness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_and_empty_graph() {
        let g = path(2);
        let mut s = Scripted { sets: vec![] };
        let a = analyze_schedule(&g, &mut s, 0);
        assert_eq!(a.max_unhappiness(), 0);
        assert_eq!(a.never_happy, vec![0, 1]);
        assert_eq!(a.mean_happy_set_size, 0.0);
        assert!((a.jain_fairness() - 1.0).abs() < 1e-12);

        let g = Graph::new(0);
        let mut s = Scripted { sets: vec![vec![]] };
        let a = analyze_schedule(&g, &mut s, 1);
        assert!(a.per_node.is_empty());
        assert!(a.all_happy_sets_independent);
        assert!(a.all_periodic());
    }

    #[test]
    fn zero_horizon_on_the_sharded_path() {
        let g = cycle(5);
        let mut s = PeriodicDegreeBound::new(&g);
        assert!(s.residue_schedule().is_some());
        let a = analyze_schedule(&g, &mut s, 0);
        assert_eq!(a.horizon, 0);
        assert_eq!(a.never_happy, vec![0, 1, 2, 3, 4]);
        assert!(a.all_happy_sets_independent);
        assert_eq!(a.mean_happy_set_size, 0.0);
    }

    #[test]
    fn sharded_engine_matches_the_reference_across_thread_counts() {
        // Smoke version of tests/analysis_parity.rs, at unit-test scope.
        let g = erdos_renyi(40, 0.12, 5);
        for horizon in [1u64, 7, 64, 129] {
            let reference = {
                let mut s = PeriodicDegreeBound::new(&g);
                analyze_schedule_reference(&g, &mut s, horizon)
            };
            for threads in [1usize, 2, 8] {
                let mut s = PeriodicDegreeBound::new(&g);
                let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
                let sharded = pool.install(|| analyze_schedule(&g, &mut s, horizon));
                assert_eq!(sharded.scheduler, reference.scheduler);
                assert_eq!(sharded.total_happiness, reference.total_happiness);
                assert_eq!(sharded.never_happy, reference.never_happy);
                assert_eq!(
                    sharded.all_happy_sets_independent,
                    reference.all_happy_sets_independent
                );
                for (a, b) in sharded.per_node.iter().zip(&reference.per_node) {
                    assert_eq!(a.happy_count, b.happy_count, "node {}", a.node);
                    assert_eq!(a.max_unhappiness, b.max_unhappiness, "node {}", a.node);
                    assert_eq!(a.observed_period, b.observed_period, "node {}", a.node);
                    assert_eq!(a.first_happy, b.first_happy, "node {}", a.node);
                    assert_eq!(
                        a.mean_gap.to_bits(),
                        b.mean_gap.to_bits(),
                        "node {} (NaN-aware)",
                        a.node
                    );
                }
            }
        }
    }

    #[test]
    fn split_offsets_covers_the_horizon_exactly() {
        for (horizon, parts) in [(10u64, 3usize), (7, 8), (1, 1), (64, 4), (5, 5)] {
            let ranges = split_offsets(horizon, parts);
            assert!(ranges.len() <= parts);
            assert!(ranges.iter().all(|r| !r.is_empty()), "no empty shards");
            let mut expected = 0u64;
            for r in &ranges {
                assert_eq!(r.start, expected, "contiguous coverage");
                expected = r.end;
            }
            assert_eq!(expected, horizon);
        }
        assert!(split_offsets(0, 4).is_empty());
        assert!(split_offsets(9, 0).is_empty());
    }
}
