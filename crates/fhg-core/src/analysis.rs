//! Schedule analysis: measuring `mul`, periodicity, fairness and validity.
//!
//! [`analyze_schedule`] drives a scheduler over a finite horizon and records,
//! for every node, the quantities the paper's theorems bound:
//!
//! * the **maximum unhappiness streak** — the longest run of consecutive
//!   holidays with no happy appearance (Definition 2.2's `mul`, measured as
//!   the streak length, so a perfectly periodic node of period `π` has streak
//!   `π - 1`);
//! * the **observed period** — `Some(π)` when every gap between consecutive
//!   happy holidays equals `π` (the perfect-periodicity check of §4/§5);
//! * happiness counts and first-happiness times, used for the fairness
//!   comparisons against the `1/(deg+1)` landmark of §1.
//!
//! The analysis also verifies, holiday by holiday, that every happy set is an
//! independent set of the conflict graph — the correctness requirement of
//! Definition 2.1.
//!
//! The driver loop runs on the zero-allocation engine path: one reused
//! [`HappySet`] buffer is filled per holiday via
//! [`Scheduler::fill_happy_set`], independence is verified word-wise against
//! dense adjacency rows ([`properties::AdjacencyBitmap`]) on graphs up to
//! [`DENSE_ADJACENCY_LIMIT`] nodes and by CSR neighbour probes beyond that,
//! and the streak accounting iterates set bits directly.

use fhg_graph::{properties, CsrGraph, Graph, HappySet, NodeId};

use crate::scheduler::Scheduler;

/// Largest node count for which the analysis materialises dense adjacency
/// bit rows (`n²/8` bytes — 2 MiB at the limit) to verify independence with
/// whole-word ANDs; larger graphs fall back to CSR neighbour probes.
pub const DENSE_ADJACENCY_LIMIT: usize = 4096;

/// Per-node measurements over the analysed horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnalysis {
    /// The node.
    pub node: NodeId,
    /// Its degree in the conflict graph.
    pub degree: usize,
    /// Number of holidays (within the horizon) at which the node was happy.
    pub happy_count: u64,
    /// Longest run of consecutive holidays with no happiness (including the
    /// stretches before the first and after the last happy holiday).
    pub max_unhappiness: u64,
    /// Exact period if every gap between consecutive happy holidays is equal
    /// (requires at least two happy holidays).
    pub observed_period: Option<u64>,
    /// Offset (from the start of the horizon) of the first happy holiday.
    pub first_happy: Option<u64>,
    /// Mean gap between consecutive happy holidays (`NaN` if fewer than two).
    pub mean_gap: f64,
}

/// Whole-schedule measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAnalysis {
    /// Name of the analysed scheduler.
    pub scheduler: String,
    /// Number of holidays simulated.
    pub horizon: u64,
    /// Per-node measurements, indexed by node id.
    pub per_node: Vec<NodeAnalysis>,
    /// Whether every happy set produced was an independent set of the graph.
    pub all_happy_sets_independent: bool,
    /// Nodes that were never happy within the horizon.
    pub never_happy: Vec<NodeId>,
    /// Mean happy-set size per holiday.
    pub mean_happy_set_size: f64,
    /// Total happy appearances across all nodes and holidays.
    pub total_happiness: u64,
}

impl ScheduleAnalysis {
    /// The largest unhappiness streak over all nodes.
    pub fn max_unhappiness(&self) -> u64 {
        self.per_node.iter().map(|n| n.max_unhappiness).max().unwrap_or(0)
    }

    /// Whether every node's observed behaviour is perfectly periodic.
    pub fn all_periodic(&self) -> bool {
        self.per_node.iter().all(|n| n.observed_period.is_some())
    }

    /// Nodes whose measured unhappiness streak reaches or exceeds the
    /// scheduler's claimed bound (i.e. a window of `bound` consecutive
    /// holidays containing no happy one), indicating a violated guarantee.
    pub fn bound_violations<S: Scheduler + ?Sized>(&self, scheduler: &S) -> Vec<NodeId> {
        self.per_node
            .iter()
            .filter(|n| {
                scheduler.unhappiness_bound(n.node).is_some_and(|bound| n.max_unhappiness >= bound)
            })
            .map(|n| n.node)
            .collect()
    }

    /// Jain's fairness index of the degree-normalised happiness rates
    /// `happy_count · (deg + 1) / horizon`.  A value of 1 means every parent
    /// is happy exactly in proportion to the `1/(deg+1)` landmark of §1.
    pub fn jain_fairness(&self) -> f64 {
        if self.per_node.is_empty() || self.horizon == 0 {
            return 1.0;
        }
        let rates: Vec<f64> = self
            .per_node
            .iter()
            .map(|n| n.happy_count as f64 * (n.degree as f64 + 1.0) / self.horizon as f64)
            .collect();
        let sum: f64 = rates.iter().sum();
        let sum_sq: f64 = rates.iter().map(|r| r * r).sum();
        if sum_sq == 0.0 {
            return 0.0;
        }
        sum * sum / (rates.len() as f64 * sum_sq)
    }
}

/// Runs `scheduler` for `horizon` holidays (starting at its
/// [`Scheduler::first_holiday`]) and measures every quantity above.
pub fn analyze_schedule<S: Scheduler + ?Sized>(
    graph: &Graph,
    scheduler: &mut S,
    horizon: u64,
) -> ScheduleAnalysis {
    let n = graph.node_count();
    let start = scheduler.first_holiday();
    let mut last_happy: Vec<Option<u64>> = vec![None; n];
    let mut first_happy: Vec<Option<u64>> = vec![None; n];
    let mut max_streak: Vec<u64> = vec![0; n];
    let mut happy_count: Vec<u64> = vec![0; n];
    let mut gap_sum: Vec<u64> = vec![0; n];
    let mut gap_count: Vec<u64> = vec![0; n];
    let mut common_gap: Vec<Option<u64>> = vec![None; n];
    let mut gaps_uniform: Vec<bool> = vec![true; n];
    let mut all_independent = true;
    let mut total_happiness = 0u64;

    // The reused engine buffer plus the independence checker: dense
    // word-wise adjacency rows for small graphs, CSR probes for large ones.
    let mut happy = HappySet::new(scheduler.node_count());
    let dense =
        (n <= DENSE_ADJACENCY_LIMIT).then(|| properties::AdjacencyBitmap::from_graph(graph));
    let csr = if dense.is_none() { Some(CsrGraph::from_graph(graph)) } else { None };

    for offset in 0..horizon {
        let t = start + offset;
        scheduler.fill_happy_set(t, &mut happy);
        if all_independent {
            let independent = match (&dense, &csr) {
                (Some(adj), _) => adj.is_independent(happy.as_bitset()),
                (None, Some(csr)) => csr.is_independent(happy.as_bitset()),
                (None, None) => unreachable!("one independence checker is always built"),
            };
            if !independent {
                all_independent = false;
            }
        }
        total_happiness += happy.len() as u64;
        for p in happy.iter() {
            if p >= n {
                all_independent = false;
                continue;
            }
            happy_count[p] += 1;
            match last_happy[p] {
                None => {
                    first_happy[p] = Some(offset);
                    max_streak[p] = max_streak[p].max(offset);
                }
                Some(prev) => {
                    let gap = offset - prev;
                    max_streak[p] = max_streak[p].max(gap - 1);
                    gap_sum[p] += gap;
                    gap_count[p] += 1;
                    match common_gap[p] {
                        None => common_gap[p] = Some(gap),
                        Some(g) if g != gap => gaps_uniform[p] = false,
                        Some(_) => {}
                    }
                }
            }
            last_happy[p] = Some(offset);
        }
    }

    let per_node: Vec<NodeAnalysis> = (0..n)
        .map(|p| {
            // Account for the trailing unhappy stretch.
            let trailing = match last_happy[p] {
                None => horizon,
                Some(last) => horizon - 1 - last,
            };
            let max_unhappiness = max_streak[p].max(trailing);
            let observed_period = if gaps_uniform[p] { common_gap[p] } else { None };
            let mean_gap =
                if gap_count[p] > 0 { gap_sum[p] as f64 / gap_count[p] as f64 } else { f64::NAN };
            NodeAnalysis {
                node: p,
                degree: graph.degree(p),
                happy_count: happy_count[p],
                max_unhappiness,
                observed_period,
                first_happy: first_happy[p],
                mean_gap,
            }
        })
        .collect();

    let never_happy = per_node.iter().filter(|n| n.happy_count == 0).map(|n| n.node).collect();
    ScheduleAnalysis {
        scheduler: scheduler.name().to_string(),
        horizon,
        mean_happy_set_size: if horizon == 0 {
            0.0
        } else {
            total_happiness as f64 / horizon as f64
        },
        per_node,
        all_happy_sets_independent: all_independent,
        never_happy,
        total_happiness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Scheduler;
    use fhg_graph::generators::structured::{cycle, path};

    /// A scripted scheduler for exercising the analysis edge cases.
    struct Scripted {
        sets: Vec<Vec<NodeId>>,
    }

    impl Scheduler for Scripted {
        fn node_count(&self) -> usize {
            // Large enough for any scripted member, including the
            // deliberately out-of-range ones the analysis must flag.
            self.sets.iter().flatten().max().map_or(0, |&p| p + 1)
        }
        fn fill_happy_set(&mut self, t: u64, out: &mut fhg_graph::HappySet) {
            out.reset(self.node_count());
            for &p in self.sets.get(t as usize).map_or(&[][..], Vec::as_slice) {
                out.insert(p);
            }
        }
        fn first_holiday(&self) -> u64 {
            0
        }
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn is_periodic(&self) -> bool {
            false
        }
        fn period(&self, _p: NodeId) -> Option<u64> {
            None
        }
        fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
            Some(3)
        }
    }

    #[test]
    fn measures_streaks_periods_and_counts() {
        let g = path(3);
        // Node 0 happy at offsets 1, 3, 5 (period 2); node 1 never happy;
        // node 2 happy only at offset 0.
        let mut s = Scripted { sets: vec![vec![2], vec![0], vec![], vec![0], vec![], vec![0]] };
        let a = analyze_schedule(&g, &mut s, 6);
        assert_eq!(a.scheduler, "scripted");
        assert_eq!(a.horizon, 6);
        assert!(a.all_happy_sets_independent);

        let n0 = &a.per_node[0];
        assert_eq!(n0.happy_count, 3);
        assert_eq!(n0.first_happy, Some(1));
        assert_eq!(n0.observed_period, Some(2));
        assert_eq!(n0.max_unhappiness, 1);
        assert!((n0.mean_gap - 2.0).abs() < 1e-12);

        let n1 = &a.per_node[1];
        assert_eq!(n1.happy_count, 0);
        assert_eq!(n1.max_unhappiness, 6, "never happy: the whole horizon is a streak");
        assert_eq!(n1.observed_period, None);
        assert!(n1.mean_gap.is_nan());

        let n2 = &a.per_node[2];
        assert_eq!(n2.happy_count, 1);
        assert_eq!(n2.first_happy, Some(0));
        assert_eq!(n2.max_unhappiness, 5, "trailing streak after the single happy holiday");
        assert_eq!(n2.observed_period, None, "one occurrence is not enough to call it periodic");

        assert_eq!(a.never_happy, vec![1]);
        assert_eq!(a.total_happiness, 4);
        assert!((a.mean_happy_set_size - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(a.max_unhappiness(), 6);
        assert!(!a.all_periodic());
    }

    #[test]
    fn detects_non_independent_happy_sets() {
        let g = path(3);
        let mut s = Scripted { sets: vec![vec![0, 1]] };
        let a = analyze_schedule(&g, &mut s, 1);
        assert!(!a.all_happy_sets_independent);
    }

    #[test]
    fn detects_out_of_range_nodes() {
        let g = path(2);
        let mut s = Scripted { sets: vec![vec![5]] };
        let a = analyze_schedule(&g, &mut s, 1);
        assert!(!a.all_happy_sets_independent);
    }

    #[test]
    fn bound_violations_reports_nodes_exceeding_the_claim() {
        let g = path(2);
        // Bound claimed by Scripted is 3; node 0 has a streak of exactly 3.
        let mut s = Scripted { sets: vec![vec![0], vec![], vec![], vec![], vec![0]] };
        let a = analyze_schedule(&g, &mut s, 5);
        let violations = a.bound_violations(&s);
        assert!(violations.contains(&0), "streak of 3 >= bound 3 is a violation");
        assert!(violations.contains(&1), "never-happy node violates any bound");
    }

    #[test]
    fn irregular_gaps_are_not_periodic() {
        let g = path(1);
        let mut s = Scripted { sets: vec![vec![0], vec![0], vec![], vec![0]] };
        let a = analyze_schedule(&g, &mut s, 4);
        assert_eq!(a.per_node[0].observed_period, None);
        assert_eq!(a.per_node[0].max_unhappiness, 1);
    }

    #[test]
    fn jain_fairness_of_uniform_and_skewed_schedules() {
        let g = cycle(4);
        // Perfectly alternating 2-colour schedule: everyone happy every other
        // holiday; all degrees equal; fairness must be 1.
        let mut s = Scripted {
            sets: (0..8).map(|t| if t % 2 == 0 { vec![0, 2] } else { vec![1, 3] }).collect(),
        };
        let a = analyze_schedule(&g, &mut s, 8);
        assert!((a.jain_fairness() - 1.0).abs() < 1e-12);

        // Only node 0 is ever happy: fairness drops to 1/n.
        let mut s = Scripted { sets: (0..8).map(|_| vec![0]).collect() };
        let a = analyze_schedule(&g, &mut s, 8);
        assert!((a.jain_fairness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_and_empty_graph() {
        let g = path(2);
        let mut s = Scripted { sets: vec![] };
        let a = analyze_schedule(&g, &mut s, 0);
        assert_eq!(a.max_unhappiness(), 0);
        assert_eq!(a.never_happy, vec![0, 1]);
        assert_eq!(a.mean_happy_set_size, 0.0);
        assert!((a.jain_fairness() - 1.0).abs() < 1e-12);

        let g = Graph::new(0);
        let mut s = Scripted { sets: vec![vec![]] };
        let a = analyze_schedule(&g, &mut s, 1);
        assert!(a.per_node.is_empty());
        assert!(a.all_happy_sets_independent);
        assert!(a.all_periodic());
    }
}
