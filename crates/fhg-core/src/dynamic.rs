//! The dynamic setting (paper §6).
//!
//! Relationships change: new conflict edges appear and old ones dissolve.
//! §6 observes that the colour-bound scheduler of §4 copes gracefully: when
//! an edge `(p, q)` appears and `p` and `q` share a colour, one endpoint
//! simply picks a new colour (its palette grew by one, so a free colour
//! `≤ deg + 1` still exists) and derives its new periodic slot from the
//! prefix-free code — it will host again within `φ(d)·2^{log* d + 1}`
//! holidays of quiescence.  Deletions need no action for correctness, but if
//! a node's colour drifts far above `deg + 1` its hosting rate becomes
//! disproportionate, so it should be recoloured (rebalanced).
//!
//! [`DynamicColorBound`] implements exactly this: a [`Scheduler`] whose
//! conflict graph can be edited between holidays.
//!
//! # The incremental repair plane
//!
//! Between events the schedule is perfectly periodic, so the scheduler
//! maintains a [`ResidueSchedule`] view *incrementally*: every recolouring
//! is one [`ResidueSchedule::set_row`] call, and
//! [`Scheduler::residue_schedule`] exposes the view, which moves dynamic
//! schedules off the sequential analysis path and onto the closed-form /
//! sharded engines like every other periodic scheduler.
//!
//! The same row deltas drive cache repair downstream: [`apply_event`]
//! returns an [`EventRepair`] — the applied event plus at most two
//! [`RowChange`]s (an insert recolours at most one endpoint, a delete
//! rebalances at most both) on the stack, no allocation.  A cached
//! [`CycleProfile`](crate::analysis::CycleProfile) consumes the repair
//! through [`patch`](crate::analysis::CycleProfile::patch): only the touched
//! nodes' attendance lanes are replayed and only the residue classes whose
//! membership changed are re-verified, instead of rebuilding the whole
//! profile.  [`ProfileService::patch`](crate::serving::ProfileService::patch)
//! wires this into the serving tier so a mutating tenant keeps a warm
//! profile across churn.
//!
//! [`apply_event`]: DynamicColorBound::apply_event

use fhg_codes::{log_star, phi, CodeSchedule, EliasCode};
use fhg_coloring::{greedy_coloring, recolor_node, Color, GreedyOrder};
use fhg_graph::{EdgeEvent, EdgeEventKind, Graph, GraphError, HappySet, NodeId};

use crate::scheduler::Scheduler;
use crate::schedulers::residue::{ResidueSchedule, RowChange};

/// The outcome of one [`DynamicColorBound::apply_event`]: the event that was
/// applied plus the hosting-row replacements it caused — at most one for an
/// insert (the clashing endpoint) and at most two for a delete (both
/// endpoints may rebalance).  Fixed-size, `Copy`, allocation-free; this is
/// the unit the incremental repair plane hands to
/// [`CycleProfile::patch`](crate::analysis::CycleProfile::patch) and
/// [`ProfileService::patch`](crate::serving::ProfileService::patch).
#[derive(Debug, Clone, Copy)]
pub struct EventRepair {
    /// The edge event that was applied.
    pub event: EdgeEvent,
    changes: [RowChange; 2],
    len: u8,
}

impl EventRepair {
    fn new(event: EdgeEvent) -> Self {
        EventRepair { event, changes: [RowChange::default(); 2], len: 0 }
    }

    fn push(&mut self, change: RowChange) {
        self.changes[self.len as usize] = change;
        self.len += 1;
    }

    /// The hosting-row replacements the event caused, in application order.
    pub fn row_changes(&self) -> &[RowChange] {
        &self.changes[..self.len as usize]
    }

    /// The recoloured nodes, in application order.
    pub fn recolored(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.row_changes().iter().map(|c| c.node)
    }

    /// Assembles a repair from raw parts (at most two row changes).
    ///
    /// Real repairs come from [`DynamicColorBound::apply_event`]; this
    /// constructor exists so the robustness suites can stage pathological
    /// repairs — e.g. a recolouring that outgrows the profile budgets —
    /// that the maintained schedulers never emit.
    #[doc(hidden)]
    pub fn from_parts(event: EdgeEvent, changes: &[RowChange]) -> Self {
        assert!(changes.len() <= 2, "a repair carries at most two row changes");
        let mut repair = EventRepair::new(event);
        for &change in changes {
            repair.push(change);
        }
        repair
    }
}

/// The §6 dynamic colour-bound scheduler.
#[derive(Debug, Clone)]
pub struct DynamicColorBound {
    graph: Graph,
    colors: Vec<Color>,
    schedule: CodeSchedule<EliasCode>,
    /// The periodic view of the current colouring, maintained row-by-row
    /// across recolourings — never reconstructed.
    view: ResidueSchedule,
    recolor_events: u64,
}

impl DynamicColorBound {
    /// Builds the scheduler from an initial conflict graph, using a greedy
    /// `(deg+1)`-bounded colouring and the Elias omega code.
    pub fn new(graph: &Graph) -> Self {
        let coloring = greedy_coloring(graph, GreedyOrder::Natural);
        let colors = coloring.into_vec();
        let schedule = CodeSchedule::new(EliasCode::omega());
        let mut slots = Vec::with_capacity(colors.len());
        let mut moduli = Vec::with_capacity(colors.len());
        for &c in &colors {
            let sa = schedule.slot(u64::from(c));
            slots.push(sa.offset);
            moduli.push(sa.period);
        }
        let view = ResidueSchedule::new(slots, moduli);
        DynamicColorBound { graph: graph.clone(), colors, schedule, view, recolor_events: 0 }
    }

    /// The current conflict graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current colour of node `p`.
    pub fn color(&self, p: NodeId) -> Color {
        self.colors[p]
    }

    /// Number of recolouring repairs performed so far.
    pub fn recolor_events(&self) -> u64 {
        self.recolor_events
    }

    /// The current period of node `p` (changes when `p` is recoloured).
    pub fn current_period(&self, p: NodeId) -> u64 {
        self.schedule.slot(u64::from(self.colors[p])).period
    }

    /// §6 recovery bound: after quiescence a node of degree `d` hosts within
    /// `φ(d+1)·2^{log*(d+1) + 1}` holidays.
    ///
    /// (The paper states the bound as `φ(d)·2^{log* d + 1}`; since the repair
    /// colouring only guarantees a colour of at most `d + 1`, the
    /// Theorem 4.2 period bound — and hence the recovery bound — is evaluated
    /// at `d + 1`, which is where the guarantee actually holds for every
    /// degree including `d = 1`.)
    pub fn recovery_bound(&self, p: NodeId) -> u64 {
        let c = (self.graph.degree(p) + 1) as f64;
        (phi(c) * 2f64.powi(log_star(c) as i32 + 1)).ceil() as u64
    }

    /// Recolours `p` (smallest colour free among its neighbours), moves its
    /// hosting row in the periodic view, and returns the recorded change.
    fn recolor(&mut self, p: NodeId) -> RowChange {
        let old = self.schedule.slot(u64::from(self.colors[p]));
        let c = recolor_node(&self.graph, &mut self.colors, p);
        self.recolor_events += 1;
        let new = self.schedule.slot(u64::from(c));
        self.view.set_row(p, new.offset, new.period);
        RowChange {
            node: p,
            old_slot: old.offset,
            old_modulus: old.period,
            new_slot: new.offset,
            new_modulus: new.period,
        }
    }

    /// A new couple forms: insert the conflict edge `(u, v)`.
    ///
    /// If the endpoints share a colour, the endpoint with the larger id is
    /// recoloured locally (smallest colour free among its neighbours) —
    /// the §6 repair.  Returns the row change, if any.  The graph edit is
    /// validated before any state is touched, so an `Err` leaves the
    /// scheduler exactly as it was.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<Option<NodeId>, GraphError> {
        Ok(self.insert_edge_rows(u, v)?.map(|c| c.node))
    }

    fn insert_edge_rows(&mut self, u: NodeId, v: NodeId) -> Result<Option<RowChange>, GraphError> {
        self.graph.add_edge(u, v)?;
        if self.colors[u] == self.colors[v] {
            Ok(Some(self.recolor(u.max(v))))
        } else {
            Ok(None)
        }
    }

    /// A couple separates: delete the conflict edge `(u, v)`.
    ///
    /// Correctness needs no action; to keep hosting rates proportional to the
    /// (now smaller) degrees, both endpoints are rebalanced if their colour
    /// exceeds `deg + 1`.  Returns the nodes that were recoloured.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<Vec<NodeId>, GraphError> {
        let (a, b) = self.delete_edge_rows(u, v)?;
        Ok([a, b].into_iter().flatten().map(|c| c.node).collect())
    }

    #[allow(clippy::type_complexity)]
    fn delete_edge_rows(
        &mut self,
        u: NodeId,
        v: NodeId,
    ) -> Result<(Option<RowChange>, Option<RowChange>), GraphError> {
        self.graph.remove_edge(u, v)?;
        Ok((self.rebalance_rows(u), self.rebalance_rows(v)))
    }

    /// Recolours `p` if its colour exceeds `deg(p) + 1`; returns whether a
    /// recolouring happened.
    pub fn rebalance(&mut self, p: NodeId) -> bool {
        self.rebalance_rows(p).is_some()
    }

    fn rebalance_rows(&mut self, p: NodeId) -> Option<RowChange> {
        if (self.colors[p] as usize) > self.graph.degree(p) + 1 {
            Some(self.recolor(p))
        } else {
            None
        }
    }

    /// Applies a pre-recorded edge event and returns the [`EventRepair`]
    /// describing exactly which hosting rows moved — the input to the
    /// incremental profile patch.  An `Err` (duplicate edge, missing edge,
    /// out-of-range node) leaves the scheduler state untouched.
    pub fn apply_event(&mut self, event: EdgeEvent) -> Result<EventRepair, GraphError> {
        let mut repair = EventRepair::new(event);
        match event.kind {
            EdgeEventKind::Insert => {
                if let Some(change) = self.insert_edge_rows(event.u, event.v)? {
                    repair.push(change);
                }
            }
            EdgeEventKind::Delete => {
                let (a, b) = self.delete_edge_rows(event.u, event.v)?;
                for change in [a, b].into_iter().flatten() {
                    repair.push(change);
                }
            }
        }
        Ok(repair)
    }

    /// Whether the internal colouring is currently proper (it always should
    /// be; exposed for tests and failure injection).
    pub fn coloring_is_proper(&self) -> bool {
        self.graph.edges().all(|e| self.colors[e.u] != self.colors[e.v])
    }
}

impl Scheduler for DynamicColorBound {
    fn node_count(&self) -> usize {
        self.colors.len()
    }

    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        self.view.fill(t, out);
    }

    fn name(&self) -> &'static str {
        "dynamic-color-bound"
    }

    fn is_periodic(&self) -> bool {
        // Periodic between edge events; the trait answer refers to the
        // steady state.
        true
    }

    fn period(&self, p: NodeId) -> Option<u64> {
        Some(self.current_period(p))
    }

    fn unhappiness_bound(&self, p: NodeId) -> Option<u64> {
        Some(self.current_period(p))
    }

    fn residue_schedule(&self) -> Option<&ResidueSchedule> {
        Some(&self.view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use fhg_graph::dynamic::random_churn;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{cycle, path};
    use proptest::prelude::*;

    #[test]
    fn insertion_without_color_clash_needs_no_repair() {
        let g = path(4); // colours 1,2,1,2 under natural greedy
        let mut s = DynamicColorBound::new(&g);
        assert_eq!(s.insert_edge(0, 3).unwrap(), None, "colours 1 and 2 do not clash");
        assert!(s.coloring_is_proper());
        assert_eq!(s.recolor_events(), 0);
    }

    #[test]
    fn insertion_with_color_clash_repairs_one_endpoint() {
        let g = path(4);
        let mut s = DynamicColorBound::new(&g);
        // Nodes 0 and 2 both have colour 1.
        let repaired = s.insert_edge(0, 2).unwrap();
        assert_eq!(repaired, Some(2));
        assert!(s.coloring_is_proper());
        assert!(u64::from(s.color(2)) <= s.graph().degree(2) as u64 + 1);
        assert_eq!(s.recolor_events(), 1);
    }

    /// The incrementally maintained view must agree with the per-colour
    /// schedule at every holiday — the invariant the whole repair plane
    /// stands on.
    fn assert_view_matches_colors(s: &mut DynamicColorBound, span: u64, ctx: &str) {
        let view = s.residue_schedule().expect("dynamic scheduler exposes its view").clone();
        for t in 0..span {
            let expected: Vec<NodeId> = (0..s.node_count())
                .filter(|&p| s.schedule.is_happy(u64::from(s.colors[p]), t))
                .collect();
            assert_eq!(view.hosts(t), expected, "{ctx}: holiday {t}");
        }
        for p in 0..s.node_count() {
            assert_eq!(view.modulus(p), s.current_period(p), "{ctx}: node {p} period");
        }
    }

    #[test]
    fn schedule_stays_valid_under_heavy_churn() {
        let initial = erdos_renyi(40, 0.08, 3);
        let mut s = DynamicColorBound::new(&initial);
        let events = random_churn(&initial, 150, 0.6, 0, 7);
        let mut holiday = 0u64;
        for event in events {
            // Simulate a few holidays between events.
            for _ in 0..3 {
                let happy = s.happy_set(holiday);
                assert!(
                    fhg_graph::properties::is_independent_set(s.graph(), &happy),
                    "holiday {holiday} produced a conflicting gathering"
                );
                holiday += 1;
            }
            let repair = s.apply_event(event).unwrap();
            assert!(repair.row_changes().len() <= 2);
            assert!(s.coloring_is_proper(), "colouring broken after {event:?}");
        }
        assert_view_matches_colors(&mut s, 128, "after heavy churn");
    }

    #[test]
    fn apply_event_reports_the_rows_that_moved() {
        let g = path(4);
        let mut s = DynamicColorBound::new(&g);
        let before = s.current_period(2);
        let repair = s
            .apply_event(EdgeEvent { kind: EdgeEventKind::Insert, u: 0, v: 2, holiday: 0 })
            .unwrap();
        let changes = repair.row_changes();
        assert_eq!(changes.len(), 1, "one endpoint recoloured");
        assert_eq!(changes[0].node, 2);
        assert_eq!(changes[0].old_modulus, before);
        assert_eq!(changes[0].new_modulus, s.current_period(2));
        assert_eq!(repair.recolored().collect::<Vec<_>>(), vec![2]);
        assert_view_matches_colors(&mut s, 64, "after reported insert");
    }

    #[test]
    fn deletion_rebalances_inflated_colors() {
        // Build a node whose colour is pushed high by insertions and then
        // drops when its edges disappear.
        let g = cycle(6);
        let mut s = DynamicColorBound::new(&g);
        s.insert_edge(0, 2).unwrap();
        s.insert_edge(0, 3).unwrap();
        let inflated = s.color(0).max(s.color(2)).max(s.color(3));
        assert!(inflated >= 3, "some colour must have grown past 2");
        // Remove the extra edges again; rebalancing must pull colours back
        // within deg + 1.
        s.delete_edge(0, 2).unwrap();
        s.delete_edge(0, 3).unwrap();
        for p in 0..6 {
            assert!(
                (s.color(p) as usize) <= s.graph().degree(p) + 1,
                "node {p} colour {} exceeds degree+1 after rebalance",
                s.color(p)
            );
        }
        assert!(s.coloring_is_proper());
        assert_view_matches_colors(&mut s, 64, "after rebalancing deletes");
    }

    #[test]
    fn recovery_bound_matches_the_paper_formula() {
        let g = erdos_renyi(30, 0.2, 1);
        let s = DynamicColorBound::new(&g);
        for p in g.nodes() {
            let c = (g.degree(p) + 1) as f64;
            let expected = (phi(c) * 2f64.powi(log_star(c) as i32 + 1)).ceil() as u64;
            assert_eq!(s.recovery_bound(p), expected);
        }
    }

    #[test]
    fn recovery_bound_always_dominates_the_current_period() {
        // With colours kept at most deg + 1 by the repairs, the Theorem 4.2
        // period 2^rho(colour) never exceeds the §6 recovery bound.
        for seed in 0..10u64 {
            let initial = erdos_renyi(30, 0.1, seed);
            let mut s = DynamicColorBound::new(&initial);
            let events = random_churn(&initial, 40, 0.5, 0, seed ^ 0x77);
            for event in events {
                s.apply_event(event).unwrap();
            }
            for p in s.graph().nodes() {
                assert!(
                    s.current_period(p) <= s.recovery_bound(p),
                    "node {p}: period {} exceeds bound {}",
                    s.current_period(p),
                    s.recovery_bound(p)
                );
            }
        }
    }

    #[test]
    fn recolored_node_hosts_within_its_new_period_after_quiescence() {
        let g = path(6);
        let mut s = DynamicColorBound::new(&g);
        let repaired = s.insert_edge(0, 2).unwrap().expect("colour clash");
        // After quiescence the repaired node must host within its current
        // period (which is at most the §6 recovery bound).
        let period = s.current_period(repaired);
        assert!(period <= s.recovery_bound(repaired));
        let hosted = (0..period).any(|t| s.happy_set(t).contains(&repaired));
        assert!(hosted, "node {repaired} must host within {period} holidays");
    }

    #[test]
    fn scheduler_interface_reports_current_periods() {
        let g = path(4);
        let mut s = DynamicColorBound::new(&g);
        let before = s.period(2).unwrap();
        s.insert_edge(0, 2).unwrap();
        let after = s.period(2).unwrap();
        assert!(after >= before, "a repair can only lengthen the period");
        assert!(s.is_periodic());
        assert_eq!(s.name(), "dynamic-color-bound");
        let current = s.graph().clone();
        let analysis = analyze_schedule(&current, &mut s, 64);
        assert!(analysis.all_happy_sets_independent);
    }

    #[test]
    fn invalid_events_are_rejected_without_corrupting_state() {
        let g = path(3);
        let mut s = DynamicColorBound::new(&g);
        assert!(s.insert_edge(0, 1).is_err(), "edge already exists");
        assert!(s.delete_edge(0, 2).is_err(), "edge missing");
        assert!(s.insert_edge(0, 9).is_err(), "node out of range");
        assert!(s
            .apply_event(EdgeEvent { kind: EdgeEventKind::Insert, u: 1, v: 1, holiday: 0 })
            .is_err());
        assert!(s.coloring_is_proper());
        assert_eq!(s.recolor_events(), 0);
        assert_view_matches_colors(&mut s, 32, "after rejected events");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn churn_preserves_properness_and_degree_bounded_recovery(seed in 0u64..60) {
            let initial = erdos_renyi(25, 0.1, seed);
            let mut s = DynamicColorBound::new(&initial);
            let events = random_churn(&initial, 60, 0.5, 0, seed ^ 0xA5);
            for event in events {
                s.apply_event(event).unwrap();
                prop_assert!(s.coloring_is_proper());
            }
            // The incrementally maintained view and the per-colour schedule
            // agree after arbitrary churn.
            let view = s.residue_schedule().unwrap().clone();
            for t in 0..64u64 {
                let expected: Vec<NodeId> = (0..s.node_count())
                    .filter(|&p| s.schedule.is_happy(u64::from(s.colors[p]), t))
                    .collect();
                prop_assert_eq!(view.hosts(t), expected, "holiday {}", t);
            }
            // After quiescence every node hosts within its current period.
            for p in s.graph().nodes() {
                let period = s.current_period(p);
                if period <= 1 << 14 {
                    let hosts = (0..period).any(|t| {
                        let c = u64::from(s.color(p));
                        s.schedule.is_happy(c, t)
                    });
                    prop_assert!(hosts);
                }
            }
        }
    }
}
