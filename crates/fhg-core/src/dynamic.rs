//! The dynamic setting (paper §6).
//!
//! Relationships change: new conflict edges appear and old ones dissolve.
//! §6 observes that the colour-bound scheduler of §4 copes gracefully: when
//! an edge `(p, q)` appears and `p` and `q` share a colour, one endpoint
//! simply picks a new colour (its palette grew by one, so a free colour
//! `≤ deg + 1` still exists) and derives its new periodic slot from the
//! prefix-free code — it will host again within `φ(d)·2^{log* d + 1}`
//! holidays of quiescence.  Deletions need no action for correctness, but if
//! a node's colour drifts far above `deg + 1` its hosting rate becomes
//! disproportionate, so it should be recoloured (rebalanced).
//!
//! [`DynamicColorBound`] implements exactly this: a [`Scheduler`] whose
//! conflict graph can be edited between holidays.

use fhg_codes::{log_star, phi, CodeSchedule, EliasCode};
use fhg_coloring::{greedy_coloring, recolor_node, Color, GreedyOrder};
use fhg_graph::{EdgeEvent, EdgeEventKind, Graph, GraphError, HappySet, NodeId};

use crate::scheduler::Scheduler;

/// The §6 dynamic colour-bound scheduler.
#[derive(Debug, Clone)]
pub struct DynamicColorBound {
    graph: Graph,
    colors: Vec<Color>,
    schedule: CodeSchedule<EliasCode>,
    recolor_events: u64,
}

impl DynamicColorBound {
    /// Builds the scheduler from an initial conflict graph, using a greedy
    /// `(deg+1)`-bounded colouring and the Elias omega code.
    pub fn new(graph: &Graph) -> Self {
        let coloring = greedy_coloring(graph, GreedyOrder::Natural);
        DynamicColorBound {
            graph: graph.clone(),
            colors: coloring.into_vec(),
            schedule: CodeSchedule::new(EliasCode::omega()),
            recolor_events: 0,
        }
    }

    /// The current conflict graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current colour of node `p`.
    pub fn color(&self, p: NodeId) -> Color {
        self.colors[p]
    }

    /// Number of recolouring repairs performed so far.
    pub fn recolor_events(&self) -> u64 {
        self.recolor_events
    }

    /// The current period of node `p` (changes when `p` is recoloured).
    pub fn current_period(&self, p: NodeId) -> u64 {
        self.schedule.slot(u64::from(self.colors[p])).period
    }

    /// §6 recovery bound: after quiescence a node of degree `d` hosts within
    /// `φ(d+1)·2^{log*(d+1) + 1}` holidays.
    ///
    /// (The paper states the bound as `φ(d)·2^{log* d + 1}`; since the repair
    /// colouring only guarantees a colour of at most `d + 1`, the
    /// Theorem 4.2 period bound — and hence the recovery bound — is evaluated
    /// at `d + 1`, which is where the guarantee actually holds for every
    /// degree including `d = 1`.)
    pub fn recovery_bound(&self, p: NodeId) -> u64 {
        let c = (self.graph.degree(p) + 1) as f64;
        (phi(c) * 2f64.powi(log_star(c) as i32 + 1)).ceil() as u64
    }

    /// A new couple forms: insert the conflict edge `(u, v)`.
    ///
    /// If the endpoints share a colour, the endpoint with the larger id is
    /// recoloured locally (smallest colour free among its neighbours) —
    /// the §6 repair.  Returns the recoloured node, if any.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<Option<NodeId>, GraphError> {
        self.graph.add_edge(u, v)?;
        if self.colors[u] == self.colors[v] {
            let repaired = u.max(v);
            recolor_node(&self.graph, &mut self.colors, repaired);
            self.recolor_events += 1;
            Ok(Some(repaired))
        } else {
            Ok(None)
        }
    }

    /// A couple separates: delete the conflict edge `(u, v)`.
    ///
    /// Correctness needs no action; to keep hosting rates proportional to the
    /// (now smaller) degrees, both endpoints are rebalanced if their colour
    /// exceeds `deg + 1`.  Returns the nodes that were recoloured.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<Vec<NodeId>, GraphError> {
        self.graph.remove_edge(u, v)?;
        let mut repaired = Vec::new();
        for p in [u, v] {
            if self.rebalance(p) {
                repaired.push(p);
            }
        }
        Ok(repaired)
    }

    /// Recolours `p` if its colour exceeds `deg(p) + 1`; returns whether a
    /// recolouring happened.
    pub fn rebalance(&mut self, p: NodeId) -> bool {
        if (self.colors[p] as usize) > self.graph.degree(p) + 1 {
            recolor_node(&self.graph, &mut self.colors, p);
            self.recolor_events += 1;
            true
        } else {
            false
        }
    }

    /// Applies a pre-recorded edge event.  Returns the recoloured nodes.
    pub fn apply_event(&mut self, event: EdgeEvent) -> Result<Vec<NodeId>, GraphError> {
        match event.kind {
            EdgeEventKind::Insert => Ok(self.insert_edge(event.u, event.v)?.into_iter().collect()),
            EdgeEventKind::Delete => self.delete_edge(event.u, event.v),
        }
    }

    /// Whether the internal colouring is currently proper (it always should
    /// be; exposed for tests and failure injection).
    pub fn coloring_is_proper(&self) -> bool {
        self.graph.edges().all(|e| self.colors[e.u] != self.colors[e.v])
    }
}

impl Scheduler for DynamicColorBound {
    fn node_count(&self) -> usize {
        self.colors.len()
    }

    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        out.reset(self.colors.len());
        for (p, &c) in self.colors.iter().enumerate() {
            if self.schedule.is_happy(u64::from(c), t) {
                out.insert(p);
            }
        }
    }

    fn name(&self) -> &'static str {
        "dynamic-color-bound"
    }

    fn is_periodic(&self) -> bool {
        // Periodic between edge events; the trait answer refers to the
        // steady state.
        true
    }

    fn period(&self, p: NodeId) -> Option<u64> {
        Some(self.current_period(p))
    }

    fn unhappiness_bound(&self, p: NodeId) -> Option<u64> {
        Some(self.current_period(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use fhg_graph::dynamic::random_churn;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{cycle, path};
    use proptest::prelude::*;

    #[test]
    fn insertion_without_color_clash_needs_no_repair() {
        let g = path(4); // colours 1,2,1,2 under natural greedy
        let mut s = DynamicColorBound::new(&g);
        assert_eq!(s.insert_edge(0, 3).unwrap(), None, "colours 1 and 2 do not clash");
        assert!(s.coloring_is_proper());
        assert_eq!(s.recolor_events(), 0);
    }

    #[test]
    fn insertion_with_color_clash_repairs_one_endpoint() {
        let g = path(4);
        let mut s = DynamicColorBound::new(&g);
        // Nodes 0 and 2 both have colour 1.
        let repaired = s.insert_edge(0, 2).unwrap();
        assert_eq!(repaired, Some(2));
        assert!(s.coloring_is_proper());
        assert!(u64::from(s.color(2)) <= s.graph().degree(2) as u64 + 1);
        assert_eq!(s.recolor_events(), 1);
    }

    #[test]
    fn schedule_stays_valid_under_heavy_churn() {
        let initial = erdos_renyi(40, 0.08, 3);
        let mut s = DynamicColorBound::new(&initial);
        let events = random_churn(&initial, 150, 0.6, 0, 7);
        let mut holiday = 0u64;
        for event in events {
            // Simulate a few holidays between events.
            for _ in 0..3 {
                let happy = s.happy_set(holiday);
                assert!(
                    fhg_graph::properties::is_independent_set(s.graph(), &happy),
                    "holiday {holiday} produced a conflicting gathering"
                );
                holiday += 1;
            }
            s.apply_event(event).unwrap();
            assert!(s.coloring_is_proper(), "colouring broken after {event:?}");
        }
    }

    #[test]
    fn deletion_rebalances_inflated_colors() {
        // Build a node whose colour is pushed high by insertions and then
        // drops when its edges disappear.
        let g = cycle(6);
        let mut s = DynamicColorBound::new(&g);
        s.insert_edge(0, 2).unwrap();
        s.insert_edge(0, 3).unwrap();
        let inflated = s.color(0).max(s.color(2)).max(s.color(3));
        assert!(inflated >= 3, "some colour must have grown past 2");
        // Remove the extra edges again; rebalancing must pull colours back
        // within deg + 1.
        s.delete_edge(0, 2).unwrap();
        s.delete_edge(0, 3).unwrap();
        for p in 0..6 {
            assert!(
                (s.color(p) as usize) <= s.graph().degree(p) + 1,
                "node {p} colour {} exceeds degree+1 after rebalance",
                s.color(p)
            );
        }
        assert!(s.coloring_is_proper());
    }

    #[test]
    fn recovery_bound_matches_the_paper_formula() {
        let g = erdos_renyi(30, 0.2, 1);
        let s = DynamicColorBound::new(&g);
        for p in g.nodes() {
            let c = (g.degree(p) + 1) as f64;
            let expected = (phi(c) * 2f64.powi(log_star(c) as i32 + 1)).ceil() as u64;
            assert_eq!(s.recovery_bound(p), expected);
        }
    }

    #[test]
    fn recovery_bound_always_dominates_the_current_period() {
        // With colours kept at most deg + 1 by the repairs, the Theorem 4.2
        // period 2^rho(colour) never exceeds the §6 recovery bound.
        for seed in 0..10u64 {
            let initial = erdos_renyi(30, 0.1, seed);
            let mut s = DynamicColorBound::new(&initial);
            let events = random_churn(&initial, 40, 0.5, 0, seed ^ 0x77);
            for event in events {
                s.apply_event(event).unwrap();
            }
            for p in s.graph().nodes() {
                assert!(
                    s.current_period(p) <= s.recovery_bound(p),
                    "node {p}: period {} exceeds bound {}",
                    s.current_period(p),
                    s.recovery_bound(p)
                );
            }
        }
    }

    #[test]
    fn recolored_node_hosts_within_its_new_period_after_quiescence() {
        let g = path(6);
        let mut s = DynamicColorBound::new(&g);
        let repaired = s.insert_edge(0, 2).unwrap().expect("colour clash");
        // After quiescence the repaired node must host within its current
        // period (which is at most the §6 recovery bound).
        let period = s.current_period(repaired);
        assert!(period <= s.recovery_bound(repaired));
        let hosted = (0..period).any(|t| s.happy_set(t).contains(&repaired));
        assert!(hosted, "node {repaired} must host within {period} holidays");
    }

    #[test]
    fn scheduler_interface_reports_current_periods() {
        let g = path(4);
        let mut s = DynamicColorBound::new(&g);
        let before = s.period(2).unwrap();
        s.insert_edge(0, 2).unwrap();
        let after = s.period(2).unwrap();
        assert!(after >= before, "a repair can only lengthen the period");
        assert!(s.is_periodic());
        assert_eq!(s.name(), "dynamic-color-bound");
        let current = s.graph().clone();
        let analysis = analyze_schedule(&current, &mut s, 64);
        assert!(analysis.all_happy_sets_independent);
    }

    #[test]
    fn invalid_events_are_rejected_without_corrupting_state() {
        let g = path(3);
        let mut s = DynamicColorBound::new(&g);
        assert!(s.insert_edge(0, 1).is_err(), "edge already exists");
        assert!(s.delete_edge(0, 2).is_err(), "edge missing");
        assert!(s.insert_edge(0, 9).is_err(), "node out of range");
        assert!(s.coloring_is_proper());
        assert_eq!(s.recolor_events(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn churn_preserves_properness_and_degree_bounded_recovery(seed in 0u64..60) {
            let initial = erdos_renyi(25, 0.1, seed);
            let mut s = DynamicColorBound::new(&initial);
            let events = random_churn(&initial, 60, 0.5, 0, seed ^ 0xA5);
            for event in events {
                s.apply_event(event).unwrap();
                prop_assert!(s.coloring_is_proper());
            }
            // After quiescence every node hosts within its current period.
            for p in s.graph().nodes() {
                let period = s.current_period(p);
                if period <= 1 << 14 {
                    let hosts = (0..period).any(|t| {
                        let c = u64::from(s.color(p));
                        s.schedule.is_happy(c, t)
                    });
                    prop_assert!(hosts);
                }
            }
        }
    }
}
