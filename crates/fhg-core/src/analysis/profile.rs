//! Closed-form cycle analytics: profile each residue class once, derive the
//! whole horizon — with a sharded parallel build and a struct-of-arrays
//! derivation plane.
//!
//! A perfectly periodic schedule repeats with period `C =`
//! [`ResidueSchedule::cycle`]: the happy set of holiday `t` depends only on
//! `t mod C`, so every statistic of an arbitrarily long horizon is already
//! determined by **one cycle** of happy sets.  A [`CycleProfile`] walks that
//! single cycle and records, per node, its attendance pattern: count per
//! cycle, first/last offsets, internal gap structure (as one
//! [`AccumBank`](super::sweep) column bank), and the explicit
//! attendance-offset list (the gap multiset in CSR form).  Each residue
//! class is independence-verified exactly once during that walk, the same
//! promise the sharded engine's residue cache makes (locked down by
//! `tests/residue_cache.rs`).
//!
//! # Sharded parallel build
//!
//! For large cycles (`cycle ~ horizon`, where the build itself dominates
//! and is verification-bound) the cycle walk shards: the residue classes
//! split into one contiguous range per worker of the persistent
//! `compat/rayon` pool, each shard emitting, verifying and collecting
//! `(node, offset)` events with private scratch, exactly as the PR 2 sweep
//! shards the horizon.  The per-class sizes and events concatenate in
//! class order — the combined event sequence is offset-major, exactly what
//! a sequential walk would have pushed — so the counting sort builds an
//! identical attendance CSR at any thread count, and the one-cycle column
//! bank is then replayed **node-major from that CSR** (streaming column
//! access instead of per-class scatter): the built profile, and everything
//! derived from it, is **bitwise-identical at any thread count** (pinned
//! by the build-parity test below and `tests/analysis_parity.rs`).  Each
//! class is still verified exactly once, by the one shard that owns it.
//!
//! # Closed-form derivation
//!
//! [`CycleProfile::derive`] then produces the [`ScheduleAnalysis`] of any
//! horizon `h ≥ C` without touching the schedule again:
//!
//! * the `h / C` full repetitions are folded **analytically** — counts scale
//!   by the repetition count, the per-cycle internal gaps replicate, and the
//!   wrap-around gap between consecutive cycles (`C - last + first`)
//!   contributes `h/C - 1` boundary gaps to the sums, streaks and the
//!   period-uniformity check — by the shared lane fold ([`fold_lane`], the
//!   scalar rule `merge_node(empty, replicate(a))` applied while the
//!   columns stream);
//! * **whole-cycle horizons** (`h mod C = 0`, the common serving shape)
//!   fuse that fold straight into finalisation: one read-only pass over
//!   the profile columns, no intermediate bank at all;
//! * **ragged horizons** materialise the replicated bank
//!   ([`replicate_global_into`]) and replay the `h mod C` tail from the
//!   stored attendance offsets (no emission, no verification — those
//!   classes were already profiled), merged through the exact column-kernel
//!   rule ([`AccumBank::merge_from`](super::sweep)).
//!
//! Because replication and tail replay compose through the same integer
//! arithmetic as the sequential sweep, the derived analysis is
//! **bitwise-identical** to [`super::analyze_schedule_reference`] at every
//! horizon — the parity property `tests/analysis_parity.rs` locks down.
//! The cost is `O(C)` emissions plus `O(n + attendance)` derivation,
//! independent of the horizon.
//!
//! # Windowed derivation: the start-offset fold
//!
//! A serving tier doesn't always want the whole horizon from holiday one:
//! [`CycleProfile::derive_window`] answers any window `[t0, t1)` of the
//! schedule in closed form.  With phase `a = t0 mod C` the window is a
//! ragged **head** (the rest of the phase cycle, replayed from the stored
//! offsets rebased by `-a`), a run of phase-shifted **whole cycles**
//! (replicated analytically as a pure segment by
//! [`replicate_segment_into`] — no take-first fold, endpoints rebased
//! behind the head) and a ragged **tail** — all merged in window order
//! through the same exact column rule as the sharded sweep.  Unlike
//! `derive`, the windowed entry points are **total**: zero-width and
//! sub-cycle windows take the defined head-segment path (`derive_window(t,
//! t)` is the empty analysis, `derive_window(0, h)` for `h < C` equals the
//! sweep of `h` holidays), so no request shape can panic a long-lived
//! server.  The whole-cycle verdict caveat: the window's independence flag
//! is the *cycle's* verdict, not the window restriction (see the method
//! docs).
//!
//! # The totals-only fast path and the serving-tier scratch
//!
//! Callers that only want whole-schedule aggregates (`mul`, fairness
//! totals, the independence verdict) skip the per-node assembly entirely:
//! [`CycleProfile::derive_totals`] folds the replicated bank straight to an
//! [`AnalysisTotals`] — no `NodeAnalysis` structs, no float work per node.
//! Both derivation paths also exist as `_with` variants taking a reusable
//! [`DeriveScratch`], which makes repeated derivations from one cached
//! profile **allocation-free after warm-up** (proved by
//! `tests/zero_alloc.rs`) — the shape a batch/streaming serving tier wants:
//! build once per schedule, derive per request.

use fhg_graph::{Graph, NodeId};
use rayon::prelude::*;

use super::checker::{ClassBatch, HolidayChecker};
use super::sweep::{self, AccumBank, ColumnScratch, NONE};
use super::{AnalysisTotals, ScheduleAnalysis};
use crate::schedulers::residue::{ResidueSchedule, RowChange};

/// A word-wise profile of one full residue cycle: per-node attendance
/// patterns (a struct-of-arrays column bank) plus the per-class
/// verification verdict, sufficient to derive the analysis of any horizon
/// of at least one cycle in closed form.
///
/// The profile is also **patchable**: after a dynamic edge event moves a
/// handful of nodes to new residue rows, [`CycleProfile::patch`] repairs
/// exactly those nodes' lanes in place instead of rebuilding the whole
/// cycle walk (see the method docs for the repair algebra and what it
/// re-verifies).
#[derive(Clone)]
pub struct CycleProfile {
    /// First holiday of the profiled cycle (the scheduler's
    /// [`first_holiday`](crate::scheduler::Scheduler::first_holiday)).
    start: u64,
    /// The schedule's cycle length `C`.
    cycle: u64,
    /// Number of graph nodes tracked (attendance of out-of-range nodes is
    /// flagged as non-independent and excluded, like the sweep engines do).
    node_count: usize,
    /// Per-node accumulator columns over the one profiled cycle (offsets
    /// relative to the cycle start).
    bank: AccumBank,
    /// Per-node `(start, len)` rows into `offsets`.  A fresh build lays
    /// the rows out dense and node-major (a plain CSR); a patch that grows
    /// a row retires it to the arena tail instead, leaving `garbage`
    /// behind until compaction.
    rows: Vec<(usize, usize)>,
    /// Attendance-offset arena: each node's offsets within the cycle,
    /// ascending per row (rows may be out of node order after patches).
    offsets: Vec<u64>,
    /// Retired (unreferenced) `offsets` entries awaiting compaction.
    garbage: usize,
    /// Prefix sums of the per-class happy-set sizes (`size_prefix[k]` = total
    /// happiness of the first `k` classes), so ragged tails fold exactly.
    size_prefix: Vec<u64>,
    /// Whether every residue class passed its independence check.
    all_independent: bool,
}

/// Why [`CycleProfile::patch`] refused to repair in place — the caller
/// (the serving tier's patch path) falls back to a full rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchRefused {
    /// The view's cycle no longer matches the profiled cycle (the event
    /// changed the lcm of the moduli): every class offset is rebased, so
    /// there is nothing to patch around.
    CycleChanged {
        /// The profiled cycle.
        old: u64,
        /// The view's current cycle.
        new: u64,
    },
    /// The cached verdict is already `false`.  The repair only re-verifies
    /// classes the event touched, so it can never discover that the
    /// offending class *healed* — only a full rebuild can clear the flag.
    NotIndependent,
}

impl std::fmt::Display for PatchRefused {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchRefused::CycleChanged { old, new } => {
                write!(f, "cycle changed from {old} to {new}; profile must be rebuilt")
            }
            PatchRefused::NotIndependent => {
                write!(f, "profile verdict is already non-independent; rebuild to re-verify")
            }
        }
    }
}

impl std::error::Error for PatchRefused {}

/// What a successful [`CycleProfile::patch`] did, for observability
/// (bench rows, serving-tier stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatchStats {
    /// Node lanes whose attendance pattern was replaced and replayed.
    pub lanes_patched: usize,
    /// Residue classes re-verified through the checker.
    pub classes_verified: usize,
}

/// Reusable buffers for [`CycleProfile::patch`]: the verification batch,
/// the touched-class list and the compaction arena.  Allocate once next to
/// the cached profile; after warm-up a patch performs zero heap
/// allocations (proved by `tests/zero_alloc.rs`).
pub struct PatchScratch {
    batch: ClassBatch,
    batch_capacity: usize,
    classes: Vec<u64>,
    arena: Vec<u64>,
}

impl Default for PatchScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl PatchScratch {
    /// Empty scratch; the first patch sizes it.
    pub fn new() -> Self {
        PatchScratch {
            batch: ClassBatch::new(0),
            batch_capacity: 0,
            classes: Vec::new(),
            arena: Vec::new(),
        }
    }
}

/// Reusable buffers for the closed-form derivation: the global column bank,
/// a tail-segment bank and the mask/temporary columns.  Allocate once, hand
/// to [`CycleProfile::derive_with`] / [`CycleProfile::derive_totals_with`]
/// per request — after the first call (which sizes the buffers) derivation
/// performs zero heap allocations on the totals path.
#[derive(Debug, Default)]
pub struct DeriveScratch {
    bank: AccumBank,
    tail: AccumBank,
    cols: ColumnScratch,
}

impl DeriveScratch {
    /// Empty scratch; the first derivation sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs `f` with this thread's shared [`DeriveScratch`] — the buffer behind
/// the scratch-less [`CycleProfile::derive`] / [`CycleProfile::derive_totals`]
/// conveniences, so repeated one-shot derivations (every closed-form
/// `analyze_schedule` call) reuse warm columns instead of faulting in a
/// megabyte of fresh allocations per call.  Same pattern as
/// `fhg_graph::happy_set::with_thread_scratch`; `f` must not re-enter.
fn with_derive_scratch<R>(f: impl FnOnce(&mut DeriveScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<DeriveScratch> =
            std::cell::RefCell::new(DeriveScratch::new());
    }
    SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

/// One worker's contiguous range of residue classes during the parallel
/// profile build: private emission scratch, event list, per-class sizes and
/// the verification batch buffer.
struct BuildShard {
    range: std::ops::Range<u64>,
    events: Vec<(NodeId, u64)>,
    sizes: Vec<u64>,
    batch: ClassBatch,
    all_independent: bool,
}

impl CycleProfile {
    /// Largest cycle the profile will materialise: the per-class size
    /// prefix and the cycle walk itself are `O(cycle)`.
    /// [`super::AnalysisEngine::select`] enforces this bound (astronomical
    /// cycles — saturated lcms — stay on the sharded sweep).
    pub const MAX_CYCLE: u64 = 1 << 22;

    /// Largest total attendance (`Σ_p cycle / modulus_p`, the stored
    /// offset-CSR entries) the profile will materialise — the quantity that
    /// actually dominates profile memory.  A hub-and-spoke degree
    /// distribution can pack `n · cycle / 2` attendances into a short
    /// cycle, which must fall back to the `O(n)`-memory sharded sweep;
    /// [`super::AnalysisEngine::select`] budgets on
    /// [`ResidueSchedule::attendance_per_cycle`] before picking the closed
    /// form.
    pub const MAX_EVENTS: u64 = 1 << 24;

    /// Profiles one full cycle of `view` starting at holiday `start`,
    /// verifying each residue class exactly once through `checker`.  The
    /// class walk shards across the ambient worker-thread pool (the
    /// `FHG_THREADS` knob / an installed pool); the result is
    /// bitwise-identical at any thread count (see the module docs).
    ///
    /// `node_count` is the conflict graph's node count: attendance of nodes
    /// at or beyond it marks the schedule non-independent (mirroring the
    /// sweep engines) and is excluded from the per-node patterns.
    ///
    /// # Panics
    /// Panics if the cycle exceeds [`CycleProfile::MAX_CYCLE`].
    pub fn build<C: HolidayChecker + ?Sized>(
        view: &ResidueSchedule,
        start: u64,
        node_count: usize,
        checker: &C,
    ) -> Self {
        let cycle = view.cycle();
        assert!(
            cycle <= Self::MAX_CYCLE,
            "cycle {cycle} exceeds the profile budget ({})",
            Self::MAX_CYCLE
        );
        let n = node_count;
        let threads = rayon::current_num_threads().max(1);
        // Exact-capacity event lists: the per-cycle attendance volume is
        // precomputed on the view, so the class walk never regrows them.
        let attendance = view.attendance_per_cycle().min(Self::MAX_EVENTS) as usize;
        let mut shards: Vec<BuildShard> = sweep::split_offsets(cycle, threads)
            .into_iter()
            .map(|range| BuildShard {
                sizes: Vec::with_capacity((range.end - range.start) as usize),
                events: Vec::with_capacity(
                    (attendance as u64 * (range.end - range.start) / cycle) as usize + n / 64 + 16,
                ),
                range,
                batch: ClassBatch::new(view.node_count()),
                all_independent: true,
            })
            .collect();

        // The parallel class walk: `view.fill` is pure in `t`, so each
        // shard emits, verifies and collects its contiguous class range
        // with private scratch — each class is filled and verified exactly
        // once, by the one shard that owns it.  Verification is batched:
        // classes buffer into the shard's [`ClassBatch`] slots and flush
        // through [`HolidayChecker::check_batch`] up to 64 at a time, so a
        // [`super::GraphChecker`] loads each adjacency row once per batch
        // instead of once per class.  The walk only gathers
        // `(node, offset)` events (through the set-bit extraction kernel,
        // one trailing_zeros word scan per class) and per-class sizes; all
        // per-node accumulation happens afterwards, node-major, from the
        // sorted CSR.
        shards.par_iter_mut().for_each(|shard| {
            for offset in shard.range.clone() {
                let t = start + offset;
                let BuildShard { events, all_independent, batch, sizes, .. } = shard;
                let happy = batch.slot(t);
                view.fill(t, happy);
                sizes.push(happy.len() as u64);
                happy.for_each(|p| {
                    if p >= n {
                        *all_independent = false;
                        return;
                    }
                    events.push((p, offset));
                });
                if batch.commit() {
                    let ok = batch.flush(shard.all_independent, checker);
                    shard.all_independent &= ok;
                }
            }
            let ok = shard.batch.flush(shard.all_independent, checker);
            shard.all_independent &= ok;
        });

        // Concatenate in class order: the combined event sequence is
        // offset-major (shards are contiguous ascending ranges), exactly
        // what a sequential walk would have pushed, so the counting sort
        // below builds an identical CSR at any thread count.
        let mut all_independent = true;
        let mut size_prefix = Vec::with_capacity(cycle as usize + 1);
        size_prefix.push(0u64);
        let mut running = 0u64;
        let mut counts = vec![0u64; n];
        for shard in &shards {
            all_independent &= shard.all_independent;
            for &size in &shard.sizes {
                running += size;
                size_prefix.push(running);
            }
            for &(p, _) in &shard.events {
                counts[p] += 1;
            }
        }

        // Counting-sort the (node, offset) events into per-node rows.
        // Events arrive offset-major, so within each node the offsets stay
        // ascending; a fresh build lays the rows dense and node-major.
        let mut starts = Vec::with_capacity(n + 1);
        starts.push(0usize);
        for (p, &c) in counts.iter().enumerate() {
            starts.push(starts[p] + c as usize);
        }
        let mut cursor = starts.clone();
        let mut offsets = vec![0u64; starts[n]];
        for shard in shards {
            for (p, o) in shard.events {
                offsets[cursor[p]] = o;
                cursor[p] += 1;
            }
        }
        let rows: Vec<(usize, usize)> =
            (0..n).map(|p| (starts[p], starts[p + 1] - starts[p])).collect();

        // The one-cycle column bank, replayed node-major from the rows: each
        // lane's offsets are contiguous and ascending, so this is the exact
        // record sequence of a sequential walk with streaming (not
        // scattered) column access — and, built from the merged rows, it is
        // trivially identical at every thread count.
        let mut bank = AccumBank::new(n);
        for (p, &(s, l)) in rows.iter().enumerate() {
            for &o in &offsets[s..s + l] {
                bank.record(p, o);
            }
        }

        CycleProfile {
            start,
            cycle,
            node_count: n,
            bank,
            rows,
            offsets,
            garbage: 0,
            size_prefix,
            all_independent,
        }
    }

    /// Reconstructs a profile from its deterministic inputs — view, start,
    /// node count and the previously verified per-class verdict — without
    /// running a checker or walking happy sets.
    ///
    /// Everything a [`CycleProfile::build`] computes except the verdict is a
    /// pure function of the residue view: node `p` attends exactly the
    /// offsets `o ≡ slot_p − start (mod m_p)` within the cycle, so the
    /// per-class sizes, the offset CSR and the column bank can all be
    /// replayed arithmetically in `O(cycle + attendance)`.  This is the
    /// serving tier's recovery path: a snapshot persists only the compact
    /// view plus the one verdict bit, and rehydration restores a profile
    /// that is [`content_eq`](CycleProfile::content_eq) to the original —
    /// no cold build, no checker traffic.
    ///
    /// The caller vouches for `all_independent` (recovery trusts the
    /// checksummed snapshot and then re-audits a sample through
    /// the serving tier's audit plane).
    ///
    /// # Panics
    /// Panics if the cycle exceeds [`CycleProfile::MAX_CYCLE`].
    pub fn rehydrate(
        view: &ResidueSchedule,
        start: u64,
        node_count: usize,
        all_independent: bool,
    ) -> Self {
        let cycle = view.cycle();
        assert!(
            cycle <= Self::MAX_CYCLE,
            "cycle {cycle} exceeds the profile budget ({})",
            Self::MAX_CYCLE
        );
        let n = node_count;

        // Per-class sizes count ALL view nodes (out-of-range attendance is
        // part of class size, exactly as `view.fill` reports it); per-node
        // lanes exist only for graph nodes `p < n`, mirroring the build's
        // event emission.
        let mut class_sizes = vec![0u64; cycle as usize];
        let mut counts = vec![0u64; n];
        for p in 0..view.node_count() {
            let m = view.modulus(p);
            let first = (view.slot(p) % m + m - start % m) % m;
            let mut o = first;
            let mut hits = 0u64;
            while o < cycle {
                class_sizes[o as usize] += 1;
                hits += 1;
                o += m;
            }
            if let Some(count) = counts.get_mut(p) {
                *count = hits;
            }
        }
        let mut size_prefix = Vec::with_capacity(cycle as usize + 1);
        size_prefix.push(0u64);
        let mut running = 0u64;
        for &size in &class_sizes {
            running += size;
            size_prefix.push(running);
        }

        // Dense node-major CSR with ascending offsets per lane — the exact
        // layout a fresh build's counting sort produces.
        let mut starts = Vec::with_capacity(n + 1);
        starts.push(0usize);
        for p in 0..n {
            starts.push(starts[p] + counts[p] as usize);
        }
        let mut offsets = vec![0u64; starts[n]];
        for (p, &row_start) in starts.iter().enumerate().take(n.min(view.node_count())) {
            let m = view.modulus(p);
            let first = (view.slot(p) % m + m - start % m) % m;
            let mut idx = row_start;
            let mut o = first;
            while o < cycle {
                offsets[idx] = o;
                idx += 1;
                o += m;
            }
        }
        let rows: Vec<(usize, usize)> =
            (0..n).map(|p| (starts[p], starts[p + 1] - starts[p])).collect();

        let mut bank = AccumBank::new(n);
        for (p, &(s, l)) in rows.iter().enumerate() {
            for &o in &offsets[s..s + l] {
                bank.record(p, o);
            }
        }

        CycleProfile {
            start,
            cycle,
            node_count: n,
            bank,
            rows,
            offsets,
            garbage: 0,
            size_prefix,
            all_independent,
        }
    }

    /// The profiled cycle length.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// First holiday of the profiled cycle.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of nodes the profile tracks.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Whether every residue class passed its independence check.
    pub fn all_classes_independent(&self) -> bool {
        self.all_independent
    }

    /// How many holidays per cycle node `p` attends.
    pub fn count_per_cycle(&self, p: NodeId) -> u64 {
        self.bank.count[p]
    }

    /// The offsets (within the cycle, ascending) at which node `p` attends.
    pub fn attendance_offsets(&self, p: NodeId) -> &[u64] {
        let (s, l) = self.rows[p];
        &self.offsets[s..s + l]
    }

    /// The gap multiset of node `p` over the infinite periodic schedule: the
    /// internal gaps between consecutive attendances within a cycle, plus the
    /// wrap-around gap into the next cycle.  Empty for nodes that never
    /// attend.
    pub fn gaps(&self, p: NodeId) -> impl Iterator<Item = u64> + '_ {
        let offs = self.attendance_offsets(p);
        let wrap = offs.last().map(|&last| self.cycle - last + offs[0]);
        offs.windows(2).map(|w| w[1] - w[0]).chain(wrap)
    }

    /// Total happy appearances over one full cycle (out-of-range members
    /// included, matching the sweep's accounting).
    pub fn happiness_per_cycle(&self) -> u64 {
        self.size_prefix[self.cycle as usize]
    }

    /// Total happy appearances over the first `classes` residue classes of
    /// the cycle — the per-class size prefix ragged tails fold through.
    ///
    /// # Panics
    /// Panics if `classes > cycle`.
    pub fn happiness_prefix(&self, classes: u64) -> u64 {
        self.size_prefix[classes as usize]
    }

    /// Repairs this profile in place after a dynamic edge event, instead of
    /// rebuilding the whole cycle walk: `changes` are the residue rows the
    /// event moved (endpoints the scheduler recolored — see
    /// `DynamicColorBound::apply_event`), `view` is the schedule's
    /// **already-updated** residue view and `inserted_edge` the edge the
    /// event added, if any.  The repair has three parts, each touching only
    /// what the event touched:
    ///
    /// * **attendance lanes** — each changed node's offset row is replaced
    ///   by its new arithmetic progression (`cycle / modulus` offsets; in
    ///   place when the length is unchanged, retired to the arena tail
    ///   otherwise, with compaction once retired entries outweigh live
    ///   ones) and its column-bank lane is cleared and replayed, a single
    ///   ascending record pass;
    /// * **per-class sizes** — one `O(cycle)` delta walk over the size
    ///   prefix subtracts the old progressions and adds the new ones;
    /// * **re-verification** — only the residue classes whose membership
    ///   *gained* a node can newly violate independence: the changed
    ///   nodes' new progressions, plus (for an insert between two nodes
    ///   that kept their rows) the classes where both endpoints co-attend,
    ///   found by CRT on their rows.  Those classes are refilled from
    ///   `view` and batched through [`HolidayChecker::check_batch`]
    ///   (64-wide, like the build); classes that merely *lost* a member
    ///   stay independent (a subset of an independent set), and a deleted
    ///   edge cannot invalidate any class, so everything else keeps its
    ///   verdict.  A failed check flips the profile's verdict to
    ///   non-independent, exactly as a rebuild would conclude.
    ///
    /// The phases run **prepare → validate → commit**: refusal checks and
    /// class collection first, then the batched verification (which reads
    /// only `view` and scratch), and only then the mutating size/row/lane
    /// walk with the pre-computed verdict applied last.  A crash anywhere
    /// before the commit phase leaves the profile bitwise-untouched; a
    /// crash *inside* the commit phase can leave it poisoned, which the
    /// serving tier handles by quarantining the tenant (see
    /// `ProfileService`).
    ///
    /// The patched profile is **bitwise-identical in content** (see
    /// [`CycleProfile::content_eq`]) to `CycleProfile::build` against the
    /// post-event view and graph — only the arena layout may differ —
    /// which `tests/dynamic_patch.rs` pins against the rebuild oracle at
    /// several thread counts.
    ///
    /// Refuses (and leaves the profile untouched) when the event changed
    /// the cycle itself or the cached verdict is already `false`; see
    /// [`PatchRefused`].  Cost: `O(cycle + Σ lanes + Σ deg(checked))` —
    /// independent of node count and total attendance.
    ///
    /// # Panics
    /// Panics if `view` disagrees with the profile's node count, or if a
    /// change's node is out of range — patches must come from the same
    /// scheduler the profile was built from.
    pub fn patch<C: HolidayChecker + ?Sized>(
        &mut self,
        view: &ResidueSchedule,
        changes: &[RowChange],
        inserted_edge: Option<(NodeId, NodeId)>,
        checker: &C,
        scratch: &mut PatchScratch,
    ) -> Result<PatchStats, PatchRefused> {
        let cycle = self.cycle;
        if view.cycle() != cycle {
            return Err(PatchRefused::CycleChanged { old: cycle, new: view.cycle() });
        }
        if !self.all_independent {
            return Err(PatchRefused::NotIndependent);
        }
        assert_eq!(view.node_count(), self.node_count, "patch from a different schedule");

        // Collect the residue classes to re-verify (as cycle offsets):
        // every changed node's *new* progression, plus the co-attendance
        // classes of an inserted edge (CRT over the post-event rows —
        // relevant when neither endpoint was recolored but the new edge
        // now lies inside existing classes).
        scratch.classes.clear();
        for change in changes {
            let m = change.new_modulus;
            debug_assert!(cycle.is_multiple_of(m), "row modulus must divide the unchanged cycle");
            push_progression(
                &mut scratch.classes,
                first_offset(self.start, change.new_slot, m),
                m,
                cycle,
            );
        }
        if let Some((u, v)) = inserted_edge {
            if let Some((t0, l)) =
                crt_class(view.slot(u), view.modulus(u), view.slot(v), view.modulus(v))
            {
                push_progression(&mut scratch.classes, first_offset(self.start, t0, l), l, cycle);
            }
        }
        scratch.classes.sort_unstable();
        scratch.classes.dedup();

        // Validate before commit: batched re-verification of the touched
        // classes, 64-wide like the build, against the (already-updated)
        // `view` — it reads nothing the commit below mutates, so the
        // verdict is decided while the profile is still bitwise-untouched
        // and a crash anywhere up to here leaves nothing to roll back.
        // `enabled` short-circuits after the first failure, exactly
        // mirroring the build's shard loop.
        if scratch.batch_capacity != view.node_count() {
            scratch.batch = ClassBatch::new(view.node_count());
            scratch.batch_capacity = view.node_count();
        }
        let mut ok = true;
        for &o in &scratch.classes {
            let t = self.start + o;
            let happy = scratch.batch.slot(t);
            view.fill(t, happy);
            if scratch.batch.commit() {
                ok &= scratch.batch.flush(ok, checker);
            }
        }
        ok &= scratch.batch.flush(ok, checker);
        crate::fail_point!("profile.patch.validate");

        for change in changes {
            let p = change.node;
            let (old_m, new_m) = (change.old_modulus, change.new_modulus);
            let old_f = first_offset(self.start, change.old_slot, old_m);
            let new_f = first_offset(self.start, change.new_slot, new_m);

            // Per-class size delta: walk the cycle once, subtracting the
            // old progression and adding the new.  The running delta is
            // signed; `wrapping_add` of the sign-extended word is exact.
            let (mut next_old, mut next_new) = (old_f, new_f);
            let mut delta = 0i64;
            for k in 0..cycle {
                if k == next_old {
                    delta -= 1;
                    next_old = next_old.saturating_add(old_m);
                }
                if k == next_new {
                    delta += 1;
                    next_new = next_new.saturating_add(new_m);
                }
                if delta != 0 {
                    let cell = &mut self.size_prefix[(k + 1) as usize];
                    *cell = cell.wrapping_add(delta as u64);
                }
            }

            // Row replacement: in place when the attendance count is
            // unchanged, otherwise retire the old row to the arena.
            let new_len = (cycle / new_m) as usize;
            let (s, l) = self.rows[p];
            if new_len == l {
                for (i, dst) in self.offsets[s..s + l].iter_mut().enumerate() {
                    *dst = new_f + i as u64 * new_m;
                }
            } else {
                self.garbage += l;
                let ns = self.offsets.len();
                self.offsets.extend((0..new_len as u64).map(|i| new_f + i * new_m));
                self.rows[p] = (ns, new_len);
            }

            // Lane replay: clear and re-record, ascending — the same
            // sequence a fresh build replays for this node.
            self.bank.clear_lane(p);
            let (s, l) = self.rows[p];
            for i in 0..l as u64 {
                self.bank.record(p, self.offsets[s + i as usize]);
            }
        }
        crate::fail_point!("profile.patch.commit");
        if self.garbage > self.offsets.len() / 2 {
            self.compact(scratch);
        }
        self.all_independent = ok;

        Ok(PatchStats { lanes_patched: changes.len(), classes_verified: scratch.classes.len() })
    }

    /// Rewrites the offset arena dense and node-major (the fresh-build
    /// layout), dropping retired rows.  The old arena becomes the next
    /// compaction's target buffer, so both sides keep their high-water
    /// capacity and steady-state compaction allocates nothing.
    fn compact(&mut self, scratch: &mut PatchScratch) {
        scratch.arena.clear();
        scratch.arena.reserve(self.offsets.len() - self.garbage);
        for row in &mut self.rows {
            let (s, l) = *row;
            let ns = scratch.arena.len();
            scratch.arena.extend_from_slice(&self.offsets[s..s + l]);
            *row = (ns, l);
        }
        std::mem::swap(&mut self.offsets, &mut scratch.arena);
        self.garbage = 0;
    }

    /// Whether two profiles describe the same schedule content: every
    /// derived quantity (start, cycle, verdict, per-class sizes, column
    /// bank, per-node attendance offsets) is equal — ignoring the arena
    /// layout, which patching is free to permute.  This is the equality the
    /// patch-parity suite pins against the rebuild oracle: `content_eq`
    /// implies every `derive*` output is bitwise-identical.
    pub fn content_eq(&self, other: &CycleProfile) -> bool {
        self.start == other.start
            && self.cycle == other.cycle
            && self.node_count == other.node_count
            && self.all_independent == other.all_independent
            && self.size_prefix == other.size_prefix
            && self.bank == other.bank
            && (0..self.node_count)
                .all(|p| self.attendance_offsets(p) == other.attendance_offsets(p))
    }

    /// Derives the full [`ScheduleAnalysis`] of `horizon` holidays in closed
    /// form.  Returns `None` when `horizon < cycle` (no full repetition to
    /// fold — callers fall back to a sweep engine); `derive(0)` is therefore
    /// always `None` (every cycle is at least 1 long).
    pub fn derive(&self, scheduler: &str, graph: &Graph, horizon: u64) -> Option<ScheduleAnalysis> {
        with_derive_scratch(|scratch| self.derive_with(scheduler, graph, horizon, scratch))
    }

    /// [`CycleProfile::derive`] with caller-owned scratch, for repeated
    /// derivations from one cached profile.
    pub fn derive_with(
        &self,
        scheduler: &str,
        graph: &Graph,
        horizon: u64,
        scratch: &mut DeriveScratch,
    ) -> Option<ScheduleAnalysis> {
        if horizon < self.cycle {
            return None;
        }
        if horizon.is_multiple_of(self.cycle) {
            // Whole-cycle horizons (the common serving shape): replicate
            // and finalise in one fused pass, no bank materialisation.
            return Some(self.finalize_fused(scheduler, graph, horizon));
        }
        let (all_independent, total_happiness) = self.window_accums(0, horizon, scratch);
        Some(sweep::finalize_bank(
            scheduler.to_string(),
            horizon,
            graph,
            &mut scratch.bank,
            all_independent,
            total_happiness,
            &mut scratch.cols,
        ))
    }

    /// The totals-only fast path: whole-schedule aggregates of `horizon`
    /// holidays, skipping the per-node assembly and float finalisation
    /// entirely.  Equal to [`CycleProfile::derive`]`(..).totals()` by
    /// construction, at a fraction of the cost.  Returns `None` exactly
    /// when [`CycleProfile::derive`] would.
    pub fn derive_totals(&self, horizon: u64) -> Option<AnalysisTotals> {
        with_derive_scratch(|scratch| self.derive_totals_with(horizon, scratch))
    }

    /// [`CycleProfile::derive_totals`] with caller-owned scratch — zero
    /// heap allocations per call after the first (the serving-tier shape;
    /// proved by `tests/zero_alloc.rs`).
    pub fn derive_totals_with(
        &self,
        horizon: u64,
        scratch: &mut DeriveScratch,
    ) -> Option<AnalysisTotals> {
        if horizon < self.cycle {
            return None;
        }
        if horizon.is_multiple_of(self.cycle) {
            // Whole-cycle horizons: replicate and reduce in one fused
            // read-only pass — no bank, no writes, no allocations at all.
            return Some(self.totals_fused(horizon));
        }
        let (all_independent, total_happiness) = self.window_accums(0, horizon, scratch);
        Some(sweep::totals_from_bank(horizon, &scratch.bank, all_independent, total_happiness))
    }

    /// Derives the full [`ScheduleAnalysis`] of the window `[t0, t1)` —
    /// holidays `start + t0` up to (excluding) `start + t1`, offsets
    /// reported relative to the window start — in closed form via the
    /// start-offset fold (see the module docs).  **Total over all windows**:
    /// zero-width (`t1 <= t0`) and sub-cycle windows take the defined
    /// head-segment path instead of returning `None` or panicking, so this
    /// is the serving tier's entry point.  Bitwise-identical to
    /// [`super::analyze_schedule_reference`] run over the same window
    /// (pinned by `tests/window_parity.rs`), except that the independence
    /// verdict is always the profiled cycle's whole-cycle verdict — a
    /// serving tier answers "is this schedule valid", not "did the bad
    /// class happen to fall inside the window".
    pub fn derive_window(
        &self,
        scheduler: &str,
        graph: &Graph,
        t0: u64,
        t1: u64,
    ) -> ScheduleAnalysis {
        with_derive_scratch(|scratch| self.derive_window_with(scheduler, graph, t0, t1, scratch))
    }

    /// [`CycleProfile::derive_window`] with caller-owned scratch, for
    /// repeated windowed queries from one cached profile (the output
    /// allocation is window-size-independent; the accumulation itself is
    /// allocation-free after warm-up).
    pub fn derive_window_with(
        &self,
        scheduler: &str,
        graph: &Graph,
        t0: u64,
        t1: u64,
        scratch: &mut DeriveScratch,
    ) -> ScheduleAnalysis {
        let horizon = t1.saturating_sub(t0);
        if t0.is_multiple_of(self.cycle) && horizon >= self.cycle {
            if let Some(analysis) = self.derive_with(scheduler, graph, horizon, scratch) {
                return analysis;
            }
        }
        let (all_independent, total_happiness) = self.window_accums(t0, t1, scratch);
        sweep::finalize_bank(
            scheduler.to_string(),
            horizon,
            graph,
            &mut scratch.bank,
            all_independent,
            total_happiness,
            &mut scratch.cols,
        )
    }

    /// The totals-only windowed fast path: whole-window aggregates of
    /// `[t0, t1)`, skipping the per-node assembly entirely.  Total over all
    /// windows and **zero heap allocations per call** after the first (the
    /// steady-state serving shape; proved by `tests/zero_alloc.rs`).  Equal
    /// to [`CycleProfile::derive_window`]`(..).totals()` by construction.
    pub fn derive_window_totals(&self, t0: u64, t1: u64) -> AnalysisTotals {
        with_derive_scratch(|scratch| self.derive_window_totals_with(t0, t1, scratch))
    }

    /// [`CycleProfile::derive_window_totals`] with caller-owned scratch.
    pub fn derive_window_totals_with(
        &self,
        t0: u64,
        t1: u64,
        scratch: &mut DeriveScratch,
    ) -> AnalysisTotals {
        let horizon = t1.saturating_sub(t0);
        if t0.is_multiple_of(self.cycle) && horizon >= self.cycle {
            if let Some(totals) = self.derive_totals_with(horizon, scratch) {
                return totals;
            }
        }
        let (all_independent, total_happiness) = self.window_accums(t0, t1, scratch);
        sweep::totals_from_bank(horizon, &scratch.bank, all_independent, total_happiness)
    }

    /// The start-offset fold — the windowed (and ragged-horizon) core:
    /// fills `scratch.bank` with the merged global accumulator columns of
    /// the window `[t0, t1)` and returns the scalar verdicts.
    ///
    /// With phase `a = t0 mod cycle` and length `L = t1 - t0`, the window
    /// decomposes into at most three contiguous pieces, each expressed as a
    /// segment bank and folded in window order through the exact column
    /// merge ([`AccumBank::merge_from`]):
    ///
    /// 1. a ragged **head** `[a, a + head_len)` of the phase cycle
    ///    (`head_len = min(cycle - a, L)` when `a > 0`), replayed from the
    ///    stored attendance offsets rebased to window offset `o - a`;
    /// 2. `(L - head_len) / cycle` phase-shifted **whole cycles**, folded
    ///    analytically by [`replicate_segment_into`] (or, when the head is
    ///    empty, [`replicate_global_into`] straight into place);
    /// 3. a ragged **tail** of the remaining `(L - head_len) mod cycle`
    ///    offsets, replayed like the head.
    ///
    /// Each piece is bitwise the summary a sequential record pass over its
    /// offsets would produce, and the column merge is exact at any cut, so
    /// the merged bank — and everything finalised from it — is
    /// bitwise-identical to a sequential sweep restricted to the window.
    /// The whole-window happiness folds exactly through the per-class size
    /// prefix (saturating only near the `u64` boundary, like
    /// [`CycleProfile::derive`]).
    fn window_accums(&self, t0: u64, t1: u64, scratch: &mut DeriveScratch) -> (bool, u64) {
        let n = self.node_count;
        let cycle = self.cycle;
        let len = t1.saturating_sub(t0);
        let phase = t0 % cycle;
        let head_len = if phase == 0 { 0 } else { (cycle - phase).min(len) };
        let rem = len - head_len;
        let reps = rem / cycle;
        let tail = rem % cycle;

        if head_len == 0 && reps > 0 {
            // Cycle-aligned window start: fold the replicated cycles
            // straight into place, exactly the classic derive prefix.
            replicate_global_into(&mut scratch.bank, &self.bank, reps, cycle);
        } else {
            scratch.bank.reset(n);
            if head_len > 0 {
                // Ragged head: each node's attendances at cycle offsets in
                // `[phase, phase + head_len)`, rebased to the window.  The
                // merge into the empty global takes the take-first branch,
                // accounting each lane's leading unhappy stretch.
                let seg = &mut scratch.tail;
                seg.reset(n);
                for p in 0..n {
                    let offs = self.attendance_offsets(p);
                    let from = offs.partition_point(|&o| o < phase);
                    for &o in &offs[from..] {
                        if o >= phase + head_len {
                            break;
                        }
                        seg.record(p, o - phase);
                    }
                }
                scratch.bank.merge_from(seg, &mut scratch.cols);
            }
            if reps > 0 {
                // Phase-shifted whole cycles behind the head, as one
                // analytically replicated segment.
                let seg = &mut scratch.tail;
                replicate_segment_into(seg, &self.bank, reps, cycle, head_len);
                scratch.bank.merge_from(seg, &mut scratch.cols);
            }
        }
        if tail > 0 {
            // Ragged tail: cycle offsets `< tail`, replayed at absolute
            // window offsets starting behind the last whole cycle.
            let base = head_len + reps * cycle;
            let seg = &mut scratch.tail;
            seg.reset(n);
            for p in 0..n {
                for &o in self.attendance_offsets(p) {
                    if o >= tail {
                        break;
                    }
                    seg.record(p, base + o);
                }
            }
            scratch.bank.merge_from(seg, &mut scratch.cols);
        }

        // Per-node fields cannot overflow (each is bounded by the window
        // length), but the whole-window total is `n`-fold larger; saturate
        // rather than wrap on windows beyond ~10^16 (the sweep engines
        // could never reach them to compare against anyway).
        let head_happiness =
            self.size_prefix[(phase + head_len) as usize] - self.size_prefix[phase as usize];
        let total_happiness = reps
            .saturating_mul(self.happiness_per_cycle())
            .saturating_add(head_happiness)
            .saturating_add(self.size_prefix[tail as usize]);
        (self.all_independent, total_happiness)
    }

    /// The whole-cycle full derivation: one fused pass reading the profile
    /// columns, folding each lane through [`fold_lane`] and assembling its
    /// [`NodeAnalysis`](super::NodeAnalysis) directly — no global bank is
    /// materialised (`horizon = reps · cycle`, so there is no tail to
    /// merge).  Bitwise-identical to the bank path by construction: both
    /// run the same lane fold and the same finalisation arithmetic.
    fn finalize_fused(&self, scheduler: &str, graph: &Graph, horizon: u64) -> ScheduleAnalysis {
        let n = self.node_count;
        let reps = horizon / self.cycle;
        let src = LaneColumns::of(&self.bank, n);
        let per_node: Vec<super::NodeAnalysis> = (0..n)
            .map(|p| {
                let lane = fold_lane(src.read(p), reps, self.cycle);
                let trailing = if lane.last == NONE { horizon } else { horizon - 1 - lane.last };
                super::NodeAnalysis {
                    node: p,
                    degree: graph.degree(p),
                    happy_count: lane.count,
                    max_unhappiness: lane.max_streak.max(trailing),
                    observed_period: (lane.uniform && lane.first_gap != NONE)
                        .then_some(lane.first_gap),
                    first_happy: (lane.first != NONE).then_some(lane.first),
                    mean_gap: if lane.gap_count > 0 {
                        lane.gap_sum as f64 / lane.gap_count as f64
                    } else {
                        f64::NAN
                    },
                }
            })
            .collect();
        let never_happy =
            src.count.iter().enumerate().filter(|(_, &c)| c == 0).map(|(p, _)| p).collect();
        let total_happiness = reps.saturating_mul(self.happiness_per_cycle());
        ScheduleAnalysis {
            scheduler: scheduler.to_string(),
            horizon,
            mean_happy_set_size: if horizon == 0 {
                0.0
            } else {
                total_happiness as f64 / horizon as f64
            },
            per_node,
            all_happy_sets_independent: self.all_independent,
            never_happy,
            total_happiness,
        }
    }

    /// The whole-cycle totals derivation: one fused **read-only** pass —
    /// fold each lane, reduce to the aggregates, allocate nothing.
    fn totals_fused(&self, horizon: u64) -> AnalysisTotals {
        let n = self.node_count;
        let reps = horizon / self.cycle;
        let src = LaneColumns::of(&self.bank, n);
        let mut max_unhappiness = 0u64;
        let mut all_periodic = true;
        let mut never_happy = 0u64;
        for p in 0..n {
            let lane = fold_lane(src.read(p), reps, self.cycle);
            let trailing = if lane.last == NONE { horizon } else { horizon - 1 - lane.last };
            max_unhappiness = max_unhappiness.max(lane.max_streak.max(trailing));
            all_periodic &= lane.uniform && lane.first_gap != NONE;
            never_happy += u64::from(lane.count == 0);
        }
        let total_happiness = reps.saturating_mul(self.happiness_per_cycle());
        AnalysisTotals {
            horizon,
            total_happiness,
            mean_happy_set_size: if horizon == 0 {
                0.0
            } else {
                total_happiness as f64 / horizon as f64
            },
            max_unhappiness,
            all_periodic,
            never_happy,
            all_happy_sets_independent: self.all_independent,
        }
    }
}

/// Borrowed column views of one bank, re-sliced to a common length so every
/// per-lane read below indexes without bounds checks.
struct LaneColumns<'a> {
    count: &'a [u64],
    first: &'a [u64],
    last: &'a [u64],
    gap_sum: &'a [u64],
    gap_count: &'a [u64],
    first_gap: &'a [u64],
    max_streak: &'a [u64],
    uniform: &'a [u64],
}

impl<'a> LaneColumns<'a> {
    fn of(bank: &'a AccumBank, n: usize) -> Self {
        LaneColumns {
            count: &bank.count[..n],
            first: &bank.first[..n],
            last: &bank.last[..n],
            gap_sum: &bank.gap_sum[..n],
            gap_count: &bank.gap_count[..n],
            first_gap: &bank.first_gap[..n],
            max_streak: &bank.max_streak[..n],
            uniform: &bank.uniform[..n],
        }
    }

    #[inline]
    fn read(&self, p: usize) -> FoldedLane {
        FoldedLane {
            count: self.count[p],
            first: self.first[p],
            last: self.last[p],
            gap_sum: self.gap_sum[p],
            gap_count: self.gap_count[p],
            first_gap: self.first_gap[p],
            max_streak: self.max_streak[p],
            uniform: self.uniform[p] != 0,
        }
    }
}

/// One lane's accumulator values, in scalar form — the unit the fused fold
/// reads, transforms and writes.
#[derive(Clone, Copy)]
struct FoldedLane {
    count: u64,
    first: u64,
    last: u64,
    gap_sum: u64,
    gap_count: u64,
    first_gap: u64,
    max_streak: u64,
    uniform: bool,
}

impl FoldedLane {
    fn empty() -> Self {
        FoldedLane {
            count: 0,
            first: NONE,
            last: NONE,
            gap_sum: 0,
            gap_count: 0,
            first_gap: NONE,
            max_streak: 0,
            uniform: true,
        }
    }
}

/// The closed-form **segment** replicate: `replicate(a, reps, cycle)` as
/// straight-line scalar arithmetic over one lane ([`replicate`] stays the
/// executable specification the property tests compare against) — internal
/// gaps repeat `reps` times and the `reps - 1` cycle boundaries each
/// contribute the wrap-around gap `cycle - last + first`.  The result is
/// exactly the segment summary a sequential record pass over all
/// `reps · count` attendance offsets would produce, so it composes through
/// [`AccumBank::merge_from`] at any position of a longer horizon — the
/// building block of the windowed derivation.
#[inline]
fn replicate_lane(a: FoldedLane, reps: u64, cycle: u64) -> FoldedLane {
    if a.count == 0 {
        return FoldedLane::empty();
    }
    let wrap = cycle - a.last + a.first;
    FoldedLane {
        count: reps * a.count,
        first: a.first,
        last: (reps - 1) * cycle + a.last,
        gap_sum: reps * a.gap_sum + (reps - 1) * wrap,
        gap_count: reps * a.gap_count + (reps - 1),
        first_gap: if a.gap_count > 0 {
            a.first_gap
        } else if reps > 1 {
            wrap
        } else {
            NONE
        },
        max_streak: if reps > 1 { a.max_streak.max(wrap - 1) } else { a.max_streak },
        uniform: a.uniform && (reps == 1 || a.gap_count == 0 || a.first_gap == wrap),
    }
}

/// The closed-form **global** lane fold: `merge_node(empty, replicate(a))` —
/// [`replicate_lane`] plus the empty-global merge's take-first rule (the
/// leading unhappy stretch before the first attendance folds into the
/// streak).  Shared by the bank-materialising [`replicate_global_into`] and
/// the fused whole-cycle derivations, so the two paths cannot drift.
#[inline]
fn fold_lane(a: FoldedLane, reps: u64, cycle: u64) -> FoldedLane {
    let mut lane = replicate_lane(a, reps, cycle);
    if lane.count > 0 {
        lane.max_streak = lane.max_streak.max(lane.first);
    }
    lane
}

/// Writes one scalar lane back to a bank's columns (the `uniform` bool
/// re-encoded as the word mask).
#[inline]
fn store_lane(dst: &mut AccumBank, p: usize, lane: FoldedLane) {
    dst.count[p] = lane.count;
    dst.first[p] = lane.first;
    dst.last[p] = lane.last;
    dst.gap_sum[p] = lane.gap_sum;
    dst.gap_count[p] = lane.gap_count;
    dst.first_gap[p] = lane.first_gap;
    dst.max_streak[p] = lane.max_streak;
    dst.uniform[p] = if lane.uniform { sweep::UNIFORM } else { 0 };
}

/// Analytically replicates the one-cycle bank `src` over `reps ≥ 1`
/// consecutive cycles and rebases the result `base` offsets later — a pure
/// **segment** bank (no take-first fold), positioned at `[base,
/// base + reps · cycle)` of a longer horizon.  Shifting a segment summary
/// moves only its endpoints (`first`/`last`); every gap field is a
/// difference of offsets and is translation-invariant, so the stored lane
/// is exactly what recording `base + o` for every replicated offset `o`
/// would produce.  The windowed derivation merges this behind the ragged
/// head segment through the exact column rule.
fn replicate_segment_into(dst: &mut AccumBank, src: &AccumBank, reps: u64, cycle: u64, base: u64) {
    debug_assert!(reps >= 1);
    let n = src.len();
    dst.resize_lanes(n);
    let cols = LaneColumns::of(src, n);
    for p in 0..n {
        let mut lane = replicate_lane(cols.read(p), reps, cycle);
        if lane.count > 0 {
            lane.first += base;
            lane.last += base;
        }
        store_lane(dst, p, lane);
    }
}

/// Analytically replicates the one-cycle bank `src` over `reps ≥ 1`
/// consecutive cycles of length `cycle` and folds the result into an empty
/// global — out of place, into `dst` — in **one fused streaming pass** over
/// the columns: the scalar rule `merge_node(empty, replicate(a))`
/// ([`replicate`] remains the executable specification the property tests
/// compare against), applied lane by lane while the eight source and eight
/// destination columns stream sequentially.  Internal gaps repeat `reps`
/// times, the `reps - 1` cycle boundaries each contribute the wrap-around
/// gap `cycle - last + first`, and the leading unhappy stretch before each
/// node's first attendance is folded into the streak (the empty-global
/// merge's take-first rule).
///
/// A composition of the generic column kernels computes the same fold in
/// ~20 separate passes (mask, blend, scale, restore); measured on the e14
/// configuration that moves ~3.5x the memory of this single fused pass, so
/// — exactly like the fused gather of PR 4 replaced per-row OR passes —
/// the replicate fold gets its own fused loop, while the masked column
/// kernels keep powering the segment merge (where the algebra genuinely
/// needs per-lane conditionals across two banks).
fn replicate_global_into(dst: &mut AccumBank, src: &AccumBank, reps: u64, cycle: u64) {
    debug_assert!(reps >= 1);
    let n = src.len();
    dst.resize_lanes(n);
    let cols = LaneColumns::of(src, n);
    let (d_count, d_first, d_last) = (&mut dst.count[..n], &mut dst.first[..n], &mut dst.last[..n]);
    let (d_gsum, d_gcnt) = (&mut dst.gap_sum[..n], &mut dst.gap_count[..n]);
    let (d_fgap, d_streak, d_uni) =
        (&mut dst.first_gap[..n], &mut dst.max_streak[..n], &mut dst.uniform[..n]);
    for p in 0..n {
        let lane = fold_lane(cols.read(p), reps, cycle);
        d_count[p] = lane.count;
        d_first[p] = lane.first;
        d_last[p] = lane.last;
        d_gsum[p] = lane.gap_sum;
        d_gcnt[p] = lane.gap_count;
        d_fgap[p] = lane.first_gap;
        d_streak[p] = lane.max_streak;
        d_uni[p] = if lane.uniform { sweep::UNIFORM } else { 0 };
    }
}

/// The first cycle offset at which a residue row `t ≡ slot (mod m)` fires,
/// for a cycle anchored at holiday `start`: the least `o` with
/// `start + o ≡ slot (mod m)`.  `slot < m` and `m ≤ cycle ≤ MAX_CYCLE`, so
/// the arithmetic stays far from overflow.
fn first_offset(start: u64, slot: u64, m: u64) -> u64 {
    (slot + m - start % m) % m
}

/// Appends the arithmetic progression `first, first + step, …` below
/// `cycle` to `out` — the cycle offsets of one residue row.
fn push_progression(out: &mut Vec<u64>, first: u64, step: u64, cycle: u64) {
    let mut o = first;
    while o < cycle {
        out.push(o);
        o += step;
    }
}

/// The holidays where two residue rows co-fire, by the Chinese remainder
/// theorem: solves `t ≡ s1 (mod m1)`, `t ≡ s2 (mod m2)`, returning the
/// progression `(t0, lcm(m1, m2))` of common holidays, or `None` when the
/// congruences are incompatible (`s1 ≢ s2 (mod gcd)`) — the rows never
/// co-fire.  Moduli are cycle divisors (≤ 2^22), so the intermediate
/// products fit comfortably in `i128`.
fn crt_class(s1: u64, m1: u64, s2: u64, m2: u64) -> Option<(u64, u64)> {
    fn egcd(a: i128, b: i128) -> (i128, i128) {
        // Returns (g, x) with a·x ≡ g (mod b).
        let (mut r0, mut r1) = (a, b);
        let (mut x0, mut x1) = (1i128, 0i128);
        while r1 != 0 {
            let q = r0 / r1;
            (r0, r1) = (r1, r0 - q * r1);
            (x0, x1) = (x1, x0 - q * x1);
        }
        (r0, x0)
    }
    let (g, x) = egcd(m1 as i128, m2 as i128);
    let diff = s2 as i128 - s1 as i128;
    if diff % g != 0 {
        return None;
    }
    let lcm = (m1 as i128 / g) * m2 as i128;
    let period2 = m2 as i128 / g;
    // t = s1 + m1·k with (m1/g)·k ≡ diff/g (mod m2/g); x inverts m1/g there.
    let k = (diff / g % period2) * (x % period2) % period2;
    let t0 = (s1 as i128 + m1 as i128 * k).rem_euclid(lcm);
    Some((t0 as u64, lcm as u64))
}

/// Analytically replicates a one-cycle accumulator over `reps` consecutive
/// cycles of length `cycle` — the scalar specification of
/// [`replicate_global_into`], producing exactly the segment accumulator a
/// sequential [`sweep::NodeAccum::record`] pass over all `reps · count`
/// attendance offsets would: internal gaps repeat `reps` times, and the
/// `reps - 1` cycle boundaries each contribute the wrap-around gap
/// `cycle - last + first`.
#[cfg(test)]
fn replicate(a: &sweep::NodeAccum, reps: u64, cycle: u64) -> sweep::NodeAccum {
    if a.happy == 0 || reps == 0 {
        return sweep::NodeAccum::empty();
    }
    let wrap = cycle - a.last + a.first;
    sweep::NodeAccum {
        first: a.first,
        last: (reps - 1) * cycle + a.last,
        happy: reps * a.happy,
        gap_sum: reps * a.gap_sum + (reps - 1) * wrap,
        gap_count: reps * a.gap_count + (reps - 1),
        first_gap: if a.gap_count > 0 {
            a.first_gap
        } else if reps > 1 {
            wrap
        } else {
            NONE
        },
        max_streak: if reps > 1 { a.max_streak.max(wrap - 1) } else { a.max_streak },
        uniform: a.uniform && (reps == 1 || a.gap_count == 0 || a.first_gap == wrap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep::NodeAccum;

    /// Reference: record every attendance offset of `reps` cycles one by one.
    fn replicate_by_record(offsets: &[u64], reps: u64, cycle: u64) -> NodeAccum {
        let mut a = NodeAccum::empty();
        for rep in 0..reps {
            for &o in offsets {
                a.record(rep * cycle + o);
            }
        }
        a
    }

    const CASES: &[(&[u64], u64)] = &[
        (&[0], 4),
        (&[3], 8),
        (&[0, 2, 4, 6], 8),
        (&[1, 4], 6),
        (&[0, 1, 2, 3, 4, 5, 6, 7], 8),
        (&[5, 6], 16),
        (&[], 4),
    ];

    #[test]
    fn replicate_is_bitwise_identical_to_recording_every_offset() {
        for &(offsets, cycle) in CASES {
            for reps in [1u64, 2, 3, 7] {
                let mut one = NodeAccum::empty();
                offsets.iter().for_each(|&o| one.record(o));
                assert_eq!(
                    replicate(&one, reps, cycle),
                    replicate_by_record(offsets, reps, cycle),
                    "offsets {offsets:?}, cycle {cycle}, reps {reps}"
                );
            }
        }
    }

    #[test]
    fn replicate_global_into_matches_the_scalar_rule_per_lane() {
        // All case lanes side by side in one bank, so the masked passes
        // must keep every lane independent (empty lanes included).  The
        // scalar specification is `merge_node(empty, replicate(a))`: the
        // replicated segment folded into an empty global, which also
        // accounts the leading unhappy stretch.
        for reps in [1u64, 2, 3, 7] {
            let cycle = 16u64; // one shared cycle so lanes can coexist
            let mut bank = AccumBank::new(CASES.len());
            let mut expected = Vec::new();
            for (p, &(offsets, _)) in CASES.iter().enumerate() {
                let mut one = NodeAccum::empty();
                for &o in offsets {
                    one.record(o);
                    bank.record(p, o);
                }
                let mut g = NodeAccum::empty();
                sweep::merge_node(&mut g, &replicate(&one, reps, cycle));
                expected.push(g);
            }
            let mut dst = AccumBank::default();
            replicate_global_into(&mut dst, &bank, reps, cycle);
            for (p, e) in expected.iter().enumerate() {
                assert_eq!(&dst.node(p), e, "reps {reps}, lane {p}");
            }
        }
    }

    #[test]
    fn replicate_detects_uniformity_through_the_wrap_gap() {
        // Evenly spaced with a matching wrap: perfectly periodic.
        let mut even = NodeAccum::empty();
        [1u64, 3, 5, 7].iter().for_each(|&o| even.record(o));
        let r = replicate(&even, 4, 8);
        assert!(r.uniform);
        assert_eq!(r.first_gap, 2);

        // Same spacing but a cycle that breaks the wrap gap.
        let r = replicate(&even, 4, 9);
        assert!(!r.uniform, "wrap gap 3 breaks the period-2 candidate");
    }

    #[test]
    fn single_attendance_per_cycle_is_periodic_with_the_cycle() {
        let mut one = NodeAccum::empty();
        one.record(5);
        let r = replicate(&one, 6, 16);
        assert!(r.uniform);
        assert_eq!(r.first_gap, 16);
        assert_eq!(r.gap_count, 5);
        assert_eq!(r.max_streak, 15);
    }

    #[test]
    fn rehydrate_is_content_equal_to_a_checker_build() {
        use crate::schedulers::PeriodicDegreeBound;
        use crate::Scheduler;
        use fhg_graph::generators::erdos_renyi;

        for (n, p, seed) in [(18, 0.2, 1u64), (40, 0.1, 2), (7, 0.5, 3)] {
            let g = erdos_renyi(n, p, seed);
            let s = PeriodicDegreeBound::new(&g);
            let view = s.residue_schedule().expect("perfectly periodic");
            let checker = super::super::GraphChecker::new(&g);
            let built = CycleProfile::build(view, s.first_holiday(), g.node_count(), &checker);
            let rehydrated = CycleProfile::rehydrate(
                view,
                s.first_holiday(),
                g.node_count(),
                built.all_classes_independent(),
            );
            assert!(
                rehydrated.content_eq(&built),
                "rehydrate diverged from build (n={n}, seed={seed})"
            );
            // And the derived analysis is bitwise identical.
            let h = built.cycle() * 3 + 1;
            assert_eq!(built.derive_totals(h), rehydrated.derive_totals(h));
        }
    }

    #[test]
    fn rehydrate_handles_out_of_range_view_nodes_and_nonzero_start() {
        use crate::schedulers::residue::ResidueSchedule;
        use fhg_graph::generators::erdos_renyi;

        // A view with more nodes than the graph: the extra node's attendance
        // still counts toward class sizes but gets no lane, and the verdict
        // is pinned false — exactly what a checker build concludes.
        let g = erdos_renyi(5, 0.4, 9);
        let view = ResidueSchedule::new(vec![0, 1, 0, 3, 2, 1], vec![2, 4, 4, 4, 4, 2]);
        for start in [0u64, 1, 5, 7] {
            let checker = super::super::GraphChecker::new(&g);
            let built = CycleProfile::build(&view, start, g.node_count(), &checker);
            assert!(!built.all_classes_independent(), "out-of-range node must taint");
            let rehydrated = CycleProfile::rehydrate(&view, start, g.node_count(), false);
            assert!(rehydrated.content_eq(&built), "start {start}");
        }
    }

    #[test]
    fn derive_refuses_sub_cycle_horizons_on_both_paths() {
        use crate::schedulers::PeriodicDegreeBound;
        use crate::Scheduler;
        use fhg_graph::generators::erdos_renyi;

        let g = erdos_renyi(24, 0.15, 3);
        let s = PeriodicDegreeBound::new(&g);
        let view = s.residue_schedule().expect("perfectly periodic");
        let checker = super::super::GraphChecker::new(&g);
        let profile = CycleProfile::build(view, s.first_holiday(), g.node_count(), &checker);
        let cycle = profile.cycle();
        assert!(cycle > 1);
        // The fast path must pin the same edge cases as the full derive.
        assert!(profile.derive("x", &g, 0).is_none(), "derive(0)");
        assert!(profile.derive_totals(0).is_none(), "derive_totals(0)");
        assert!(profile.derive("x", &g, cycle - 1).is_none(), "derive(cycle - 1)");
        assert!(profile.derive_totals(cycle - 1).is_none(), "derive_totals(cycle - 1)");
        assert!(profile.derive("x", &g, cycle).is_some(), "derive(cycle)");
        assert!(profile.derive_totals(cycle).is_some(), "derive_totals(cycle)");
    }

    #[test]
    fn replicate_segment_into_matches_recording_every_rebased_offset() {
        // The rebased replicate must equal recording `base + o` for every
        // replicated offset — per lane, empty lanes included.
        for reps in [1u64, 2, 3, 7] {
            for base in [0u64, 1, 5, 64] {
                let cycle = 16u64;
                let mut bank = AccumBank::new(CASES.len());
                let mut expected = Vec::new();
                for (p, &(offsets, _)) in CASES.iter().enumerate() {
                    offsets.iter().for_each(|&o| bank.record(p, o));
                    let mut seq = NodeAccum::empty();
                    for rep in 0..reps {
                        for &o in offsets {
                            seq.record(base + rep * cycle + o);
                        }
                    }
                    expected.push(seq);
                }
                let mut dst = AccumBank::default();
                replicate_segment_into(&mut dst, &bank, reps, cycle, base);
                for (p, e) in expected.iter().enumerate() {
                    assert_eq!(&dst.node(p), e, "reps {reps}, base {base}, lane {p}");
                }
            }
        }
    }

    #[test]
    fn derive_window_pins_the_degenerate_shapes() {
        use crate::schedulers::PeriodicDegreeBound;
        use crate::Scheduler;
        use fhg_graph::generators::erdos_renyi;

        let g = erdos_renyi(24, 0.15, 3);
        let s = PeriodicDegreeBound::new(&g);
        let view = s.residue_schedule().expect("perfectly periodic");
        let checker = super::super::GraphChecker::new(&g);
        let profile = CycleProfile::build(view, s.first_holiday(), g.node_count(), &checker);
        let cycle = profile.cycle();
        assert!(cycle > 1);

        // derive_window(t, t) = the empty analysis, at any anchor.
        for t in [0u64, 1, cycle - 1, cycle, 3 * cycle + 2] {
            let empty = profile.derive_window("w", &g, t, t);
            assert_eq!(empty.horizon, 0);
            assert_eq!(empty.total_happiness, 0);
            assert!(empty.per_node.iter().all(|n| n.happy_count == 0));
            let totals = profile.derive_window_totals(t, t);
            assert_eq!(totals, empty.totals(), "t = {t}");
            // Inverted windows are zero-width too, never a panic.
            let inverted = profile.derive_window_totals(t + 5, t);
            assert_eq!(inverted, totals, "inverted at t = {t}");
        }

        // derive_window(0, h) = derive(h) wherever derive is defined...
        for h in [cycle, cycle + 1, 3 * cycle - 1, 4 * cycle] {
            let classic = profile.derive("w", &g, h).expect("h >= cycle");
            let windowed = profile.derive_window("w", &g, 0, h);
            assert_eq!(windowed.totals(), classic.totals(), "h = {h}");
            assert_eq!(windowed.per_node.len(), classic.per_node.len());
            for (a, b) in windowed.per_node.iter().zip(&classic.per_node) {
                assert_eq!(a.happy_count, b.happy_count, "h = {h}, node {}", a.node);
                assert_eq!(a.max_unhappiness, b.max_unhappiness, "h = {h}, node {}", a.node);
                assert_eq!(a.first_happy, b.first_happy, "h = {h}, node {}", a.node);
                assert_eq!(a.observed_period, b.observed_period, "h = {h}, node {}", a.node);
                assert_eq!(a.mean_gap.to_bits(), b.mean_gap.to_bits(), "h = {h}, node {}", a.node);
            }
            assert_eq!(profile.derive_window_totals(0, h), classic.totals(), "totals h = {h}");
        }

        // ...and stays defined below the cycle, where derive refuses.
        for h in [1u64, cycle / 2, cycle - 1] {
            assert!(profile.derive("w", &g, h).is_none());
            let windowed = profile.derive_window("w", &g, 0, h);
            assert_eq!(windowed.horizon, h);
            assert_eq!(
                windowed.total_happiness,
                profile.happiness_prefix(h),
                "sub-cycle happiness folds through the size prefix (h = {h})"
            );
            assert_eq!(profile.derive_window_totals(0, h), windowed.totals(), "h = {h}");
        }
    }

    #[test]
    fn totals_saturate_instead_of_overflowing_at_the_u64_boundary() {
        use crate::analysis::GraphChecker;
        use fhg_graph::Graph;

        // Four nodes hosting every other holiday: happiness_per_cycle = 4
        // on a cycle of 2, so reps · per_cycle overflows u64 at horizons
        // near u64::MAX and must saturate, while every per-node field stays
        // bounded by the horizon.
        let graph = Graph::new(4);
        let view = ResidueSchedule::new(vec![0, 1, 0, 1], vec![2, 2, 2, 2]);
        let checker = GraphChecker::new(&graph);
        let profile = CycleProfile::build(&view, 0, 4, &checker);
        assert_eq!(profile.happiness_per_cycle(), 4);

        let horizon = u64::MAX;
        let analysis = profile.derive("sat", &graph, horizon).expect("horizon >= cycle");
        assert_eq!(analysis.total_happiness, u64::MAX, "total must saturate, not wrap");
        let n0 = &analysis.per_node[0];
        assert_eq!(n0.happy_count, horizon / 2 + 1, "per-node counts stay exact");
        assert_eq!(n0.observed_period, Some(2));
        let totals = profile.derive_totals(horizon).expect("horizon >= cycle");
        assert_eq!(totals, analysis.totals(), "fast path matches the reduced full derive");
        assert_eq!(totals.total_happiness, u64::MAX);
    }

    #[test]
    fn parallel_build_is_bitwise_identical_across_thread_counts() {
        use crate::schedulers::PeriodicDegreeBound;
        use crate::Scheduler;
        use fhg_graph::generators::erdos_renyi;
        use rayon::ThreadPoolBuilder;

        let g = erdos_renyi(48, 0.12, 11);
        let s = PeriodicDegreeBound::new(&g);
        let view = s.residue_schedule().expect("perfectly periodic");
        let checker = super::super::GraphChecker::new(&g);
        let reference = CycleProfile::build(view, s.first_holiday(), g.node_count(), &checker);
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got = pool
                .install(|| CycleProfile::build(view, s.first_holiday(), g.node_count(), &checker));
            assert_eq!(got.cycle(), reference.cycle());
            assert_eq!(got.all_classes_independent(), reference.all_classes_independent());
            assert_eq!(got.rows, reference.rows, "{threads} threads: attendance rows");
            assert_eq!(got.offsets, reference.offsets, "{threads} threads: attendance offsets");
            assert_eq!(got.size_prefix, reference.size_prefix, "{threads} threads: size prefix");
            assert_eq!(got.bank, reference.bank, "{threads} threads: column bank");
            assert!(got.content_eq(&reference), "{threads} threads: content equality");
        }
    }

    #[test]
    fn crt_class_matches_brute_force() {
        for m1 in 1u64..=12 {
            for m2 in 1u64..=12 {
                for s1 in 0..m1 {
                    for s2 in 0..m2 {
                        let got = crt_class(s1, m1, s2, m2);
                        let lcm = m1 / gcd(m1, m2) * m2;
                        let brute: Vec<u64> =
                            (0..2 * lcm).filter(|t| t % m1 == s1 && t % m2 == s2).collect();
                        match got {
                            None => assert!(
                                brute.is_empty(),
                                "({s1} mod {m1}, {s2} mod {m2}): CRT says never, brute {brute:?}"
                            ),
                            Some((t0, l)) => {
                                assert_eq!(l, lcm);
                                assert!(t0 < l, "first solution must be canonical");
                                assert_eq!(
                                    brute,
                                    vec![t0, t0 + l],
                                    "({s1} mod {m1}, {s2} mod {m2})"
                                );
                            }
                        }
                    }
                }
            }
        }
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
    }

    #[test]
    fn patch_tracks_a_row_change_like_a_rebuild() {
        use crate::analysis::GraphChecker;
        use fhg_graph::Graph;

        // A small schedule whose cycle (12) survives moving nodes between
        // the moduli {2, 3, 4, 6, 12}; the edgeless graph keeps every
        // verification green so the structural repair is what's compared.
        let g = Graph::new(6);
        let checker = GraphChecker::new(&g);
        let mut view = ResidueSchedule::new(vec![0, 1, 2, 3, 0, 5], vec![2, 3, 4, 6, 12, 12]);
        let mut profile = CycleProfile::build(&view, 1, 6, &checker);
        let mut scratch = PatchScratch::new();

        // A sequence of row moves, including same-length (4 -> 4 via slot
        // change), shrinking (2 -> 6) and growing (12 -> 3) rows.
        let moves: &[(usize, u64, u64)] =
            &[(2, 1, 4), (0, 1, 6), (5, 2, 3), (0, 0, 2), (3, 1, 4), (5, 0, 12)];
        for &(p, slot, m) in moves {
            let change = RowChange {
                node: p,
                old_slot: view.slot(p),
                old_modulus: view.modulus(p),
                new_slot: slot,
                new_modulus: m,
            };
            view.set_row(p, slot, m);
            assert_eq!(view.cycle(), 12, "moves must preserve the cycle");
            let stats =
                profile.patch(&view, &[change], None, &checker, &mut scratch).expect("same cycle");
            assert_eq!(stats.lanes_patched, 1);
            let rebuilt = CycleProfile::build(&view, 1, 6, &checker);
            assert!(
                profile.content_eq(&rebuilt),
                "patched profile diverged from rebuild after moving node {p} to {slot} mod {m}"
            );
        }
    }

    #[test]
    fn patch_refuses_cycle_changes_and_broken_verdicts() {
        use crate::analysis::GraphChecker;
        use fhg_graph::generators::structured::path;

        let g = path(3);
        let checker = GraphChecker::new(&g);
        let view = ResidueSchedule::new(vec![0, 1, 0], vec![2, 2, 4]);
        let mut profile = CycleProfile::build(&view, 0, 3, &checker);
        let mut scratch = PatchScratch::new();

        // A view whose cycle differs from the profiled one.
        let stretched = ResidueSchedule::new(vec![0, 1, 0], vec![2, 2, 8]);
        let refusal = profile.patch(&stretched, &[], None, &checker, &mut scratch);
        assert_eq!(refusal, Err(PatchRefused::CycleChanged { old: 4, new: 8 }));

        // A profile whose verdict is already false: adjacent path nodes 0
        // and 1 share the row 0 mod 2, so every even class conflicts.
        let clashing = ResidueSchedule::new(vec![0, 0, 1], vec![2, 2, 4]);
        let mut broken = CycleProfile::build(&clashing, 0, 3, &checker);
        assert!(!broken.all_classes_independent());
        let refusal = broken.patch(&clashing, &[], None, &checker, &mut scratch);
        assert_eq!(refusal, Err(PatchRefused::NotIndependent));
        assert!(format!("{}", refusal.unwrap_err()).contains("rebuild"));
    }

    #[test]
    fn patch_detects_freshly_conflicting_classes_via_the_inserted_edge() {
        use crate::analysis::GraphChecker;
        use fhg_graph::Graph;

        // Nodes 0 and 1 co-attend every 6th holiday (0 mod 2 ∩ 0 mod 3).
        let mut g = Graph::new(2);
        let view = ResidueSchedule::new(vec![0, 0], vec![2, 3]);
        let checker = GraphChecker::new(&g);
        let mut profile = CycleProfile::build(&view, 0, 2, &checker);
        assert!(profile.all_classes_independent(), "no edges yet");
        let mut scratch = PatchScratch::new();

        // Insert the edge without any recoloring (no row changes): the
        // repair must find the co-attendance classes by CRT and flip the
        // verdict, exactly as a rebuild against the new graph would.
        g.add_edge(0, 1).unwrap();
        let post_checker = GraphChecker::new(&g);
        let stats = profile
            .patch(&view, &[], Some((0, 1)), &post_checker, &mut scratch)
            .expect("cycle unchanged");
        assert_eq!(stats.classes_verified, 1, "one co-attendance class in a cycle of 6");
        assert!(!profile.all_classes_independent());
        let rebuilt = CycleProfile::build(&view, 0, 2, &post_checker);
        assert!(profile.content_eq(&rebuilt));
    }

    #[test]
    fn patch_compaction_keeps_every_row_intact() {
        use crate::analysis::GraphChecker;
        use fhg_graph::Graph;

        // Bounce one node between a 12-row and a 2-row progression until
        // retired rows outweigh live ones and compaction kicks in; the
        // profile must stay identical to a rebuild throughout.
        let g = Graph::new(4);
        let checker = GraphChecker::new(&g);
        let mut view = ResidueSchedule::new(vec![0, 1, 2, 3], vec![12, 12, 12, 12]);
        let mut profile = CycleProfile::build(&view, 0, 4, &checker);
        let mut scratch = PatchScratch::new();
        for round in 0..6u64 {
            let m = if round % 2 == 0 { 2 } else { 12 };
            let change = RowChange {
                node: 0,
                old_slot: view.slot(0),
                old_modulus: view.modulus(0),
                new_slot: round % 2,
                new_modulus: m,
            };
            view.set_row(0, round % 2, m);
            profile.patch(&view, &[change], None, &checker, &mut scratch).expect("cycle fixed");
            let rebuilt = CycleProfile::build(&view, 0, 4, &checker);
            assert!(profile.content_eq(&rebuilt), "round {round}");
        }
        assert!(
            profile.garbage * 2 <= profile.offsets.len(),
            "compaction must keep retired entries at most half the arena"
        );
    }
}
