//! Closed-form cycle analytics: profile each residue class once, derive the
//! whole horizon.
//!
//! A perfectly periodic schedule repeats with period `C =`
//! [`ResidueSchedule::cycle`]: the happy set of holiday `t` depends only on
//! `t mod C`, so every statistic of an arbitrarily long horizon is already
//! determined by **one cycle** of happy sets.  A [`CycleProfile`] walks that
//! single cycle — through the no-re-fill enumerator
//! [`ResidueSchedule::classes`] — and records, per node, its attendance
//! pattern: count per cycle, first/last offsets, internal gap structure, and
//! the explicit attendance-offset list (the gap multiset in CSR form).  Each
//! residue class is independence-verified exactly once during that walk, the
//! same promise the sharded engine's residue cache makes (locked down by
//! `tests/residue_cache.rs`).
//!
//! [`CycleProfile::derive`] then produces the [`ScheduleAnalysis`] of any
//! horizon `h ≥ C` without touching the schedule again:
//!
//! * the `h / C` full repetitions are folded **analytically** — counts scale
//!   by the repetition count, the per-cycle internal gaps replicate, and the
//!   wrap-around gap between consecutive cycles (`C - last + first`)
//!   contributes `h/C - 1` boundary gaps to the sums, streaks and the
//!   period-uniformity check;
//! * the ragged tail of `h mod C` offsets is replayed from the stored
//!   attendance offsets (no emission, no verification — those classes were
//!   already profiled) and merged with the exact segment rule
//!   ([`super::sweep::merge_node`]).
//!
//! Because replication and tail replay compose through the same integer
//! arithmetic as the sequential sweep, the derived analysis is
//! **bitwise-identical** to [`super::analyze_schedule_reference`] at every
//! horizon — the parity property `tests/analysis_parity.rs` locks down.  The
//! cost is `O(C)` emissions plus `O(n + attendance)` derivation, independent
//! of the horizon: a 1M-holiday analysis costs the same as a 4096-holiday
//! one (experiment `e12`).

use fhg_graph::{Graph, NodeId};

use super::checker::HolidayChecker;
use super::sweep::{self, NodeAccum, NONE};
use super::ScheduleAnalysis;
use crate::schedulers::residue::ResidueSchedule;

/// A word-wise profile of one full residue cycle: per-node attendance
/// patterns plus the per-class verification verdict, sufficient to derive
/// the analysis of any horizon of at least one cycle in closed form.
pub struct CycleProfile {
    /// First holiday of the profiled cycle (the scheduler's
    /// [`first_holiday`](crate::scheduler::Scheduler::first_holiday)).
    start: u64,
    /// The schedule's cycle length `C`.
    cycle: u64,
    /// Number of graph nodes tracked (attendance of out-of-range nodes is
    /// flagged as non-independent and excluded, like the sweep engines do).
    node_count: usize,
    /// Per-node accumulator over the one profiled cycle (offsets relative to
    /// the cycle start).
    per_node: Vec<NodeAccum>,
    /// CSR starts into `offsets`, one entry per node plus a sentinel.
    starts: Vec<usize>,
    /// Attendance offsets within the cycle, ascending per node.
    offsets: Vec<u64>,
    /// Prefix sums of the per-class happy-set sizes (`size_prefix[k]` = total
    /// happiness of the first `k` classes), so ragged tails fold exactly.
    size_prefix: Vec<u64>,
    /// Whether every residue class passed its independence check.
    all_independent: bool,
}

impl CycleProfile {
    /// Largest cycle the profile will materialise: the per-class size
    /// prefix and the cycle walk itself are `O(cycle)`.
    /// [`super::AnalysisEngine::select`] enforces this bound (astronomical
    /// cycles — saturated lcms — stay on the sharded sweep).
    pub const MAX_CYCLE: u64 = 1 << 22;

    /// Largest total attendance (`Σ_p cycle / modulus_p`, the stored
    /// offset-CSR entries) the profile will materialise — the quantity that
    /// actually dominates profile memory.  A hub-and-spoke degree
    /// distribution can pack `n · cycle / 2` attendances into a short
    /// cycle, which must fall back to the `O(n)`-memory sharded sweep;
    /// [`super::AnalysisEngine::select`] budgets on
    /// [`ResidueSchedule::attendance_per_cycle`] before picking the closed
    /// form.
    pub const MAX_EVENTS: u64 = 1 << 24;

    /// Profiles one full cycle of `view` starting at holiday `start`,
    /// verifying each residue class exactly once through `checker`.
    ///
    /// `node_count` is the conflict graph's node count: attendance of nodes
    /// at or beyond it marks the schedule non-independent (mirroring the
    /// sweep engines) and is excluded from the per-node patterns.
    ///
    /// # Panics
    /// Panics if the cycle exceeds [`CycleProfile::MAX_CYCLE`].
    pub fn build<C: HolidayChecker + ?Sized>(
        view: &ResidueSchedule,
        start: u64,
        node_count: usize,
        checker: &C,
    ) -> Self {
        let cycle = view.cycle();
        assert!(
            cycle <= Self::MAX_CYCLE,
            "cycle {cycle} exceeds the profile budget ({})",
            Self::MAX_CYCLE
        );
        let n = node_count;
        let mut per_node = vec![NodeAccum::empty(); n];
        let mut events: Vec<(NodeId, u64)> = Vec::new();
        let mut size_prefix = Vec::with_capacity(cycle as usize + 1);
        size_prefix.push(0u64);
        let mut all_independent = true;
        let mut running = 0u64;
        let mut classes = view.classes(start);
        while let Some((t, happy)) = classes.next_class() {
            let offset = t - start;
            if all_independent && !checker.check(t, happy.as_bitset()) {
                all_independent = false;
            }
            running += happy.len() as u64;
            size_prefix.push(running);
            // Attendance recording through the set-bit extraction kernel:
            // one trailing_zeros word scan per class, no iterator chain.
            happy.for_each(|p| {
                if p >= n {
                    all_independent = false;
                    return;
                }
                per_node[p].record(offset);
                events.push((p, offset));
            });
        }

        // Counting-sort the (node, offset) events into per-node CSR rows.
        // Events arrive offset-major, so within each node the offsets stay
        // ascending.
        let mut starts = Vec::with_capacity(n + 1);
        starts.push(0usize);
        for a in &per_node {
            starts.push(starts.last().unwrap() + a.happy as usize);
        }
        let mut cursor = starts.clone();
        let mut offsets = vec![0u64; events.len()];
        for (p, o) in events {
            offsets[cursor[p]] = o;
            cursor[p] += 1;
        }

        CycleProfile {
            start,
            cycle,
            node_count: n,
            per_node,
            starts,
            offsets,
            size_prefix,
            all_independent,
        }
    }

    /// The profiled cycle length.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// First holiday of the profiled cycle.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of nodes the profile tracks.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Whether every residue class passed its independence check.
    pub fn all_classes_independent(&self) -> bool {
        self.all_independent
    }

    /// How many holidays per cycle node `p` attends.
    pub fn count_per_cycle(&self, p: NodeId) -> u64 {
        self.per_node[p].happy
    }

    /// The offsets (within the cycle, ascending) at which node `p` attends.
    pub fn attendance_offsets(&self, p: NodeId) -> &[u64] {
        &self.offsets[self.starts[p]..self.starts[p + 1]]
    }

    /// The gap multiset of node `p` over the infinite periodic schedule: the
    /// internal gaps between consecutive attendances within a cycle, plus the
    /// wrap-around gap into the next cycle.  Empty for nodes that never
    /// attend.
    pub fn gaps(&self, p: NodeId) -> impl Iterator<Item = u64> + '_ {
        let offs = self.attendance_offsets(p);
        let wrap = offs.last().map(|&last| self.cycle - last + offs[0]);
        offs.windows(2).map(|w| w[1] - w[0]).chain(wrap)
    }

    /// Total happy appearances over one full cycle (out-of-range members
    /// included, matching the sweep's accounting).
    pub fn happiness_per_cycle(&self) -> u64 {
        self.size_prefix[self.cycle as usize]
    }

    /// Derives the full [`ScheduleAnalysis`] of `horizon` holidays in closed
    /// form.  Returns `None` when `horizon < cycle` (no full repetition to
    /// fold — callers fall back to a sweep engine).
    pub fn derive(&self, scheduler: &str, graph: &Graph, horizon: u64) -> Option<ScheduleAnalysis> {
        let (global, all_independent, total_happiness) = self.derive_accums(horizon)?;
        Some(sweep::finalize(
            scheduler.to_string(),
            horizon,
            graph,
            global,
            all_independent,
            total_happiness,
        ))
    }

    /// The closed-form core: merged global accumulators plus the scalar
    /// verdicts for `horizon` holidays.
    fn derive_accums(&self, horizon: u64) -> Option<(Vec<NodeAccum>, bool, u64)> {
        if horizon < self.cycle {
            return None;
        }
        let reps = horizon / self.cycle;
        let tail = horizon % self.cycle;
        let base = reps * self.cycle;
        let mut global = Vec::with_capacity(self.node_count);
        for p in 0..self.node_count {
            let mut g = NodeAccum::empty();
            sweep::merge_node(&mut g, &replicate(&self.per_node[p], reps, self.cycle));
            if tail > 0 {
                sweep::merge_node(&mut g, &self.tail_accum(p, tail, base));
            }
            global.push(g);
        }
        // Per-node fields cannot overflow (each is bounded by the horizon),
        // but the whole-schedule total is `n`-fold larger; saturate rather
        // than wrap on horizons beyond ~10^16 (the sweep engines could never
        // reach them to compare against anyway).
        let total_happiness = reps
            .saturating_mul(self.happiness_per_cycle())
            .saturating_add(self.size_prefix[tail as usize]);
        Some((global, self.all_independent, total_happiness))
    }

    /// Segment accumulator of the ragged tail: node `p`'s attendances at
    /// cycle offsets `< tail`, replayed from the stored offsets and shifted
    /// to absolute offsets starting at `base`.
    fn tail_accum(&self, p: NodeId, tail: u64, base: u64) -> NodeAccum {
        let mut a = NodeAccum::empty();
        for &o in self.attendance_offsets(p) {
            if o >= tail {
                break;
            }
            a.record(o);
        }
        if a.happy > 0 {
            // Gaps and streaks are shift-invariant; only the endpoints move.
            a.first += base;
            a.last += base;
        }
        a
    }
}

/// Analytically replicates a one-cycle accumulator over `reps` consecutive
/// cycles of length `cycle`, producing exactly the segment accumulator a
/// sequential [`NodeAccum::record`] pass over all `reps · count` attendance
/// offsets would: internal gaps repeat `reps` times, and the `reps - 1`
/// cycle boundaries each contribute the wrap-around gap
/// `cycle - last + first`.
fn replicate(a: &NodeAccum, reps: u64, cycle: u64) -> NodeAccum {
    if a.happy == 0 || reps == 0 {
        return NodeAccum::empty();
    }
    let wrap = cycle - a.last + a.first;
    NodeAccum {
        first: a.first,
        last: (reps - 1) * cycle + a.last,
        happy: reps * a.happy,
        gap_sum: reps * a.gap_sum + (reps - 1) * wrap,
        gap_count: reps * a.gap_count + (reps - 1),
        first_gap: if a.gap_count > 0 {
            a.first_gap
        } else if reps > 1 {
            wrap
        } else {
            NONE
        },
        max_streak: if reps > 1 { a.max_streak.max(wrap - 1) } else { a.max_streak },
        uniform: a.uniform && (reps == 1 || a.gap_count == 0 || a.first_gap == wrap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: record every attendance offset of `reps` cycles one by one.
    fn replicate_by_record(offsets: &[u64], reps: u64, cycle: u64) -> NodeAccum {
        let mut a = NodeAccum::empty();
        for rep in 0..reps {
            for &o in offsets {
                a.record(rep * cycle + o);
            }
        }
        a
    }

    #[test]
    fn replicate_is_bitwise_identical_to_recording_every_offset() {
        let cases: &[(&[u64], u64)] = &[
            (&[0], 4),
            (&[3], 8),
            (&[0, 2, 4, 6], 8),
            (&[1, 4], 6),
            (&[0, 1, 2, 3, 4, 5, 6, 7], 8),
            (&[5, 6], 16),
            (&[], 4),
        ];
        for &(offsets, cycle) in cases {
            for reps in [1u64, 2, 3, 7] {
                let mut one = NodeAccum::empty();
                offsets.iter().for_each(|&o| one.record(o));
                assert_eq!(
                    replicate(&one, reps, cycle),
                    replicate_by_record(offsets, reps, cycle),
                    "offsets {offsets:?}, cycle {cycle}, reps {reps}"
                );
            }
        }
    }

    #[test]
    fn replicate_detects_uniformity_through_the_wrap_gap() {
        // Evenly spaced with a matching wrap: perfectly periodic.
        let mut even = NodeAccum::empty();
        [1u64, 3, 5, 7].iter().for_each(|&o| even.record(o));
        let r = replicate(&even, 4, 8);
        assert!(r.uniform);
        assert_eq!(r.first_gap, 2);

        // Same spacing but a cycle that breaks the wrap gap.
        let r = replicate(&even, 4, 9);
        assert!(!r.uniform, "wrap gap 3 breaks the period-2 candidate");
    }

    #[test]
    fn single_attendance_per_cycle_is_periodic_with_the_cycle() {
        let mut one = NodeAccum::empty();
        one.record(5);
        let r = replicate(&one, 6, 16);
        assert!(r.uniform);
        assert_eq!(r.first_gap, 16);
        assert_eq!(r.gap_count, 5);
        assert_eq!(r.max_streak, 15);
    }
}
