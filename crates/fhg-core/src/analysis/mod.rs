//! Schedule analysis: measuring `mul`, periodicity, fairness and validity.
//!
//! [`analyze_schedule`] drives a scheduler over a finite horizon and records,
//! for every node, the quantities the paper's theorems bound:
//!
//! * the **maximum unhappiness streak** — the longest run of consecutive
//!   holidays with no happy appearance (Definition 2.2's `mul`, measured as
//!   the streak length, so a perfectly periodic node of period `π` has streak
//!   `π - 1`);
//! * the **observed period** — `Some(π)` when every gap between consecutive
//!   happy holidays equals `π` (the perfect-periodicity check of §4/§5);
//! * happiness counts and first-happiness times, used for the fairness
//!   comparisons against the `1/(deg+1)` landmark of §1.
//!
//! The analysis also verifies that every happy set produced is an
//! independent set of the conflict graph — the correctness requirement of
//! Definition 2.1.
//!
//! # Execution engines
//!
//! The pipeline is split into three engines, selected per call by
//! [`AnalysisEngine::select`] from the scheduler's
//! [`residue_schedule`](crate::scheduler::Scheduler::residue_schedule) view
//! and the horizon:
//!
//! * [`AnalysisEngine::ClosedForm`] ([`profile`]) — for perfectly periodic
//!   schedulers whenever the horizon spans at least one full cycle: each
//!   residue class `t mod cycle` is emitted, verified and profiled **once**,
//!   and the whole horizon is derived analytically from the per-node
//!   attendance patterns (`horizon / cycle` repetitions folded in closed
//!   form, the ragged `horizon % cycle` tail replayed from the profile).
//!   Cost: `O(cycle)` emissions + `O(n)` derivation — independent of the
//!   horizon.
//! * [`AnalysisEngine::ShardedSweep`] ([`sweep`]) — for periodic schedulers
//!   whose horizon is shorter than one cycle (or whose cycle exceeds the
//!   profile budget): the horizon is split into one contiguous shard per
//!   worker thread ([`rayon::current_num_threads`], the `FHG_THREADS` knob),
//!   each shard sweeps with private scratch, independence is verified once
//!   per residue class, and segment summaries merge exactly.
//! * [`AnalysisEngine::Sequential`] — for stateful schedulers (no residue
//!   view): a single fully-verified sweep through
//!   [`Scheduler::fill_happy_set`], also exposed as
//!   [`analyze_schedule_reference`] for differential testing.
//!
//! All three engines produce **bitwise-identical** [`ScheduleAnalysis`]
//! values — gap sums, streaks, period candidates and float statistics
//! compose with pure integer arithmetic regardless of how the horizon was
//! partitioned (locked down by `tests/analysis_parity.rs` across thread
//! counts and ragged horizons).  Independence checking itself is behind the
//! [`checker`] module's [`HolidayChecker`] trait so tests can observe which
//! holidays each engine probes (`tests/residue_cache.rs`); the closed-form
//! build and the sharded sweep hand their classes to the checker in batches
//! of up to 64 ([`HolidayChecker::check_batch`]), so a [`GraphChecker`]
//! verifies a whole batch per adjacency-row pass without changing the
//! once-per-class probe contract.
//!
//! The production accumulation plane is the struct-of-arrays column bank of
//! the [`sweep`] module (the Sequential engine deliberately stays on the
//! scalar array-of-structs reference), which also powers the totals-only
//! fast path: [`analyze_schedule_totals`] returns the whole-schedule
//! aggregates ([`AnalysisTotals`]) without per-node assembly or float
//! finalisation whenever the closed form applies, and always equals
//! `analyze_schedule(..).totals()`.

mod checker;
mod profile;
mod sweep;

pub use checker::{
    dense_limit, GraphChecker, HolidayChecker, ScanChecker, BLOCKED_ADJACENCY_LIMIT,
    DENSE_ADJACENCY_LIMIT,
};
pub use profile::{CycleProfile, DeriveScratch, PatchRefused, PatchScratch, PatchStats};

use fhg_graph::{Graph, NodeId};
use rayon::prelude::*;

use crate::scheduler::Scheduler;
use crate::schedulers::residue::ResidueSchedule;

/// Per-node measurements over the analysed horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnalysis {
    /// The node.
    pub node: NodeId,
    /// Its degree in the conflict graph.
    pub degree: usize,
    /// Number of holidays (within the horizon) at which the node was happy.
    pub happy_count: u64,
    /// Longest run of consecutive holidays with no happiness (including the
    /// stretches before the first and after the last happy holiday).
    pub max_unhappiness: u64,
    /// Exact period if every gap between consecutive happy holidays is equal
    /// (requires at least two happy holidays).
    pub observed_period: Option<u64>,
    /// Offset (from the start of the horizon) of the first happy holiday.
    pub first_happy: Option<u64>,
    /// Mean gap between consecutive happy holidays (`NaN` if fewer than two).
    pub mean_gap: f64,
}

/// Whole-schedule measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAnalysis {
    /// Name of the analysed scheduler.
    pub scheduler: String,
    /// Number of holidays simulated.
    pub horizon: u64,
    /// Per-node measurements, indexed by node id.
    pub per_node: Vec<NodeAnalysis>,
    /// Whether every happy set produced was an independent set of the graph.
    pub all_happy_sets_independent: bool,
    /// Nodes that were never happy within the horizon.
    pub never_happy: Vec<NodeId>,
    /// Mean happy-set size per holiday.
    pub mean_happy_set_size: f64,
    /// Total happy appearances across all nodes and holidays.
    pub total_happiness: u64,
}

/// Whole-schedule aggregates without the per-node breakdown — what the
/// totals-only fast path ([`CycleProfile::derive_totals`],
/// [`analyze_schedule_totals`]) produces by skipping the `NodeAnalysis`
/// assembly and per-node float finalisation entirely.  Always equal to the
/// same aggregates reduced from a full [`ScheduleAnalysis`]
/// ([`ScheduleAnalysis::totals`]), which the parity suite pins.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisTotals {
    /// Number of holidays analysed.
    pub horizon: u64,
    /// Total happy appearances across all nodes and holidays (saturating
    /// at astronomical horizons).
    pub total_happiness: u64,
    /// Mean happy-set size per holiday.
    pub mean_happy_set_size: f64,
    /// The largest unhappiness streak over all nodes.
    pub max_unhappiness: u64,
    /// Whether every node's observed behaviour is perfectly periodic.
    pub all_periodic: bool,
    /// Number of nodes that were never happy within the horizon.
    pub never_happy: u64,
    /// Whether every happy set produced was an independent set.
    pub all_happy_sets_independent: bool,
}

impl ScheduleAnalysis {
    /// The largest unhappiness streak over all nodes.
    pub fn max_unhappiness(&self) -> u64 {
        self.per_node.iter().map(|n| n.max_unhappiness).max().unwrap_or(0)
    }

    /// Reduces this analysis to its whole-schedule aggregates — the view
    /// the totals-only fast path computes directly.
    pub fn totals(&self) -> AnalysisTotals {
        AnalysisTotals {
            horizon: self.horizon,
            total_happiness: self.total_happiness,
            mean_happy_set_size: self.mean_happy_set_size,
            max_unhappiness: self.max_unhappiness(),
            all_periodic: self.all_periodic(),
            never_happy: self.never_happy.len() as u64,
            all_happy_sets_independent: self.all_happy_sets_independent,
        }
    }

    /// Whether every node's observed behaviour is perfectly periodic.
    pub fn all_periodic(&self) -> bool {
        self.per_node.iter().all(|n| n.observed_period.is_some())
    }

    /// Nodes whose measured unhappiness streak reaches or exceeds the
    /// scheduler's claimed bound (i.e. a window of `bound` consecutive
    /// holidays containing no happy one), indicating a violated guarantee.
    pub fn bound_violations<S: Scheduler + ?Sized>(&self, scheduler: &S) -> Vec<NodeId> {
        self.per_node
            .iter()
            .filter(|n| {
                scheduler.unhappiness_bound(n.node).is_some_and(|bound| n.max_unhappiness >= bound)
            })
            .map(|n| n.node)
            .collect()
    }

    /// Jain's fairness index of the degree-normalised happiness rates
    /// `happy_count · (deg + 1) / horizon`.  A value of 1 means every parent
    /// is happy exactly in proportion to the `1/(deg+1)` landmark of §1.
    pub fn jain_fairness(&self) -> f64 {
        if self.per_node.is_empty() || self.horizon == 0 {
            return 1.0;
        }
        let rates: Vec<f64> = self
            .per_node
            .iter()
            .map(|n| n.happy_count as f64 * (n.degree as f64 + 1.0) / self.horizon as f64)
            .collect();
        let sum: f64 = rates.iter().sum();
        let sum_sq: f64 = rates.iter().map(|r| r * r).sum();
        if sum_sq == 0.0 {
            return 0.0;
        }
        sum * sum / (rates.len() as f64 * sum_sq)
    }
}

/// The execution strategy the analysis pipeline runs a horizon on.
///
/// [`AnalysisEngine::select`] picks the cheapest sound strategy for a
/// scheduler/horizon pair; [`analyze_schedule_with_engine`] lets benchmarks
/// and differential tests force a specific one (downgrading when the request
/// is unsound for the scheduler at hand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisEngine {
    /// Profile each residue class once, derive the horizon in closed form
    /// (periodic schedulers, `horizon >= cycle`,
    /// `cycle <=` [`CycleProfile::MAX_CYCLE`]).
    ClosedForm,
    /// Shard the horizon across worker threads, verify once per residue
    /// class (periodic schedulers).
    ShardedSweep,
    /// Single fully-verified sequential sweep (stateful schedulers).
    Sequential,
}

impl AnalysisEngine {
    /// The strategy [`analyze_schedule`] will use for `scheduler` over
    /// `horizon`.
    pub fn select<S: Scheduler + ?Sized>(scheduler: &S, horizon: u64) -> Self {
        match scheduler.residue_schedule() {
            Some(view) if Self::closed_form_applies(view, horizon) => AnalysisEngine::ClosedForm,
            Some(_) => AnalysisEngine::ShardedSweep,
            None => AnalysisEngine::Sequential,
        }
    }

    /// Whether the closed-form engine is sound and within budget for `view`
    /// over `horizon`: at least one full cycle to fold, a cycle the profile
    /// may walk, and a per-cycle attendance volume (the stored offset CSR —
    /// the quantity that actually dominates profile memory) the profile may
    /// materialise.  Hub-and-spoke degree distributions can pack
    /// `n · cycle / 2` attendances into a short cycle; those stay on the
    /// `O(n)`-memory sharded sweep.
    fn closed_form_applies(view: &ResidueSchedule, horizon: u64) -> bool {
        let cycle = view.cycle();
        horizon >= cycle
            && cycle <= CycleProfile::MAX_CYCLE
            && view.attendance_per_cycle() <= CycleProfile::MAX_EVENTS
    }

    /// Downgrades `self` to the nearest strategy that is sound for
    /// `scheduler` over `horizon` (`ClosedForm -> ShardedSweep ->
    /// Sequential`).
    fn clamp<S: Scheduler + ?Sized>(self, scheduler: &S, horizon: u64) -> Self {
        match self {
            AnalysisEngine::ClosedForm => Self::select(scheduler, horizon),
            AnalysisEngine::ShardedSweep if scheduler.residue_schedule().is_some() => {
                AnalysisEngine::ShardedSweep
            }
            _ => AnalysisEngine::Sequential,
        }
    }
}

/// Runs `scheduler` for `horizon` holidays (starting at its
/// [`Scheduler::first_holiday`]) and measures every quantity above, on the
/// engine [`AnalysisEngine::select`] picks (see the module docs).
pub fn analyze_schedule<S: Scheduler + ?Sized>(
    graph: &Graph,
    scheduler: &mut S,
    horizon: u64,
) -> ScheduleAnalysis {
    analyze_schedule_with_checker(graph, scheduler, horizon, &GraphChecker::new(graph))
}

/// Like [`analyze_schedule`], but verifying independence through a custom
/// [`HolidayChecker`] — the instrumentation point the residue-cache tests use
/// to prove each residue class is checked exactly once.
pub fn analyze_schedule_with_checker<S, C>(
    graph: &Graph,
    scheduler: &mut S,
    horizon: u64,
    checker: &C,
) -> ScheduleAnalysis
where
    S: Scheduler + ?Sized,
    C: HolidayChecker + ?Sized,
{
    let engine = AnalysisEngine::select(scheduler, horizon);
    analyze_schedule_with_engine(graph, scheduler, horizon, checker, engine)
}

/// Like [`analyze_schedule_with_checker`], but forcing a specific
/// [`AnalysisEngine`] — the entry point benchmarks (experiment `e12`) and
/// differential tests use to compare strategies on the same scheduler.  The
/// request is downgraded (`ClosedForm -> ShardedSweep -> Sequential`) when
/// it is unsound for the scheduler/horizon at hand, so the result is always
/// well-defined and bitwise-identical across engines.
pub fn analyze_schedule_with_engine<S, C>(
    graph: &Graph,
    scheduler: &mut S,
    horizon: u64,
    checker: &C,
    engine: AnalysisEngine,
) -> ScheduleAnalysis
where
    S: Scheduler + ?Sized,
    C: HolidayChecker + ?Sized,
{
    let n = graph.node_count();
    let start = scheduler.first_holiday();
    match engine.clamp(scheduler, horizon) {
        // The residue-view arms re-check the view instead of unwrapping:
        // `clamp` guarantees it exists, but a scheduler that mis-reports
        // its periodicity must degrade to the sequential sweep, not crash
        // the process (the serving tier additionally rejects such
        // schedulers up front with a typed `RegisterError`).
        AnalysisEngine::ClosedForm if scheduler.residue_schedule().is_some() => {
            let view = scheduler.residue_schedule().expect("checked in the match guard");
            let profile = CycleProfile::build(view, start, n, checker);
            // The windowed fold anchored at 0: identical to `derive` for
            // every clamped horizon (>= cycle), and total — no horizon can
            // panic it.
            profile.derive_window(scheduler.name(), graph, 0, horizon)
        }
        AnalysisEngine::ShardedSweep if scheduler.residue_schedule().is_some() => {
            let view = scheduler.residue_schedule().expect("checked in the match guard");
            // Pure function of t: shard the horizon across worker threads and
            // verify each residue class exactly once.  The per-shard column
            // banks merge through the exact column-kernel rule.
            let verify_below = view.cycle().min(horizon);
            let threads = rayon::current_num_threads().max(1);
            let mut shards: Vec<sweep::BankSweep> = sweep::split_offsets(horizon, threads)
                .into_iter()
                .map(|offsets| {
                    sweep::BankSweep::new(n, scheduler.node_count(), offsets, verify_below)
                })
                .collect();
            shards
                .par_iter_mut()
                .for_each(|shard| shard.sweep(start, n, checker, |t, out| view.fill(t, out)));
            let mut cols = sweep::ColumnScratch::new();
            let (mut bank, all_independent, total_happiness) =
                sweep::merge_bank_shards(n, &shards, &mut cols);
            sweep::finalize_bank(
                scheduler.name().to_string(),
                horizon,
                graph,
                &mut bank,
                all_independent,
                total_happiness,
                &mut cols,
            )
        }
        _ => {
            // Stateful scheduler (or a residue-view arm whose guard failed):
            // single sequential sweep, every holiday verified — on the
            // deliberately independent array-of-structs reference plane
            // (see the sweep module docs).
            let name = scheduler.name().to_string();
            let mut shard =
                sweep::ReferenceSweep::new(n, scheduler.node_count(), 0..horizon, horizon);
            shard.sweep(start, n, checker, |t, out| scheduler.fill_happy_set(t, out));
            let (global, all_independent, total_happiness) = sweep::merge_shards(n, vec![shard]);
            sweep::finalize(name, horizon, graph, global, all_independent, total_happiness)
        }
    }
}

/// The totals-only entry point: whole-schedule aggregates of `horizon`
/// holidays, on the cheapest sound path.  When the closed-form engine
/// applies, the per-node assembly and float finalisation are skipped
/// entirely ([`CycleProfile::derive_totals`]); otherwise the full analysis
/// runs and is reduced — so the result always equals
/// `analyze_schedule(..).totals()` (pinned by the parity suite).
pub fn analyze_schedule_totals<S: Scheduler + ?Sized>(
    graph: &Graph,
    scheduler: &mut S,
    horizon: u64,
) -> AnalysisTotals {
    let checker = GraphChecker::new(graph);
    match AnalysisEngine::select(scheduler, horizon) {
        // Re-checked (not unwrapped) for the same reason as the full
        // analysis dispatch: a mis-reporting scheduler degrades, never
        // crashes.
        AnalysisEngine::ClosedForm if scheduler.residue_schedule().is_some() => {
            let n = graph.node_count();
            let start = scheduler.first_holiday();
            let view = scheduler.residue_schedule().expect("checked in the match guard");
            let profile = CycleProfile::build(view, start, n, &checker);
            // Total windowed fold anchored at 0 — equal to `derive_totals`
            // for every selected horizon (>= cycle).
            profile.derive_window_totals(0, horizon)
        }
        engine => {
            analyze_schedule_with_engine(graph, scheduler, horizon, &checker, engine).totals()
        }
    }
}

/// The sequential reference analysis: single-threaded, no residue cache, no
/// closed form, every holiday's independence verified, emission through
/// [`Scheduler::fill_happy_set`].  Exists so the property suite can assert
/// the production engines are bitwise-identical to it, and so benchmarks can
/// measure the engines against the unsharded, uncached baseline.
pub fn analyze_schedule_reference<S: Scheduler + ?Sized>(
    graph: &Graph,
    scheduler: &mut S,
    horizon: u64,
) -> ScheduleAnalysis {
    analyze_schedule_with_engine(
        graph,
        scheduler,
        horizon,
        &GraphChecker::new(graph),
        AnalysisEngine::Sequential,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Scheduler;
    use crate::schedulers::PeriodicDegreeBound;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{cycle, path};

    /// A scripted scheduler for exercising the analysis edge cases.
    struct Scripted {
        sets: Vec<Vec<NodeId>>,
    }

    impl Scheduler for Scripted {
        fn node_count(&self) -> usize {
            // Large enough for any scripted member, including the
            // deliberately out-of-range ones the analysis must flag.
            self.sets.iter().flatten().max().map_or(0, |&p| p + 1)
        }
        fn fill_happy_set(&mut self, t: u64, out: &mut fhg_graph::HappySet) {
            out.reset(self.node_count());
            for &p in self.sets.get(t as usize).map_or(&[][..], Vec::as_slice) {
                out.insert(p);
            }
        }
        fn first_holiday(&self) -> u64 {
            0
        }
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn is_periodic(&self) -> bool {
            false
        }
        fn period(&self, _p: NodeId) -> Option<u64> {
            None
        }
        fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
            Some(3)
        }
    }

    #[test]
    fn measures_streaks_periods_and_counts() {
        let g = path(3);
        // Node 0 happy at offsets 1, 3, 5 (period 2); node 1 never happy;
        // node 2 happy only at offset 0.
        let mut s = Scripted { sets: vec![vec![2], vec![0], vec![], vec![0], vec![], vec![0]] };
        let a = analyze_schedule(&g, &mut s, 6);
        assert_eq!(a.scheduler, "scripted");
        assert_eq!(a.horizon, 6);
        assert!(a.all_happy_sets_independent);

        let n0 = &a.per_node[0];
        assert_eq!(n0.happy_count, 3);
        assert_eq!(n0.first_happy, Some(1));
        assert_eq!(n0.observed_period, Some(2));
        assert_eq!(n0.max_unhappiness, 1);
        assert!((n0.mean_gap - 2.0).abs() < 1e-12);

        let n1 = &a.per_node[1];
        assert_eq!(n1.happy_count, 0);
        assert_eq!(n1.max_unhappiness, 6, "never happy: the whole horizon is a streak");
        assert_eq!(n1.observed_period, None);
        assert!(n1.mean_gap.is_nan());

        let n2 = &a.per_node[2];
        assert_eq!(n2.happy_count, 1);
        assert_eq!(n2.first_happy, Some(0));
        assert_eq!(n2.max_unhappiness, 5, "trailing streak after the single happy holiday");
        assert_eq!(n2.observed_period, None, "one occurrence is not enough to call it periodic");

        assert_eq!(a.never_happy, vec![1]);
        assert_eq!(a.total_happiness, 4);
        assert!((a.mean_happy_set_size - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(a.max_unhappiness(), 6);
        assert!(!a.all_periodic());
    }

    #[test]
    fn detects_non_independent_happy_sets() {
        let g = path(3);
        let mut s = Scripted { sets: vec![vec![0, 1]] };
        let a = analyze_schedule(&g, &mut s, 1);
        assert!(!a.all_happy_sets_independent);
    }

    #[test]
    fn detects_out_of_range_nodes() {
        let g = path(2);
        let mut s = Scripted { sets: vec![vec![5]] };
        let a = analyze_schedule(&g, &mut s, 1);
        assert!(!a.all_happy_sets_independent);
    }

    #[test]
    fn bound_violations_reports_nodes_exceeding_the_claim() {
        let g = path(2);
        // Bound claimed by Scripted is 3; node 0 has a streak of exactly 3.
        let mut s = Scripted { sets: vec![vec![0], vec![], vec![], vec![], vec![0]] };
        let a = analyze_schedule(&g, &mut s, 5);
        let violations = a.bound_violations(&s);
        assert!(violations.contains(&0), "streak of 3 >= bound 3 is a violation");
        assert!(violations.contains(&1), "never-happy node violates any bound");
    }

    #[test]
    fn irregular_gaps_are_not_periodic() {
        let g = path(1);
        let mut s = Scripted { sets: vec![vec![0], vec![0], vec![], vec![0]] };
        let a = analyze_schedule(&g, &mut s, 4);
        assert_eq!(a.per_node[0].observed_period, None);
        assert_eq!(a.per_node[0].max_unhappiness, 1);
    }

    #[test]
    fn jain_fairness_of_uniform_and_skewed_schedules() {
        let g = cycle(4);
        // Perfectly alternating 2-colour schedule: everyone happy every other
        // holiday; all degrees equal; fairness must be 1.
        let mut s = Scripted {
            sets: (0..8).map(|t| if t % 2 == 0 { vec![0, 2] } else { vec![1, 3] }).collect(),
        };
        let a = analyze_schedule(&g, &mut s, 8);
        assert!((a.jain_fairness() - 1.0).abs() < 1e-12);

        // Only node 0 is ever happy: fairness drops to 1/n.
        let mut s = Scripted { sets: (0..8).map(|_| vec![0]).collect() };
        let a = analyze_schedule(&g, &mut s, 8);
        assert!((a.jain_fairness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_and_empty_graph() {
        let g = path(2);
        let mut s = Scripted { sets: vec![] };
        let a = analyze_schedule(&g, &mut s, 0);
        assert_eq!(a.max_unhappiness(), 0);
        assert_eq!(a.never_happy, vec![0, 1]);
        assert_eq!(a.mean_happy_set_size, 0.0);
        assert!((a.jain_fairness() - 1.0).abs() < 1e-12);

        let g = Graph::new(0);
        let mut s = Scripted { sets: vec![vec![]] };
        let a = analyze_schedule(&g, &mut s, 1);
        assert!(a.per_node.is_empty());
        assert!(a.all_happy_sets_independent);
        assert!(a.all_periodic());
    }

    #[test]
    fn zero_horizon_on_the_periodic_path() {
        let g = cycle(5);
        let mut s = PeriodicDegreeBound::new(&g);
        assert!(s.residue_schedule().is_some());
        assert_eq!(
            AnalysisEngine::select(&s, 0),
            AnalysisEngine::ShardedSweep,
            "no full cycle to fold at horizon 0"
        );
        let a = analyze_schedule(&g, &mut s, 0);
        assert_eq!(a.horizon, 0);
        assert_eq!(a.never_happy, vec![0, 1, 2, 3, 4]);
        assert!(a.all_happy_sets_independent);
        assert_eq!(a.mean_happy_set_size, 0.0);
    }

    #[test]
    fn engine_selection_follows_cycle_and_statefulness() {
        let g = erdos_renyi(30, 0.12, 5);
        let s = PeriodicDegreeBound::new(&g);
        let cycle = s.residue_schedule().unwrap().cycle();
        assert_eq!(AnalysisEngine::select(&s, cycle - 1), AnalysisEngine::ShardedSweep);
        assert_eq!(AnalysisEngine::select(&s, cycle), AnalysisEngine::ClosedForm);
        assert_eq!(AnalysisEngine::select(&s, 10 * cycle + 3), AnalysisEngine::ClosedForm);

        let stateful = Scripted { sets: vec![] };
        assert_eq!(AnalysisEngine::select(&stateful, 100), AnalysisEngine::Sequential);
        // Forcing a better engine than the scheduler supports downgrades.
        assert_eq!(AnalysisEngine::ClosedForm.clamp(&stateful, 100), AnalysisEngine::Sequential);
        assert_eq!(AnalysisEngine::ShardedSweep.clamp(&s, 7), AnalysisEngine::ShardedSweep);
        assert_eq!(AnalysisEngine::ClosedForm.clamp(&s, cycle - 1), AnalysisEngine::ShardedSweep);
    }

    #[test]
    fn attendance_heavy_schedules_stay_on_the_sweep() {
        // Hub-and-spoke shape: 64 spokes hosting every other holiday plus
        // one slow hub stretching the cycle to MAX_CYCLE.  The cycle is
        // within budget but the per-cycle attendance volume (64 · 2^21)
        // exceeds MAX_EVENTS, so the closed form must not be selected — its
        // profile memory is O(attendance), the sweep's is O(n).
        struct ViewOnly {
            schedule: ResidueSchedule,
        }
        impl Scheduler for ViewOnly {
            fn node_count(&self) -> usize {
                self.schedule.node_count()
            }
            fn fill_happy_set(&mut self, t: u64, out: &mut fhg_graph::HappySet) {
                self.schedule.fill(t, out);
            }
            fn first_holiday(&self) -> u64 {
                0
            }
            fn name(&self) -> &'static str {
                "view-only"
            }
            fn is_periodic(&self) -> bool {
                true
            }
            fn period(&self, p: NodeId) -> Option<u64> {
                Some(self.schedule.modulus(p))
            }
            fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
                None
            }
            fn residue_schedule(&self) -> Option<&ResidueSchedule> {
                Some(&self.schedule)
            }
        }

        let mut slots = vec![0u64; 64];
        let mut moduli = vec![2u64; 64];
        slots.push(1);
        moduli.push(CycleProfile::MAX_CYCLE);
        let s = ViewOnly { schedule: ResidueSchedule::scan_only(slots, moduli) };
        let cycle = s.schedule_cycle().unwrap();
        assert_eq!(cycle, CycleProfile::MAX_CYCLE, "cycle itself is within budget");
        assert!(s.residue_schedule().unwrap().attendance_per_cycle() > CycleProfile::MAX_EVENTS);
        assert_eq!(
            AnalysisEngine::select(&s, 2 * cycle),
            AnalysisEngine::ShardedSweep,
            "attendance budget must override the cycle-length check"
        );
    }

    #[test]
    fn every_engine_matches_the_reference_across_thread_counts() {
        // Smoke version of tests/analysis_parity.rs, at unit-test scope.
        let g = erdos_renyi(40, 0.12, 5);
        for horizon in [1u64, 7, 64, 129] {
            let reference = {
                let mut s = PeriodicDegreeBound::new(&g);
                analyze_schedule_reference(&g, &mut s, horizon)
            };
            for threads in [1usize, 2, 8] {
                for engine in [AnalysisEngine::ClosedForm, AnalysisEngine::ShardedSweep] {
                    let mut s = PeriodicDegreeBound::new(&g);
                    let pool =
                        rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
                    let checker = GraphChecker::new(&g);
                    let got = pool.install(|| {
                        analyze_schedule_with_engine(&g, &mut s, horizon, &checker, engine)
                    });
                    assert_eq!(got.scheduler, reference.scheduler);
                    assert_eq!(got.total_happiness, reference.total_happiness);
                    assert_eq!(got.never_happy, reference.never_happy);
                    assert_eq!(
                        got.all_happy_sets_independent,
                        reference.all_happy_sets_independent
                    );
                    for (a, b) in got.per_node.iter().zip(&reference.per_node) {
                        assert_eq!(a.happy_count, b.happy_count, "node {}", a.node);
                        assert_eq!(a.max_unhappiness, b.max_unhappiness, "node {}", a.node);
                        assert_eq!(a.observed_period, b.observed_period, "node {}", a.node);
                        assert_eq!(a.first_happy, b.first_happy, "node {}", a.node);
                        assert_eq!(
                            a.mean_gap.to_bits(),
                            b.mean_gap.to_bits(),
                            "node {} (NaN-aware)",
                            a.node
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cycle_profile_exposes_the_attendance_pattern() {
        let g = erdos_renyi(20, 0.2, 9);
        let s = PeriodicDegreeBound::new(&g);
        let view = s.residue_schedule().unwrap();
        let profile =
            CycleProfile::build(view, s.first_holiday(), g.node_count(), &GraphChecker::new(&g));
        assert!(profile.all_classes_independent());
        assert_eq!(profile.cycle(), view.cycle());
        let mut total = 0u64;
        for p in 0..profile.node_count() {
            let offs = profile.attendance_offsets(p);
            assert_eq!(offs.len() as u64, profile.count_per_cycle(p));
            assert!(offs.windows(2).all(|w| w[0] < w[1]), "offsets ascend");
            // Every node of a ResidueSchedule is perfectly periodic: its gap
            // multiset is {modulus} repeated.
            let m = view.modulus(p);
            assert!(profile.gaps(p).all(|gap| gap == m), "node {p} gaps must equal its modulus");
            assert_eq!(profile.gaps(p).count() as u64, profile.count_per_cycle(p));
            total += profile.count_per_cycle(p);
        }
        assert_eq!(total, profile.happiness_per_cycle());
        // Deriving below one cycle is refused; the dispatcher falls back.
        assert!(profile.derive("x", &g, profile.cycle() - 1).is_none());
    }
}
