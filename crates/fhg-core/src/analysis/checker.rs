//! Independence checking: the per-holiday verdict source of the analysis.
//!
//! Every engine in [`crate::analysis`] must decide, for each happy set it
//! sees, whether the set is an independent set of the conflict graph
//! (Definition 2.1).  That decision is factored behind the
//! [`HolidayChecker`] trait, which serves two granularities:
//!
//! * [`HolidayChecker::check`] — one class at a time, the reference shape
//!   every instrumented checker (e.g. the counting checker in
//!   `tests/residue_cache.rs`) can observe holiday by holiday, and
//! * [`HolidayChecker::check_batch`] — up to 64 residue classes at once.
//!   The default implementation falls back to per-class [`check`]
//!   (short-circuiting on the first failure, like the engines themselves),
//!   so instrumented wrappers keep working unchanged; [`GraphChecker`]
//!   overrides it with the bit-sliced batch plane: the classes are
//!   transposed into a [`properties::MembershipTable`] and each adjacency
//!   row is loaded **once**, answering the AND-any question for the whole
//!   batch through the `intersects_many` kernel family.  The `CycleProfile`
//!   build and the sharded sweep hand each shard's classes over in batches,
//!   which turns the memory-bound per-class row walk into a compute-dense
//!   multi-bitmap kernel.
//!
//! [`GraphChecker`] picks among three adjacency layouts by node count:
//!
//! * **flat** ([`properties::AdjacencyBitmap`], `n²/8` bytes) up to the
//!   dense limit — [`DENSE_ADJACENCY_LIMIT`] by default, tunable at runtime
//!   via the `FHG_DENSE_LIMIT` environment variable (parsed once, same
//!   `OnceLock` discipline as `FHG_KERNEL`);
//! * **blocked** ([`properties::BlockedAdjacency`]) from the dense limit up
//!   to [`BLOCKED_ADJACENCY_LIMIT`] nodes — 256×256-bit tiles materialised
//!   only where high-degree rows have edges, CSR probes for the sparse
//!   remainder, so dense-style verification reaches ~64k nodes at bounded
//!   memory;
//! * **CSR** probes beyond that.
//!
//! All layouts walk sets through `fhg_graph::kernels`, so verification
//! rides the same runtime-dispatched wide loops as emission.
//!
//! The holiday number is passed alongside each set so the verdict source
//! can be audited: the verdict must not depend on it, but instrumentation
//! wants to see it — the closed-form and sharded engines both promise
//! exactly one probe per residue class, batched or not.
//!
//! Checkers must be `Sync` because both sharded paths probe from worker
//! threads: the sweep verifies each shard's residue classes in place, and
//! the parallel `CycleProfile` build verifies each class from the one
//! shard that owns its range — so the once-per-class promise holds at
//! every thread count, and verification (the closed form's dominant cost
//! on large cycles) scales with the pool.

use std::cell::RefCell;
use std::sync::OnceLock;

use fhg_graph::{properties, CsrGraph, FixedBitSet, Graph, HappySet};

/// Default largest node count for which the analysis materialises flat
/// dense adjacency bit rows (`n²/8` bytes — 2 MiB at the limit) to verify
/// independence with whole-word ANDs.  Override at runtime with
/// `FHG_DENSE_LIMIT`; see [`dense_limit`].
pub const DENSE_ADJACENCY_LIMIT: usize = 4096;

/// Largest node count for which the analysis builds the cache-blocked
/// hybrid layout; beyond this, raw CSR probes.
pub const BLOCKED_ADJACENCY_LIMIT: usize = 65_536;

/// The flat-dense/blocked threshold, decided once per process and cached in
/// a `OnceLock`: the `FHG_DENSE_LIMIT` environment variable when set (so
/// benches can sweep the crossover without recompiling), otherwise
/// [`DENSE_ADJACENCY_LIMIT`].
///
/// A malformed value is **not** fatal: a long-lived serving process must
/// not be killable by a typo in its environment, so unparseable overrides
/// log one warning to stderr and fall back to the default (pinned by the
/// unit tests below).
pub fn dense_limit() -> usize {
    static LIMIT: OnceLock<usize> = OnceLock::new();
    *LIMIT.get_or_init(|| parse_dense_limit(std::env::var("FHG_DENSE_LIMIT").ok().as_deref()))
}

/// Parses the `FHG_DENSE_LIMIT` override (factored out of [`dense_limit`]
/// so the fallback policy is testable despite the process-wide cache):
/// unset or empty means the default, a non-negative integer is taken
/// verbatim, and anything else warns and falls back to the default.
fn parse_dense_limit(raw: Option<&str>) -> usize {
    match raw {
        None => DENSE_ADJACENCY_LIMIT,
        Some(raw) if raw.trim().is_empty() => DENSE_ADJACENCY_LIMIT,
        Some(raw) => match raw.trim().parse() {
            Ok(limit) => limit,
            Err(_) => {
                eprintln!(
                    "warning: FHG_DENSE_LIMIT={raw:?} is not a node count; \
                     using the default {DENSE_ADJACENCY_LIMIT}"
                );
                DENSE_ADJACENCY_LIMIT
            }
        },
    }
}

/// A per-holiday independence verdict source, shareable across worker
/// threads.
///
/// The holiday number is passed alongside the set so instrumented checkers
/// (e.g. the counting checker in `tests/residue_cache.rs`) can observe
/// *which* holidays the analysis actually verifies — both the closed-form
/// profile and the residue cache promise each residue class is probed
/// exactly once.
pub trait HolidayChecker: Sync {
    /// Whether the happy set emitted at holiday `t` is an independent set.
    fn check(&self, t: u64, happy: &FixedBitSet) -> bool;

    /// Whether **every** class in the batch is independent.
    ///
    /// The default delegates to per-class [`HolidayChecker::check`] in
    /// order, short-circuiting on the first failure — exactly the shape the
    /// engines had before batching, so instrumented checkers that only
    /// override `check` observe the same probes.  [`GraphChecker`]
    /// overrides this with the bit-sliced batch plane.
    ///
    /// Callers pass at most [`properties::BATCH_WIDTH`] classes per call.
    fn check_batch(&self, classes: &[(u64, &FixedBitSet)]) -> bool {
        classes.iter().all(|&(t, set)| self.check(t, set))
    }
}

/// A fixed-width buffer of residue classes awaiting batched verification:
/// up to [`properties::BATCH_WIDTH`] `(holiday, happy set)` slots that the
/// sweep and profile engines fill round-robin, flushing through
/// [`HolidayChecker::check_batch`] when full.  The slots are plain
/// [`HappySet`]s reused across flushes (each `fill` resets its slot) and
/// the flush builds its borrow array on the stack, so steady-state
/// batching performs zero heap allocations (proved by
/// `tests/zero_alloc.rs`).
pub(crate) struct ClassBatch {
    slots: Vec<HappySet>,
    ts: [u64; properties::BATCH_WIDTH],
    len: usize,
}

impl ClassBatch {
    /// A batch whose slots hold sets over `capacity` nodes.
    pub(crate) fn new(capacity: usize) -> Self {
        ClassBatch {
            slots: (0..properties::BATCH_WIDTH).map(|_| HappySet::new(capacity)).collect(),
            ts: [0; properties::BATCH_WIDTH],
            len: 0,
        }
    }

    /// The next free slot, tagged with holiday `t`.  Fill it, then call
    /// [`ClassBatch::commit`].
    pub(crate) fn slot(&mut self, t: u64) -> &mut HappySet {
        self.ts[self.len] = t;
        &mut self.slots[self.len]
    }

    /// Seals the slot handed out by [`ClassBatch::slot`]; `true` means the
    /// batch is full and must be flushed before the next `slot` call.
    pub(crate) fn commit(&mut self) -> bool {
        self.len += 1;
        self.len == properties::BATCH_WIDTH
    }

    /// Verifies and drains the buffered classes: `true` iff every one is
    /// independent.  `enabled: false` drains without probing — a previous
    /// class already failed, mirroring the per-class engines'
    /// `all_independent &&` short-circuit, under which the checker is never
    /// consulted again.
    pub(crate) fn flush<C: HolidayChecker + ?Sized>(&mut self, enabled: bool, checker: &C) -> bool {
        let len = std::mem::take(&mut self.len);
        if !enabled || len == 0 {
            return true;
        }
        // The borrow array lives on the stack (padded with repeats of the
        // last class, then sliced to `len`) so a flush never allocates.
        let refs: [(u64, &FixedBitSet); properties::BATCH_WIDTH] = std::array::from_fn(|i| {
            let j = i.min(len - 1);
            (self.ts[j], self.slots[j].as_bitset())
        });
        checker.check_batch(&refs[..len])
    }
}

/// Which adjacency layout a [`GraphChecker`] picked.
enum Layout {
    Flat(properties::AdjacencyBitmap),
    Blocked(properties::BlockedAdjacency),
    Csr(CsrGraph),
}

impl std::fmt::Debug for GraphChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphChecker").field("layout", &self.layout()).finish()
    }
}

/// The default checker: flat dense adjacency rows up to [`dense_limit`]
/// nodes, the blocked hybrid up to [`BLOCKED_ADJACENCY_LIMIT`], branchless
/// CSR neighbour probes beyond.  Batched checks run on a thread-local
/// [`properties::MembershipTable`] (allocation-free after warm-up).
pub struct GraphChecker {
    layout: Layout,
}

thread_local! {
    /// Per-thread transpose scratch for batched checks: grows once to the
    /// graph's size, then every fill re-uses it — the sharded paths batch
    /// from worker threads, so the scratch follows the thread, not the
    /// checker.
    static BATCH_SCRATCH: RefCell<properties::MembershipTable> =
        RefCell::new(properties::MembershipTable::new());
}

impl GraphChecker {
    /// Builds the checker for `graph`, choosing the layout by node count:
    /// flat dense rows up to [`dense_limit`], the blocked hybrid up to
    /// [`BLOCKED_ADJACENCY_LIMIT`], CSR beyond.
    pub fn new(graph: &Graph) -> Self {
        Self::with_limits(graph, dense_limit(), BLOCKED_ADJACENCY_LIMIT)
    }

    /// Builds the checker with explicit layout thresholds — the test and
    /// bench entry point for forcing a layout regardless of graph size
    /// (`(usize::MAX, _)` forces flat, `(0, usize::MAX)` blocked, `(0, 0)`
    /// CSR).
    pub fn with_limits(graph: &Graph, flat_limit: usize, blocked_limit: usize) -> Self {
        let n = graph.node_count();
        let layout = if n <= flat_limit {
            Layout::Flat(properties::AdjacencyBitmap::from_graph(graph))
        } else if n <= blocked_limit {
            Layout::Blocked(properties::BlockedAdjacency::from_graph(graph))
        } else {
            Layout::Csr(CsrGraph::from_graph(graph))
        };
        GraphChecker { layout }
    }

    /// The adjacency layout this checker picked (`"flat"`, `"blocked"` or
    /// `"csr"`), for bench rows and layout assertions.
    pub fn layout(&self) -> &'static str {
        match &self.layout {
            Layout::Flat(_) => "flat",
            Layout::Blocked(_) => "blocked",
            Layout::Csr(_) => "csr",
        }
    }

    /// Peak adjacency memory of the chosen layout in bytes (the flat
    /// bitmap's `n²/8`, the blocked hybrid's tiles + grid + CSR arrays, or
    /// the raw CSR arrays).
    pub fn memory_bytes(&self) -> usize {
        match &self.layout {
            Layout::Flat(adj) => adj.node_count() * adj.node_count().div_ceil(64) * 8,
            Layout::Blocked(adj) => adj.memory_bytes(),
            Layout::Csr(csr) => (csr.node_count() + 1) * 8 + 2 * csr.edge_count() * 8,
        }
    }

    /// The graph's node count, whichever layout holds it.
    fn node_count(&self) -> usize {
        match &self.layout {
            Layout::Flat(adj) => adj.node_count(),
            Layout::Blocked(adj) => adj.node_count(),
            Layout::Csr(csr) => csr.node_count(),
        }
    }
}

impl HolidayChecker for GraphChecker {
    fn check(&self, _t: u64, happy: &FixedBitSet) -> bool {
        match &self.layout {
            Layout::Flat(adj) => adj.is_independent(happy),
            Layout::Blocked(adj) => adj.is_independent(happy),
            Layout::Csr(csr) => csr.is_independent(happy),
        }
    }

    fn check_batch(&self, classes: &[(u64, &FixedBitSet)]) -> bool {
        if classes.len() <= 1 {
            // A batch of one gains nothing from the transpose.
            return classes.iter().all(|&(t, set)| self.check(t, set));
        }
        BATCH_SCRATCH.with(|scratch| {
            let mut table = scratch.borrow_mut();
            table.fill(self.node_count(), classes.iter().map(|&(_, set)| set));
            let violations = match &self.layout {
                Layout::Flat(adj) => adj.batch_violations(&table),
                Layout::Blocked(adj) => adj.batch_violations(&table),
                Layout::Csr(csr) => csr.batch_violations(&table),
            };
            violations == 0
        })
    }
}

/// A layout-free checker that probes adjacency straight off a borrowed
/// [`Graph`]: for every member of the set, scan its (sorted) neighbour
/// list and demand no neighbour is also a member.
///
/// [`GraphChecker`] amortises a precomputed adjacency layout over an
/// entire cycle's worth of classes; the incremental patch path
/// (`CycleProfile::patch`) verifies a handful of classes against a graph
/// that *just mutated*, where rebuilding a layout per edge event would
/// dwarf the repair itself and allocate.  `ScanChecker` costs
/// `O(Σ deg(member))` per class, allocates nothing, and always reflects
/// the graph's current edges.
pub struct ScanChecker<'g> {
    graph: &'g Graph,
}

impl<'g> ScanChecker<'g> {
    /// A checker borrowing `graph`; verdicts track its live edge set.
    pub fn new(graph: &'g Graph) -> Self {
        ScanChecker { graph }
    }
}

impl HolidayChecker for ScanChecker<'_> {
    fn check(&self, _t: u64, happy: &FixedBitSet) -> bool {
        // Fault-injection site: an `err` action makes the checker falsely
        // report a violation, silently poisoning a patched verdict — the
        // corruption mode the serving tier's background audit exists to
        // catch (the audit re-derives through `GraphChecker`, so it never
        // shares this site).
        crate::fail_point!("checker.batch", return false);
        let n = self.graph.node_count();
        fhg_graph::kernels::all_set_bits(happy.as_words(), |u| {
            u < n && self.graph.neighbors(u).iter().all(|&v| !happy.contains(v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhg_graph::generators::erdos_renyi;

    #[test]
    fn scan_checker_agrees_with_graph_checker() {
        let g = erdos_renyi(130, 0.05, 9);
        let scan = ScanChecker::new(&g);
        let full = GraphChecker::new(&g);
        for t in 0..24u64 {
            let mut set = FixedBitSet::new(130);
            for k in 0..8usize {
                set.insert(((t as usize + 1) * (k * 17 + 1)) % 130);
            }
            assert_eq!(
                scan.check(t, &set),
                full.check(t, &set),
                "scan and layout checkers disagree at t={t}"
            );
        }
    }

    #[test]
    fn dense_limit_override_falls_back_instead_of_panicking() {
        // A malformed FHG_DENSE_LIMIT must never kill the process: the
        // fallback to the compiled default is the pinned contract.
        assert_eq!(parse_dense_limit(None), DENSE_ADJACENCY_LIMIT);
        assert_eq!(parse_dense_limit(Some("")), DENSE_ADJACENCY_LIMIT);
        assert_eq!(parse_dense_limit(Some("  ")), DENSE_ADJACENCY_LIMIT);
        assert_eq!(parse_dense_limit(Some("garbage")), DENSE_ADJACENCY_LIMIT);
        assert_eq!(parse_dense_limit(Some("-3")), DENSE_ADJACENCY_LIMIT);
        assert_eq!(parse_dense_limit(Some("1e4")), DENSE_ADJACENCY_LIMIT);
        assert_eq!(parse_dense_limit(Some("0")), 0, "zero is a valid crossover");
        assert_eq!(parse_dense_limit(Some("8192")), 8192);
        assert_eq!(parse_dense_limit(Some(" 512 ")), 512, "whitespace is trimmed");
    }

    #[test]
    fn layout_selection_follows_the_limits() {
        let g = erdos_renyi(50, 0.1, 3);
        assert_eq!(GraphChecker::new(&g).layout(), "flat", "50 nodes sit under every limit");
        assert_eq!(GraphChecker::with_limits(&g, usize::MAX, usize::MAX).layout(), "flat");
        assert_eq!(GraphChecker::with_limits(&g, 0, usize::MAX).layout(), "blocked");
        assert_eq!(GraphChecker::with_limits(&g, 0, 0).layout(), "csr");
        for limits in [(usize::MAX, usize::MAX), (0, usize::MAX), (0, 0)] {
            let checker = GraphChecker::with_limits(&g, limits.0, limits.1);
            assert!(checker.memory_bytes() > 0);
            assert!(format!("{checker:?}").contains(checker.layout()));
        }
    }

    #[test]
    fn batch_and_per_class_agree_on_every_layout() {
        let g = erdos_renyi(130, 0.05, 9);
        let mut classes = Vec::new();
        for t in 0..10u64 {
            let mut set = FixedBitSet::new(130);
            // Spread-out members: mostly independent, occasionally not.
            for k in 0..8usize {
                set.insert(((t as usize + 1) * (k * 17 + 1)) % 130);
            }
            classes.push((t, set));
        }
        for limits in [(usize::MAX, usize::MAX), (0, usize::MAX), (0, 0)] {
            let checker = GraphChecker::with_limits(&g, limits.0, limits.1);
            let refs: Vec<(u64, &FixedBitSet)> = classes.iter().map(|(t, s)| (*t, s)).collect();
            let per_class = refs.iter().all(|&(t, s)| checker.check(t, s));
            assert_eq!(
                checker.check_batch(&refs),
                per_class,
                "layout {} disagrees with per-class checks",
                checker.layout()
            );
        }
    }
}
