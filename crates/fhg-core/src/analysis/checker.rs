//! Independence checking: the per-holiday verdict source of the analysis.
//!
//! Every engine in [`crate::analysis`] must decide, for each happy set it
//! sees, whether the set is an independent set of the conflict graph
//! (Definition 2.1).  That decision is factored behind the [`HolidayChecker`]
//! trait so that
//!
//! * the production path can pick the fastest representation for the graph at
//!   hand ([`GraphChecker`]: dense word-wise adjacency rows up to
//!   [`DENSE_ADJACENCY_LIMIT`] nodes, branchless CSR probes beyond — both
//!   walk the set through `fhg_graph::kernels::all_set_bits` and the dense
//!   path probes each row with the fused AND-any kernel, so verification
//!   rides the same runtime-dispatched wide loops as emission), and
//! * tests can substitute instrumented checkers (the counting checker in
//!   `tests/residue_cache.rs`) to observe *which* holidays each engine
//!   actually verifies — the closed-form and sharded engines both promise
//!   exactly one probe per residue class.
//!
//! The holiday number is passed alongside the set for exactly that reason:
//! the verdict must not depend on it, but instrumentation wants to see it.
//!
//! Checkers must be `Sync` because both sharded paths probe from worker
//! threads: the sweep verifies each shard's residue classes in place, and
//! the parallel `CycleProfile` build verifies each class from the one
//! shard that owns its range — so the once-per-class promise holds at
//! every thread count, and verification (the closed form's dominant cost
//! on large cycles) scales with the pool.

use fhg_graph::{properties, CsrGraph, FixedBitSet, Graph};

/// Largest node count for which the analysis materialises dense adjacency
/// bit rows (`n²/8` bytes — 2 MiB at the limit) to verify independence with
/// whole-word ANDs; larger graphs fall back to CSR neighbour probes.
pub const DENSE_ADJACENCY_LIMIT: usize = 4096;

/// A per-holiday independence verdict source, shareable across worker
/// threads.
///
/// The holiday number is passed alongside the set so instrumented checkers
/// (e.g. the counting checker in `tests/residue_cache.rs`) can observe
/// *which* holidays the analysis actually verifies — both the closed-form
/// profile and the residue cache promise each residue class is probed
/// exactly once.
pub trait HolidayChecker: Sync {
    /// Whether the happy set emitted at holiday `t` is an independent set.
    fn check(&self, t: u64, happy: &FixedBitSet) -> bool;
}

/// The default checker: dense word-wise adjacency rows for graphs up to
/// [`DENSE_ADJACENCY_LIMIT`] nodes, branchless CSR neighbour probes beyond.
pub struct GraphChecker {
    dense: Option<properties::AdjacencyBitmap>,
    csr: Option<CsrGraph>,
}

impl GraphChecker {
    /// Builds the checker for `graph`, choosing the representation by size.
    pub fn new(graph: &Graph) -> Self {
        let dense = (graph.node_count() <= DENSE_ADJACENCY_LIMIT)
            .then(|| properties::AdjacencyBitmap::from_graph(graph));
        let csr = if dense.is_none() { Some(CsrGraph::from_graph(graph)) } else { None };
        GraphChecker { dense, csr }
    }
}

impl HolidayChecker for GraphChecker {
    fn check(&self, _t: u64, happy: &FixedBitSet) -> bool {
        match (&self.dense, &self.csr) {
            (Some(adj), _) => adj.is_independent(happy),
            (None, Some(csr)) => csr.is_independent(happy),
            (None, None) => unreachable!("one independence checker is always built"),
        }
    }
}
