//! The sweeping engines: per-holiday accumulation, horizon sharding, and the
//! exact segment merge.
//!
//! This module owns the arithmetic core every engine shares — the
//! [`NodeAccum`] per-node accumulator and its two composition rules:
//!
//! * [`NodeAccum::record`] absorbs one happy appearance at a given offset
//!   (the sequential step), and
//! * [`merge_node`] folds a whole *segment summary* into a running
//!   accumulator with pure integer arithmetic, reproducing exactly what a
//!   sequential pass over the concatenated offsets would have computed.
//!
//! Because both rules are exact, any partition of the horizon into contiguous
//! segments — one shard per worker thread here, or `horizon / cycle`
//! analytically replicated copies of one cycle in
//! [`super::profile`] — merges back to a result bitwise-identical to the
//! sequential sweep (locked down by `tests/analysis_parity.rs`).
//!
//! [`ShardSweep`] is the per-worker driver: a contiguous offset range,
//! private scratch ([`HappySet`]) and a private accumulator bank, so the
//! per-holiday loop performs zero heap allocations and touches one cache
//! line per happy appearance.  [`finalize`] assembles the merged global
//! accumulators into the public [`ScheduleAnalysis`].

use std::ops::Range;

use fhg_graph::{Graph, HappySet};

use super::checker::HolidayChecker;
use super::{NodeAnalysis, ScheduleAnalysis};

/// Sentinel for "no offset/gap recorded yet" in the packed accumulators
/// (horizons never reach `u64::MAX`).
pub(super) const NONE: u64 = u64::MAX;

/// Per-node accumulator of one horizon segment — one cache line per node, so
/// the counting sweep touches a single line per happy appearance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct NodeAccum {
    /// Offset of the first happy holiday in the segment (`NONE` if none).
    pub(super) first: u64,
    /// Offset of the last happy holiday in the segment (`NONE` if none).
    pub(super) last: u64,
    /// Happy appearances in the segment.
    pub(super) happy: u64,
    /// Sum of the gaps between consecutive happy holidays in the segment.
    pub(super) gap_sum: u64,
    /// Number of such gaps.
    pub(super) gap_count: u64,
    /// The first gap observed (the candidate period); `NONE` if no gaps.
    pub(super) first_gap: u64,
    /// Largest `gap - 1` streak between happy holidays inside the segment.
    pub(super) max_streak: u64,
    /// Whether every gap observed so far equals `first_gap`.
    pub(super) uniform: bool,
}

impl NodeAccum {
    pub(super) fn empty() -> Self {
        NodeAccum {
            first: NONE,
            last: NONE,
            happy: 0,
            gap_sum: 0,
            gap_count: 0,
            first_gap: NONE,
            max_streak: 0,
            uniform: true,
        }
    }

    /// Absorbs one happy appearance at `offset` — the sequential step shared
    /// by the shard sweep and the cycle-profile builder.  Offsets must arrive
    /// in strictly increasing order within one accumulator.
    #[inline]
    pub(super) fn record(&mut self, offset: u64) {
        self.happy += 1;
        if self.last == NONE {
            self.first = offset;
        } else {
            let gap = offset - self.last;
            self.max_streak = self.max_streak.max(gap - 1);
            self.gap_sum += gap;
            self.gap_count += 1;
            apply_gap_candidate(self, gap);
        }
        self.last = offset;
    }
}

/// Folds segment `s` (the next contiguous stretch of the horizon) into the
/// running accumulator `g`.  This is exactly the arithmetic the sequential
/// sweep performs, applied to segment summaries: the boundary gap between
/// `g`'s last happy offset and `s`'s first one is processed first, then `s`'s
/// internal gaps are absorbed in order — so the merged result is
/// bitwise-identical to a single sequential pass regardless of where the
/// horizon was cut.
pub(super) fn merge_node(g: &mut NodeAccum, s: &NodeAccum) {
    if s.happy == 0 {
        return;
    }
    if g.last == NONE {
        g.first = s.first;
        // The leading unhappy stretch before the very first happy holiday.
        g.max_streak = g.max_streak.max(s.first);
    } else {
        let gap = s.first - g.last;
        g.max_streak = g.max_streak.max(gap - 1);
        g.gap_sum += gap;
        g.gap_count += 1;
        apply_gap_candidate(g, gap);
    }
    g.max_streak = g.max_streak.max(s.max_streak);
    g.gap_sum += s.gap_sum;
    g.gap_count += s.gap_count;
    if s.gap_count > 0 {
        apply_gap_candidate(g, s.first_gap);
        if !s.uniform {
            g.uniform = false;
        }
    }
    g.happy += s.happy;
    g.last = s.last;
}

pub(super) fn apply_gap_candidate(g: &mut NodeAccum, gap: u64) {
    if g.first_gap == NONE {
        g.first_gap = gap;
    } else if g.first_gap != gap {
        g.uniform = false;
    }
}

/// One worker's slice of the horizon: a contiguous offset range, private
/// scratch, and per-node segment accumulators.
pub(super) struct ShardSweep {
    /// Offsets (from the start of the horizon) this shard covers.
    pub(super) offsets: Range<u64>,
    /// Offsets below this bound get an independence check; at or above it the
    /// cached per-residue verdict is replayed (equal to the horizon when no
    /// cache applies).
    pub(super) verify_below: u64,
    pub(super) accum: Vec<NodeAccum>,
    pub(super) happy: HappySet,
    pub(super) all_independent: bool,
    pub(super) total_happiness: u64,
}

impl ShardSweep {
    pub(super) fn new(n: usize, capacity: usize, offsets: Range<u64>, verify_below: u64) -> Self {
        ShardSweep {
            offsets,
            verify_below,
            accum: vec![NodeAccum::empty(); n],
            happy: HappySet::new(capacity),
            all_independent: true,
            total_happiness: 0,
        }
    }

    /// Sweeps the shard's offsets: emit, verify (below `verify_below`), and
    /// count.  Zero heap allocations per holiday: `fill` reuses the shard's
    /// scratch buffer and every accumulator was sized up front.
    pub(super) fn sweep<C: HolidayChecker + ?Sized>(
        &mut self,
        start: u64,
        n: usize,
        checker: &C,
        mut fill: impl FnMut(u64, &mut HappySet),
    ) {
        for offset in self.offsets.clone() {
            let t = start + offset;
            fill(t, &mut self.happy);
            if self.all_independent
                && offset < self.verify_below
                && !checker.check(t, self.happy.as_bitset())
            {
                self.all_independent = false;
            }
            self.total_happiness += self.happy.len() as u64;
            // Per-holiday accumulation through the set-bit extraction
            // kernel (disjoint field captures keep the scratch buffer
            // borrowed immutably while the accumulators update).
            self.happy.for_each(|p| {
                if p >= n {
                    self.all_independent = false;
                } else {
                    self.accum[p].record(offset);
                }
            });
        }
    }
}

/// Splits `horizon` offsets into at most `parts` contiguous, non-empty
/// ranges (earlier ranges get the remainder, matching an even split).
pub(super) fn split_offsets(horizon: u64, parts: usize) -> Vec<Range<u64>> {
    if horizon == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = (parts as u64).min(horizon);
    let base = horizon / parts;
    let remainder = horizon % parts;
    let mut ranges = Vec::with_capacity(parts as usize);
    let mut lo = 0u64;
    for i in 0..parts {
        let len = base + u64::from(i < remainder);
        ranges.push(lo..lo + len);
        lo += len;
    }
    ranges
}

/// Merges the shard summaries (in horizon order) into one global accumulator
/// bank plus the scalar verdicts.
pub(super) fn merge_shards(n: usize, shards: Vec<ShardSweep>) -> (Vec<NodeAccum>, bool, u64) {
    let mut global = vec![NodeAccum::empty(); n];
    let mut all_independent = true;
    let mut total_happiness = 0u64;
    for shard in &shards {
        all_independent &= shard.all_independent;
        total_happiness += shard.total_happiness;
        for (g, s) in global.iter_mut().zip(&shard.accum) {
            merge_node(g, s);
        }
    }
    (global, all_independent, total_happiness)
}

/// Assembles merged global accumulators into the final [`ScheduleAnalysis`] —
/// the one place the trailing unhappy stretch, the observed period and the
/// float statistics are derived, shared by every engine so the outputs are
/// bitwise-identical by construction.
pub(super) fn finalize(
    scheduler: String,
    horizon: u64,
    graph: &Graph,
    global: Vec<NodeAccum>,
    all_independent: bool,
    total_happiness: u64,
) -> ScheduleAnalysis {
    let per_node: Vec<NodeAnalysis> = global
        .iter()
        .enumerate()
        .map(|(p, a)| {
            // Account for the trailing unhappy stretch.
            let trailing = if a.last == NONE { horizon } else { horizon - 1 - a.last };
            let max_unhappiness = a.max_streak.max(trailing);
            let observed_period = (a.uniform && a.first_gap != NONE).then_some(a.first_gap);
            let mean_gap =
                if a.gap_count > 0 { a.gap_sum as f64 / a.gap_count as f64 } else { f64::NAN };
            NodeAnalysis {
                node: p,
                degree: graph.degree(p),
                happy_count: a.happy,
                max_unhappiness,
                observed_period,
                first_happy: (a.first != NONE).then_some(a.first),
                mean_gap,
            }
        })
        .collect();

    let never_happy = per_node.iter().filter(|n| n.happy_count == 0).map(|n| n.node).collect();
    ScheduleAnalysis {
        scheduler,
        horizon,
        mean_happy_set_size: if horizon == 0 {
            0.0
        } else {
            total_happiness as f64 / horizon as f64
        },
        per_node,
        all_happy_sets_independent: all_independent,
        never_happy,
        total_happiness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_offsets_covers_the_horizon_exactly() {
        for (horizon, parts) in [(10u64, 3usize), (7, 8), (1, 1), (64, 4), (5, 5)] {
            let ranges = split_offsets(horizon, parts);
            assert!(ranges.len() <= parts);
            assert!(ranges.iter().all(|r| !r.is_empty()), "no empty shards");
            let mut expected = 0u64;
            for r in &ranges {
                assert_eq!(r.start, expected, "contiguous coverage");
                expected = r.end;
            }
            assert_eq!(expected, horizon);
        }
        assert!(split_offsets(0, 4).is_empty());
        assert!(split_offsets(9, 0).is_empty());
    }

    #[test]
    fn record_matches_a_hand_computed_sequence() {
        let mut a = NodeAccum::empty();
        for offset in [2u64, 4, 6, 11] {
            a.record(offset);
        }
        assert_eq!(a.first, 2);
        assert_eq!(a.last, 11);
        assert_eq!(a.happy, 4);
        assert_eq!(a.gap_sum, 9);
        assert_eq!(a.gap_count, 3);
        assert_eq!(a.first_gap, 2);
        assert_eq!(a.max_streak, 4, "the 6 -> 11 gap leaves a streak of 4");
        assert!(!a.uniform, "gap 5 breaks the candidate period 2");
    }

    #[test]
    fn merging_split_segments_equals_one_sequential_pass() {
        let offsets = [1u64, 3, 5, 12, 13, 20];
        let mut sequential = NodeAccum::empty();
        for &o in &offsets {
            sequential.record(o);
        }
        let mut whole = NodeAccum::empty();
        merge_node(&mut whole, &sequential);
        // Every split point must reproduce the same merged accumulator.
        for cut in 0..=offsets.len() {
            let (lo, hi) = offsets.split_at(cut);
            let mut a = NodeAccum::empty();
            let mut b = NodeAccum::empty();
            lo.iter().for_each(|&o| a.record(o));
            hi.iter().for_each(|&o| b.record(o));
            let mut merged = NodeAccum::empty();
            merge_node(&mut merged, &a);
            merge_node(&mut merged, &b);
            assert_eq!(merged, whole, "cut at {cut}");
        }
    }
}
