//! The sweeping engines: per-holiday accumulation, horizon sharding, and the
//! exact segment merge — now on a struct-of-arrays accumulator bank.
//!
//! # Two accumulator planes
//!
//! This module owns the arithmetic core every engine shares, in two
//! deliberately distinct representations:
//!
//! * [`NodeAccum`] — the **array-of-structs reference**: one struct per
//!   node, scalar branchy arithmetic.  [`NodeAccum::record`] absorbs one
//!   happy appearance, [`merge_node`] folds a segment summary into a
//!   running accumulator, and [`finalize`] assembles the scalar per-node
//!   statistics.  The Sequential engine (stateful schedulers, and through
//!   it [`super::analyze_schedule_reference`]) runs on this plane, which
//!   keeps the differential baseline genuinely independent of the column
//!   kernels — and makes `NodeAccum` the executable *specification* the
//!   bank below is property-tested against.
//!
//! * [`AccumBank`] — the **struct-of-arrays production plane**: every
//!   statistic is a contiguous `u64` column (`count`, `first`, `last`,
//!   `gap_sum`, `gap_count`, `first_gap`, `max_streak`, and the
//!   `uniform` word-mask column, `u64::MAX` while every observed gap
//!   equals the first).  The segment-merge algebra runs as element-wise
//!   column passes on the `fhg_graph::kernels` arithmetic family (per-node
//!   conditionals become word masks: comparisons, masked select/merge,
//!   element-wise max, scaled folds — runtime-dispatched to the AVX2 wide
//!   loops like every other hot kernel), the u64→f64 finalise rides the
//!   explicit-NaN ratio kernel, and the closed-form replicate fold streams
//!   the columns in one fused pass (`profile::fold_lane` — composing ~20
//!   generic kernel passes measured ~3.5x the memory traffic).
//!
//! # The merge algebra, column-wise
//!
//! [`AccumBank::merge_from`] folds segment bank `s` (the next contiguous
//! stretch of the horizon) into the running bank `g` with exactly the
//! arithmetic [`merge_node`] performs, expressed over whole columns:
//!
//! 1. masks: `A = [s.count ≠ 0]` (active), `E = A & [g.last = NONE]`
//!    (take-first), `B = A & [g.last ≠ NONE]` (boundary);
//! 2. the boundary gap column `gap = (s.first − g.last) & B` feeds the
//!    streak max (`gap − 1`), the gap sums/counts (`+1` under `B`), and
//!    the first-gap candidate (set where `first_gap = NONE`, break
//!    uniformity where it differs);
//! 3. the take-first lanes adopt `s.first` and account the leading
//!    unhappy stretch;
//! 4. the segment interior folds unmasked — an inactive segment's columns
//!    hold exact zero/sentinel values, so its adds and maxes are no-ops;
//! 5. endpoints blend under `A`.
//!
//! Because every step reproduces the scalar rule bit for bit (property
//! tests below pin `merge_from` against [`merge_node`] per node), any
//! partition of the horizon into contiguous segments — one shard per
//! worker thread here, one shard per cycle-range in the parallel profile
//! build, or `horizon / cycle` analytically replicated copies of one cycle
//! in [`super::profile`] — merges back to a result bitwise-identical to
//! the sequential sweep (locked down end-to-end by
//! `tests/analysis_parity.rs`).
//!
//! [`BankSweep`] is the per-worker driver: a contiguous offset range,
//! private scratch ([`HappySet`]) and a private [`AccumBank`], so the
//! per-holiday loop performs zero heap allocations.  [`finalize_bank`]
//! assembles the merged global bank into the public [`ScheduleAnalysis`]
//! (trailing stretch, observed period and the float statistics derived
//! column-wise), and [`totals_from_bank`] is the totals-only fast path
//! that skips the per-node assembly and float work entirely.

use std::ops::Range;

use fhg_graph::{kernels, Graph, HappySet};

use super::checker::HolidayChecker;
use super::{AnalysisTotals, NodeAnalysis, ScheduleAnalysis};

/// Sentinel for "no offset/gap recorded yet" in the packed accumulators
/// (horizons never reach `u64::MAX`).
pub(super) const NONE: u64 = u64::MAX;

/// The `uniform` column's word-mask value for "every gap observed so far
/// equals the first" (`0` once broken) — a mask, so the column composes
/// directly with the kernel blends.
pub(super) const UNIFORM: u64 = u64::MAX;

/// Per-node accumulator of one horizon segment — the array-of-structs
/// reference plane (see the module docs): the Sequential engine runs on it
/// and the [`AccumBank`] column algebra is property-tested against it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct NodeAccum {
    /// Offset of the first happy holiday in the segment (`NONE` if none).
    pub(super) first: u64,
    /// Offset of the last happy holiday in the segment (`NONE` if none).
    pub(super) last: u64,
    /// Happy appearances in the segment.
    pub(super) happy: u64,
    /// Sum of the gaps between consecutive happy holidays in the segment.
    pub(super) gap_sum: u64,
    /// Number of such gaps.
    pub(super) gap_count: u64,
    /// The first gap observed (the candidate period); `NONE` if no gaps.
    pub(super) first_gap: u64,
    /// Largest `gap - 1` streak between happy holidays inside the segment.
    pub(super) max_streak: u64,
    /// Whether every gap observed so far equals `first_gap`.
    pub(super) uniform: bool,
}

impl NodeAccum {
    pub(super) fn empty() -> Self {
        NodeAccum {
            first: NONE,
            last: NONE,
            happy: 0,
            gap_sum: 0,
            gap_count: 0,
            first_gap: NONE,
            max_streak: 0,
            uniform: true,
        }
    }

    /// Absorbs one happy appearance at `offset` — the sequential step shared
    /// by the reference sweep and the bank's property tests.  Offsets must
    /// arrive in strictly increasing order within one accumulator.
    #[inline]
    pub(super) fn record(&mut self, offset: u64) {
        self.happy += 1;
        if self.last == NONE {
            self.first = offset;
        } else {
            let gap = offset - self.last;
            self.max_streak = self.max_streak.max(gap - 1);
            self.gap_sum += gap;
            self.gap_count += 1;
            apply_gap_candidate(self, gap);
        }
        self.last = offset;
    }
}

/// Folds segment `s` (the next contiguous stretch of the horizon) into the
/// running accumulator `g`.  This is exactly the arithmetic the sequential
/// sweep performs, applied to segment summaries: the boundary gap between
/// `g`'s last happy offset and `s`'s first one is processed first, then `s`'s
/// internal gaps are absorbed in order — so the merged result is
/// bitwise-identical to a single sequential pass regardless of where the
/// horizon was cut.
pub(super) fn merge_node(g: &mut NodeAccum, s: &NodeAccum) {
    if s.happy == 0 {
        return;
    }
    if g.last == NONE {
        g.first = s.first;
        // The leading unhappy stretch before the very first happy holiday.
        g.max_streak = g.max_streak.max(s.first);
    } else {
        let gap = s.first - g.last;
        g.max_streak = g.max_streak.max(gap - 1);
        g.gap_sum += gap;
        g.gap_count += 1;
        apply_gap_candidate(g, gap);
    }
    g.max_streak = g.max_streak.max(s.max_streak);
    g.gap_sum += s.gap_sum;
    g.gap_count += s.gap_count;
    if s.gap_count > 0 {
        apply_gap_candidate(g, s.first_gap);
        if !s.uniform {
            g.uniform = false;
        }
    }
    g.happy += s.happy;
    g.last = s.last;
}

pub(super) fn apply_gap_candidate(g: &mut NodeAccum, gap: u64) {
    if g.first_gap == NONE {
        g.first_gap = gap;
    } else if g.first_gap != gap {
        g.uniform = false;
    }
}

/// The struct-of-arrays accumulator bank: one contiguous `u64` column per
/// statistic, same semantics per lane as one [`NodeAccum`] (the `uniform`
/// column stores the [`UNIFORM`] word mask instead of a bool).  See the
/// module docs for the column layout and merge algebra.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct AccumBank {
    pub(super) count: Vec<u64>,
    pub(super) first: Vec<u64>,
    pub(super) last: Vec<u64>,
    pub(super) gap_sum: Vec<u64>,
    pub(super) gap_count: Vec<u64>,
    pub(super) first_gap: Vec<u64>,
    pub(super) max_streak: Vec<u64>,
    pub(super) uniform: Vec<u64>,
}

impl AccumBank {
    /// An all-empty bank for `n` nodes.
    pub(crate) fn new(n: usize) -> Self {
        let mut bank = AccumBank {
            count: Vec::new(),
            first: Vec::new(),
            last: Vec::new(),
            gap_sum: Vec::new(),
            gap_count: Vec::new(),
            first_gap: Vec::new(),
            max_streak: Vec::new(),
            uniform: Vec::new(),
        };
        bank.reset(n);
        bank
    }

    /// Number of node lanes.
    pub(crate) fn len(&self) -> usize {
        self.count.len()
    }

    /// Resets every lane to the empty accumulator, resizing to `n` lanes
    /// (no reallocation when `n` already fits — the scratch-reuse path of
    /// the zero-allocation derive).
    pub(crate) fn reset(&mut self, n: usize) {
        for (col, empty) in [
            (&mut self.count, 0),
            (&mut self.first, NONE),
            (&mut self.last, NONE),
            (&mut self.gap_sum, 0),
            (&mut self.gap_count, 0),
            (&mut self.first_gap, NONE),
            (&mut self.max_streak, 0),
            (&mut self.uniform, UNIFORM),
        ] {
            col.clear();
            col.resize(n, empty);
        }
    }

    /// Sizes every column to `n` lanes without initialising them (contents
    /// unspecified) — for out-of-place folds that fully overwrite every
    /// lane.  Steady-state cost on a warm scratch bank: none.
    pub(crate) fn resize_lanes(&mut self, n: usize) {
        for col in [
            &mut self.count,
            &mut self.first,
            &mut self.last,
            &mut self.gap_sum,
            &mut self.gap_count,
            &mut self.first_gap,
            &mut self.max_streak,
            &mut self.uniform,
        ] {
            col.resize(n, 0);
        }
    }

    /// Absorbs one happy appearance of node `p` at `offset` — the scalar
    /// step of [`NodeAccum::record`], transposed onto the columns.  Offsets
    /// must arrive in strictly increasing order within one lane.
    #[inline]
    pub(super) fn record(&mut self, p: usize, offset: u64) {
        self.count[p] += 1;
        let last = self.last[p];
        if last == NONE {
            self.first[p] = offset;
        } else {
            let gap = offset - last;
            self.max_streak[p] = self.max_streak[p].max(gap - 1);
            self.gap_sum[p] += gap;
            self.gap_count[p] += 1;
            let fg = self.first_gap[p];
            if fg == NONE {
                self.first_gap[p] = gap;
            } else if fg != gap {
                self.uniform[p] = 0;
            }
        }
        self.last[p] = offset;
    }

    /// Resets one lane to the empty accumulator — the unit of the
    /// incremental patch path, which re-replays a single node's attendance
    /// offsets after a [`crate::schedulers::residue::RowChange`] without
    /// touching any other lane.  Same empties as [`AccumBank::reset`].
    pub(crate) fn clear_lane(&mut self, p: usize) {
        self.count[p] = 0;
        self.first[p] = NONE;
        self.last[p] = NONE;
        self.gap_sum[p] = 0;
        self.gap_count[p] = 0;
        self.first_gap[p] = NONE;
        self.max_streak[p] = 0;
        self.uniform[p] = UNIFORM;
    }

    /// One lane as a [`NodeAccum`] — the bridge the property tests compare
    /// through.
    #[cfg(test)]
    pub(super) fn node(&self, p: usize) -> NodeAccum {
        NodeAccum {
            first: self.first[p],
            last: self.last[p],
            happy: self.count[p],
            gap_sum: self.gap_sum[p],
            gap_count: self.gap_count[p],
            first_gap: self.first_gap[p],
            max_streak: self.max_streak[p],
            uniform: self.uniform[p] != 0,
        }
    }

    /// Folds segment bank `s` into the running bank `self` — the
    /// column-wise transposition of [`merge_node`] (see the module docs for
    /// the step-by-step algebra), **global semantics**: lanes seeing their
    /// first attendance also account the leading unhappy stretch before it,
    /// exactly like merging into the empty global accumulator.
    /// Bitwise-identical to applying [`merge_node`] lane by lane, which the
    /// property tests pin.
    ///
    /// # Panics
    /// Panics if the lane counts differ.
    pub(crate) fn merge_from(&mut self, s: &AccumBank, cols: &mut ColumnScratch) {
        let n = self.len();
        assert_eq!(n, s.len(), "bank lane count mismatch");
        cols.ensure(n);
        let ColumnScratch {
            m0: active, m1: take_first, m2: boundary, v0: gap, v1: t1, v2: t2, ..
        } = cols;

        // Masks from the pre-merge state: A (segment active), E (g empty,
        // take s's first), B (boundary gap between g.last and s.first).
        kernels::mask_ne_scalar(active, &s.count, 0);
        kernels::mask_eq_scalar(take_first, &self.last, NONE);
        kernels::and_assign(take_first, active);
        kernels::mask_ne_scalar(boundary, &self.last, NONE);
        kernels::and_assign(boundary, active);

        // Boundary gap column, zeroed outside B (live lanes have
        // s.first > g.last, so the subtraction never wraps there).
        kernels::wrapping_sub_into(gap, &s.first, &self.last);
        kernels::and_assign(gap, boundary);

        // Boundary streak: max_streak = max(max_streak, (gap - 1) & B).
        t1.copy_from_slice(gap);
        kernels::wrapping_scale_offset(t1, 1, u64::MAX);
        kernels::and_assign(t1, boundary);
        kernels::max_assign(&mut self.max_streak, t1);

        // Take-first lanes: adopt s.first and account the leading unhappy
        // stretch before it.
        t1.copy_from_slice(&s.first);
        kernels::and_assign(t1, take_first);
        kernels::max_assign(&mut self.max_streak, t1);
        kernels::blend_assign(&mut self.first, take_first, &s.first);

        // Boundary gap into the sums: gap is already zeroed outside B, the
        // count gets +1 exactly under B.
        kernels::saturating_add_scaled(&mut self.gap_sum, gap, 1);
        t1.fill(0);
        kernels::blend_scalar_assign(t1, boundary, 1);
        kernels::saturating_add_scaled(&mut self.gap_count, t1, 1);

        // Boundary first-gap candidate, on the pre-blend first_gap: set it
        // where it was NONE, break uniformity where it differs from gap.
        kernels::mask_eq_scalar(t1, &self.first_gap, NONE);
        kernels::mask_ne_scalar(t2, &self.first_gap, NONE);
        kernels::and_assign(t2, boundary);
        // take_first is dead from here on; reuse its column as a third temp.
        let t3 = take_first;
        kernels::mask_ne_into(t3, &self.first_gap, gap);
        kernels::and_assign(t2, t3);
        kernels::andnot_assign(&mut self.uniform, t2);
        kernels::and_assign(t1, boundary);
        kernels::blend_assign(&mut self.first_gap, t1, gap);

        // Segment interior: an inactive segment's columns hold exact
        // zero/sentinel values, so these folds need no masking.
        kernels::max_assign(&mut self.max_streak, &s.max_streak);
        kernels::saturating_add_scaled(&mut self.gap_sum, &s.gap_sum, 1);
        kernels::saturating_add_scaled(&mut self.gap_count, &s.gap_count, 1);
        kernels::saturating_add_scaled(&mut self.count, &s.count, 1);

        // Segment first-gap candidate under sgc = [s.gap_count != 0], on
        // the post-boundary first_gap (matching the scalar order), plus the
        // segment's own broken-uniformity verdict.
        let sgc = boundary;
        kernels::mask_ne_scalar(sgc, &s.gap_count, 0);
        kernels::mask_eq_scalar(t1, &self.first_gap, NONE);
        kernels::and_assign(t1, sgc);
        kernels::mask_ne_scalar(t2, &self.first_gap, NONE);
        kernels::and_assign(t2, sgc);
        kernels::mask_ne_into(t3, &self.first_gap, &s.first_gap);
        kernels::and_assign(t2, t3);
        kernels::andnot_assign(&mut self.uniform, t2);
        kernels::blend_assign(&mut self.first_gap, t1, &s.first_gap);
        kernels::mask_eq_scalar(t3, &s.uniform, 0);
        kernels::and_assign(t3, sgc);
        kernels::andnot_assign(&mut self.uniform, t3);

        // Endpoints.
        kernels::blend_assign(&mut self.last, active, &s.last);
    }
}

/// Reusable mask/temporary columns for the bank algebra — allocated once
/// per analysis (or owned by a `DeriveScratch` for the zero-allocation
/// serving path), never per holiday.
#[derive(Debug, Default)]
pub(crate) struct ColumnScratch {
    pub(super) m0: Vec<u64>,
    pub(super) m1: Vec<u64>,
    pub(super) m2: Vec<u64>,
    pub(super) v0: Vec<u64>,
    pub(super) v1: Vec<u64>,
    pub(super) v2: Vec<u64>,
    /// The one float column (the `mean_gap` finalise output).
    pub(super) f0: Vec<f64>,
}

impl ColumnScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Sizes every column to `n` lanes (contents unspecified — every user
    /// fully overwrites the lanes it reads).
    pub(crate) fn ensure(&mut self, n: usize) {
        for col in
            [&mut self.m0, &mut self.m1, &mut self.m2, &mut self.v0, &mut self.v1, &mut self.v2]
        {
            col.resize(n, 0);
        }
        self.f0.resize(n, 0.0);
    }
}

/// One worker's slice of the horizon on the production (bank) plane: a
/// contiguous offset range, private scratch, and the per-node column bank.
pub(super) struct BankSweep {
    /// Offsets (from the start of the horizon) this shard covers.
    pub(super) offsets: Range<u64>,
    /// Offsets below this bound get an independence check; at or above it the
    /// cached per-residue verdict is replayed (equal to the horizon when no
    /// cache applies).
    pub(super) verify_below: u64,
    pub(super) bank: AccumBank,
    pub(super) happy: HappySet,
    /// Buffered classes awaiting batched verification — only offsets below
    /// `verify_below` pass through it; replayed offsets keep using `happy`.
    pub(super) batch: super::checker::ClassBatch,
    pub(super) all_independent: bool,
    pub(super) total_happiness: u64,
}

impl BankSweep {
    pub(super) fn new(n: usize, capacity: usize, offsets: Range<u64>, verify_below: u64) -> Self {
        BankSweep {
            offsets,
            verify_below,
            bank: AccumBank::new(n),
            happy: HappySet::new(capacity),
            batch: super::checker::ClassBatch::new(capacity),
            all_independent: true,
            total_happiness: 0,
        }
    }

    /// Sweeps the shard's offsets: emit, verify (below `verify_below`,
    /// buffered through the [`super::checker::ClassBatch`] and flushed via
    /// [`HolidayChecker::check_batch`] up to 64 classes at a time), and
    /// count.  Zero heap allocations per holiday: `fill` reuses the shard's
    /// scratch buffers and every column was sized up front.
    pub(super) fn sweep<C: HolidayChecker + ?Sized>(
        &mut self,
        start: u64,
        n: usize,
        checker: &C,
        mut fill: impl FnMut(u64, &mut HappySet),
    ) {
        for offset in self.offsets.clone() {
            let t = start + offset;
            if offset < self.verify_below {
                // Verified offsets emit straight into a batch slot so the
                // set survives until the flush; accumulation reads the
                // same slot (disjoint field captures keep it borrowed
                // immutably while the columns update).
                let happy = self.batch.slot(t);
                fill(t, happy);
                self.total_happiness += happy.len() as u64;
                happy.for_each(|p| {
                    if p >= n {
                        self.all_independent = false;
                    } else {
                        self.bank.record(p, offset);
                    }
                });
                if self.batch.commit() {
                    let ok = self.batch.flush(self.all_independent, checker);
                    self.all_independent &= ok;
                }
            } else {
                // Replayed offsets (the residue cache already holds their
                // verdict) bypass verification entirely.
                fill(t, &mut self.happy);
                self.total_happiness += self.happy.len() as u64;
                self.happy.for_each(|p| {
                    if p >= n {
                        self.all_independent = false;
                    } else {
                        self.bank.record(p, offset);
                    }
                });
            }
        }
        let ok = self.batch.flush(self.all_independent, checker);
        self.all_independent &= ok;
    }
}

/// The Sequential engine's driver — the same sweep loop on the
/// array-of-structs reference plane, deliberately independent of the column
/// kernels (see the module docs).
pub(super) struct ReferenceSweep {
    pub(super) offsets: Range<u64>,
    pub(super) verify_below: u64,
    pub(super) accum: Vec<NodeAccum>,
    pub(super) happy: HappySet,
    pub(super) all_independent: bool,
    pub(super) total_happiness: u64,
}

impl ReferenceSweep {
    pub(super) fn new(n: usize, capacity: usize, offsets: Range<u64>, verify_below: u64) -> Self {
        ReferenceSweep {
            offsets,
            verify_below,
            accum: vec![NodeAccum::empty(); n],
            happy: HappySet::new(capacity),
            all_independent: true,
            total_happiness: 0,
        }
    }

    /// Sweeps the range: emit, verify (below `verify_below`), and count,
    /// with zero heap allocations per holiday.
    pub(super) fn sweep<C: HolidayChecker + ?Sized>(
        &mut self,
        start: u64,
        n: usize,
        checker: &C,
        mut fill: impl FnMut(u64, &mut HappySet),
    ) {
        for offset in self.offsets.clone() {
            let t = start + offset;
            fill(t, &mut self.happy);
            if self.all_independent
                && offset < self.verify_below
                && !checker.check(t, self.happy.as_bitset())
            {
                self.all_independent = false;
            }
            self.total_happiness += self.happy.len() as u64;
            self.happy.for_each(|p| {
                if p >= n {
                    self.all_independent = false;
                } else {
                    self.accum[p].record(offset);
                }
            });
        }
    }
}

/// Splits `horizon` offsets into at most `parts` contiguous, non-empty
/// ranges (earlier ranges get the remainder, matching an even split).
pub(super) fn split_offsets(horizon: u64, parts: usize) -> Vec<Range<u64>> {
    if horizon == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = (parts as u64).min(horizon);
    let base = horizon / parts;
    let remainder = horizon % parts;
    let mut ranges = Vec::with_capacity(parts as usize);
    let mut lo = 0u64;
    for i in 0..parts {
        let len = base + u64::from(i < remainder);
        ranges.push(lo..lo + len);
        lo += len;
    }
    ranges
}

/// Merges the bank shards (in horizon order) into one global bank plus the
/// scalar verdicts, through the exact column merge.
pub(super) fn merge_bank_shards(
    n: usize,
    shards: &[BankSweep],
    cols: &mut ColumnScratch,
) -> (AccumBank, bool, u64) {
    let mut global = AccumBank::new(n);
    let mut all_independent = true;
    let mut total_happiness = 0u64;
    for shard in shards {
        all_independent &= shard.all_independent;
        total_happiness += shard.total_happiness;
        global.merge_from(&shard.bank, cols);
    }
    (global, all_independent, total_happiness)
}

/// Merges reference-plane shard summaries (the Sequential engine runs one)
/// into one global accumulator bank plus the scalar verdicts.
pub(super) fn merge_shards(n: usize, shards: Vec<ReferenceSweep>) -> (Vec<NodeAccum>, bool, u64) {
    let mut global = vec![NodeAccum::empty(); n];
    let mut all_independent = true;
    let mut total_happiness = 0u64;
    for shard in &shards {
        all_independent &= shard.all_independent;
        total_happiness += shard.total_happiness;
        for (g, s) in global.iter_mut().zip(&shard.accum) {
            merge_node(g, s);
        }
    }
    (global, all_independent, total_happiness)
}

/// Assembles merged global accumulators into the final [`ScheduleAnalysis`]
/// on the reference plane — the trailing unhappy stretch, the observed
/// period and the float statistics derived with scalar arithmetic.  The
/// bank plane's [`finalize_bank`] must stay bitwise-identical to this.
pub(super) fn finalize(
    scheduler: String,
    horizon: u64,
    graph: &Graph,
    global: Vec<NodeAccum>,
    all_independent: bool,
    total_happiness: u64,
) -> ScheduleAnalysis {
    let per_node: Vec<NodeAnalysis> = global
        .iter()
        .enumerate()
        .map(|(p, a)| {
            // Account for the trailing unhappy stretch.
            let trailing = if a.last == NONE { horizon } else { horizon - 1 - a.last };
            let max_unhappiness = a.max_streak.max(trailing);
            let observed_period = (a.uniform && a.first_gap != NONE).then_some(a.first_gap);
            let mean_gap =
                if a.gap_count > 0 { a.gap_sum as f64 / a.gap_count as f64 } else { f64::NAN };
            NodeAnalysis {
                node: p,
                degree: graph.degree(p),
                happy_count: a.happy,
                max_unhappiness,
                observed_period,
                first_happy: (a.first != NONE).then_some(a.first),
                mean_gap,
            }
        })
        .collect();

    let never_happy = per_node.iter().filter(|n| n.happy_count == 0).map(|n| n.node).collect();
    ScheduleAnalysis {
        scheduler,
        horizon,
        mean_happy_set_size: if horizon == 0 {
            0.0
        } else {
            total_happiness as f64 / horizon as f64
        },
        per_node,
        all_happy_sets_independent: all_independent,
        never_happy,
        total_happiness,
    }
}

/// Assembles a merged global bank into the final [`ScheduleAnalysis`]:
/// `mean_gap` through the u64→f64 ratio kernel (with its explicit-NaN
/// contract), then one streaming pass over the columns assembles the
/// per-node structs, folding the trailing unhappy stretch inline.
/// Bitwise-identical to [`finalize`] by construction (pinned by the
/// property tests and the parity suite).
pub(super) fn finalize_bank(
    scheduler: String,
    horizon: u64,
    graph: &Graph,
    bank: &mut AccumBank,
    all_independent: bool,
    total_happiness: u64,
    cols: &mut ColumnScratch,
) -> ScheduleAnalysis {
    let n = bank.len();
    cols.ensure(n);
    let mean_gap = &mut cols.f0;
    kernels::ratio_to_f64(mean_gap, &bank.gap_sum, &bank.gap_count);

    // Re-slices prove the common length to LLVM, so the assembly loop
    // indexes every column without bounds checks.
    let count = &bank.count[..n];
    let first = &bank.first[..n];
    let last = &bank.last[..n];
    let first_gap = &bank.first_gap[..n];
    let streak = &bank.max_streak[..n];
    let uniform = &bank.uniform[..n];
    let mean_gap = &mean_gap[..n];
    let per_node: Vec<NodeAnalysis> = (0..n)
        .map(|p| {
            // Account for the trailing unhappy stretch.
            let trailing = if last[p] == NONE { horizon } else { horizon - 1 - last[p] };
            NodeAnalysis {
                node: p,
                degree: graph.degree(p),
                happy_count: count[p],
                max_unhappiness: streak[p].max(trailing),
                observed_period: (uniform[p] != 0 && first_gap[p] != NONE).then_some(first_gap[p]),
                first_happy: (first[p] != NONE).then_some(first[p]),
                mean_gap: mean_gap[p],
            }
        })
        .collect();

    // Never-happy straight off the count column (one 8-byte lane per node
    // instead of re-walking the 72-byte analysis structs).
    let never_happy = count.iter().enumerate().filter(|(_, &c)| c == 0).map(|(p, _)| p).collect();
    ScheduleAnalysis {
        scheduler,
        horizon,
        mean_happy_set_size: if horizon == 0 {
            0.0
        } else {
            total_happiness as f64 / horizon as f64
        },
        per_node,
        all_happy_sets_independent: all_independent,
        never_happy,
        total_happiness,
    }
}

/// The totals-only fast path: reduces a merged global bank straight to the
/// whole-schedule aggregates in **one streaming pass over five columns** —
/// no `NodeAnalysis` assembly, no per-node float work (`mean_gap` is never
/// computed), no column writes at all.  Matches the aggregate view of the
/// full [`finalize_bank`] output by construction.
pub(super) fn totals_from_bank(
    horizon: u64,
    bank: &AccumBank,
    all_independent: bool,
    total_happiness: u64,
) -> AnalysisTotals {
    let n = bank.len();
    let count = &bank.count[..n];
    let last = &bank.last[..n];
    let first_gap = &bank.first_gap[..n];
    let streak = &bank.max_streak[..n];
    let uniform = &bank.uniform[..n];
    let mut max_unhappiness = 0u64;
    let mut all_periodic = true;
    let mut never_happy = 0u64;
    for p in 0..n {
        let trailing = if last[p] == NONE { horizon } else { horizon - 1 - last[p] };
        max_unhappiness = max_unhappiness.max(streak[p].max(trailing));
        all_periodic &= uniform[p] != 0 && first_gap[p] != NONE;
        never_happy += u64::from(count[p] == 0);
    }
    AnalysisTotals {
        horizon,
        total_happiness,
        mean_happy_set_size: if horizon == 0 {
            0.0
        } else {
            total_happiness as f64 / horizon as f64
        },
        max_unhappiness,
        all_periodic,
        never_happy,
        all_happy_sets_independent: all_independent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_offsets_covers_the_horizon_exactly() {
        for (horizon, parts) in [(10u64, 3usize), (7, 8), (1, 1), (64, 4), (5, 5)] {
            let ranges = split_offsets(horizon, parts);
            assert!(ranges.len() <= parts);
            assert!(ranges.iter().all(|r| !r.is_empty()), "no empty shards");
            let mut expected = 0u64;
            for r in &ranges {
                assert_eq!(r.start, expected, "contiguous coverage");
                expected = r.end;
            }
            assert_eq!(expected, horizon);
        }
        assert!(split_offsets(0, 4).is_empty());
        assert!(split_offsets(9, 0).is_empty());
    }

    #[test]
    fn record_matches_a_hand_computed_sequence() {
        let mut a = NodeAccum::empty();
        for offset in [2u64, 4, 6, 11] {
            a.record(offset);
        }
        assert_eq!(a.first, 2);
        assert_eq!(a.last, 11);
        assert_eq!(a.happy, 4);
        assert_eq!(a.gap_sum, 9);
        assert_eq!(a.gap_count, 3);
        assert_eq!(a.first_gap, 2);
        assert_eq!(a.max_streak, 4, "the 6 -> 11 gap leaves a streak of 4");
        assert!(!a.uniform, "gap 5 breaks the candidate period 2");
    }

    #[test]
    fn merging_split_segments_equals_one_sequential_pass() {
        let offsets = [1u64, 3, 5, 12, 13, 20];
        let mut sequential = NodeAccum::empty();
        for &o in &offsets {
            sequential.record(o);
        }
        let mut whole = NodeAccum::empty();
        merge_node(&mut whole, &sequential);
        // Every split point must reproduce the same merged accumulator.
        for cut in 0..=offsets.len() {
            let (lo, hi) = offsets.split_at(cut);
            let mut a = NodeAccum::empty();
            let mut b = NodeAccum::empty();
            lo.iter().for_each(|&o| a.record(o));
            hi.iter().for_each(|&o| b.record(o));
            let mut merged = NodeAccum::empty();
            merge_node(&mut merged, &a);
            merge_node(&mut merged, &b);
            assert_eq!(merged, whole, "cut at {cut}");
        }
    }

    /// Deterministic per-lane offset scripts exercising every merge branch:
    /// empty lanes, single attendances, uniform and broken-uniformity gap
    /// structures on either side of the cut.
    fn lane_scripts() -> Vec<Vec<u64>> {
        vec![
            vec![],
            vec![0],
            vec![5],
            vec![0, 1, 2, 3],
            vec![2, 4, 6, 8],
            vec![1, 4, 5, 9],
            vec![0, 7],
            vec![3, 3 + 64],
            vec![10, 11, 30],
        ]
    }

    #[test]
    fn bank_record_matches_node_accum_per_lane() {
        let scripts = lane_scripts();
        let mut bank = AccumBank::new(scripts.len());
        let mut reference: Vec<NodeAccum> = scripts.iter().map(|_| NodeAccum::empty()).collect();
        // Interleave offset-major, as the sweep does.
        for offset in 0..40u64 {
            for (p, script) in scripts.iter().enumerate() {
                if script.contains(&offset) {
                    bank.record(p, offset);
                    reference[p].record(offset);
                }
            }
        }
        for (p, expected) in reference.iter().enumerate() {
            assert_eq!(&bank.node(p), expected, "lane {p}");
        }
    }

    #[test]
    fn bank_merge_is_bitwise_identical_to_merge_node_at_every_cut() {
        let scripts = lane_scripts();
        let n = scripts.len();
        for cut in 0..=40u64 {
            // Reference: per-node scalar merge of the two segment summaries.
            let mut expected: Vec<NodeAccum> = Vec::new();
            for script in &scripts {
                let mut lo = NodeAccum::empty();
                let mut hi = NodeAccum::empty();
                for &o in script {
                    if o < cut {
                        lo.record(o);
                    } else {
                        hi.record(o);
                    }
                }
                let mut merged = NodeAccum::empty();
                merge_node(&mut merged, &lo);
                merge_node(&mut merged, &hi);
                expected.push(merged);
            }
            // Bank plane: the same segments as column banks, merged twice
            // into an empty global (exactly what the sharded engine does).
            let mut lo_bank = AccumBank::new(n);
            let mut hi_bank = AccumBank::new(n);
            for (p, script) in scripts.iter().enumerate() {
                for &o in script {
                    if o < cut {
                        lo_bank.record(p, o);
                    } else {
                        hi_bank.record(p, o);
                    }
                }
            }
            let mut global = AccumBank::new(n);
            let mut cols = ColumnScratch::new();
            global.merge_from(&lo_bank, &mut cols);
            global.merge_from(&hi_bank, &mut cols);
            for (p, e) in expected.iter().enumerate() {
                assert_eq!(&global.node(p), e, "cut {cut}, lane {p}");
            }
        }
    }

    #[test]
    fn finalize_bank_is_bitwise_identical_to_finalize() {
        use fhg_graph::generators::structured::path;
        let scripts = lane_scripts();
        let n = scripts.len();
        let graph = path(n);
        for horizon in [0u64, 1, 12, 31, 40, 100] {
            let mut accums: Vec<NodeAccum> = Vec::new();
            let mut bank = AccumBank::new(n);
            for (p, script) in scripts.iter().enumerate() {
                let mut seg = NodeAccum::empty();
                for &o in script.iter().filter(|&&o| o < horizon) {
                    seg.record(o);
                    bank.record(p, o);
                }
                // Route through the empty-global merge so the leading
                // stretch is accounted on both planes.
                let mut g = NodeAccum::empty();
                merge_node(&mut g, &seg);
                accums.push(g);
            }
            let mut global = AccumBank::new(n);
            let mut cols = ColumnScratch::new();
            global.merge_from(&bank, &mut cols);

            let expected = finalize("x".to_string(), horizon, &graph, accums, true, 7);
            let got =
                finalize_bank("x".to_string(), horizon, &graph, &mut global, true, 7, &mut cols);
            assert_eq!(got.per_node.len(), expected.per_node.len());
            for (a, b) in got.per_node.iter().zip(&expected.per_node) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.happy_count, b.happy_count, "h {horizon} node {}", a.node);
                assert_eq!(a.max_unhappiness, b.max_unhappiness, "h {horizon} node {}", a.node);
                assert_eq!(a.observed_period, b.observed_period, "h {horizon} node {}", a.node);
                assert_eq!(a.first_happy, b.first_happy, "h {horizon} node {}", a.node);
                assert_eq!(
                    a.mean_gap.to_bits(),
                    b.mean_gap.to_bits(),
                    "h {horizon} node {} (NaN-aware)",
                    a.node
                );
            }
            assert_eq!(got.never_happy, expected.never_happy);
            assert_eq!(got.mean_happy_set_size.to_bits(), expected.mean_happy_set_size.to_bits());

            // And the totals-only fast path agrees with the reduced full
            // analysis.
            let mut global2 = AccumBank::new(n);
            global2.merge_from(&bank, &mut cols);
            let totals = totals_from_bank(horizon, &global2, true, 7);
            assert_eq!(totals, expected.totals(), "horizon {horizon}");
        }
    }
}
