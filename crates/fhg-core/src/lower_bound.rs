//! The Theorem 4.1 lower-bound machinery.
//!
//! Theorem 4.1: in any colour-bound schedule (at most one colour happy per
//! holiday, period a function `f` of the colour alone), the periods must
//! satisfy `Σ_c 1/f(c) ≤ 1`; by the Cauchy condensation test the smallest
//! function for which the series converges is `φ(c) = ∏ log^{(i)} c`, hence
//! `f(c) ∈ Ω(φ(c))`.
//!
//! A lower bound cannot be "measured", but each ingredient of the proof can
//! be validated empirically, and this module provides the machinery the E3
//! experiment uses:
//!
//! * [`kraft_sum`] / [`reciprocal_sum`] — the feasibility functional
//!   `Σ 1/f(c)`.
//! * [`greedy_offset_assignment`] — a constructive check: try to actually
//!   pack arithmetic progressions with the demanded periods into the holiday
//!   timeline; packing fails quickly for `f(c) = c` and succeeds for the
//!   Elias-omega periods `f(c) = 2^{ρ(c)}`.
//! * [`max_packable_colors`] — the largest number of colours a period
//!   function can accommodate, demonstrating where each function breaks.

use fhg_codes::{phi, rho_omega};

/// `Σ_{c=1}^{limit} 1/f(c)` — the feasibility functional of Theorem 4.1.
/// A schedule with periods `f(c)` can only exist if the value stays `≤ 1`
/// as `limit → ∞`.
pub fn reciprocal_sum(f: impl Fn(u64) -> f64, limit: u64) -> f64 {
    (1..=limit).map(|c| 1.0 / f(c)).sum()
}

/// The Kraft-style sum `Σ 1/period` of an explicit list of periods.
pub fn kraft_sum(periods: &[u64]) -> f64 {
    periods.iter().map(|&p| 1.0 / p as f64).sum()
}

/// Tries to assign each colour `c` (with demanded period `periods[c-1]`) an
/// offset so that no two colours' arithmetic progressions ever intersect —
/// i.e. constructs an actual colour-bound schedule with the demanded periods.
///
/// Periods need not be powers of two; two progressions `(o₁, p₁)`, `(o₂, p₂)`
/// are disjoint iff `o₁ ≢ o₂ (mod gcd(p₁, p₂))`.  Offsets are chosen
/// greedily (smallest feasible), which is exact for chains of divisibility
/// (e.g. powers of two) and a good constructive witness in general.
///
/// Returns the offsets, or `None` if some colour cannot be placed.
pub fn greedy_offset_assignment(periods: &[u64]) -> Option<Vec<u64>> {
    let mut offsets: Vec<u64> = Vec::with_capacity(periods.len());
    for (i, &p) in periods.iter().enumerate() {
        offsets.push(next_free_offset(&periods[..i], &offsets, p)?);
    }
    Some(offsets)
}

/// Smallest offset in `[0, period)` whose progression avoids every already
/// assigned `(period, offset)` pair, by first-fit search.
///
/// A prior progression whose period shares no common factor with `p`
/// (gcd = 1) collides with every candidate, so the search bails out
/// immediately in that case instead of scanning the whole range.
fn next_free_offset(periods: &[u64], offsets: &[u64], p: u64) -> Option<u64> {
    assert!(p > 0, "periods must be positive");
    if periods.iter().any(|&q| gcd(p, q) == 1) {
        return None;
    }
    'candidates: for candidate in 0..p {
        for (j, &q) in periods.iter().enumerate() {
            let g = gcd(p, q);
            if candidate % g == offsets[j] % g {
                continue 'candidates;
            }
        }
        return Some(candidate);
    }
    None
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The largest `C ≤ cap` such that colours `1..=C` with periods `f(c)` can be
/// packed by [`greedy_offset_assignment`], built incrementally (the greedy
/// choice for colour `c` does not depend on later colours).
pub fn max_packable_colors(f: impl Fn(u64) -> u64, cap: u64) -> u64 {
    let mut periods: Vec<u64> = Vec::new();
    let mut offsets: Vec<u64> = Vec::new();
    for c in 1..=cap {
        let p = f(c);
        match next_free_offset(&periods, &offsets, p) {
            Some(o) => {
                periods.push(p);
                offsets.push(o);
            }
            None => return c - 1,
        }
    }
    cap
}

/// Summary of the Theorem 4.1 validation for one period function — the row
/// format of experiment E3.
#[derive(Debug, Clone)]
pub struct LowerBoundRow {
    /// Name of the period function.
    pub function: String,
    /// `Σ 1/f(c)` up to the sweep limit.
    pub reciprocal_sum: f64,
    /// Largest number of colours packable (capped).
    pub packable_colors: u64,
    /// The cap used for the packing search.
    pub packing_cap: u64,
}

/// Runs the E3 validation for the canonical period functions:
/// linear `f(c) = c`, the threshold `φ(c)`, the achievable Elias-omega
/// period `2^{ρ(c)}`, and the polynomially-padded `c^{1+ε}`.
pub fn lower_bound_table(sum_limit: u64, packing_cap: u64) -> Vec<LowerBoundRow> {
    let omega_period = |c: u64| 1u64 << rho_omega(c).min(62);
    vec![
        LowerBoundRow {
            function: "f(c) = c (linear, infeasible)".into(),
            reciprocal_sum: reciprocal_sum(|c| c as f64, sum_limit),
            packable_colors: max_packable_colors(|c| c, packing_cap),
            packing_cap,
        },
        LowerBoundRow {
            function: "f(c) = phi(c) (Cauchy threshold)".into(),
            reciprocal_sum: reciprocal_sum(|c| phi(c as f64), sum_limit),
            packable_colors: max_packable_colors(|c| phi(c as f64).ceil() as u64, packing_cap),
            packing_cap,
        },
        LowerBoundRow {
            function: "f(c) = c^1.5".into(),
            reciprocal_sum: reciprocal_sum(|c| (c as f64).powf(1.5), sum_limit),
            packable_colors: max_packable_colors(
                |c| (c as f64).powf(1.5).ceil() as u64,
                packing_cap,
            ),
            packing_cap,
        },
        LowerBoundRow {
            function: "f(c) = 2^rho(c) (Elias omega, achievable)".into(),
            reciprocal_sum: reciprocal_sum(|c| (1u64 << rho_omega(c).min(62)) as f64, sum_limit),
            packable_colors: max_packable_colors(omega_period, packing_cap),
            packing_cap,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_periods_cannot_accommodate_many_colors() {
        // f(c) = c: colour 1 would have to be happy every holiday, colour 2
        // every other holiday … already colours {1, 2} cannot coexist.
        assert_eq!(max_packable_colors(|c| c, 50), 1);
        // Even skipping colour 1, the reciprocal sum blows past 1 quickly.
        assert!(reciprocal_sum(|c| c as f64, 10) > 1.0);
    }

    #[test]
    fn omega_periods_pack_arbitrarily_many_colors() {
        let packed = max_packable_colors(|c| 1u64 << rho_omega(c), 120);
        assert_eq!(packed, 120, "the Elias-omega periods are always packable");
        // And the Kraft sum stays at most 1 (prefix-free code).
        let periods: Vec<u64> = (1..=120).map(|c| 1u64 << rho_omega(c)).collect();
        assert!(kraft_sum(&periods) <= 1.0 + 1e-12);
    }

    #[test]
    fn doubling_periods_pack_like_a_binary_code() {
        // f(c) = 2^c is trivially packable (it is the unary-code schedule).
        // The first-fit offsets grow as 2^(c-1) - 1, so keep the cap small.
        assert_eq!(max_packable_colors(|c| 1u64 << c, 14), 14);
    }

    #[test]
    fn greedy_assignment_produces_disjoint_progressions() {
        // Kraft sum is exactly 1: 1/2 + 1/4 + 1/8 + 1/16 + 1/16.
        let periods = vec![2u64, 4, 8, 16, 16];
        let offsets = greedy_offset_assignment(&periods).expect("packable");
        // Exhaustively verify disjointness over one full hyper-period.
        for t in 0..16u64 {
            let owners: Vec<usize> =
                (0..periods.len()).filter(|&i| t % periods[i] == offsets[i] % periods[i]).collect();
            assert!(owners.len() <= 1, "holiday {t} owned by {owners:?}");
        }
    }

    #[test]
    fn greedy_assignment_detects_infeasibility() {
        // Three colours of period 2 cannot coexist.
        assert!(greedy_offset_assignment(&[2, 2, 2]).is_none());
        // Kraft sum > 1 is a certificate of infeasibility.
        assert!(kraft_sum(&[2, 2, 2]) > 1.0);
        // But exactly two of period 2 are fine.
        assert!(greedy_offset_assignment(&[2, 2]).is_some());
    }

    #[test]
    fn phi_is_the_divergence_threshold() {
        // Σ 1/φ(c) grows beyond 1 (the series diverges, so φ itself is not
        // attainable as an exact period function)…
        assert!(reciprocal_sum(|c| phi(c as f64), 100_000) > 1.0);
        // …while a quadratic padding converges comfortably: the tail
        // Σ_{c>=2} 1/c² = π²/6 - 1 ≈ 0.645 stays below 1.
        let tail: f64 = (2..=100_000u64).map(|c| 1.0 / (c * c) as f64).sum();
        assert!(tail < 1.0);
    }

    #[test]
    fn lower_bound_table_has_expected_shape() {
        let table = lower_bound_table(10_000, 64);
        assert_eq!(table.len(), 4);
        let linear = &table[0];
        let phi_row = &table[1];
        let omega = &table[3];
        assert!(linear.reciprocal_sum > 1.0);
        assert!(omega.reciprocal_sum <= 1.0);
        assert_eq!(linear.packable_colors, 1);
        assert_eq!(omega.packable_colors, 64);
        // The harmonic (linear) series dwarfs the φ series, and the φ series
        // itself already exceeds the feasibility threshold of 1.
        assert!(linear.reciprocal_sum > phi_row.reciprocal_sum);
        assert!(phi_row.reciprocal_sum > 1.0);
    }

    proptest! {
        #[test]
        fn packing_respects_the_kraft_certificate(periods in proptest::collection::vec(1u64..64, 1..12)) {
            // If the greedy packer succeeds, verify by brute force that the
            // progressions are indeed pairwise disjoint.
            if let Some(offsets) = greedy_offset_assignment(&periods) {
                let hyper_period = periods.iter().fold(1u64, |acc, &p| acc.saturating_mul(p));
                let horizon: u64 = 2u64.saturating_mul(hyper_period.min(100_000));
                for t in 0..horizon.min(4096) {
                    let owners = (0..periods.len())
                        .filter(|&i| t % periods[i] == offsets[i] % periods[i])
                        .count();
                    prop_assert!(owners <= 1);
                }
            } else {
                // Greedy failure with a Kraft sum <= 1 is possible in theory
                // (greedy is not complete for arbitrary periods), but for
                // power-of-two periods greedy is exact: check that case.
                if periods.iter().all(|p| p.is_power_of_two()) {
                    prop_assert!(kraft_sum(&periods) > 1.0);
                }
            }
        }
    }
}
