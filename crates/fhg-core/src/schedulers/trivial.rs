//! The trivial sequential scheduler (§4, Example 1).
//!
//! Nodes are "coloured" sequentially `0, 1, …, n-1` and node `p` is happy at
//! holiday `t` exactly when `t ≡ p (mod n)`.  No two adjacent nodes are ever
//! happy together (no two nodes at all are), but `mul(p) = n` for everyone —
//! the canonical example of a schedule whose guarantee depends on a *global*
//! property of the graph, which the paper's algorithms are designed to avoid.

use fhg_graph::{Graph, HappySet, NodeId};

use crate::scheduler::Scheduler;
use crate::schedulers::residue::ResidueSchedule;

/// One node per holiday, cycling through all `n` nodes.
#[derive(Debug, Clone)]
pub struct TrivialSequential {
    n: usize,
    /// Residue view `t ≡ p (mod n)` for the sharded analysis; scan-only
    /// because a word-row table for the identity schedule would cost `n²/8`
    /// bytes — the view emits through its `O(n)`-memory residue bucket index
    /// (one divide + one insert per holiday) instead.
    schedule: ResidueSchedule,
}

impl TrivialSequential {
    /// Creates the scheduler for a graph with `graph.node_count()` parents.
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let slots: Vec<u64> = (0..n as u64).collect();
        let schedule = ResidueSchedule::scan_only(slots, vec![(n as u64).max(1); n]);
        TrivialSequential { n, schedule }
    }
}

impl Scheduler for TrivialSequential {
    fn node_count(&self) -> usize {
        self.n
    }

    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        out.reset(self.n);
        if self.n > 0 {
            out.insert((t % self.n as u64) as NodeId);
        }
    }

    fn name(&self) -> &'static str {
        "trivial-sequential"
    }

    fn is_periodic(&self) -> bool {
        true
    }

    fn period(&self, _p: NodeId) -> Option<u64> {
        Some(self.n as u64)
    }

    fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
        Some(self.n as u64)
    }

    fn residue_schedule(&self) -> Option<&ResidueSchedule> {
        Some(&self.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use crate::scheduler::SchedulerExt;
    use fhg_graph::generators::structured::cycle;

    #[test]
    fn exactly_one_node_per_holiday() {
        let g = cycle(5);
        let mut s = TrivialSequential::new(&g);
        assert_eq!(s.happy_set(0), vec![0]);
        assert_eq!(s.happy_set(3), vec![3]);
        assert_eq!(s.happy_set(5), vec![0]);
        assert_eq!(s.happy_set(12), vec![2]);
    }

    #[test]
    fn every_node_has_period_n() {
        let g = cycle(6);
        let mut s = TrivialSequential::new(&g);
        let analysis = analyze_schedule(&g, &mut s, 60);
        for node in &analysis.per_node {
            assert_eq!(node.observed_period, Some(6));
            assert_eq!(node.max_unhappiness, 5);
        }
        assert!(analysis.all_happy_sets_independent);
    }

    #[test]
    fn empty_graph_yields_empty_sets() {
        let g = fhg_graph::Graph::new(0);
        let mut s = TrivialSequential::new(&g);
        assert!(s.happy_set(0).is_empty());
        assert!(s.run(3).iter().all(Vec::is_empty));
    }

    #[test]
    fn metadata() {
        let s = TrivialSequential::new(&cycle(4));
        assert_eq!(s.name(), "trivial-sequential");
        assert!(s.is_periodic());
        assert_eq!(s.period(2), Some(4));
        assert_eq!(s.unhappiness_bound(0), Some(4));
    }
}
