//! The periodic lightweight degree-bound scheduler (§5, Theorem 5.3).
//!
//! Every node `p` of degree `d` picks an integer slot `x_p ∈ [0, 2^{j_p})`
//! with `j_p = ⌈log₂(d+1)⌉`, such that no neighbour's slot is congruent to
//! `x_p` modulo `2^{j_p}`; `p` then hosts every holiday
//! `t ≡ x_p (mod 2^{j_p})`.  The sequential §5.1 algorithm assigns slots in
//! decreasing-degree order (Lemma 5.1 guarantees a free slot always exists);
//! the distributed §5.2 variant runs `⌈log₂(Δ+1)⌉ + 1` phases of a
//! restricted-palette distributed colouring.  Either way every node is happy
//! exactly every `2^{j_p} ≤ 2·d_p` holidays — perfectly periodic, zero
//! communication after setup.

use fhg_coloring::{restricted_greedy_slot, slot_exponent};
use fhg_distributed::{distributed_slot_assignment, SlotAssignmentOutcome};
use fhg_graph::{Graph, HappySet, NodeId};

use crate::scheduler::Scheduler;
use crate::schedulers::residue::ResidueSchedule;

/// The sequential §5.1 periodic degree-bound scheduler.
#[derive(Debug, Clone)]
pub struct PeriodicDegreeBound {
    /// The `(slot, 2^exponent)` assignment as a thread-safe pure function of
    /// the holiday number (word-packed rows inside when within budget).
    schedule: ResidueSchedule,
    exponents: Vec<u32>,
    degrees: Vec<usize>,
}

/// The slot-assignment order for the sequential §5.1 algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentOrder {
    /// Decreasing degree — the order Lemma 5.1 requires for correctness.
    DecreasingDegree,
    /// Increasing degree — deliberately wrong: low-degree nodes pick their
    /// slots first, and since the algorithm's conflict check only looks at
    /// residues modulo the *assignee's own* period, a later high-degree node
    /// can collide with an earlier low-degree neighbour.  Exposed for the E4
    /// ablation (the §6 remark that higher-degree nodes must colour first).
    IncreasingDegree,
    /// Node-id order, also unsound in general.
    Natural,
}

impl PeriodicDegreeBound {
    /// Runs the §5.1 greedy slot assignment in decreasing-degree order.
    ///
    /// # Panics
    /// Never panics: Lemma 5.1 guarantees a slot exists for every node under
    /// this order.
    pub fn new(graph: &Graph) -> Self {
        Self::with_order(graph, AssignmentOrder::DecreasingDegree)
            .expect("Lemma 5.1: decreasing-degree order always finds a slot")
    }

    /// Runs the paper's greedy slot-assignment rule (smallest residue not
    /// blocked modulo the assignee's own period) visiting nodes in the given
    /// order.  Returns `None` if some node finds every residue blocked.
    ///
    /// Only [`AssignmentOrder::DecreasingDegree`] guarantees a *conflict-free*
    /// schedule (Lemma 5.1); other orders may succeed yet produce adjacent
    /// nodes hosting the same holiday — check with
    /// [`PeriodicDegreeBound::verify_no_conflicts`].
    pub fn with_order(graph: &Graph, order: AssignmentOrder) -> Option<Self> {
        let n = graph.node_count();
        let mut nodes: Vec<NodeId> = graph.nodes().collect();
        match order {
            AssignmentOrder::DecreasingDegree => {
                nodes.sort_by_key(|&u| std::cmp::Reverse(graph.degree(u)));
            }
            AssignmentOrder::IncreasingDegree => nodes.sort_by_key(|&u| graph.degree(u)),
            AssignmentOrder::Natural => {}
        }
        let exponents: Vec<u32> = graph.nodes().map(|u| slot_exponent(graph.degree(u))).collect();
        let mut assigned: Vec<Option<u64>> = vec![None; n];
        for &u in &nodes {
            let slot = restricted_greedy_slot(graph, &assigned, u, exponents[u])?;
            assigned[u] = Some(slot);
        }
        let slots: Vec<u64> =
            assigned.into_iter().map(|s| s.expect("all nodes assigned")).collect();
        let schedule = ResidueSchedule::from_exponents(slots, &exponents);
        Some(PeriodicDegreeBound { schedule, exponents, degrees: graph.degrees() })
    }

    /// The slot (residue) of node `p`.
    pub fn slot(&self, p: NodeId) -> u64 {
        self.schedule.slot(p)
    }

    /// The slot exponent `⌈log₂(d_p + 1)⌉` of node `p`.
    pub fn exponent(&self, p: NodeId) -> u32 {
        self.exponents[p]
    }

    /// Lemma 5.2 check: no two adjacent nodes ever host the same holiday,
    /// i.e. their slots differ modulo the smaller of the two periods.
    pub fn verify_no_conflicts(&self, graph: &Graph) -> bool {
        graph.edges().all(|e| {
            let m = 1u64 << self.exponents[e.u].min(self.exponents[e.v]);
            self.schedule.slot(e.u) % m != self.schedule.slot(e.v) % m
        })
    }
}

impl Scheduler for PeriodicDegreeBound {
    fn node_count(&self) -> usize {
        self.schedule.node_count()
    }

    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        self.schedule.fill(t, out);
    }

    fn name(&self) -> &'static str {
        "periodic-degree-bound"
    }

    fn is_periodic(&self) -> bool {
        true
    }

    fn period(&self, p: NodeId) -> Option<u64> {
        Some(1u64 << self.exponents[p])
    }

    fn unhappiness_bound(&self, p: NodeId) -> Option<u64> {
        // Theorem 5.3: the cycle length is at most 2d (and at least d + 1).
        Some((2 * self.degrees[p].max(1)) as u64)
    }

    fn residue_schedule(&self) -> Option<&ResidueSchedule> {
        Some(&self.schedule)
    }
}

/// The distributed §5.2 periodic degree-bound scheduler: the same guarantees
/// as [`PeriodicDegreeBound`], with the slot assignment computed by phased
/// restricted-palette distributed colouring on the LOCAL-model simulator.
#[derive(Debug, Clone)]
pub struct DistributedDegreeBound {
    outcome: SlotAssignmentOutcome,
    degrees: Vec<usize>,
    /// The assignment as a thread-safe pure function of the holiday number.
    schedule: ResidueSchedule,
}

impl DistributedDegreeBound {
    /// Runs the §5.2 phased distributed slot assignment with the given seed.
    pub fn new(graph: &Graph, seed: u64) -> Self {
        let outcome = distributed_slot_assignment(graph, seed);
        let schedule = ResidueSchedule::from_exponents(outcome.slots.clone(), &outcome.exponents);
        DistributedDegreeBound { outcome, degrees: graph.degrees(), schedule }
    }

    /// The underlying slot-assignment outcome (slots, exponents, round counts).
    pub fn outcome(&self) -> &SlotAssignmentOutcome {
        &self.outcome
    }
}

impl Scheduler for DistributedDegreeBound {
    fn node_count(&self) -> usize {
        self.outcome.slots.len()
    }

    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        self.schedule.fill(t, out);
    }

    fn name(&self) -> &'static str {
        "distributed-degree-bound"
    }

    fn is_periodic(&self) -> bool {
        true
    }

    fn period(&self, p: NodeId) -> Option<u64> {
        Some(self.outcome.period(p))
    }

    fn unhappiness_bound(&self, p: NodeId) -> Option<u64> {
        Some((2 * self.degrees[p].max(1)) as u64)
    }

    fn residue_schedule(&self) -> Option<&ResidueSchedule> {
        Some(&self.schedule)
    }

    fn init_rounds(&self) -> u64 {
        self.outcome.stats.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use fhg_graph::generators::structured::{complete, star};
    use fhg_graph::generators::{barabasi_albert, erdos_renyi};
    use proptest::prelude::*;

    #[test]
    fn theorem_5_3_sequential_period_bounds() {
        for seed in 0..5u64 {
            let g = erdos_renyi(70, 0.08, seed);
            let mut s = PeriodicDegreeBound::new(&g);
            let analysis = analyze_schedule(&g, &mut s, 512);
            assert!(analysis.all_happy_sets_independent);
            for node in &analysis.per_node {
                let d = node.degree as u64;
                let period = s.period(node.node).unwrap();
                if d > 0 {
                    assert!(
                        period <= 2 * d,
                        "node {}: period {period} > 2d = {}",
                        node.node,
                        2 * d
                    );
                    assert!(period > d, "period must exceed the degree");
                }
                if period <= 512 / 2 {
                    assert_eq!(node.observed_period, Some(period), "node {}", node.node);
                }
            }
        }
    }

    #[test]
    fn lemma_5_1_no_adjacent_conflicts() {
        let g = erdos_renyi(60, 0.12, 11);
        let s = PeriodicDegreeBound::new(&g);
        for e in g.edges() {
            let m = 1u64 << s.exponent(e.u).min(s.exponent(e.v));
            assert_ne!(s.slot(e.u) % m, s.slot(e.v) % m, "edge ({}, {})", e.u, e.v);
        }
    }

    #[test]
    fn clique_gets_power_of_two_round_robin() {
        let g = complete(6); // degree 5 → exponent 3 → period 8
        let mut s = PeriodicDegreeBound::new(&g);
        for p in g.nodes() {
            assert_eq!(s.period(p), Some(8));
        }
        let analysis = analyze_schedule(&g, &mut s, 64);
        assert!(analysis.all_happy_sets_independent);
        for node in &analysis.per_node {
            assert_eq!(node.observed_period, Some(8));
        }
    }

    #[test]
    fn star_center_period_scales_with_degree_leaves_stay_at_two() {
        let g = star(9);
        let s = PeriodicDegreeBound::new(&g);
        assert_eq!(s.period(0), Some(16)); // degree 8
        for leaf in 1..9 {
            assert_eq!(s.period(leaf), Some(2));
        }
    }

    #[test]
    fn wrong_order_can_create_hosting_conflicts() {
        // The §6 remark ablation: higher-degree nodes must pick their slots
        // before lower-degree ones.  Crafted gadget where id-order assignment
        // produces a conflict:
        //   node 0 — node 1, node 1 — node 3, node 2 — node 3, node 3 — node 4.
        // Id order gives node 1 the value 1 (mod 4), node 2 the value 0
        // (mod 2), and node 3 then greedily takes 2 (mod 4), which collides
        // with node 2 at every holiday t ≡ 2 (mod 4).
        let g = Graph::from_edges(5, [(0, 1), (1, 3), (2, 3), (3, 4)]).unwrap();
        let natural = PeriodicDegreeBound::with_order(&g, AssignmentOrder::Natural)
            .expect("assignment itself succeeds");
        assert!(
            !natural.verify_no_conflicts(&g),
            "the crafted gadget must expose a conflict under id order"
        );
        let correct = PeriodicDegreeBound::with_order(&g, AssignmentOrder::DecreasingDegree)
            .expect("Lemma 5.1");
        assert!(correct.verify_no_conflicts(&g));
    }

    #[test]
    fn wrong_orders_conflict_on_random_graphs_sometimes_but_decreasing_never_does() {
        let mut wrong_order_conflicts = 0usize;
        for seed in 0..150u64 {
            let g = erdos_renyi(20, 0.25, seed);
            let correct = PeriodicDegreeBound::with_order(&g, AssignmentOrder::DecreasingDegree)
                .expect("Lemma 5.1: a slot always exists under decreasing degree");
            assert!(correct.verify_no_conflicts(&g), "Lemma 5.2 violated at seed {seed}");
            for order in [AssignmentOrder::IncreasingDegree, AssignmentOrder::Natural] {
                if let Some(wrong) = PeriodicDegreeBound::with_order(&g, order) {
                    if !wrong.verify_no_conflicts(&g) {
                        wrong_order_conflicts += 1;
                    }
                }
            }
        }
        assert!(
            wrong_order_conflicts > 0,
            "expected the increasing-degree ablation to conflict on at least one of 150 graphs"
        );
    }

    #[test]
    fn distributed_variant_matches_the_same_bounds() {
        let g = erdos_renyi(50, 0.1, 4);
        let mut s = DistributedDegreeBound::new(&g, 9);
        assert!(s.init_rounds() >= 1);
        assert!(s.outcome().verify_no_conflicts(&g));
        let analysis = analyze_schedule(&g, &mut s, 256);
        assert!(analysis.all_happy_sets_independent);
        for node in &analysis.per_node {
            let d = node.degree as u64;
            if d > 0 {
                assert!(s.period(node.node).unwrap() <= 2 * d);
            }
        }
    }

    #[test]
    fn isolated_nodes_host_every_holiday() {
        let g = Graph::new(3);
        let mut s = PeriodicDegreeBound::new(&g);
        assert_eq!(s.happy_set(0), vec![0, 1, 2]);
        assert_eq!(s.happy_set(17), vec![0, 1, 2]);
        assert_eq!(s.period(1), Some(1));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let mut s = PeriodicDegreeBound::new(&g);
        assert!(s.happy_set(5).is_empty());
        let mut d = DistributedDegreeBound::new(&g, 0);
        assert!(d.happy_set(5).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn sequential_and_distributed_agree_on_the_guarantee(seed in 0u64..60) {
            let g = barabasi_albert(60, 2, seed);
            let mut seq = PeriodicDegreeBound::new(&g);
            let mut dist = DistributedDegreeBound::new(&g, seed ^ 0xBEEF);
            let a_seq = analyze_schedule(&g, &mut seq, 300);
            let a_dist = analyze_schedule(&g, &mut dist, 300);
            prop_assert!(a_seq.all_happy_sets_independent);
            prop_assert!(a_dist.all_happy_sets_independent);
            for p in g.nodes() {
                // The periods agree exactly: both are 2^{ceil log2(d+1)}.
                prop_assert_eq!(seq.period(p), dist.period(p));
            }
        }
    }
}
