//! Word-packed emission tables for perfectly periodic schedules.
//!
//! Every perfectly periodic scheduler in the paper assigns node `p` a pair
//! `(slot_p, 2^{j_p})` and wakes `p` exactly when `t ≡ slot_p (mod 2^{j_p})`
//! (§4.2 via prefix-free codes, §5 via degree exponents).  Evaluating that
//! per node costs an `O(n)` scan with a hardware divide per node, every
//! holiday.  A [`ResidueTable`] precomputes, for every distinct exponent `j`
//! and every residue `r < 2^j`, the bitmask of nodes hosting at that residue;
//! emitting a holiday then reduces to OR-ing one precomputed row per distinct
//! exponent into the output [`HappySet`] — `O(#exponents · n/64)` word
//! operations and zero allocations.
//!
//! Memory is `Σ_j 2^j · n/8` bytes over the distinct exponents, which is tiny
//! for the degree distributions the experiments use but can reach `Θ(n·Δ)`
//! on dense graphs, so construction is gated by [`ResidueTable::MAX_BYTES`]
//! and callers keep a per-node scan fallback.

use fhg_graph::{FixedBitSet, HappySet, NodeId};

/// Precomputed hosting rows: `groups` holds, per distinct exponent `j`, the
/// residue mask `2^j - 1` and one bit row per residue.
#[derive(Debug, Clone)]
pub struct ResidueTable {
    n: usize,
    groups: Vec<(u64, Vec<FixedBitSet>)>,
}

impl ResidueTable {
    /// Construction budget for the precomputed rows (bytes).
    pub const MAX_BYTES: usize = 16 << 20;

    /// Builds the table for nodes hosting at `t ≡ slots[p] (mod
    /// 2^{exponents[p]})`.  Returns `None` when the rows would exceed
    /// [`ResidueTable::MAX_BYTES`], in which case callers fall back to their
    /// per-node scan.
    pub fn build(slots: &[u64], exponents: &[u32]) -> Option<Self> {
        debug_assert_eq!(slots.len(), exponents.len());
        let n = slots.len();
        let words = n.div_ceil(64);
        let mut distinct: Vec<u32> = exponents.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let total_rows: u64 = distinct.iter().map(|&j| 1u64 << j).sum();
        if total_rows.checked_mul(words as u64 * 8).is_none_or(|b| b > Self::MAX_BYTES as u64) {
            return None;
        }
        let mut groups: Vec<(u64, Vec<FixedBitSet>)> = distinct
            .iter()
            .map(|&j| ((1u64 << j) - 1, vec![FixedBitSet::new(n); 1 << j]))
            .collect();
        for (p, (&slot, &exp)) in slots.iter().zip(exponents).enumerate() {
            let gi = distinct.binary_search(&exp).expect("exponent is in the distinct list");
            debug_assert!(slot < (1u64 << exp), "slot must be a residue of its period");
            groups[gi].1[slot as usize].insert(p);
        }
        Some(ResidueTable { n, groups })
    }

    /// Number of nodes the table was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Writes the hosting set of holiday `t` into `out` with one word-wise OR
    /// per distinct exponent (and a single cardinality recount at the end).
    /// Resets `out` to the table's capacity.
    pub fn fill(&self, t: u64, out: &mut HappySet) {
        out.reset(self.n);
        out.union_many(self.groups.iter().map(|(mask, rows)| &rows[(t & mask) as usize]));
    }

    /// The nodes hosting at holiday `t`, as a fresh `Vec` (test helper).
    pub fn hosts(&self, t: u64) -> Vec<NodeId> {
        let mut out = HappySet::new(self.n);
        self.fill(t, &mut out);
        out.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference implementation: the per-node scan the table replaces.
    fn scan(slots: &[u64], exponents: &[u32], t: u64) -> Vec<NodeId> {
        (0..slots.len()).filter(|&p| t % (1u64 << exponents[p]) == slots[p]).collect()
    }

    #[test]
    fn matches_scan_on_mixed_exponents() {
        let slots = vec![0, 1, 0, 3, 7, 0];
        let exponents = vec![0, 1, 2, 2, 3, 3];
        let table = ResidueTable::build(&slots, &exponents).expect("tiny table");
        assert_eq!(table.node_count(), 6);
        for t in 0..64u64 {
            assert_eq!(table.hosts(t), scan(&slots, &exponents, t), "holiday {t}");
        }
    }

    #[test]
    fn empty_table() {
        let table = ResidueTable::build(&[], &[]).expect("empty");
        assert!(table.hosts(9).is_empty());
    }

    #[test]
    fn oversized_tables_are_refused() {
        // One node with a 2^40 period would need 2^40 rows: must refuse
        // rather than allocate.
        assert!(ResidueTable::build(&[5], &[40]).is_none());
    }

    #[test]
    fn fill_reuses_the_buffer() {
        let slots = vec![0, 1];
        let exponents = vec![1, 1];
        let table = ResidueTable::build(&slots, &exponents).unwrap();
        let mut out = HappySet::new(2);
        table.fill(0, &mut out);
        assert_eq!(out.to_vec(), vec![0]);
        table.fill(1, &mut out);
        assert_eq!(out.to_vec(), vec![1], "previous holiday's members must be cleared");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn equivalent_to_scan_on_random_assignments(
            seed in 0u64..1000,
            t in 0u64..10_000,
        ) {
            // Derive a pseudo-random (slots, exponents) assignment from the
            // seed with plain arithmetic (no dependence on the RNG stack).
            let n = 1 + (seed % 77) as usize;
            let exponents: Vec<u32> = (0..n).map(|p| ((seed >> (p % 13)) % 6) as u32).collect();
            let slots: Vec<u64> =
                (0..n).map(|p| (seed.wrapping_mul(p as u64 + 3) >> 2) % (1 << exponents[p])).collect();
            let table = ResidueTable::build(&slots, &exponents).expect("small");
            prop_assert_eq!(table.hosts(t), scan(&slots, &exponents, t));
        }
    }
}
