//! Word-packed emission tables and thread-safe views for perfectly periodic
//! schedules.
//!
//! Every perfectly periodic scheduler in the paper assigns node `p` a pair
//! `(slot_p, m_p)` and wakes `p` exactly when `t ≡ slot_p (mod m_p)` — §4.2
//! via prefix-free codes and §5 via degree exponents use power-of-two moduli
//! `m_p = 2^{j_p}`, while the §1/§4 baselines cycle a fixed modulus (`k`
//! colours, `n` nodes).  Evaluating that per node costs an `O(n)` scan with a
//! hardware divide per node, every holiday.  A [`ResidueTable`] precomputes,
//! for every distinct modulus `m` and every residue `r < m`, the bitmask of
//! nodes hosting at that residue; emitting a holiday then reduces to OR-ing
//! one precomputed row per distinct modulus into the output [`HappySet`] —
//! `O(#moduli · n/64)` word operations and zero allocations.
//!
//! [`ResidueSchedule`] bundles the `(slot, modulus)` assignment, the optional
//! table and the schedule's global cycle length into a **pure function of the
//! holiday number** that can be evaluated from any thread through `&self`.
//! It is the view [`crate::scheduler::Scheduler::residue_schedule`] exposes
//! so the analysis can shard horizons across worker threads and verify
//! independence once per residue class instead of once per holiday.
//!
//! Memory is `Σ_m m · n/8` bytes over the distinct moduli, which is tiny for
//! the degree distributions the experiments use but can reach `Θ(n·Δ)` on
//! dense graphs, so construction is gated by [`ResidueTable::MAX_BYTES`] and
//! [`ResidueSchedule::fill`] keeps a per-node scan fallback.

use fhg_graph::{FixedBitSet, HappySet, NodeId};

/// One node's `(slot, modulus)` row replacement: the unit of work a dynamic
/// repair (§6 recolouring) hands to [`ResidueSchedule::apply_row`] and to the
/// incremental profile patch
/// ([`CycleProfile::patch`](crate::analysis::CycleProfile::patch)).  Carries
/// both the old and the new row so downstream caches can retire the old
/// attendance lane and re-verify exactly the classes the new one joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowChange {
    /// The node whose hosting row changed.
    pub node: NodeId,
    /// Previous hosting residue.
    pub old_slot: u64,
    /// Previous hosting modulus.
    pub old_modulus: u64,
    /// New hosting residue.
    pub new_slot: u64,
    /// New hosting modulus.
    pub new_modulus: u64,
}

/// Shared core of the `hosts_into` entry points: runs `fill` on the
/// process-wide per-thread scratch buffer
/// ([`fhg_graph::happy_set::with_thread_scratch`], also behind the
/// `Scheduler::happy_set` shim) and copies the members into `out` (cleared
/// first, ascending) — the steady-state cost is the output copy alone.
fn hosts_into_via(fill: impl FnOnce(&mut HappySet), out: &mut Vec<NodeId>) {
    out.clear();
    fhg_graph::happy_set::with_thread_scratch(|buf| {
        fill(buf);
        // Member extraction through the set-bit kernel (trailing_zeros word
        // scan) rather than the iterator chain — this copy is the whole
        // steady-state cost of the shim.
        buf.for_each(|p| out.push(p));
    });
}

/// Precomputed hosting rows: `groups` holds, per distinct modulus `m`, the
/// modulus and one bit row per residue `r < m`.
#[derive(Debug, Clone)]
pub struct ResidueTable {
    n: usize,
    groups: Vec<(u64, Vec<FixedBitSet>)>,
}

impl ResidueTable {
    /// Construction budget for the precomputed rows (bytes).
    pub const MAX_BYTES: usize = 16 << 20;

    /// Builds the table for nodes hosting at `t ≡ slots[p] (mod
    /// 2^{exponents[p]})`.  Returns `None` when the rows would exceed
    /// [`ResidueTable::MAX_BYTES`], in which case callers fall back to their
    /// per-node scan.
    pub fn build(slots: &[u64], exponents: &[u32]) -> Option<Self> {
        debug_assert_eq!(slots.len(), exponents.len());
        // Periods of 2^40+ would be refused on size anyway; saturating keeps
        // the arithmetic below overflow-free for adversarial exponents.
        let moduli: Vec<u64> =
            exponents.iter().map(|&j| 1u64.checked_shl(j).unwrap_or(u64::MAX)).collect();
        Self::build_moduli(slots, &moduli)
    }

    /// Builds the table for nodes hosting at `t ≡ slots[p] (mod moduli[p])`,
    /// for arbitrary (not necessarily power-of-two) moduli.  Returns `None`
    /// when the rows would exceed [`ResidueTable::MAX_BYTES`].
    ///
    /// # Panics
    /// Panics (in debug builds) if some modulus is zero or some slot is not a
    /// residue of its modulus.
    pub fn build_moduli(slots: &[u64], moduli: &[u64]) -> Option<Self> {
        debug_assert_eq!(slots.len(), moduli.len());
        let n = slots.len();
        let words = n.div_ceil(64);
        let mut distinct: Vec<u64> = moduli.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let total_rows = distinct.iter().try_fold(0u64, |acc, &m| acc.checked_add(m))?;
        if total_rows.checked_mul(words as u64 * 8).is_none_or(|b| b > Self::MAX_BYTES as u64) {
            return None;
        }
        let mut groups: Vec<(u64, Vec<FixedBitSet>)> = distinct
            .iter()
            .map(|&m| {
                debug_assert!(m >= 1, "modulus must be positive");
                (m, vec![FixedBitSet::new(n); m as usize])
            })
            .collect();
        for (p, (&slot, &m)) in slots.iter().zip(moduli).enumerate() {
            let gi = distinct.binary_search(&m).expect("modulus is in the distinct list");
            debug_assert!(slot < m, "slot must be a residue of its modulus");
            groups[gi].1[slot as usize].insert(p);
        }
        Some(ResidueTable { n, groups })
    }

    /// Number of nodes the table was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Writes the hosting set of holiday `t` into `out` by gathering one row
    /// per distinct modulus into a single fused gather+popcount pass over
    /// the output words ([`HappySet::assign_many`] batches the rows and
    /// indexes them in the inner loop): `out` is written exactly once — no
    /// reset memset, no per-row sweep, no cardinality rescan.  Resets `out`
    /// to the table's capacity.
    pub fn fill(&self, t: u64, out: &mut HappySet) {
        out.assign_many(
            self.n,
            self.groups.iter().map(|(m, rows)| {
                let r = if m.is_power_of_two() { t & (m - 1) } else { t % m };
                &rows[r as usize]
            }),
        );
    }

    /// Writes the nodes hosting at holiday `t` into `out` (cleared first,
    /// ascending), reusing a thread-local scratch buffer — zero steady-state
    /// heap allocations once `out` has warmed up to capacity.
    pub fn hosts_into(&self, t: u64, out: &mut Vec<NodeId>) {
        hosts_into_via(|buf| self.fill(t, buf), out);
    }

    /// The nodes hosting at holiday `t`, as a fresh `Vec` (convenience shim
    /// over [`ResidueTable::hosts_into`]).
    pub fn hosts(&self, t: u64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.hosts_into(t, &mut out);
        out
    }
}

/// A perfectly periodic schedule as a pure function of the holiday number:
/// node `p` hosts exactly when `t ≡ slot(p) (mod modulus(p))`.
///
/// Unlike [`crate::scheduler::Scheduler::fill_happy_set`] (which takes `&mut
/// self`), [`ResidueSchedule::fill`] works through `&self`, so any number of
/// threads can evaluate disjoint stretches of the horizon concurrently — the
/// property the sharded analysis relies on.  The schedule repeats with period
/// [`ResidueSchedule::cycle`]: the happy set of holiday `t` depends only on
/// `t mod cycle()`, which is what makes per-residue verification caching
/// sound.
#[derive(Debug, Clone)]
pub struct ResidueSchedule {
    slots: Vec<u64>,
    moduli: Vec<u64>,
    /// Distinct moduli (ascending) with their node counts — keeps the
    /// cycle/attendance recomputation after a row edit at `O(#distinct)`
    /// instead of a full `O(n)` refold.
    mods: Vec<(u64, usize)>,
    cycle: u64,
    /// Precomputed `Σ_p cycle / m_p` (saturating) — the per-cycle attendance
    /// volume.  Cached at construction so the engine-selection budget check
    /// costs O(1) per analysis instead of one divide per node.
    attendance: u64,
    /// Word-packed emission rows; `None` when over the memory budget or the
    /// rows would be too sparse to beat the bucket index.
    table: Option<ResidueTable>,
    /// Residue-bucket emission index; `None` only when the total residue
    /// count exceeds [`ResidueSchedule::MAX_INDEX_ROWS`], in which case
    /// [`ResidueSchedule::fill`] falls back to the per-node scan.
    buckets: Option<BucketIndex>,
}

/// CSR-style `(modulus, residue) -> hosting nodes` index: one hardware divide
/// per **distinct** modulus per holiday and `O(|hosts|)` inserts, with
/// `O(n + Σ_m m)` memory — the emission path for assignments whose bitmap
/// rows would be wasteful (e.g. the trivial scheduler's `n` singleton rows).
#[derive(Debug, Clone)]
struct BucketIndex {
    /// Distinct moduli, ascending, paired with the offset of their first row
    /// in `starts` (group `g` owns rows `row_base[g] .. row_base[g] + m_g`).
    groups: Vec<(u64, usize)>,
    /// Prefix starts into `nodes`, one entry per residue row plus a sentinel.
    starts: Vec<usize>,
    /// Hosting nodes, grouped by (modulus, residue), ascending node id within
    /// a bucket.
    nodes: Vec<NodeId>,
}

impl BucketIndex {
    fn build(slots: &[u64], moduli: &[u64]) -> Option<Self> {
        let mut distinct: Vec<u64> = moduli.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let total_rows = distinct.iter().try_fold(0u64, |acc, &m| acc.checked_add(m))?;
        if total_rows > ResidueSchedule::MAX_INDEX_ROWS {
            return None;
        }
        let mut groups = Vec::with_capacity(distinct.len());
        let mut base = 0usize;
        for &m in &distinct {
            groups.push((m, base));
            base += m as usize;
        }
        // Counting sort of the nodes into their (modulus, residue) bucket.
        let mut starts = vec![0usize; base + 1];
        let row_of = |p: usize| {
            let g = distinct.binary_search(&moduli[p]).expect("modulus is distinct");
            groups[g].1 + slots[p] as usize
        };
        for p in 0..slots.len() {
            starts[row_of(p) + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        let mut cursor = starts.clone();
        let mut nodes = vec![0 as NodeId; slots.len()];
        for p in 0..slots.len() {
            let row = row_of(p);
            nodes[cursor[row]] = p;
            cursor[row] += 1;
        }
        Some(BucketIndex { groups, starts, nodes })
    }

    fn fill(&self, t: u64, out: &mut HappySet) {
        for &(m, base) in &self.groups {
            let r = if m.is_power_of_two() { t & (m - 1) } else { t % m };
            let row = base + r as usize;
            for &p in &self.nodes[self.starts[row]..self.starts[row + 1]] {
                out.insert(p);
            }
        }
    }
}

impl ResidueSchedule {
    /// Builds the schedule hosting node `p` at `t ≡ slots[p] (mod moduli[p])`.
    ///
    /// # Panics
    /// Panics if the lengths differ, some modulus is zero, or some slot is
    /// not a residue of its modulus.
    pub fn new(slots: Vec<u64>, moduli: Vec<u64>) -> Self {
        Self::build(slots, moduli, true)
    }

    /// Like [`ResidueSchedule::new`], but never builds the word-packed table —
    /// for assignments where the rows are provably wasteful, e.g. the trivial
    /// scheduler's `n` singleton rows (`n²/8` bytes to represent `t mod n`).
    ///
    /// # Panics
    /// Same contract as [`ResidueSchedule::new`].
    pub fn scan_only(slots: Vec<u64>, moduli: Vec<u64>) -> Self {
        Self::build(slots, moduli, false)
    }

    /// Residue-count budget for the [`BucketIndex`] (entries, 8 bytes each).
    /// Far above every schedule the paper produces; only astronomically long
    /// periods (e.g. saturated lcm tests) fall back to the per-node scan.
    const MAX_INDEX_ROWS: u64 = 1 << 22;

    fn build(slots: Vec<u64>, moduli: Vec<u64>, with_table: bool) -> Self {
        assert_eq!(slots.len(), moduli.len(), "one modulus per slot");
        for (p, (&slot, &m)) in slots.iter().zip(&moduli).enumerate() {
            assert!(m >= 1, "node {p}: modulus must be positive");
            assert!(slot < m, "node {p}: slot {slot} is not a residue modulo {m}");
        }
        let cycle = moduli.iter().fold(1u64, |acc, &m| lcm_saturating(acc, m));
        let attendance = moduli.iter().fold(0u64, |acc, &m| acc.saturating_add(cycle / m));
        let mut mods: Vec<(u64, usize)> = Vec::new();
        for &m in &moduli {
            match mods.binary_search_by_key(&m, |e| e.0) {
                Ok(i) => mods[i].1 += 1,
                Err(i) => mods.insert(i, (m, 1)),
            }
        }
        let table = if with_table { ResidueTable::build_moduli(&slots, &moduli) } else { None };
        // The bucket index is the table's fallback; when the table exists it
        // would never be read, so skip its counting sort and memory.
        let buckets = if table.is_none() { BucketIndex::build(&slots, &moduli) } else { None };
        ResidueSchedule { slots, moduli, mods, cycle, attendance, table, buckets }
    }

    /// Builds the schedule for power-of-two periods `2^{exponents[p]}` (the
    /// §4.2 / §5 shape).
    ///
    /// # Panics
    /// Panics on length mismatch, exponents ≥ 64, or out-of-range slots.
    pub fn from_exponents(slots: Vec<u64>, exponents: &[u32]) -> Self {
        assert_eq!(slots.len(), exponents.len(), "one exponent per slot");
        let moduli: Vec<u64> = exponents
            .iter()
            .map(|&j| {
                assert!(j < 64, "exponent {j} would overflow the period");
                1u64 << j
            })
            .collect();
        Self::new(slots, moduli)
    }

    /// Number of nodes in the schedule.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// The hosting residue of node `p`.
    pub fn slot(&self, p: NodeId) -> u64 {
        self.slots[p]
    }

    /// The hosting modulus (period) of node `p`.
    pub fn modulus(&self, p: NodeId) -> u64 {
        self.moduli[p]
    }

    /// The global cycle length: the smallest `C` such that the happy set of
    /// holiday `t` depends only on `t mod C` (the lcm of all moduli,
    /// saturating at `u64::MAX` when it overflows — callers compare it
    /// against the horizon, so saturation just disables caching).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total happy appearances over one full cycle: `Σ_p cycle / m_p`
    /// (saturating), precomputed at construction.  This — not the cycle
    /// length — is what bounds the memory of a closed-form
    /// [`CycleProfile`](crate::analysis::CycleProfile), so
    /// [`AnalysisEngine::select`](crate::analysis::AnalysisEngine::select)
    /// budgets on it: a hub-and-spoke degree distribution can pack
    /// `n · cycle / 2` attendances into one cycle even when the cycle itself
    /// is short.  The profile builder also sizes its per-shard event lists
    /// from it, so the class walk never regrows them.
    pub fn attendance_per_cycle(&self) -> u64 {
        self.attendance
    }

    /// Whether the word-packed table was built (diagnostics only; `fill`
    /// falls back to the bucket index, then to a per-node scan).
    pub fn has_table(&self) -> bool {
        self.table.is_some()
    }

    /// Redirects node `p` to host at `t ≡ slot (mod m)`, maintaining every
    /// cached aggregate and emission structure in place — the row-maintenance
    /// primitive behind §6 dynamic repair: an edge event recolours at most
    /// two nodes, and each recolouring is one call here instead of a full
    /// view reconstruction.
    ///
    /// Cost: `O(#distinct moduli)` to refold the cycle and attendance
    /// aggregates, plus two bit flips in the word-packed table.  The table
    /// path allocates only when `m` is a modulus the table has never held
    /// (one new row group, budget-checked against
    /// [`ResidueTable::MAX_BYTES`]; on overflow the table is dropped in
    /// favour of the bucket index).  Without a table the bucket index is
    /// rebuilt, which is `O(n)` and allocates — schedules on the incremental
    /// path are expected to live within the table budget.
    ///
    /// # Panics
    /// Panics if `m` is zero or `slot` is not a residue of `m` (the
    /// construction contract).
    pub fn set_row(&mut self, p: NodeId, slot: u64, m: u64) {
        assert!(m >= 1, "node {p}: modulus must be positive");
        assert!(slot < m, "node {p}: slot {slot} is not a residue modulo {m}");
        let (old_slot, old_m) = (self.slots[p], self.moduli[p]);
        if old_slot == slot && old_m == m {
            return;
        }
        self.slots[p] = slot;
        self.moduli[p] = m;
        // Distinct-modulus counts, then the O(#distinct) aggregate refold.
        let old_gone = {
            let i = self
                .mods
                .binary_search_by_key(&old_m, |e| e.0)
                .expect("old modulus is in the distinct list");
            self.mods[i].1 -= 1;
            if self.mods[i].1 == 0 {
                self.mods.remove(i);
                true
            } else {
                false
            }
        };
        match self.mods.binary_search_by_key(&m, |e| e.0) {
            Ok(i) => self.mods[i].1 += 1,
            Err(i) => self.mods.insert(i, (m, 1)),
        }
        self.cycle = self.mods.iter().fold(1u64, |acc, &(m, _)| lcm_saturating(acc, m));
        let cycle = self.cycle;
        self.attendance = self
            .mods
            .iter()
            .fold(0u64, |acc, &(m, c)| acc.saturating_add((c as u64).saturating_mul(cycle / m)));
        // Emission structures: flip the two table bits in place, or rebuild
        // the bucket index when the rows were never materialised.
        if let Some(table) = self.table.as_mut() {
            if let Ok(gi) = table.groups.binary_search_by_key(&old_m, |g| g.0) {
                table.groups[gi].1[old_slot as usize].remove(p);
                if old_gone {
                    table.groups.remove(gi);
                }
            }
            match table.groups.binary_search_by_key(&m, |g| g.0) {
                Ok(gi) => {
                    table.groups[gi].1[slot as usize].insert(p);
                }
                Err(gi) => {
                    let n = self.slots.len();
                    let words = n.div_ceil(64) as u64;
                    let rows = table
                        .groups
                        .iter()
                        .try_fold(0u64, |acc, g| acc.checked_add(g.0))
                        .and_then(|acc| acc.checked_add(m));
                    let fits = rows
                        .and_then(|r| r.checked_mul(words * 8))
                        .is_some_and(|b| b <= ResidueTable::MAX_BYTES as u64);
                    if fits {
                        let mut rows = vec![FixedBitSet::new(n); m as usize];
                        rows[slot as usize].insert(p);
                        table.groups.insert(gi, (m, rows));
                    } else {
                        self.table = None;
                        self.buckets = BucketIndex::build(&self.slots, &self.moduli);
                    }
                }
            }
        } else {
            self.buckets = BucketIndex::build(&self.slots, &self.moduli);
        }
    }

    /// Applies one recorded [`RowChange`] (convenience over
    /// [`ResidueSchedule::set_row`]; debug-asserts that the change's old row
    /// matches the current assignment, catching out-of-order replays).
    pub fn apply_row(&mut self, change: &RowChange) {
        debug_assert_eq!(
            (self.slots[change.node], self.moduli[change.node]),
            (change.old_slot, change.old_modulus),
            "row change for node {} replayed out of order",
            change.node
        );
        self.set_row(change.node, change.new_slot, change.new_modulus);
    }

    /// Writes the hosting set of holiday `t` into `out`, resetting it to
    /// [`ResidueSchedule::node_count`].  Pure in `t`: callable concurrently
    /// from any number of threads.
    ///
    /// Emission strategy, fastest available first: word-packed table rows
    /// (one OR per distinct modulus), the residue [`BucketIndex`]
    /// (`O(#moduli + |hosts|)` inserts), or — only when both budgets are
    /// exceeded — a per-node scan.
    pub fn fill(&self, t: u64, out: &mut HappySet) {
        if let Some(table) = &self.table {
            table.fill(t, out);
            return;
        }
        out.reset(self.slots.len());
        match &self.buckets {
            Some(buckets) => buckets.fill(t, out),
            None => {
                for (p, (&slot, &m)) in self.slots.iter().zip(&self.moduli).enumerate() {
                    let r = if m.is_power_of_two() { t & (m - 1) } else { t % m };
                    if r == slot {
                        out.insert(p);
                    }
                }
            }
        }
    }

    /// Writes the nodes hosting at holiday `t` into `out` (cleared first,
    /// ascending), reusing a thread-local scratch buffer — zero steady-state
    /// heap allocations once `out` has warmed up to capacity.
    pub fn hosts_into(&self, t: u64, out: &mut Vec<NodeId>) {
        hosts_into_via(|buf| self.fill(t, buf), out);
    }

    /// The nodes hosting at holiday `t`, as a fresh `Vec` (convenience shim
    /// over [`ResidueSchedule::hosts_into`]).
    pub fn hosts(&self, t: u64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.hosts_into(t, &mut out);
        out
    }

    /// Enumerates one full cycle of residue classes starting at holiday
    /// `start`, yielding each class's happy set from a single reused buffer —
    /// the emission path of the closed-form
    /// [`CycleProfile`](crate::analysis::CycleProfile) builder, which fills
    /// each class exactly once and never re-fills.
    ///
    /// The enumerator is *lending*: each yielded set borrows the internal
    /// buffer, so consume it before asking for the next class.  Callers must
    /// bound the walk themselves when the cycle is astronomically long
    /// (saturated lcms yield `u64::MAX` classes).
    pub fn classes(&self, start: u64) -> CycleClasses<'_> {
        CycleClasses {
            schedule: self,
            next: start,
            remaining: self.cycle,
            buf: HappySet::new(self.node_count()),
        }
    }
}

/// Lending enumerator over the residue classes of one full cycle: yields
/// `(holiday, happy set)` for `cycle` consecutive holidays, filling one
/// internal buffer per class (no per-class allocation, no re-fill).  Built by
/// [`ResidueSchedule::classes`].
pub struct CycleClasses<'a> {
    schedule: &'a ResidueSchedule,
    next: u64,
    remaining: u64,
    buf: HappySet,
}

impl CycleClasses<'_> {
    /// Fills and yields the next residue class, or `None` after one full
    /// cycle.  Lending: the returned set is valid until the next call.
    pub fn next_class(&mut self) -> Option<(u64, &HappySet)> {
        if self.remaining == 0 {
            return None;
        }
        let t = self.next;
        self.schedule.fill(t, &mut self.buf);
        self.next += 1;
        self.remaining -= 1;
        Some((t, &self.buf))
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn lcm_saturating(a: u64, b: u64) -> u64 {
    debug_assert!(a >= 1 && b >= 1);
    (a / gcd(a, b)).saturating_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference implementation: the per-node scan the table replaces.
    fn scan(slots: &[u64], exponents: &[u32], t: u64) -> Vec<NodeId> {
        (0..slots.len()).filter(|&p| t % (1u64 << exponents[p]) == slots[p]).collect()
    }

    #[test]
    fn matches_scan_on_mixed_exponents() {
        let slots = vec![0, 1, 0, 3, 7, 0];
        let exponents = vec![0, 1, 2, 2, 3, 3];
        let table = ResidueTable::build(&slots, &exponents).expect("tiny table");
        assert_eq!(table.node_count(), 6);
        for t in 0..64u64 {
            assert_eq!(table.hosts(t), scan(&slots, &exponents, t), "holiday {t}");
        }
    }

    #[test]
    fn non_power_of_two_moduli_match_the_scan() {
        let slots = vec![0, 2, 4, 1, 0];
        let moduli = vec![3, 5, 5, 2, 1];
        let table = ResidueTable::build_moduli(&slots, &moduli).expect("tiny table");
        for t in 0..60u64 {
            let expected: Vec<NodeId> =
                (0..slots.len()).filter(|&p| t % moduli[p] == slots[p]).collect();
            assert_eq!(table.hosts(t), expected, "holiday {t}");
        }
    }

    #[test]
    fn empty_table() {
        let table = ResidueTable::build(&[], &[]).expect("empty");
        assert!(table.hosts(9).is_empty());
    }

    #[test]
    fn oversized_tables_are_refused() {
        // One node with a 2^40 period would need 2^40 rows: must refuse
        // rather than allocate.
        assert!(ResidueTable::build(&[5], &[40]).is_none());
    }

    #[test]
    fn fill_reuses_the_buffer() {
        let slots = vec![0, 1];
        let exponents = vec![1, 1];
        let table = ResidueTable::build(&slots, &exponents).unwrap();
        let mut out = HappySet::new(2);
        table.fill(0, &mut out);
        assert_eq!(out.to_vec(), vec![0]);
        table.fill(1, &mut out);
        assert_eq!(out.to_vec(), vec![1], "previous holiday's members must be cleared");
    }

    #[test]
    fn schedule_cycle_is_the_lcm_of_the_moduli() {
        let s = ResidueSchedule::new(vec![0, 1, 2], vec![2, 3, 4]);
        assert_eq!(s.cycle(), 12);
        assert_eq!(s.modulus(1), 3);
        assert_eq!(s.slot(2), 2);
        // The schedule repeats with exactly that cycle.
        for t in 0..48u64 {
            assert_eq!(s.hosts(t), s.hosts(t % 12), "holiday {t}");
        }
        let empty = ResidueSchedule::new(vec![], vec![]);
        assert_eq!(empty.cycle(), 1);
        assert!(empty.hosts(7).is_empty());
    }

    #[test]
    fn schedule_cycle_saturates_instead_of_overflowing() {
        let s = ResidueSchedule::new(vec![0, 0], vec![u64::MAX, u64::MAX - 1]);
        assert_eq!(s.cycle(), u64::MAX);
        assert!(!s.has_table(), "astronomically long periods cannot be tabulated");
        assert_eq!(s.hosts(0), vec![0, 1]);
        assert_eq!(s.hosts(1), Vec::<NodeId>::new());
    }

    #[test]
    fn lcm_saturation_at_the_u64_boundary() {
        // Coprime factors whose product overflows: 2^63 and 3 — the lcm
        // must saturate to u64::MAX, not wrap to 2^63·3 mod 2^64.
        let s = ResidueSchedule::new(vec![0, 0], vec![1 << 63, 3]);
        assert_eq!(s.cycle(), u64::MAX);

        // Equal astronomical moduli: gcd equals the modulus, so the lcm is
        // exact — saturation must not fire below the boundary.
        let s = ResidueSchedule::new(vec![0, 0], vec![u64::MAX, u64::MAX]);
        assert_eq!(s.cycle(), u64::MAX, "exact lcm of equal moduli");
        assert_eq!(s.attendance_per_cycle(), 2, "one attendance per node per cycle");

        // Coprime odd moduli just below the boundary (u64::MAX is odd, so
        // gcd(MAX, MAX - 2) divides 2 and must be 1): saturates.
        let s = ResidueSchedule::new(vec![0, 0], vec![u64::MAX, u64::MAX - 2]);
        assert_eq!(s.cycle(), u64::MAX);
        assert!(!s.has_table());
        assert_eq!(s.hosts(0), vec![0, 1], "emission still works on saturated cycles");

        // Powers of two at the top: lcm(2^63, 2^62) = 2^63, exactly.
        let s = ResidueSchedule::new(vec![0, 0], vec![1 << 63, 1 << 62]);
        assert_eq!(s.cycle(), 1 << 63);
        assert_eq!(s.attendance_per_cycle(), 3, "1 + 2 attendances per cycle");
    }

    #[test]
    fn all_three_emission_paths_agree() {
        let slots: Vec<u64> = (0..40).map(|p| (p as u64 * 7) % 8).collect();
        let exponents: Vec<u32> = (0..40).map(|p| 3 + (p % 2) as u32).collect();
        let with_table = ResidueSchedule::from_exponents(slots.clone(), &exponents);
        assert!(with_table.has_table());
        assert!(with_table.buckets.is_none(), "no fallback index while the table exists");
        let mut bucketed = with_table.clone();
        bucketed.table = None;
        bucketed.buckets = BucketIndex::build(&bucketed.slots, &bucketed.moduli);
        assert!(bucketed.buckets.is_some());
        let mut scanned = bucketed.clone();
        scanned.buckets = None;
        for t in 0..64u64 {
            let expected = with_table.hosts(t);
            assert_eq!(bucketed.hosts(t), expected, "bucket index diverged at holiday {t}");
            assert_eq!(scanned.hosts(t), expected, "per-node scan diverged at holiday {t}");
        }
    }

    #[test]
    fn scan_only_schedules_emit_through_the_bucket_index() {
        // The trivial-scheduler shape: n singleton rows, one per residue of a
        // single modulus n.  Emission must cost one divide + one insert, not
        // an O(n) scan — proved structurally: the bucket index exists and
        // each bucket holds exactly one node.
        let n = 500u64;
        let s = ResidueSchedule::scan_only((0..n).collect(), vec![n; n as usize]);
        assert!(!s.has_table());
        let buckets = s.buckets.as_ref().expect("index within budget");
        assert_eq!(buckets.groups.len(), 1);
        assert!(buckets.starts.windows(2).all(|w| w[1] - w[0] == 1));
        for t in [0u64, 1, 7, 499, 500, 12_345] {
            assert_eq!(s.hosts(t), vec![(t % n) as NodeId], "holiday {t}");
        }
    }

    #[test]
    fn attendance_per_cycle_counts_every_hosting_slot() {
        let s = ResidueSchedule::new(vec![0, 1, 2], vec![2, 3, 4]);
        // cycle 12: node 0 hosts 6 times, node 1 hosts 4, node 2 hosts 3.
        assert_eq!(s.attendance_per_cycle(), 13);
        let total: usize = (0..12u64).map(|t| s.hosts(t).len()).sum();
        assert_eq!(total as u64, s.attendance_per_cycle());
        // Hub-and-spoke shape: many fast nodes make the attendance volume
        // n·cycle/2 even though the cycle itself is short.
        let spokes = ResidueSchedule::new(vec![0; 64], vec![2; 64]);
        assert_eq!(spokes.attendance_per_cycle(), 64);
        // Saturated cycles saturate the attendance count too.
        let huge = ResidueSchedule::new(vec![0, 0], vec![u64::MAX, u64::MAX - 1]);
        assert_eq!(huge.attendance_per_cycle(), 2);
    }

    #[test]
    fn hosts_into_reuses_the_output_and_clears_stale_members() {
        let s = ResidueSchedule::new(vec![0, 1, 2], vec![2, 3, 4]);
        let mut out = vec![99, 99, 99, 99];
        for t in 0..24u64 {
            s.hosts_into(t, &mut out);
            assert_eq!(out, s.hosts(t), "holiday {t}");
            assert!(out.windows(2).all(|w| w[0] < w[1]), "ascending, no stale members");
        }
        let table = ResidueTable::build_moduli(&[0, 1], &[2, 2]).unwrap();
        let mut out = Vec::new();
        table.hosts_into(0, &mut out);
        assert_eq!(out, vec![0]);
        table.hosts_into(1, &mut out);
        assert_eq!(out, vec![1], "previous holiday's members must be cleared");
    }

    #[test]
    fn cycle_enumeration_yields_every_class_once_without_refill() {
        let s = ResidueSchedule::new(vec![0, 1, 2], vec![2, 3, 4]);
        let start = 5u64;
        let mut classes = s.classes(start);
        let mut seen = 0u64;
        while let Some((t, happy)) = classes.next_class() {
            assert_eq!(t, start + seen, "classes arrive in holiday order");
            assert_eq!(happy.to_vec(), s.hosts(t), "holiday {t}");
            seen += 1;
        }
        assert_eq!(seen, s.cycle(), "exactly one yield per residue class");
        assert!(classes.next_class().is_none(), "enumeration stays exhausted");
    }

    /// Every aggregate and emission answer of a row-edited schedule must be
    /// indistinguishable from a freshly constructed one.
    fn assert_equivalent_to_fresh(edited: &ResidueSchedule, ctx: &str) {
        let fresh = ResidueSchedule::new(edited.slots.clone(), edited.moduli.clone());
        assert_eq!(edited.cycle(), fresh.cycle(), "{ctx}: cycle");
        assert_eq!(
            edited.attendance_per_cycle(),
            fresh.attendance_per_cycle(),
            "{ctx}: attendance"
        );
        assert_eq!(edited.mods, fresh.mods, "{ctx}: distinct-modulus counts");
        let span = 2 * fresh.cycle().min(256);
        for t in 0..span {
            assert_eq!(edited.hosts(t), fresh.hosts(t), "{ctx}: holiday {t}");
        }
    }

    #[test]
    fn set_row_tracks_fresh_construction_through_the_table_path() {
        let mut s = ResidueSchedule::new(vec![0, 1, 2, 3], vec![2, 3, 4, 4]);
        assert!(s.has_table());
        // Same-modulus move, cross-modulus move, and a brand-new modulus
        // (inserts a table group), then drain a modulus empty (removes one).
        s.set_row(0, 1, 2);
        assert_equivalent_to_fresh(&s, "slot move within modulus 2");
        s.set_row(1, 5, 8);
        assert_equivalent_to_fresh(&s, "move onto new modulus 8");
        s.set_row(2, 0, 4);
        assert_equivalent_to_fresh(&s, "slot move within modulus 4");
        s.set_row(0, 2, 6);
        assert_equivalent_to_fresh(&s, "modulus 2 drained empty");
        assert!(s.has_table(), "small schedules stay on the table path");
        // No-op edits change nothing.
        let cycle = s.cycle();
        s.set_row(0, 2, 6);
        assert_eq!(s.cycle(), cycle);
        assert_equivalent_to_fresh(&s, "no-op edit");
    }

    #[test]
    fn set_row_tracks_fresh_construction_through_the_bucket_path() {
        let n = 64u64;
        let mut s = ResidueSchedule::scan_only((0..n).collect(), vec![n; n as usize]);
        assert!(!s.has_table());
        s.set_row(3, 0, 4);
        s.set_row(9, 3, 4);
        assert!(s.buckets.is_some(), "bucket index rebuilt after the edit");
        assert_equivalent_to_fresh(&s, "bucket-path edits");
    }

    #[test]
    fn set_row_drops_the_table_when_a_new_modulus_blows_the_budget() {
        let mut s = ResidueSchedule::new(vec![0, 1], vec![2, 4]);
        assert!(s.has_table());
        // 2^36 rows of one word each would cost 512 GiB: the table must be
        // dropped, not allocated, and emission must keep answering.
        s.set_row(1, 7, 1 << 36);
        assert!(!s.has_table());
        assert_equivalent_to_fresh(&s, "budget-overflow fallback");
    }

    #[test]
    fn apply_row_replays_a_recorded_change() {
        let mut s = ResidueSchedule::new(vec![0, 1], vec![2, 4]);
        s.apply_row(&RowChange {
            node: 1,
            old_slot: 1,
            old_modulus: 4,
            new_slot: 5,
            new_modulus: 8,
        });
        assert_eq!((s.slot(1), s.modulus(1)), (5, 8));
        assert_equivalent_to_fresh(&s, "apply_row");
    }

    #[test]
    #[should_panic(expected = "slot 9 is not a residue")]
    fn set_row_rejects_out_of_range_slots() {
        let mut s = ResidueSchedule::new(vec![0], vec![2]);
        s.set_row(0, 9, 4);
    }

    #[test]
    #[should_panic(expected = "slot 5 is not a residue")]
    fn schedule_rejects_out_of_range_slots() {
        ResidueSchedule::new(vec![5], vec![4]);
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn schedule_rejects_zero_moduli() {
        ResidueSchedule::new(vec![0], vec![0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn equivalent_to_scan_on_random_assignments(
            seed in 0u64..1000,
            t in 0u64..10_000,
        ) {
            // Derive a pseudo-random (slots, exponents) assignment from the
            // seed with plain arithmetic (no dependence on the RNG stack).
            let n = 1 + (seed % 77) as usize;
            let exponents: Vec<u32> = (0..n).map(|p| ((seed >> (p % 13)) % 6) as u32).collect();
            let slots: Vec<u64> =
                (0..n).map(|p| (seed.wrapping_mul(p as u64 + 3) >> 2) % (1 << exponents[p])).collect();
            let table = ResidueTable::build(&slots, &exponents).expect("small");
            prop_assert_eq!(table.hosts(t), scan(&slots, &exponents, t));

            // The schedule view agrees with the raw table and repeats with
            // its cycle.
            let schedule = ResidueSchedule::from_exponents(slots.clone(), &exponents);
            prop_assert_eq!(schedule.hosts(t), scan(&slots, &exponents, t));
            prop_assert!(schedule.cycle() <= 32, "exponents < 6 keep the lcm at most 2^5");
            prop_assert_eq!(schedule.hosts(t), schedule.hosts(t % schedule.cycle()));
        }
    }
}
