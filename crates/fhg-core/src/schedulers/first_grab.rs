//! The "first come first grab" chaotic baseline (§1).
//!
//! Each holiday, parents wake up at independent uniformly random times and
//! grab whichever of their children have not been grabbed yet.  A parent is
//! happy exactly when it wakes up before *all* of its in-laws, which happens
//! with probability `1/(deg(p) + 1)`; the expected wait between happy
//! holidays is therefore `deg(p) + 1`.  This is the fairness landmark the
//! paper's deterministic algorithms are measured against — but it offers no
//! worst-case guarantee, is not periodic, and requires fresh randomness every
//! holiday.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use fhg_graph::{Graph, HappySet, NodeId};

use crate::scheduler::Scheduler;

/// The random wake-up baseline.
#[derive(Debug, Clone)]
pub struct FirstComeFirstGrab {
    graph: Graph,
    rng: ChaCha8Rng,
    /// Reusable wake-up order scratch (a permutation of the nodes).
    order: Vec<NodeId>,
    /// Reusable inverse permutation: `rank[p]` is `p`'s wake-up position.
    rank: Vec<usize>,
}

impl FirstComeFirstGrab {
    /// Creates the baseline with a deterministic seed.
    pub fn new(graph: &Graph, seed: u64) -> Self {
        let n = graph.node_count();
        FirstComeFirstGrab {
            graph: graph.clone(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            order: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// The empirical happiness probability `1/(deg(p)+1)` the process targets.
    pub fn target_probability(&self, p: NodeId) -> f64 {
        1.0 / (self.graph.degree(p) as f64 + 1.0)
    }
}

impl Scheduler for FirstComeFirstGrab {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn fill_happy_set(&mut self, _t: u64, out: &mut HappySet) {
        let n = self.graph.node_count();
        out.reset(n);
        // Draw a uniformly random wake-up order (the scratch permutation from
        // the previous holiday is a fine starting point for the shuffle).
        self.order.shuffle(&mut self.rng);
        for (r, &p) in self.order.iter().enumerate() {
            self.rank[p] = r;
        }
        // A parent is happy iff it wakes before every in-law.
        for p in 0..n {
            if self.graph.neighbors(p).iter().all(|&q| self.rank[p] < self.rank[q]) {
                out.insert(p);
            }
        }
    }

    fn name(&self) -> &'static str {
        "first-come-first-grab"
    }

    fn is_periodic(&self) -> bool {
        false
    }

    fn period(&self, _p: NodeId) -> Option<u64> {
        None
    }

    fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
        // No worst-case guarantee; only the expectation deg + 1.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use fhg_graph::generators::erdos_renyi;
    use fhg_graph::generators::structured::{complete, cycle, star};

    #[test]
    fn happy_sets_are_always_independent() {
        // The grab set is the set of local minima of a random wake-up order:
        // always independent (two in-laws cannot both wake first), though not
        // necessarily maximal — a parent may lose the race for one child yet
        // block nobody else.
        let g = erdos_renyi(40, 0.15, 3);
        let mut s = FirstComeFirstGrab::new(&g, 9);
        // One checker and one member buffer reused across the sweep
        // (`is_independent_set` would rebuild its scratch per holiday).
        let checker = crate::analysis::GraphChecker::new(&g);
        let mut members = fhg_graph::FixedBitSet::new(g.node_count());
        for t in 0..200 {
            let happy = s.happy_set(t);
            members.clear();
            happy.iter().for_each(|&p| {
                members.insert(p);
            });
            assert!(
                crate::analysis::HolidayChecker::check(&checker, t, &members),
                "holiday {t}: the grab set must be independent"
            );
            assert!(!happy.is_empty(), "some parent always wakes first overall");
        }
    }

    #[test]
    fn happiness_frequency_approaches_one_over_degree_plus_one() {
        let g = complete(5); // every node has degree 4, target probability 1/5
        let mut s = FirstComeFirstGrab::new(&g, 1);
        let horizon = 5000u64;
        let analysis = analyze_schedule(&g, &mut s, horizon);
        for node in &analysis.per_node {
            let freq = node.happy_count as f64 / horizon as f64;
            assert!(
                (freq - 0.2).abs() < 0.03,
                "node {} happiness frequency {freq} too far from 1/5",
                node.node
            );
        }
    }

    #[test]
    fn star_center_rarely_hosts_but_leaves_usually_do() {
        let g = star(9);
        let mut s = FirstComeFirstGrab::new(&g, 4);
        let horizon = 4000u64;
        let analysis = analyze_schedule(&g, &mut s, horizon);
        let center = &analysis.per_node[0];
        let center_freq = center.happy_count as f64 / horizon as f64;
        assert!((center_freq - 1.0 / 9.0).abs() < 0.03, "centre frequency {center_freq}");
        let leaf = &analysis.per_node[3];
        let leaf_freq = leaf.happy_count as f64 / horizon as f64;
        assert!((leaf_freq - 0.5).abs() < 0.05, "leaf frequency {leaf_freq}");
    }

    #[test]
    fn deterministic_per_seed_but_not_across_seeds() {
        let g = cycle(12);
        let mut a = FirstComeFirstGrab::new(&g, 7);
        let mut b = FirstComeFirstGrab::new(&g, 7);
        let mut c = FirstComeFirstGrab::new(&g, 8);
        let run_a: Vec<_> = (0..20).map(|t| a.happy_set(t)).collect();
        let run_b: Vec<_> = (0..20).map(|t| b.happy_set(t)).collect();
        let run_c: Vec<_> = (0..20).map(|t| c.happy_set(t)).collect();
        assert_eq!(run_a, run_b);
        assert_ne!(run_a, run_c);
    }

    #[test]
    fn metadata_and_degenerate_graphs() {
        let g = Graph::new(3);
        let mut s = FirstComeFirstGrab::new(&g, 0);
        assert_eq!(s.happy_set(0), vec![0, 1, 2], "isolated parents always host");
        assert_eq!(s.name(), "first-come-first-grab");
        assert!(!s.is_periodic());
        assert_eq!(s.period(0), None);
        assert_eq!(s.unhappiness_bound(0), None);
        assert_eq!(s.target_probability(0), 1.0);
        let mut empty = FirstComeFirstGrab::new(&Graph::new(0), 0);
        assert!(empty.happy_set(0).is_empty());
    }
}
