//! The round-robin colouring scheduler (§1).
//!
//! Colour the conflict graph with `k` colours; at holiday `t` the parents of
//! colour `(t mod k) + 1` are happy.  Every parent is happy exactly every `k`
//! holidays.  With a greedy colouring `k ≤ Δ + 1`, so the guarantee depends
//! on the *maximum* degree in the graph — the paper's motivating complaint:
//! parents of a single child wait `Δ + 1` holidays because someone else has a
//! large brood.

use fhg_coloring::{greedy_coloring, Coloring, GreedyOrder};
use fhg_graph::{Graph, HappySet, NodeId};

use crate::scheduler::Scheduler;

/// Round-robin over the colour classes of a proper colouring.
#[derive(Debug, Clone)]
pub struct RoundRobinColoring {
    coloring: Coloring,
    k: u64,
    /// Colour class `c` (1-based, index `c - 1`) as a precomputed bit row,
    /// so emitting a holiday is one word-wise OR.  `None` when `k · n/8`
    /// bytes would exceed [`crate::schedulers::residue::ResidueTable::MAX_BYTES`]
    /// (a many-colour colouring of a large graph); emission then falls back
    /// to the per-node scan.
    classes: Option<Vec<fhg_graph::FixedBitSet>>,
}

impl RoundRobinColoring {
    /// Builds the scheduler from a greedy (natural-order) colouring, which
    /// uses at most `Δ + 1` colours.
    pub fn new(graph: &Graph) -> Self {
        Self::with_coloring(greedy_coloring(graph, GreedyOrder::Natural))
    }

    /// Builds the scheduler from an explicit colouring (e.g. an optimal or
    /// bipartite 2-colouring, reproducing the paper's two-village example).
    pub fn with_coloring(coloring: Coloring) -> Self {
        let k = u64::from(coloring.max_color()).max(1);
        let n = coloring.len();
        let row_bytes = n.div_ceil(64) as u64 * 8;
        let budget = crate::schedulers::residue::ResidueTable::MAX_BYTES as u64;
        let classes = if k.checked_mul(row_bytes).is_some_and(|b| b <= budget) {
            let mut rows = vec![fhg_graph::FixedBitSet::new(n); k as usize];
            for (p, &c) in coloring.as_slice().iter().enumerate() {
                if c >= 1 && u64::from(c) <= k {
                    rows[(c - 1) as usize].insert(p);
                }
            }
            Some(rows)
        } else {
            None
        };
        RoundRobinColoring { coloring, k, classes }
    }

    /// The number of colours being cycled.
    pub fn cycle_length(&self) -> u64 {
        self.k
    }

    /// The colouring driving the schedule.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }
}

impl Scheduler for RoundRobinColoring {
    fn node_count(&self) -> usize {
        self.coloring.len()
    }

    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        let active = (t % self.k) as u32 + 1;
        out.reset(self.coloring.len());
        match &self.classes {
            Some(rows) => out.union_with(&rows[(active - 1) as usize]),
            None => {
                for (p, &c) in self.coloring.as_slice().iter().enumerate() {
                    if c == active {
                        out.insert(p);
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "round-robin-coloring"
    }

    fn is_periodic(&self) -> bool {
        true
    }

    fn period(&self, _p: NodeId) -> Option<u64> {
        Some(self.k)
    }

    fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
        Some(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use fhg_coloring::two_coloring;
    use fhg_graph::generators::structured::{complete, star};
    use fhg_graph::generators::{bipartite_villages, erdos_renyi};

    #[test]
    fn every_node_happy_exactly_every_k_holidays() {
        let g = erdos_renyi(40, 0.1, 2);
        let mut s = RoundRobinColoring::new(&g);
        let k = s.cycle_length();
        assert!(k <= g.max_degree() as u64 + 1);
        let analysis = analyze_schedule(&g, &mut s, 20 * k);
        assert!(analysis.all_happy_sets_independent);
        for node in &analysis.per_node {
            assert_eq!(node.observed_period, Some(k));
        }
    }

    #[test]
    fn two_village_example_gives_period_two_to_everyone() {
        // The paper's §1 example: bipartite marriages, alternate villages.
        let g = bipartite_villages(15, 20, 0.4, 3);
        let coloring = two_coloring(&g).unwrap();
        let mut s = RoundRobinColoring::with_coloring(coloring);
        assert_eq!(s.cycle_length(), 2);
        let analysis = analyze_schedule(&g, &mut s, 40);
        for node in &analysis.per_node {
            assert_eq!(node.observed_period, Some(2), "every family gathers every 2 years");
        }
    }

    #[test]
    fn clique_needs_n_holidays_per_cycle() {
        let g = complete(7);
        let mut s = RoundRobinColoring::new(&g);
        assert_eq!(s.cycle_length(), 7);
        let analysis = analyze_schedule(&g, &mut s, 70);
        assert_eq!(analysis.max_unhappiness(), 6);
    }

    #[test]
    fn star_punishes_the_leaves_with_the_global_bound() {
        // The motivating complaint: leaves have degree 1 but still wait the
        // full cycle because the colouring is cycled globally.
        let g = star(10);
        let mut s = RoundRobinColoring::new(&g);
        let analysis = analyze_schedule(&g, &mut s, 50);
        let leaf = &analysis.per_node[5];
        assert_eq!(leaf.degree, 1);
        assert_eq!(leaf.observed_period, Some(s.cycle_length()));
    }

    #[test]
    fn edgeless_graph_everyone_happy_every_holiday() {
        let g = Graph::new(4);
        let mut s = RoundRobinColoring::new(&g);
        assert_eq!(s.cycle_length(), 1);
        assert_eq!(s.happy_set(9), vec![0, 1, 2, 3]);
    }

    #[test]
    fn fallback_scan_matches_precomputed_rows() {
        // Force the scan path by rebuilding the scheduler with `classes`
        // dropped, and compare schedules against the row path.
        let g = erdos_renyi(40, 0.1, 2);
        let mut with_rows = RoundRobinColoring::new(&g);
        let mut scanned = with_rows.clone();
        scanned.classes = None;
        for t in 0..3 * with_rows.cycle_length() {
            assert_eq!(with_rows.happy_set(t), scanned.happy_set(t), "holiday {t}");
        }
    }

    #[test]
    fn metadata() {
        let s = RoundRobinColoring::new(&complete(3));
        assert_eq!(s.name(), "round-robin-coloring");
        assert!(s.is_periodic());
        assert_eq!(s.period(1), Some(3));
        assert_eq!(s.unhappiness_bound(1), Some(3));
        assert_eq!(s.coloring().len(), 3);
    }
}
