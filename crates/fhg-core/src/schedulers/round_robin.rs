//! The round-robin colouring scheduler (§1).
//!
//! Colour the conflict graph with `k` colours; at holiday `t` the parents of
//! colour `(t mod k) + 1` are happy.  Every parent is happy exactly every `k`
//! holidays.  With a greedy colouring `k ≤ Δ + 1`, so the guarantee depends
//! on the *maximum* degree in the graph — the paper's motivating complaint:
//! parents of a single child wait `Δ + 1` holidays because someone else has a
//! large brood.

use fhg_coloring::{greedy_coloring, Coloring, GreedyOrder};
use fhg_graph::{Graph, HappySet, NodeId};

use crate::scheduler::Scheduler;
use crate::schedulers::residue::ResidueSchedule;

/// Round-robin over the colour classes of a proper colouring.
#[derive(Debug, Clone)]
pub struct RoundRobinColoring {
    coloring: Coloring,
    k: u64,
    /// Residue view `t ≡ colour - 1 (mod k)`: the colour-class bit rows live
    /// in its word-packed table (one OR per holiday, falling back to a
    /// per-node scan over the memory budget).  `None` only for defective
    /// colourings with out-of-range colours, which emit via the legacy scan
    /// that silently skips those nodes.
    schedule: Option<ResidueSchedule>,
}

impl RoundRobinColoring {
    /// Builds the scheduler from a greedy (natural-order) colouring, which
    /// uses at most `Δ + 1` colours.
    pub fn new(graph: &Graph) -> Self {
        Self::with_coloring(greedy_coloring(graph, GreedyOrder::Natural))
    }

    /// Builds the scheduler from an explicit colouring (e.g. an optimal or
    /// bipartite 2-colouring, reproducing the paper's two-village example).
    pub fn with_coloring(coloring: Coloring) -> Self {
        let k = u64::from(coloring.max_color()).max(1);
        let n = coloring.len();
        let colors_valid = coloring.as_slice().iter().all(|&c| c >= 1 && u64::from(c) <= k);
        let schedule = colors_valid.then(|| {
            let slots: Vec<u64> = coloring.as_slice().iter().map(|&c| u64::from(c) - 1).collect();
            ResidueSchedule::new(slots, vec![k; n])
        });
        RoundRobinColoring { coloring, k, schedule }
    }

    /// The number of colours being cycled.
    pub fn cycle_length(&self) -> u64 {
        self.k
    }

    /// The colouring driving the schedule.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }
}

impl Scheduler for RoundRobinColoring {
    fn node_count(&self) -> usize {
        self.coloring.len()
    }

    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        match &self.schedule {
            Some(schedule) => schedule.fill(t, out),
            None => {
                let active = (t % self.k) as u32 + 1;
                out.reset(self.coloring.len());
                for (p, &c) in self.coloring.as_slice().iter().enumerate() {
                    if c == active {
                        out.insert(p);
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "round-robin-coloring"
    }

    fn is_periodic(&self) -> bool {
        true
    }

    fn period(&self, _p: NodeId) -> Option<u64> {
        Some(self.k)
    }

    fn unhappiness_bound(&self, _p: NodeId) -> Option<u64> {
        Some(self.k)
    }

    fn residue_schedule(&self) -> Option<&ResidueSchedule> {
        self.schedule.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use fhg_coloring::two_coloring;
    use fhg_graph::generators::structured::{complete, star};
    use fhg_graph::generators::{bipartite_villages, erdos_renyi};

    #[test]
    fn every_node_happy_exactly_every_k_holidays() {
        let g = erdos_renyi(40, 0.1, 2);
        let mut s = RoundRobinColoring::new(&g);
        let k = s.cycle_length();
        assert!(k <= g.max_degree() as u64 + 1);
        let analysis = analyze_schedule(&g, &mut s, 20 * k);
        assert!(analysis.all_happy_sets_independent);
        for node in &analysis.per_node {
            assert_eq!(node.observed_period, Some(k));
        }
    }

    #[test]
    fn two_village_example_gives_period_two_to_everyone() {
        // The paper's §1 example: bipartite marriages, alternate villages.
        let g = bipartite_villages(15, 20, 0.4, 3);
        let coloring = two_coloring(&g).unwrap();
        let mut s = RoundRobinColoring::with_coloring(coloring);
        assert_eq!(s.cycle_length(), 2);
        let analysis = analyze_schedule(&g, &mut s, 40);
        for node in &analysis.per_node {
            assert_eq!(node.observed_period, Some(2), "every family gathers every 2 years");
        }
    }

    #[test]
    fn clique_needs_n_holidays_per_cycle() {
        let g = complete(7);
        let mut s = RoundRobinColoring::new(&g);
        assert_eq!(s.cycle_length(), 7);
        let analysis = analyze_schedule(&g, &mut s, 70);
        assert_eq!(analysis.max_unhappiness(), 6);
    }

    #[test]
    fn star_punishes_the_leaves_with_the_global_bound() {
        // The motivating complaint: leaves have degree 1 but still wait the
        // full cycle because the colouring is cycled globally.
        let g = star(10);
        let mut s = RoundRobinColoring::new(&g);
        let analysis = analyze_schedule(&g, &mut s, 50);
        let leaf = &analysis.per_node[5];
        assert_eq!(leaf.degree, 1);
        assert_eq!(leaf.observed_period, Some(s.cycle_length()));
    }

    #[test]
    fn edgeless_graph_everyone_happy_every_holiday() {
        let g = Graph::new(4);
        let mut s = RoundRobinColoring::new(&g);
        assert_eq!(s.cycle_length(), 1);
        assert_eq!(s.happy_set(9), vec![0, 1, 2, 3]);
    }

    #[test]
    fn fallback_scan_matches_precomputed_rows() {
        // Force the legacy scan path by rebuilding the scheduler with the
        // residue view dropped, and compare schedules against the row path.
        let g = erdos_renyi(40, 0.1, 2);
        let mut with_rows = RoundRobinColoring::new(&g);
        assert!(with_rows.residue_schedule().is_some());
        let mut scanned = with_rows.clone();
        scanned.schedule = None;
        for t in 0..3 * with_rows.cycle_length() {
            assert_eq!(with_rows.happy_set(t), scanned.happy_set(t), "holiday {t}");
        }
    }

    #[test]
    fn metadata() {
        let s = RoundRobinColoring::new(&complete(3));
        assert_eq!(s.name(), "round-robin-coloring");
        assert!(s.is_periodic());
        assert_eq!(s.period(1), Some(3));
        assert_eq!(s.unhappiness_bound(1), Some(3));
        assert_eq!(s.coloring().len(), 3);
    }
}
