//! The Phased Greedy Coloring scheduler (§3, Theorem 3.1).
//!
//! The non-periodic degree-bound algorithm.  Nodes start from any colouring
//! in which each node's colour is at most `deg + 1` (sequential greedy here;
//! the paper uses the BEPS distributed algorithm, and
//! [`PhasedGreedy::with_distributed_init`] reproduces that path through the
//! Johansson substitute).  At holiday `i` the nodes whose current colour is
//! `i` are happy; each such node immediately recolours itself with the
//! smallest colour `s > i` not held by any neighbour.  Because a node has
//! `d` neighbours, `s ≤ i + d + 1`, so a node is happy at least once in every
//! window of `d + 1` consecutive holidays — but the schedule is not periodic
//! and each holiday costs a round of communication (or full local knowledge
//! of the neighbourhood).

use fhg_coloring::{greedy_coloring, Coloring, GreedyOrder};
use fhg_distributed::johansson_coloring;
use fhg_graph::{Graph, HappySet, NodeId};

use crate::scheduler::Scheduler;

/// The §3 phased greedy colouring scheduler.
#[derive(Debug, Clone)]
pub struct PhasedGreedy {
    graph: Graph,
    /// Current colour of every node; strictly greater than the last executed
    /// holiday for every node (the §3 invariant).
    colors: Vec<u64>,
    /// The next holiday this scheduler expects to execute.
    next_holiday: u64,
    /// Rounds charged to the distributed initialisation (0 when sequential).
    init_rounds: u64,
    /// Reusable recolouring scratch (one flag per candidate colour offset,
    /// max degree + 1 entries), so no holiday allocates.
    used_offsets: Vec<bool>,
}

impl PhasedGreedy {
    /// Builds the scheduler from a sequential greedy colouring (colours are
    /// at most `deg + 1`, as required).
    pub fn new(graph: &Graph) -> Self {
        Self::with_coloring(graph, &greedy_coloring(graph, GreedyOrder::Natural))
    }

    /// Builds the scheduler from an explicit `deg + 1`-bounded colouring.
    ///
    /// # Panics
    /// Panics if the colouring is not proper or some colour exceeds
    /// `deg + 1` (the Theorem 3.1 guarantee would not hold).
    pub fn with_coloring(graph: &Graph, coloring: &Coloring) -> Self {
        assert!(coloring.is_proper(graph), "initial colouring must be proper");
        assert!(
            coloring.is_degree_plus_one_bounded(graph),
            "initial colouring must satisfy colour <= degree + 1"
        );
        PhasedGreedy {
            used_offsets: vec![false; graph.max_degree() + 1],
            graph: graph.clone(),
            colors: coloring.as_slice().iter().map(|&c| u64::from(c)).collect(),
            next_holiday: 1,
            init_rounds: 0,
        }
    }

    /// Builds the scheduler by running the distributed `(deg+1)`-colouring on
    /// the LOCAL-model simulator, charging its round count to
    /// [`Scheduler::init_rounds`] — the full §3 pipeline.
    pub fn with_distributed_init(graph: &Graph, seed: u64) -> Self {
        let (coloring, stats) = johansson_coloring(graph, seed);
        let mut s = Self::with_coloring(graph, &coloring);
        s.init_rounds = stats.rounds;
        s
    }

    /// The current colour of node `p` (changes over time).
    pub fn current_color(&self, p: NodeId) -> u64 {
        self.colors[p]
    }

    /// Greedy recolouring rule of §3: the smallest colour greater than
    /// `holiday` not used by any neighbour of `p`.  Uses the reusable
    /// `used_offsets` scratch; only the first `deg(p) + 1` entries are
    /// touched (and re-cleared before returning).
    fn recolor(&mut self, p: NodeId, holiday: u64) -> u64 {
        let neighbors = self.graph.neighbors(p);
        let window = neighbors.len() + 1;
        let used = &mut self.used_offsets[..window];
        for &v in neighbors {
            let c = self.colors[v];
            if c > holiday && (c - holiday) as usize <= window {
                used[(c - holiday - 1) as usize] = true;
            }
        }
        let offset = used.iter().position(|&b| !b).unwrap_or(window - 1);
        used.fill(false);
        holiday + offset as u64 + 1
    }
}

impl Scheduler for PhasedGreedy {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        assert_eq!(
            t, self.next_holiday,
            "PhasedGreedy is stateful: holidays must be executed consecutively \
             (expected {}, got {t})",
            self.next_holiday
        );
        out.reset(self.graph.node_count());
        for p in self.graph.nodes() {
            if self.colors[p] == t {
                out.insert(p);
            }
        }
        // Recolour in increasing node order, matching the sequential rule:
        // later happy nodes see the colours earlier ones just picked.
        for p in out.iter() {
            let c = self.recolor(p, t);
            self.colors[p] = c;
        }
        self.next_holiday += 1;
    }

    fn name(&self) -> &'static str {
        "phased-greedy"
    }

    fn is_periodic(&self) -> bool {
        false
    }

    fn period(&self, _p: NodeId) -> Option<u64> {
        None
    }

    fn unhappiness_bound(&self, p: NodeId) -> Option<u64> {
        Some(self.graph.degree(p) as u64 + 1)
    }

    fn init_rounds(&self) -> u64 {
        self.init_rounds
    }

    fn rounds_per_holiday(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use fhg_graph::generators::structured::{complete, cycle, star};
    use fhg_graph::generators::{barabasi_albert, erdos_renyi};
    use proptest::prelude::*;

    #[test]
    fn theorem_3_1_holds_on_random_graphs() {
        for seed in 0..5u64 {
            let g = erdos_renyi(60, 0.08, seed);
            let mut s = PhasedGreedy::new(&g);
            let analysis = analyze_schedule(&g, &mut s, 400);
            assert!(analysis.all_happy_sets_independent);
            for node in &analysis.per_node {
                // A window of d + 1 consecutive holidays always contains a
                // happy one, i.e. the longest unhappy streak is at most d.
                assert!(
                    node.max_unhappiness <= node.degree as u64,
                    "node {} (degree {}) had an unhappy streak of {}",
                    node.node,
                    node.degree,
                    node.max_unhappiness
                );
            }
        }
    }

    #[test]
    fn happy_sets_are_color_classes_and_recoloring_stays_proper() {
        let g = erdos_renyi(40, 0.12, 9);
        let mut s = PhasedGreedy::new(&g);
        // One checker and one member buffer reused across the sweep
        // (`is_independent_set` would rebuild its scratch per holiday).
        let checker = crate::analysis::GraphChecker::new(&g);
        let mut members = fhg_graph::FixedBitSet::new(g.node_count());
        for t in 1..200u64 {
            let happy = s.happy_set(t);
            members.clear();
            happy.iter().for_each(|&p| {
                members.insert(p);
            });
            assert!(crate::analysis::HolidayChecker::check(&checker, t, &members), "holiday {t}");
            // Invariant: every colour now exceeds t.
            for p in g.nodes() {
                assert!(s.current_color(p) > t, "node {p} colour {} <= {t}", s.current_color(p));
            }
            // Colours stay proper.
            for e in g.edges() {
                assert_ne!(s.current_color(e.u), s.current_color(e.v));
            }
        }
    }

    #[test]
    fn clique_round_robins_with_gap_d_plus_one() {
        let g = complete(5);
        let mut s = PhasedGreedy::new(&g);
        let analysis = analyze_schedule(&g, &mut s, 100);
        for node in &analysis.per_node {
            assert_eq!(node.max_unhappiness, 4, "clique node must wait exactly d holidays");
            assert_eq!(node.observed_period, Some(5), "on a clique the schedule is periodic");
        }
    }

    #[test]
    fn star_leaves_are_happy_almost_every_other_holiday() {
        let g = star(8);
        let mut s = PhasedGreedy::new(&g);
        let analysis = analyze_schedule(&g, &mut s, 100);
        for node in &analysis.per_node {
            if node.degree == 1 {
                assert!(node.max_unhappiness <= 1);
            } else {
                assert!(node.max_unhappiness <= node.degree as u64);
            }
        }
    }

    #[test]
    fn distributed_init_charges_rounds_and_satisfies_the_same_bound() {
        let g = erdos_renyi(50, 0.1, 4);
        let mut s = PhasedGreedy::with_distributed_init(&g, 77);
        assert!(s.init_rounds() >= 1);
        assert_eq!(s.rounds_per_holiday(), 1);
        let analysis = analyze_schedule(&g, &mut s, 300);
        for node in &analysis.per_node {
            assert!(node.max_unhappiness <= node.degree as u64);
        }
    }

    #[test]
    #[should_panic(expected = "consecutively")]
    fn skipping_holidays_is_rejected() {
        let g = cycle(4);
        let mut s = PhasedGreedy::new(&g);
        s.happy_set(1);
        s.happy_set(3);
    }

    #[test]
    #[should_panic(expected = "degree + 1")]
    fn rejects_unbounded_colorings() {
        let g = cycle(4);
        let coloring = Coloring::new(&g, vec![1, 2, 1, 7]).unwrap();
        PhasedGreedy::with_coloring(&g, &coloring);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let mut s = PhasedGreedy::new(&g);
        assert!(s.happy_set(1).is_empty());
    }

    #[test]
    fn isolated_nodes_are_happy_every_holiday() {
        let g = Graph::new(3);
        let mut s = PhasedGreedy::new(&g);
        for t in 1..20 {
            assert_eq!(s.happy_set(t), vec![0, 1, 2]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn degree_bound_holds_on_heavy_tailed_graphs(seed in 0u64..50) {
            let g = barabasi_albert(80, 2, seed);
            let mut s = PhasedGreedy::new(&g);
            let analysis = analyze_schedule(&g, &mut s, 600);
            prop_assert!(analysis.all_happy_sets_independent);
            for node in &analysis.per_node {
                prop_assert!(node.max_unhappiness <= node.degree as u64);
            }
        }
    }
}
