//! The periodic lightweight colour-bound scheduler (§4.2, Theorem 4.2).
//!
//! Colour the conflict graph once; encode every colour with a prefix-free
//! code (Elias omega by default).  Node `p` with colour `c` is happy at
//! holiday `i` exactly when the reversed codeword of `c` is a suffix of the
//! binary representation of `i` — equivalently, when
//! `i ≡ offset(c) (mod 2^{ρ(c)})`.  The schedule is perfectly periodic
//! (period `2^{ρ(c)}`), lightweight (a node needs only its colour), needs no
//! per-holiday communication, and Theorem 4.2 bounds the period by
//! `2^{1 + log* c} · φ(c)`, nearly matching the Theorem 4.1 lower bound.

use fhg_codes::{CodeSchedule, EliasCode, PrefixFreeCode, SlotAssignment, UnaryCode};
use fhg_coloring::{greedy_coloring, Coloring, GreedyOrder};
use fhg_graph::{Graph, HappySet, NodeId};

use crate::scheduler::Scheduler;
use crate::schedulers::residue::ResidueSchedule;

/// The §4.2 prefix-code scheduler, generic over the prefix-free code.
#[derive(Debug, Clone)]
pub struct PrefixCodeScheduler {
    coloring: Coloring,
    slots: Vec<SlotAssignment>,
    code_name: &'static str,
    /// The `(offset, period)` assignment as a thread-safe pure function of
    /// the holiday number (word-packed rows inside when within budget).
    schedule: ResidueSchedule,
}

impl PrefixCodeScheduler {
    /// The paper's configuration: greedy `(deg+1)`-bounded colouring encoded
    /// with the Elias **omega** code.
    pub fn omega(graph: &Graph) -> Self {
        Self::with_code(graph, &greedy_coloring(graph, GreedyOrder::Natural), EliasCode::omega())
    }

    /// Ablation: Elias **gamma** code (longer codewords, longer periods).
    pub fn gamma(graph: &Graph) -> Self {
        Self::with_code(graph, &greedy_coloring(graph, GreedyOrder::Natural), EliasCode::gamma())
    }

    /// Ablation: Elias **delta** code.
    pub fn delta(graph: &Graph) -> Self {
        Self::with_code(graph, &greedy_coloring(graph, GreedyOrder::Natural), EliasCode::delta())
    }

    /// Ablation: the unary code — the §4 "Prefix Free Color Code" example in
    /// its crudest form, giving colour `c` a period of `2^c`.
    pub fn unary(graph: &Graph) -> Self {
        Self::with_code(graph, &greedy_coloring(graph, GreedyOrder::Natural), UnaryCode)
    }

    /// Builds the scheduler from an explicit colouring and prefix-free code.
    ///
    /// # Panics
    /// Panics if the colouring is not proper for `graph` (the independence of
    /// every happy set depends on it), or if some codeword is 64 bits or
    /// longer (period would overflow a `u64`).
    pub fn with_code<C: PrefixFreeCode>(graph: &Graph, coloring: &Coloring, code: C) -> Self {
        assert!(coloring.is_proper(graph), "colouring must be proper");
        let schedule = CodeSchedule::new(code);
        let slots: Vec<SlotAssignment> =
            coloring.as_slice().iter().map(|&c| schedule.slot(u64::from(c))).collect();
        let offsets: Vec<u64> = slots.iter().map(|s| s.offset).collect();
        let periods: Vec<u64> = slots.iter().map(|s| s.period).collect();
        debug_assert!(periods.iter().all(|p| p.is_power_of_two()));
        let residue_schedule = ResidueSchedule::new(offsets, periods);
        PrefixCodeScheduler {
            coloring: coloring.clone(),
            slots,
            code_name: schedule.code().name(),
            schedule: residue_schedule,
        }
    }

    /// The colour of node `p`.
    pub fn color(&self, p: NodeId) -> u32 {
        self.coloring.color(p)
    }

    /// The slot (offset, period) of node `p`.
    pub fn slot(&self, p: NodeId) -> SlotAssignment {
        self.slots[p]
    }

    /// The underlying colouring.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }
}

impl Scheduler for PrefixCodeScheduler {
    fn node_count(&self) -> usize {
        self.slots.len()
    }

    fn fill_happy_set(&mut self, t: u64, out: &mut HappySet) {
        self.schedule.fill(t, out);
    }

    fn name(&self) -> &'static str {
        match self.code_name {
            "elias-omega" => "prefix-code-omega",
            "elias-gamma" => "prefix-code-gamma",
            "elias-delta" => "prefix-code-delta",
            "unary" => "prefix-code-unary",
            _ => "prefix-code",
        }
    }

    fn is_periodic(&self) -> bool {
        true
    }

    fn period(&self, p: NodeId) -> Option<u64> {
        Some(self.slots[p].period)
    }

    fn unhappiness_bound(&self, p: NodeId) -> Option<u64> {
        Some(self.slots[p].period)
    }

    fn residue_schedule(&self) -> Option<&ResidueSchedule> {
        Some(&self.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use fhg_codes::{log_star, phi, rho_omega};
    use fhg_coloring::two_coloring;
    use fhg_graph::generators::structured::{complete, cycle, star};
    use fhg_graph::generators::{bipartite_villages, erdos_renyi};
    use proptest::prelude::*;

    #[test]
    fn happy_sets_are_single_color_classes_and_independent() {
        let g = erdos_renyi(50, 0.1, 3);
        let mut s = PrefixCodeScheduler::omega(&g);
        // One checker and one member buffer reused across the sweep
        // (`is_independent_set` would rebuild its scratch per holiday).
        let checker = crate::analysis::GraphChecker::new(&g);
        let mut members = fhg_graph::FixedBitSet::new(g.node_count());
        for t in 0..512u64 {
            let happy = s.happy_set(t);
            members.clear();
            happy.iter().for_each(|&p| {
                members.insert(p);
            });
            assert!(crate::analysis::HolidayChecker::check(&checker, t, &members));
            // All happy nodes share one colour (condition (1) of the scheme).
            let colors: std::collections::HashSet<u32> =
                happy.iter().map(|&p| s.color(p)).collect();
            assert!(colors.len() <= 1, "holiday {t} woke colours {colors:?}");
        }
    }

    #[test]
    fn period_is_exactly_two_to_rho_of_color() {
        let g = erdos_renyi(60, 0.08, 5);
        let mut s = PrefixCodeScheduler::omega(&g);
        let analysis = analyze_schedule(&g, &mut s, 4096);
        for node in &analysis.per_node {
            let c = u64::from(s.color(node.node));
            let expected = 1u64 << rho_omega(c);
            assert_eq!(s.period(node.node), Some(expected));
            // Low colours recur often enough within the horizon to observe
            // the exact period empirically.
            if expected <= 1024 {
                assert_eq!(
                    node.observed_period,
                    Some(expected),
                    "node {} colour {c} expected period {expected}",
                    node.node
                );
            }
        }
    }

    #[test]
    fn theorem_4_2_bound_on_the_period() {
        let g = erdos_renyi(80, 0.1, 7);
        let s = PrefixCodeScheduler::omega(&g);
        for p in g.nodes() {
            let c = u64::from(s.color(p)) as f64;
            let bound = 2f64.powi(1 + log_star(c) as i32) * phi(c);
            assert!(
                s.period(p).unwrap() as f64 <= bound * (1.0 + 1e-9),
                "node {p}: period {} exceeds Theorem 4.2 bound {bound}",
                s.period(p).unwrap()
            );
        }
    }

    #[test]
    fn two_village_coloring_gives_period_at_most_four() {
        // With colours {1, 2}: ω(1) = "0" (period 2), ω(2) = "100" (period 8)…
        // so even the optimal colouring pays the code overhead — exactly the
        // trade-off the paper discusses.  Colour 1 keeps period 2.
        let g = bipartite_villages(10, 12, 0.5, 1);
        let coloring = two_coloring(&g).unwrap();
        let mut s = PrefixCodeScheduler::with_code(&g, &coloring, EliasCode::omega());
        let analysis = analyze_schedule(&g, &mut s, 64);
        assert!(analysis.all_happy_sets_independent);
        for p in g.nodes() {
            match s.color(p) {
                1 => assert_eq!(s.period(p), Some(2)),
                2 => assert_eq!(s.period(p), Some(8)),
                other => panic!("unexpected colour {other}"),
            }
        }
    }

    #[test]
    fn code_ablation_orders_periods_as_expected() {
        // For the same colouring, unary periods >= gamma periods >= omega
        // periods once colours are large enough; on a clique colours go up
        // to n so the gap is visible.
        let g = complete(12);
        let omega = PrefixCodeScheduler::omega(&g);
        let gamma = PrefixCodeScheduler::gamma(&g);
        let unary = PrefixCodeScheduler::unary(&g);
        let mut saw_strict = false;
        for p in g.nodes() {
            let (po, pg, pu) =
                (omega.period(p).unwrap(), gamma.period(p).unwrap(), unary.period(p).unwrap());
            assert!(pu >= pg || unary.color(p) <= 4, "unary should be worst for colour >= 5");
            if pu > pg && pg >= po {
                saw_strict = true;
            }
        }
        assert!(saw_strict, "expected at least one node where unary > gamma >= omega");
    }

    #[test]
    fn star_and_cycle_low_colors_get_tiny_periods() {
        let mut s = PrefixCodeScheduler::omega(&star(20));
        // Leaves have colour 2 under natural greedy; the centre colour 1.
        assert_eq!(s.period(0), Some(2));
        let g = cycle(8);
        let mut s2 = PrefixCodeScheduler::omega(&g);
        let analysis = analyze_schedule(&g, &mut s2, 64);
        assert!(analysis.all_happy_sets_independent);
        assert!(s.happy_set(0).contains(&0));
    }

    #[test]
    #[should_panic(expected = "proper")]
    fn rejects_improper_colorings() {
        let g = cycle(4);
        let coloring = Coloring::from_vec_unchecked(vec![1, 1, 1, 1]);
        PrefixCodeScheduler::with_code(&g, &coloring, EliasCode::omega());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let mut s = PrefixCodeScheduler::omega(&g);
        assert!(s.happy_set(0).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn all_codes_give_conflict_free_periodic_schedules(seed in 0u64..40, p in 0.02f64..0.25) {
            let g = erdos_renyi(35, p, seed);
            let coloring = greedy_coloring(&g, GreedyOrder::SmallestLast);
            for (mut sched, label) in [
                (PrefixCodeScheduler::with_code(&g, &coloring, EliasCode::omega()), "omega"),
                (PrefixCodeScheduler::with_code(&g, &coloring, EliasCode::gamma()), "gamma"),
                (PrefixCodeScheduler::with_code(&g, &coloring, EliasCode::delta()), "delta"),
            ] {
                let analysis = analyze_schedule(&g, &mut sched, 256);
                prop_assert!(analysis.all_happy_sets_independent, "{label}");
            }
        }
    }
}
