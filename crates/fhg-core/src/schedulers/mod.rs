//! The schedulers of the paper, one module per algorithm.
//!
//! * [`trivial`] — §4 example 1: colour nodes `0..n` sequentially, one node
//!   per holiday.  Global `mul(p) = n`; the strawman.
//! * [`round_robin`] — §1: any `k`-colouring cycled round-robin.  Global
//!   `mul(p) = k ≤ Δ + 1`.
//! * [`phased_greedy`] — §3: the non-periodic degree-bound algorithm,
//!   `mul(p) ≤ d_p + 1`, O(1) communication rounds per holiday (Theorem 3.1).
//! * [`prefix_code`] — §4.2: the perfectly periodic colour-bound algorithm
//!   driven by a prefix-free code (Elias omega by default), period
//!   `2^ρ(c_p)` (Theorem 4.2).
//! * [`degree_bound`] — §5: the perfectly periodic degree-bound algorithm,
//!   period `2^⌈log₂(d_p+1)⌉ ≤ 2 d_p` (Theorem 5.3), in both the sequential
//!   (§5.1) and distributed (§5.2) variants.
//! * [`first_grab`] — §1: the chaotic "first come first grab" baseline with
//!   expected waiting time `d_p + 1`.

pub mod degree_bound;
pub mod first_grab;
pub mod phased_greedy;
pub mod prefix_code;
pub mod residue;
pub mod round_robin;
pub mod trivial;

pub use degree_bound::{DistributedDegreeBound, PeriodicDegreeBound};
pub use first_grab::FirstComeFirstGrab;
pub use phased_greedy::PhasedGreedy;
pub use prefix_code::PrefixCodeScheduler;
pub use round_robin::RoundRobinColoring;
pub use trivial::TrivialSequential;

use fhg_graph::Graph;

use crate::scheduler::Scheduler;

/// Builds one instance of every scheduler in the paper (plus baselines) for a
/// head-to-head comparison on `graph` — the configuration used by experiment
/// E6 and the `scheduler_comparison` example.
pub fn standard_suite(graph: &Graph, seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(TrivialSequential::new(graph)),
        Box::new(RoundRobinColoring::new(graph)),
        Box::new(PhasedGreedy::new(graph)),
        Box::new(PrefixCodeScheduler::omega(graph)),
        Box::new(PrefixCodeScheduler::gamma(graph)),
        Box::new(PeriodicDegreeBound::new(graph)),
        Box::new(DistributedDegreeBound::new(graph, seed)),
        Box::new(FirstComeFirstGrab::new(graph, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule;
    use fhg_graph::generators::erdos_renyi;

    #[test]
    fn standard_suite_contains_every_scheduler_once() {
        let g = erdos_renyi(30, 0.1, 1);
        let suite = standard_suite(&g, 7);
        let names: Vec<&str> = suite.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 8);
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "scheduler names must be distinct: {names:?}");
    }

    #[test]
    fn every_suite_member_produces_valid_schedules() {
        let g = erdos_renyi(25, 0.15, 3);
        for mut s in standard_suite(&g, 11) {
            let a = analyze_schedule(&g, s.as_mut(), 64);
            assert!(a.all_happy_sets_independent, "{} produced a conflicting set", s.name());
        }
    }
}
