//! # fhg-core
//!
//! The Family Holiday Gathering Problem: schedulers and analysis.
//!
//! Given a conflict graph `G = (P, E)` over parents, a *schedule* is an
//! infinite sequence of gatherings; the happy parents of each gathering form
//! an independent set of `G`.  The objective is to bound, for every parent
//! `p`, the maximum unhappiness interval `mul(p)` — the longest stretch of
//! consecutive holidays in which `p` is never happy — by a *local* quantity
//! (the degree `d_p` or colour `c_p` of `p`), ideally with a perfectly
//! periodic, lightweight schedule.
//!
//! This crate implements every scheduler the paper describes:
//!
//! | scheduler | paper | guarantee |
//! |-----------|-------|-----------|
//! | [`schedulers::TrivialSequential`] | §4 example 1 | `mul(p) = n` (global, bad on purpose) |
//! | [`schedulers::RoundRobinColoring`] | §1 | `mul(p) = k` for a `k`-colouring (global) |
//! | [`schedulers::PhasedGreedy`] | §3, Thm 3.1 | `mul(p) ≤ d_p + 1`, non-periodic, heavyweight |
//! | [`schedulers::PrefixCodeScheduler`] | §4.2, Thm 4.2 | perfectly periodic, period `2^ρ(c_p)` |
//! | [`schedulers::PeriodicDegreeBound`] | §5.1, Thm 5.3 | perfectly periodic, period `2^⌈log(d_p+1)⌉ ≤ 2 d_p` |
//! | [`schedulers::DistributedDegreeBound`] | §5.2 | same bound, computed distributedly |
//! | [`schedulers::FirstComeFirstGrab`] | §1 | expected wait `d_p + 1` (baseline) |
//!
//! plus the [`analysis`] module that measures `mul`, periodicity, fairness
//! and independence over a finite horizon, the [`lower_bound`] module with
//! the Theorem 4.1 Cauchy-condensation machinery, and the [`dynamic`] module
//! for the §6 dynamic setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dynamic;
pub mod failpoint;
pub mod gathering;
pub mod lower_bound;
pub mod scheduler;
pub mod schedulers;
pub mod serving;

pub use analysis::{
    analyze_schedule, analyze_schedule_reference, analyze_schedule_totals,
    analyze_schedule_with_checker, analyze_schedule_with_engine, AnalysisEngine, AnalysisTotals,
    CycleProfile, DeriveScratch, GraphChecker, HolidayChecker, NodeAnalysis, PatchRefused,
    PatchScratch, PatchStats, ScanChecker, ScheduleAnalysis,
};
pub use gathering::{orientation_from_happy_set, Gathering};
pub use scheduler::Scheduler;
pub use serving::{
    audit_step_size, patch_limit, snapshot_dir, wal_sync, AuditStats, CacheStats, PatchError,
    PatchOutcome, ProfileService, QuarantineReason, Query, QueryError, RecoverError,
    RecoveryReport, RegisterError, SnapshotStats, WalSync, WalWriter, WindowAnalysis, WindowTotals,
    AUDIT_STEP, PATCH_LIMIT, SNAPSHOT_FILE, WAL_FILE, WAL_SYNC,
};

/// The zero-allocation per-holiday buffer filled by
/// [`Scheduler::fill_happy_set`] (defined in [`fhg_graph::happy_set`] so the
/// distributed layer can fill it too).
pub use fhg_graph::HappySet;

/// Commonly used items, re-exported for `use fhg_core::prelude::*`.
pub mod prelude {
    pub use crate::analysis::{
        analyze_schedule, analyze_schedule_reference, AnalysisEngine, ScheduleAnalysis,
    };
    pub use crate::scheduler::Scheduler;
    pub use crate::schedulers::{
        DistributedDegreeBound, FirstComeFirstGrab, PeriodicDegreeBound, PhasedGreedy,
        PrefixCodeScheduler, RoundRobinColoring, TrivialSequential,
    };
    pub use fhg_graph::HappySet;
}
