//! The profile-serving tier: cached closed-form profiles answering windowed
//! queries for many tenants, built for a long-lived process.
//!
//! [`ProfileService`] fronts the closed-form analytics of
//! [`CycleProfile`](crate::analysis::CycleProfile) with the three things a
//! server needs that a batch binary does not:
//!
//! * **A schedule-hash-keyed profile cache.**  Every registered tenant maps
//!   to a 64-bit content key — FNV-1a over the conflict graph's adjacency
//!   and the residue schedule's `(slot, modulus)` assignment plus the first
//!   holiday — and profiles are cached **per key, not per tenant**: tenants
//!   submitting an identical (graph, schedule) pair share one immutable
//!   profile build.  The key is returned by [`ProfileService::register`] so
//!   callers can correlate invalidations.
//! * **An explicit invalidation contract.**  Nothing expires implicitly: a
//!   cached profile is dropped only by [`ProfileService::invalidate`] (or
//!   [`invalidate_all`](ProfileService::invalidate_all)), which evicts the
//!   *schedule key* — every tenant sharing it goes cold together — and by
//!   re-[`register`](ProfileService::register)ing a tenant whose schedule
//!   content changed (the hash no longer matches, so the tenant rebinds to
//!   a fresh key; the old key is dropped when its last tenant leaves).
//!   Cold keys rebuild on the next [`build_pending`](ProfileService::build_pending).
//! * **Total, typed request handling.**  Registration validates *before*
//!   building — a non-periodic scheduler, an over-budget cycle or an
//!   over-budget attendance volume is a [`RegisterError`], never an unwrap
//!   crash or a budget assert — and queries return [`QueryError`] for
//!   unknown tenants or cold profiles.  The window fold itself is total:
//!   zero-width, inverted and sub-cycle windows all take defined paths
//!   (see [`CycleProfile::derive_window`](crate::analysis::CycleProfile::derive_window)).
//!
//! # Incremental repair and observability
//!
//! A mutating tenant does not have to go cold: [`ProfileService::patch`]
//! applies one dynamic edge event (the [`EventRepair`] its scheduler
//! returned) straight to the cached profile — copy-on-write detach when
//! the profile is shared, lane-level repair through
//! [`CycleProfile::patch`](crate::analysis::CycleProfile::patch), and a
//! guarded fall-back to a full rebuild when the event touches more lanes
//! than the `FHG_PATCH_LIMIT` knob allows ([`patch_limit`]).  Every cache
//! transition is counted ([`ProfileService::stats`], [`CacheStats`]):
//! hits, misses, in-place patches, full rebuilds and evictions.
//!
//! # Batch front and sharding
//!
//! [`ProfileService::build_pending`] builds every cold profile, sharded
//! across the persistent worker pool — one worker per profile, and each
//! build's internal cycle walk shards further (the pool's caller always
//! participates in a batch, so the nesting cannot deadlock).
//! [`ProfileService::query_batch`] / [`query_batch_full`](ProfileService::query_batch_full)
//! answer a request slice in parallel the same way; each worker reuses its
//! thread-local derivation scratch, so steady-state totals queries perform
//! **zero heap allocations** per request (proved by `tests/zero_alloc.rs`).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;

use fhg_graph::{EdgeEventKind, Graph, GraphError};
use rayon::prelude::*;

use crate::analysis::{
    AnalysisTotals, CycleProfile, GraphChecker, PatchScratch, PatchStats, ScanChecker,
    ScheduleAnalysis,
};
use crate::dynamic::EventRepair;
use crate::scheduler::Scheduler;
use crate::schedulers::residue::ResidueSchedule;

/// Default ceiling on the analytic touched-lane estimate above which
/// [`ProfileService::patch`] rebuilds instead of repairing in place.
/// Override at runtime with `FHG_PATCH_LIMIT`; see [`patch_limit`].
pub const PATCH_LIMIT: u64 = 65_536;

/// The patch-vs-rebuild threshold, decided once per process and cached in
/// a `OnceLock`: the `FHG_PATCH_LIMIT` environment variable when set (so
/// deployments can tune the crossover without recompiling), otherwise
/// [`PATCH_LIMIT`].
///
/// Same warn-and-fall-back contract as every other `FHG_*` knob: a
/// malformed value logs one warning to stderr and falls back to the
/// default — a long-lived serving process must not be killable by a typo
/// in its environment (pinned by the unit tests below).
pub fn patch_limit() -> u64 {
    static LIMIT: OnceLock<u64> = OnceLock::new();
    *LIMIT.get_or_init(|| parse_patch_limit(std::env::var("FHG_PATCH_LIMIT").ok().as_deref()))
}

/// Parses the `FHG_PATCH_LIMIT` override (factored out of [`patch_limit`]
/// so the fallback policy is testable despite the process-wide cache).
fn parse_patch_limit(raw: Option<&str>) -> u64 {
    match raw {
        None => PATCH_LIMIT,
        Some(raw) if raw.trim().is_empty() => PATCH_LIMIT,
        Some(raw) => match raw.trim().parse() {
            Ok(limit) => limit,
            Err(_) => {
                eprintln!(
                    "warning: FHG_PATCH_LIMIT={raw:?} is not a lane count; \
                     using the default {PATCH_LIMIT}"
                );
                PATCH_LIMIT
            }
        },
    }
}

/// Why a scheduler could not be registered: the service refuses, with a
/// typed error, every input the closed-form profile cannot represent —
/// the preconditions that used to be unwraps and asserts deep in the
/// analysis engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// The scheduler exposes no perfectly periodic residue view
    /// ([`Scheduler::residue_schedule`] returned `None`), so no cycle
    /// profile exists to build.  Analyze it with the sweep engines instead
    /// ([`crate::analysis::analyze_schedule`]).
    NotPeriodic {
        /// The offending scheduler's [`Scheduler::name`].
        scheduler: String,
    },
    /// The schedule's cycle (possibly a saturated lcm) exceeds the profile
    /// budget [`CycleProfile::MAX_CYCLE`].
    CycleTooLong {
        /// The schedule's cycle length.
        cycle: u64,
        /// The budget it exceeded.
        max: u64,
    },
    /// The per-cycle attendance volume exceeds the profile memory budget
    /// [`CycleProfile::MAX_EVENTS`].
    AttendanceTooHeavy {
        /// The schedule's total attendance per cycle.
        attendance: u64,
        /// The budget it exceeded.
        max: u64,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::NotPeriodic { scheduler } => {
                write!(f, "scheduler {scheduler:?} exposes no periodic residue view")
            }
            RegisterError::CycleTooLong { cycle, max } => {
                write!(f, "cycle {cycle} exceeds the profile budget {max}")
            }
            RegisterError::AttendanceTooHeavy { attendance, max } => {
                write!(f, "attendance {attendance} per cycle exceeds the profile budget {max}")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// Why a query could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// No tenant with this id is registered.
    UnknownTenant(u64),
    /// The tenant is registered but its profile is cold (never built, or
    /// explicitly invalidated); call
    /// [`ProfileService::build_pending`] first.
    ProfileNotBuilt(u64),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTenant(t) => write!(f, "tenant {t} is not registered"),
            QueryError::ProfileNotBuilt(t) => {
                write!(f, "tenant {t}'s profile is cold; run build_pending first")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A point-in-time snapshot of the service's cache-activity counters —
/// see [`ProfileService::stats`] for what each counter means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from a warm profile.
    pub hits: u64,
    /// Queries refused (unknown tenant or cold profile) and patches aimed
    /// at unknown tenants.
    pub misses: u64,
    /// Edge events repaired in place by [`ProfileService::patch`].
    pub patches: u64,
    /// Full profile builds: every [`ProfileService::build_pending`] build
    /// plus every patch that fell back to a rebuild.
    pub rebuilds: u64,
    /// Warm profiles dropped: explicit invalidations, slots released by
    /// their last tenant, and budget-violating patches that went cold.
    pub evictions: u64,
}

/// The service's internal counters — atomic because the batch query front
/// counts from worker threads under a shared `&self`.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    patches: AtomicU64,
    rebuilds: AtomicU64,
    evictions: AtomicU64,
}

/// What [`ProfileService::patch`] did with an edge event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchOutcome {
    /// The cached profile was repaired in place; the stats say how much
    /// work that took.
    Patched(PatchStats),
    /// The repair was refused (cycle changed, verdict already broken) or
    /// the touched-lane estimate exceeded [`patch_limit`]; the profile was
    /// rebuilt from scratch instead — still warm, just not incremental.
    Rebuilt,
    /// The tenant's slot was cold: its graph and schedule content were
    /// updated, but there is no profile to repair until the next
    /// [`ProfileService::build_pending`].
    Cold,
}

/// Why [`ProfileService::patch`] could not apply an edge event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// No tenant with this id is registered.
    UnknownTenant(u64),
    /// The event does not apply to the tenant's graph (inserting an edge
    /// that exists, deleting one that doesn't, out-of-range endpoints) —
    /// the repair came from a different scheduler than the one registered.
    /// The slot is left untouched.
    Graph(GraphError),
    /// The mutated schedule outgrew a profile budget (cycle length or
    /// attendance volume); the slot's content was updated but its profile
    /// went cold — the closed form no longer applies to this tenant.
    BudgetExceeded(RegisterError),
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::UnknownTenant(t) => write!(f, "tenant {t} is not registered"),
            PatchError::Graph(e) => write!(f, "event does not apply to the tenant's graph: {e}"),
            PatchError::BudgetExceeded(e) => {
                write!(f, "mutated schedule outgrew the profile budget: {e}")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// One windowed request: analyze tenant `tenant` over the holiday window
/// `[window.0, window.1)` (offsets relative to the schedule's first
/// holiday; `window.1 <= window.0` is the empty window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// The tenant whose schedule to analyze.
    pub tenant: u64,
    /// The half-open window `[t0, t1)`.
    pub window: (u64, u64),
}

/// A totals-only windowed response.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTotals {
    /// The originating request's tenant.
    pub tenant: u64,
    /// The originating request's window.
    pub window: (u64, u64),
    /// The whole-window aggregates.
    pub totals: AnalysisTotals,
}

/// A full per-node windowed response.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAnalysis {
    /// The originating request's tenant.
    pub tenant: u64,
    /// The originating request's window.
    pub window: (u64, u64),
    /// The per-node analysis of the window.
    pub analysis: ScheduleAnalysis,
}

/// One cached (graph, schedule) pair and its profile, shared by every
/// tenant whose content hashes to the same key.
struct ProfileSlot {
    graph: Graph,
    view: ResidueSchedule,
    start: u64,
    name: String,
    /// `None` while cold (pending first build, or invalidated).
    profile: Option<CycleProfile>,
    /// How many registered tenants point at this slot.
    refs: usize,
    /// Whether this slot was detached for mutation by
    /// [`ProfileService::patch`]: its key is synthetic (never a content
    /// hash), it belongs to exactly one tenant, and registrations can
    /// never alias it.
    private: bool,
}

/// The multi-tenant profile cache and batch query front — see the module
/// docs for the cache keying and invalidation contract.
#[derive(Default)]
pub struct ProfileService {
    /// tenant id → schedule key.
    tenants: HashMap<u64, u64>,
    /// schedule key → cached slot.
    slots: HashMap<u64, ProfileSlot>,
    /// Cache-activity counters, snapshot by [`ProfileService::stats`].
    counters: Counters,
    /// Reusable patch buffers; after warm-up a patch allocates nothing.
    patch_scratch: PatchScratch,
    /// Next candidate synthetic key for detached slots (collision-checked
    /// against live keys before use).
    next_private_key: u64,
}

impl ProfileService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) tenant `tenant` with its conflict graph
    /// and scheduler, returning the schedule key the tenant was bound to.
    /// Validates every profile precondition up front — periodicity, the
    /// cycle budget, the attendance budget — and returns a typed
    /// [`RegisterError`] instead of crashing later.  The profile itself is
    /// *not* built here: registration marks the key pending and
    /// [`ProfileService::build_pending`] builds all pending keys sharded
    /// across the worker pool.  Re-registering a tenant whose content
    /// changed rebinds it (the old key is dropped with its last tenant);
    /// re-registering identical content is a no-op that keeps any warm
    /// profile.
    pub fn register<S: Scheduler + ?Sized>(
        &mut self,
        tenant: u64,
        graph: &Graph,
        scheduler: &S,
    ) -> Result<u64, RegisterError> {
        let Some(view) = scheduler.residue_schedule() else {
            return Err(RegisterError::NotPeriodic { scheduler: scheduler.name().to_string() });
        };
        let cycle = view.cycle();
        if cycle > CycleProfile::MAX_CYCLE {
            return Err(RegisterError::CycleTooLong { cycle, max: CycleProfile::MAX_CYCLE });
        }
        let attendance = view.attendance_per_cycle();
        if attendance > CycleProfile::MAX_EVENTS {
            return Err(RegisterError::AttendanceTooHeavy {
                attendance,
                max: CycleProfile::MAX_EVENTS,
            });
        }
        let start = scheduler.first_holiday();
        let key = schedule_key(graph, view, start);
        match self.tenants.get(&tenant) {
            Some(&old) if old == key => return Ok(key),
            Some(&old) => self.release_key(old),
            None => {}
        }
        self.tenants.insert(tenant, key);
        self.slots.entry(key).and_modify(|slot| slot.refs += 1).or_insert_with(|| ProfileSlot {
            graph: graph.clone(),
            view: view.clone(),
            start,
            name: scheduler.name().to_string(),
            profile: None,
            refs: 1,
            private: false,
        });
        Ok(key)
    }

    /// Unregisters a tenant; its schedule key (and cached profile) is
    /// dropped when the last tenant sharing it leaves.  Returns whether the
    /// tenant was registered.
    pub fn remove(&mut self, tenant: u64) -> bool {
        match self.tenants.remove(&tenant) {
            Some(key) => {
                self.release_key(key);
                true
            }
            None => false,
        }
    }

    fn release_key(&mut self, key: u64) {
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.refs -= 1;
            if slot.refs == 0 {
                if let Some(slot) = self.slots.remove(&key) {
                    if slot.profile.is_some() {
                        self.counters.evictions.fetch_add(1, Relaxed);
                    }
                }
            }
        }
    }

    /// Explicitly invalidates a tenant's cached profile — the *schedule
    /// key* goes cold, so every tenant sharing it rebuilds on the next
    /// [`ProfileService::build_pending`].  Returns whether a warm profile
    /// was actually dropped.
    pub fn invalidate(&mut self, tenant: u64) -> bool {
        let Some(&key) = self.tenants.get(&tenant) else {
            return false;
        };
        match self.slots.get_mut(&key) {
            Some(slot) => {
                let dropped = slot.profile.take().is_some();
                if dropped {
                    self.counters.evictions.fetch_add(1, Relaxed);
                }
                dropped
            }
            None => false,
        }
    }

    /// Drops every cached profile (registrations stay).
    pub fn invalidate_all(&mut self) {
        for slot in self.slots.values_mut() {
            if slot.profile.take().is_some() {
                self.counters.evictions.fetch_add(1, Relaxed);
            }
        }
    }

    /// Builds every cold profile, sharded across the persistent worker
    /// pool (each build's internal cycle walk shards further — the nesting
    /// is deadlock-free because the pool's caller always participates).
    /// Returns how many profiles were built.  Idempotent: warm profiles
    /// are untouched, so the service stays bitwise-stable across calls.
    pub fn build_pending(&mut self) -> usize {
        let pending: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, slot)| slot.profile.is_none())
            .map(|(&key, _)| key)
            .collect();
        let mut building: Vec<(u64, ProfileSlot)> = pending
            .into_iter()
            .map(|key| {
                let slot = self.slots.remove(&key).expect("pending key was just enumerated");
                (key, slot)
            })
            .collect();
        building.par_iter_mut().for_each(|(_, slot)| {
            let checker = GraphChecker::new(&slot.graph);
            slot.profile = Some(CycleProfile::build(
                &slot.view,
                slot.start,
                slot.graph.node_count(),
                &checker,
            ));
        });
        let built = building.len();
        for (key, slot) in building {
            self.slots.insert(key, slot);
        }
        self.counters.rebuilds.fetch_add(built as u64, Relaxed);
        built
    }

    /// Applies one dynamic edge event to `tenant`'s cached profile **in
    /// place** — the serving face of the incremental repair plane.  The
    /// caller drives its scheduler first
    /// ([`crate::dynamic::DynamicColorBound::apply_event`]) and hands the
    /// returned [`EventRepair`] here; the service then:
    ///
    /// 1. **detaches** the tenant onto a private copy-on-write slot if its
    ///    profile is shared (other tenants keep the unmutated original and
    ///    stay warm), or moves the slot off its content key if exclusive
    ///    (so later registrations of the *old* content cannot alias the
    ///    mutated slot);
    /// 2. mirrors the edge event onto the slot's graph and the row changes
    ///    onto its residue view;
    /// 3. repairs the cached [`CycleProfile`] through
    ///    [`CycleProfile::patch`] — verification runs against the live
    ///    graph through a [`ScanChecker`], so no adjacency layout is
    ///    rebuilt per event — **unless** the analytic touched-lane
    ///    estimate exceeds the [`patch_limit`] knob (`FHG_PATCH_LIMIT`) or
    ///    the patch is refused (cycle changed, verdict already broken), in
    ///    which case it degrades to a full rebuild, still in this call.
    ///
    /// Cold slots absorb the content change and stay cold
    /// ([`PatchOutcome::Cold`]).  A mutated schedule that outgrows a
    /// profile budget goes cold with a typed
    /// [`PatchError::BudgetExceeded`].  After warm-up, the in-place path
    /// performs zero heap allocations (proved by `tests/zero_alloc.rs`).
    pub fn patch(&mut self, tenant: u64, repair: &EventRepair) -> Result<PatchOutcome, PatchError> {
        let Some(&key) = self.tenants.get(&tenant) else {
            self.counters.misses.fetch_add(1, Relaxed);
            return Err(PatchError::UnknownTenant(tenant));
        };
        let key = self.detach_for_write(tenant, key);
        let Self { slots, counters, patch_scratch, .. } = self;
        let slot = slots.get_mut(&key).expect("detach_for_write placed the slot");

        // Mirror the event onto the slot's private graph copy first: a
        // failure here means the repair came from a scheduler that is not
        // this tenant's registered content, and leaves the slot untouched.
        let event = repair.event;
        match event.kind {
            EdgeEventKind::Insert => slot.graph.add_edge(event.u, event.v),
            EdgeEventKind::Delete => slot.graph.remove_edge(event.u, event.v),
        }
        .map_err(PatchError::Graph)?;
        for change in repair.row_changes() {
            slot.view.apply_row(change);
        }

        if slot.profile.is_none() {
            return Ok(PatchOutcome::Cold);
        }

        // The mutated schedule may have outgrown the closed form (a
        // recolored node with a longer period stretches the cycle): the
        // same budgets registration enforces, re-validated before any
        // rebuild could assert deep in the build.
        let cycle = slot.view.cycle();
        if cycle > CycleProfile::MAX_CYCLE {
            slot.profile = None;
            counters.evictions.fetch_add(1, Relaxed);
            return Err(PatchError::BudgetExceeded(RegisterError::CycleTooLong {
                cycle,
                max: CycleProfile::MAX_CYCLE,
            }));
        }
        let attendance = slot.view.attendance_per_cycle();
        if attendance > CycleProfile::MAX_EVENTS {
            slot.profile = None;
            counters.evictions.fetch_add(1, Relaxed);
            return Err(PatchError::BudgetExceeded(RegisterError::AttendanceTooHeavy {
                attendance,
                max: CycleProfile::MAX_EVENTS,
            }));
        }

        // The analytic touched-lane estimate: offsets rewritten per row
        // change (old progression out, new progression in) plus, for an
        // insert, an upper bound on the CRT co-attendance classes.  Purely
        // arithmetic — computed before deciding to patch, so a pathological
        // event (a hub recoloring onto modulus 1) pays a rebuild instead of
        // a patch that is no cheaper.
        let mut touched: u64 = repair
            .row_changes()
            .iter()
            .map(|c| cycle / c.old_modulus.max(1) + cycle / c.new_modulus)
            .sum();
        if event.kind == EdgeEventKind::Insert {
            let (mu, mv) = (slot.view.modulus(event.u), slot.view.modulus(event.v));
            touched += cycle / mu.max(mv);
        }

        if touched <= patch_limit() {
            let profile = slot.profile.as_mut().expect("checked warm above");
            let scan = ScanChecker::new(&slot.graph);
            let inserted = (event.kind == EdgeEventKind::Insert).then_some((event.u, event.v));
            if let Ok(stats) =
                profile.patch(&slot.view, repair.row_changes(), inserted, &scan, patch_scratch)
            {
                counters.patches.fetch_add(1, Relaxed);
                return Ok(PatchOutcome::Patched(stats));
            }
        }
        let checker = GraphChecker::new(&slot.graph);
        slot.profile =
            Some(CycleProfile::build(&slot.view, slot.start, slot.graph.node_count(), &checker));
        counters.rebuilds.fetch_add(1, Relaxed);
        Ok(PatchOutcome::Rebuilt)
    }

    /// Rebinds `tenant` to a slot that is safe to mutate: an
    /// already-private slot is returned as-is; a shared slot is cloned
    /// copy-on-write under a fresh synthetic key (the other tenants keep
    /// the original, warm); an exclusively-held content-keyed slot is
    /// *moved* to a synthetic key, so a later registration of the old
    /// content starts a fresh slot instead of aliasing the mutated one.
    fn detach_for_write(&mut self, tenant: u64, key: u64) -> u64 {
        let slot = self.slots.get(&key).expect("tenant keys always resolve");
        if slot.private {
            return key;
        }
        let mut fresh = self.next_private_key;
        while self.slots.contains_key(&fresh) {
            fresh = fresh.wrapping_add(1);
        }
        self.next_private_key = fresh.wrapping_add(1);
        let detached = if slot.refs == 1 {
            let mut slot = self.slots.remove(&key).expect("just resolved");
            slot.private = true;
            slot
        } else {
            let shared = self.slots.get_mut(&key).expect("just resolved");
            shared.refs -= 1;
            ProfileSlot {
                graph: shared.graph.clone(),
                view: shared.view.clone(),
                start: shared.start,
                name: shared.name.clone(),
                profile: shared.profile.clone(),
                refs: 1,
                private: true,
            }
        };
        self.slots.insert(fresh, detached);
        self.tenants.insert(tenant, fresh);
        fresh
    }

    /// A snapshot of the cache-activity counters: query **hits** against
    /// warm profiles vs **misses** (unknown tenants, cold profiles),
    /// in-place **patches** vs full **rebuilds** (pending builds and patch
    /// fallbacks), and **evictions** of warm profiles (invalidations,
    /// released slots, budget-violating patches).  Counters are monotonic
    /// over the service's lifetime.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Relaxed),
            misses: self.counters.misses.load(Relaxed),
            patches: self.counters.patches.load(Relaxed),
            rebuilds: self.counters.rebuilds.load(Relaxed),
            evictions: self.counters.evictions.load(Relaxed),
        }
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Number of distinct schedule keys currently cached (warm or cold).
    pub fn key_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of warm (built) profiles.
    pub fn warm_count(&self) -> usize {
        self.slots.values().filter(|slot| slot.profile.is_some()).count()
    }

    /// The warm profile serving `tenant`, if any.
    pub fn profile(&self, tenant: u64) -> Option<&CycleProfile> {
        let key = self.tenants.get(&tenant)?;
        self.slots.get(key)?.profile.as_ref()
    }

    fn slot_of(&self, tenant: u64) -> Result<(&ProfileSlot, &CycleProfile), QueryError> {
        let key = self.tenants.get(&tenant).ok_or(QueryError::UnknownTenant(tenant))?;
        let slot = self.slots.get(key).ok_or(QueryError::UnknownTenant(tenant))?;
        let profile = slot.profile.as_ref().ok_or(QueryError::ProfileNotBuilt(tenant))?;
        Ok((slot, profile))
    }

    /// Answers one totals-only windowed query — the hot serving shape:
    /// after warm-up this performs zero heap allocations (thread-local
    /// derivation scratch; proved by `tests/zero_alloc.rs`).
    pub fn query_totals(
        &self,
        tenant: u64,
        t0: u64,
        t1: u64,
    ) -> Result<AnalysisTotals, QueryError> {
        let (_, profile) = self.counted(self.slot_of(tenant))?;
        Ok(profile.derive_window_totals(t0, t1))
    }

    /// Answers one full per-node windowed query (the output allocation is
    /// proportional to the node count, never the window length).
    pub fn query(&self, tenant: u64, t0: u64, t1: u64) -> Result<ScheduleAnalysis, QueryError> {
        let (slot, profile) = self.counted(self.slot_of(tenant))?;
        Ok(profile.derive_window(&slot.name, &slot.graph, t0, t1))
    }

    /// Counts a slot lookup as a cache hit or miss (atomically — the batch
    /// front resolves slots from worker threads under a shared `&self`).
    fn counted<T>(&self, resolved: Result<T, QueryError>) -> Result<T, QueryError> {
        match &resolved {
            Ok(_) => self.counters.hits.fetch_add(1, Relaxed),
            Err(_) => self.counters.misses.fetch_add(1, Relaxed),
        };
        resolved
    }

    /// The batch front, totals flavor: answers every request, sharded
    /// across the worker pool, results in request order.  Individual
    /// failures (unknown tenant, cold profile) fail their own slot only.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<WindowTotals, QueryError>> {
        queries
            .par_iter()
            .map(|q| {
                self.query_totals(q.tenant, q.window.0, q.window.1).map(|totals| WindowTotals {
                    tenant: q.tenant,
                    window: q.window,
                    totals,
                })
            })
            .collect()
    }

    /// The batch front, full-analysis flavor.
    pub fn query_batch_full(&self, queries: &[Query]) -> Vec<Result<WindowAnalysis, QueryError>> {
        queries
            .par_iter()
            .map(|q| {
                self.query(q.tenant, q.window.0, q.window.1).map(|analysis| WindowAnalysis {
                    tenant: q.tenant,
                    window: q.window,
                    analysis,
                })
            })
            .collect()
    }
}

/// 64-bit FNV-1a accumulator for the schedule content key.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn put(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The schedule content key: FNV-1a over the residue assignment
/// (`(slot, modulus)` per node, plus the first holiday) *and* the conflict
/// graph's adjacency — two tenants share a profile only when both the
/// schedule and the graph match, because the independence verdict baked
/// into a profile depends on the graph.
fn schedule_key(graph: &Graph, view: &ResidueSchedule, start: u64) -> u64 {
    let mut h = Fnv::new();
    h.put(start);
    h.put(view.node_count() as u64);
    for p in 0..view.node_count() {
        h.put(view.slot(p));
        h.put(view.modulus(p));
    }
    h.put(graph.node_count() as u64);
    for u in graph.nodes() {
        let row = graph.neighbors(u);
        h.put(row.len() as u64);
        for &v in row {
            h.put(v as u64);
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule_reference;
    use crate::schedulers::{FirstComeFirstGrab, PeriodicDegreeBound};
    use fhg_graph::generators::erdos_renyi;

    #[test]
    fn non_periodic_schedulers_are_a_typed_error_not_a_crash() {
        let g = erdos_renyi(16, 0.2, 7);
        let mut service = ProfileService::new();
        let dynamic = FirstComeFirstGrab::new(&g, 42);
        let err = service.register(1, &g, &dynamic).unwrap_err();
        assert!(matches!(err, RegisterError::NotPeriodic { .. }), "{err}");
        assert_eq!(service.tenant_count(), 0, "failed registrations leave no residue");
    }

    #[test]
    fn over_budget_cycles_are_rejected_up_front() {
        // Huge coprime moduli: the lcm saturates far past MAX_CYCLE.
        let g = Graph::new(3);
        let view = ResidueSchedule::scan_only(
            vec![0, 1, 2],
            vec![(1 << 21) + 1, (1 << 21) - 1, (1 << 20) + 3],
        );
        struct Fixed(ResidueSchedule);
        impl Scheduler for Fixed {
            fn node_count(&self) -> usize {
                self.0.node_count()
            }
            fn fill_happy_set(&mut self, t: u64, out: &mut crate::HappySet) {
                self.0.fill(t, out);
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn is_periodic(&self) -> bool {
                true
            }
            fn period(&self, p: fhg_graph::NodeId) -> Option<u64> {
                Some(self.0.modulus(p))
            }
            fn unhappiness_bound(&self, _p: fhg_graph::NodeId) -> Option<u64> {
                None
            }
            fn residue_schedule(&self) -> Option<&ResidueSchedule> {
                Some(&self.0)
            }
        }
        let mut service = ProfileService::new();
        let err = service.register(9, &g, &Fixed(view)).unwrap_err();
        assert!(matches!(err, RegisterError::CycleTooLong { .. }), "{err}");
    }

    #[test]
    fn identical_content_shares_one_profile_and_invalidation_is_explicit() {
        let g = erdos_renyi(24, 0.15, 3);
        let s = PeriodicDegreeBound::new(&g);
        let mut service = ProfileService::new();
        let k1 = service.register(1, &g, &s).unwrap();
        let k2 = service.register(2, &g, &s).unwrap();
        assert_eq!(k1, k2, "identical content hashes to one key");
        assert_eq!(service.key_count(), 1);
        assert_eq!(service.tenant_count(), 2);

        assert_eq!(service.query_totals(1, 0, 10), Err(QueryError::ProfileNotBuilt(1)));
        assert_eq!(service.build_pending(), 1, "one shared build for both tenants");
        assert_eq!(service.build_pending(), 0, "idempotent");
        assert_eq!(service.warm_count(), 1);

        let a = service.query_totals(1, 3, 40).unwrap();
        let b = service.query_totals(2, 3, 40).unwrap();
        assert_eq!(a, b);
        assert_eq!(service.query_totals(3, 0, 10), Err(QueryError::UnknownTenant(3)));

        assert!(service.invalidate(1), "warm profile dropped");
        assert!(!service.invalidate(1), "already cold");
        assert_eq!(service.query_totals(2, 3, 40), Err(QueryError::ProfileNotBuilt(2)));
        assert_eq!(service.build_pending(), 1);
        assert_eq!(service.query_totals(2, 3, 40).unwrap(), a, "rebuild is bitwise-stable");

        assert!(service.remove(1));
        assert_eq!(service.key_count(), 1, "tenant 2 still holds the key");
        assert!(service.remove(2));
        assert_eq!(service.key_count(), 0, "last tenant drops the slot");
    }

    #[test]
    fn served_windows_match_the_reference_sweep() {
        let g = erdos_renyi(32, 0.12, 5);
        let s = PeriodicDegreeBound::new(&g);
        let mut service = ProfileService::new();
        service.register(7, &g, &s).unwrap();
        service.build_pending();
        let cycle = service.profile(7).unwrap().cycle();

        // Reference over [0, t1): the sweep from the schedule itself.
        let t1 = 2 * cycle + 3;
        let mut fresh = PeriodicDegreeBound::new(&g);
        let reference = analyze_schedule_reference(&g, &mut fresh, t1);
        let served = service.query(7, 0, t1).unwrap();
        assert_eq!(served.totals(), reference.totals());

        // The batch front agrees with the single-query path, slot by slot.
        let queries: Vec<Query> = (0..20)
            .map(|i| Query { tenant: 7, window: (i * 3, i * 3 + 1 + i % (2 * cycle)) })
            .chain([Query { tenant: 99, window: (0, 5) }])
            .collect();
        let batch = service.query_batch(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            match r {
                Ok(w) => {
                    assert_eq!(w.tenant, q.tenant);
                    assert_eq!(
                        w.totals,
                        service.query_totals(q.tenant, q.window.0, q.window.1).unwrap()
                    );
                }
                Err(e) => assert_eq!(*e, QueryError::UnknownTenant(99)),
            }
        }
        let full = service.query_batch_full(&queries[..4]);
        for (q, r) in queries.iter().zip(&full) {
            let w = r.as_ref().unwrap();
            assert_eq!(
                w.analysis.totals(),
                service.query_totals(q.tenant, q.window.0, q.window.1).unwrap()
            );
        }
    }

    #[test]
    fn patch_limit_override_falls_back_instead_of_panicking() {
        // Same contract as FHG_DENSE_LIMIT and FHG_KERNEL: garbage in the
        // environment warns and falls back, never kills the server.
        assert_eq!(parse_patch_limit(None), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("  ")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("garbage")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("-7")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("1e6")), PATCH_LIMIT);
        assert_eq!(parse_patch_limit(Some("0")), 0, "zero forces rebuild-always");
        assert_eq!(parse_patch_limit(Some("1024")), 1024);
        assert_eq!(parse_patch_limit(Some(" 42 ")), 42, "whitespace is trimmed");
    }

    #[test]
    fn shared_profiles_survive_removal_and_invalidation_of_a_cotenant() {
        // Two tenants share one profile; removing one and bouncing the
        // other through an invalidate/rebuild must keep the survivor's
        // identity and answers bitwise-stable.
        let g = erdos_renyi(28, 0.14, 13);
        let s = PeriodicDegreeBound::new(&g);
        let mut service = ProfileService::new();
        let k1 = service.register(1, &g, &s).unwrap();
        let k2 = service.register(2, &g, &s).unwrap();
        assert_eq!(k1, k2, "identical content shares one slot");
        assert_eq!(service.build_pending(), 1);

        let cycle = service.profile(1).unwrap().cycle();
        let window = (3, 4 * cycle + 1);
        let before = service.query(2, window.0, window.1).unwrap();
        let shared: *const CycleProfile = service.profile(2).unwrap();
        assert_eq!(shared, service.profile(1).unwrap() as *const _, "one profile, two tenants");

        assert!(service.remove(1), "tenant 1 leaves");
        assert_eq!(service.tenant_count(), 1);
        assert_eq!(service.key_count(), 1, "tenant 2 still holds the slot");
        assert_eq!(
            service.profile(2).unwrap() as *const CycleProfile,
            shared,
            "removal of a cotenant must not disturb the survivor's profile"
        );

        assert!(service.invalidate(2), "survivor goes cold on request");
        assert_eq!(service.query(2, window.0, window.1), Err(QueryError::ProfileNotBuilt(2)));
        assert_eq!(service.build_pending(), 1);
        let after = service.query(2, window.0, window.1).unwrap();
        assert_eq!(after, before, "rebuild is bitwise-stable");
        let stats = service.stats();
        assert_eq!(stats.evictions, 1, "one explicit invalidation");
        assert_eq!(stats.rebuilds, 2, "initial build + rebuild");
        assert_eq!(stats.misses, 1, "the one cold query");
    }

    #[test]
    fn patch_repairs_in_place_and_detaches_shared_slots() {
        use crate::dynamic::DynamicColorBound;

        let g = erdos_renyi(40, 0.1, 21);
        let mut sched = DynamicColorBound::new(&g);
        let mut service = ProfileService::new();
        service.register(1, &g, &sched).unwrap();
        service.register(2, &g, &sched).unwrap();
        assert_eq!(service.build_pending(), 1);
        let cycle = service.profile(1).unwrap().cycle();
        let untouched = service.query(2, 0, 3 * cycle).unwrap();

        // Drive a few events through tenant 1; tenant 2 keeps the original.
        let mut patched = 0u64;
        let mut events = 0u64;
        let mut last_repair = None;
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 4), (0, 1)] {
            let kind = if sched.graph().has_edge(u, v) {
                EdgeEventKind::Delete
            } else {
                EdgeEventKind::Insert
            };
            let event = fhg_graph::EdgeEvent { kind, u, v, holiday: events };
            let repair = sched.apply_event(event).unwrap();
            match service.patch(1, &repair).unwrap() {
                PatchOutcome::Patched(_) => patched += 1,
                PatchOutcome::Rebuilt => {}
                PatchOutcome::Cold => panic!("slot was warm"),
            }
            last_repair = Some(repair);
            events += 1;

            // Patched profile must equal a from-scratch build of the
            // mutated schedule, served through the query path.
            let view = sched.residue_schedule().unwrap();
            let checker = GraphChecker::new(sched.graph());
            let oracle =
                CycleProfile::build(view, sched.first_holiday(), sched.node_count(), &checker);
            let served = service.profile(1).unwrap();
            assert!(served.content_eq(&oracle), "event {events}: patched profile diverged");
        }
        assert!(patched > 0, "at least some events must take the in-place path");
        assert_eq!(
            service.query(2, 0, 3 * cycle).unwrap(),
            untouched,
            "the cotenant's profile must be copy-on-write isolated from the mutation"
        );
        let stats = service.stats();
        assert_eq!(stats.patches + stats.rebuilds - 1, events, "every event counted");

        // Replaying an already-applied event no longer fits the slot's
        // graph: a typed error, and the slot is left untouched.
        let replay = last_repair.expect("loop ran");
        let err = service.patch(1, &replay).unwrap_err();
        assert!(matches!(err, PatchError::Graph(_)), "{err}");
        assert!(matches!(service.patch(77, &replay), Err(PatchError::UnknownTenant(77))));
    }

    #[test]
    fn schedule_key_separates_graph_and_schedule_content() {
        let g1 = erdos_renyi(24, 0.15, 3);
        let mut g2 = g1.clone();
        // Flip one edge: same schedule, different graph, different key.
        let (u, v) = (0, 1);
        if g2.has_edge(u, v) {
            g2.remove_edge(u, v).unwrap();
        } else {
            g2.add_edge(u, v).unwrap();
        }
        let s1 = PeriodicDegreeBound::new(&g1);
        let view = s1.residue_schedule().unwrap();
        let k_same = schedule_key(&g1, view, 1);
        assert_eq!(k_same, schedule_key(&g1, view, 1), "deterministic");
        assert_ne!(k_same, schedule_key(&g2, view, 1), "graph content is part of the key");
        assert_ne!(k_same, schedule_key(&g1, view, 2), "the first holiday is part of the key");
    }
}
