//! The profile-serving tier: cached closed-form profiles answering windowed
//! queries for many tenants, built for a long-lived process.
//!
//! [`ProfileService`] fronts the closed-form analytics of
//! [`CycleProfile`](crate::analysis::CycleProfile) with the three things a
//! server needs that a batch binary does not:
//!
//! * **A schedule-hash-keyed profile cache.**  Every registered tenant maps
//!   to a 64-bit content key — FNV-1a over the conflict graph's adjacency
//!   and the residue schedule's `(slot, modulus)` assignment plus the first
//!   holiday — and profiles are cached **per key, not per tenant**: tenants
//!   submitting an identical (graph, schedule) pair share one immutable
//!   profile build.  The key is returned by [`ProfileService::register`] so
//!   callers can correlate invalidations.
//! * **An explicit invalidation contract.**  Nothing expires implicitly: a
//!   cached profile is dropped only by [`ProfileService::invalidate`] (or
//!   [`invalidate_all`](ProfileService::invalidate_all)), which evicts the
//!   *schedule key* — every tenant sharing it goes cold together — and by
//!   re-[`register`](ProfileService::register)ing a tenant whose schedule
//!   content changed (the hash no longer matches, so the tenant rebinds to
//!   a fresh key; the old key is dropped when its last tenant leaves).
//!   Cold keys rebuild on the next [`build_pending`](ProfileService::build_pending).
//! * **Total, typed request handling.**  Registration validates *before*
//!   building — a non-periodic scheduler, an over-budget cycle or an
//!   over-budget attendance volume is a [`RegisterError`], never an unwrap
//!   crash or a budget assert — and queries return [`QueryError`] for
//!   unknown tenants or cold profiles.  The window fold itself is total:
//!   zero-width, inverted and sub-cycle windows all take defined paths
//!   (see [`CycleProfile::derive_window`](crate::analysis::CycleProfile::derive_window)).
//!
//! # Batch front and sharding
//!
//! [`ProfileService::build_pending`] builds every cold profile, sharded
//! across the persistent worker pool — one worker per profile, and each
//! build's internal cycle walk shards further (the pool's caller always
//! participates in a batch, so the nesting cannot deadlock).
//! [`ProfileService::query_batch`] / [`query_batch_full`](ProfileService::query_batch_full)
//! answer a request slice in parallel the same way; each worker reuses its
//! thread-local derivation scratch, so steady-state totals queries perform
//! **zero heap allocations** per request (proved by `tests/zero_alloc.rs`).

use std::collections::HashMap;
use std::fmt;

use fhg_graph::Graph;
use rayon::prelude::*;

use crate::analysis::{AnalysisTotals, CycleProfile, GraphChecker, ScheduleAnalysis};
use crate::scheduler::Scheduler;
use crate::schedulers::residue::ResidueSchedule;

/// Why a scheduler could not be registered: the service refuses, with a
/// typed error, every input the closed-form profile cannot represent —
/// the preconditions that used to be unwraps and asserts deep in the
/// analysis engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// The scheduler exposes no perfectly periodic residue view
    /// ([`Scheduler::residue_schedule`] returned `None`), so no cycle
    /// profile exists to build.  Analyze it with the sweep engines instead
    /// ([`crate::analysis::analyze_schedule`]).
    NotPeriodic {
        /// The offending scheduler's [`Scheduler::name`].
        scheduler: String,
    },
    /// The schedule's cycle (possibly a saturated lcm) exceeds the profile
    /// budget [`CycleProfile::MAX_CYCLE`].
    CycleTooLong {
        /// The schedule's cycle length.
        cycle: u64,
        /// The budget it exceeded.
        max: u64,
    },
    /// The per-cycle attendance volume exceeds the profile memory budget
    /// [`CycleProfile::MAX_EVENTS`].
    AttendanceTooHeavy {
        /// The schedule's total attendance per cycle.
        attendance: u64,
        /// The budget it exceeded.
        max: u64,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::NotPeriodic { scheduler } => {
                write!(f, "scheduler {scheduler:?} exposes no periodic residue view")
            }
            RegisterError::CycleTooLong { cycle, max } => {
                write!(f, "cycle {cycle} exceeds the profile budget {max}")
            }
            RegisterError::AttendanceTooHeavy { attendance, max } => {
                write!(f, "attendance {attendance} per cycle exceeds the profile budget {max}")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// Why a query could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// No tenant with this id is registered.
    UnknownTenant(u64),
    /// The tenant is registered but its profile is cold (never built, or
    /// explicitly invalidated); call
    /// [`ProfileService::build_pending`] first.
    ProfileNotBuilt(u64),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTenant(t) => write!(f, "tenant {t} is not registered"),
            QueryError::ProfileNotBuilt(t) => {
                write!(f, "tenant {t}'s profile is cold; run build_pending first")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// One windowed request: analyze tenant `tenant` over the holiday window
/// `[window.0, window.1)` (offsets relative to the schedule's first
/// holiday; `window.1 <= window.0` is the empty window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// The tenant whose schedule to analyze.
    pub tenant: u64,
    /// The half-open window `[t0, t1)`.
    pub window: (u64, u64),
}

/// A totals-only windowed response.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTotals {
    /// The originating request's tenant.
    pub tenant: u64,
    /// The originating request's window.
    pub window: (u64, u64),
    /// The whole-window aggregates.
    pub totals: AnalysisTotals,
}

/// A full per-node windowed response.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAnalysis {
    /// The originating request's tenant.
    pub tenant: u64,
    /// The originating request's window.
    pub window: (u64, u64),
    /// The per-node analysis of the window.
    pub analysis: ScheduleAnalysis,
}

/// One cached (graph, schedule) pair and its profile, shared by every
/// tenant whose content hashes to the same key.
struct ProfileSlot {
    graph: Graph,
    view: ResidueSchedule,
    start: u64,
    name: String,
    /// `None` while cold (pending first build, or invalidated).
    profile: Option<CycleProfile>,
    /// How many registered tenants point at this slot.
    refs: usize,
}

/// The multi-tenant profile cache and batch query front — see the module
/// docs for the cache keying and invalidation contract.
#[derive(Default)]
pub struct ProfileService {
    /// tenant id → schedule key.
    tenants: HashMap<u64, u64>,
    /// schedule key → cached slot.
    slots: HashMap<u64, ProfileSlot>,
}

impl ProfileService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) tenant `tenant` with its conflict graph
    /// and scheduler, returning the schedule key the tenant was bound to.
    /// Validates every profile precondition up front — periodicity, the
    /// cycle budget, the attendance budget — and returns a typed
    /// [`RegisterError`] instead of crashing later.  The profile itself is
    /// *not* built here: registration marks the key pending and
    /// [`ProfileService::build_pending`] builds all pending keys sharded
    /// across the worker pool.  Re-registering a tenant whose content
    /// changed rebinds it (the old key is dropped with its last tenant);
    /// re-registering identical content is a no-op that keeps any warm
    /// profile.
    pub fn register<S: Scheduler + ?Sized>(
        &mut self,
        tenant: u64,
        graph: &Graph,
        scheduler: &S,
    ) -> Result<u64, RegisterError> {
        let Some(view) = scheduler.residue_schedule() else {
            return Err(RegisterError::NotPeriodic { scheduler: scheduler.name().to_string() });
        };
        let cycle = view.cycle();
        if cycle > CycleProfile::MAX_CYCLE {
            return Err(RegisterError::CycleTooLong { cycle, max: CycleProfile::MAX_CYCLE });
        }
        let attendance = view.attendance_per_cycle();
        if attendance > CycleProfile::MAX_EVENTS {
            return Err(RegisterError::AttendanceTooHeavy {
                attendance,
                max: CycleProfile::MAX_EVENTS,
            });
        }
        let start = scheduler.first_holiday();
        let key = schedule_key(graph, view, start);
        match self.tenants.get(&tenant) {
            Some(&old) if old == key => return Ok(key),
            Some(&old) => self.release_key(old),
            None => {}
        }
        self.tenants.insert(tenant, key);
        self.slots.entry(key).and_modify(|slot| slot.refs += 1).or_insert_with(|| ProfileSlot {
            graph: graph.clone(),
            view: view.clone(),
            start,
            name: scheduler.name().to_string(),
            profile: None,
            refs: 1,
        });
        Ok(key)
    }

    /// Unregisters a tenant; its schedule key (and cached profile) is
    /// dropped when the last tenant sharing it leaves.  Returns whether the
    /// tenant was registered.
    pub fn remove(&mut self, tenant: u64) -> bool {
        match self.tenants.remove(&tenant) {
            Some(key) => {
                self.release_key(key);
                true
            }
            None => false,
        }
    }

    fn release_key(&mut self, key: u64) {
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.refs -= 1;
            if slot.refs == 0 {
                self.slots.remove(&key);
            }
        }
    }

    /// Explicitly invalidates a tenant's cached profile — the *schedule
    /// key* goes cold, so every tenant sharing it rebuilds on the next
    /// [`ProfileService::build_pending`].  Returns whether a warm profile
    /// was actually dropped.
    pub fn invalidate(&mut self, tenant: u64) -> bool {
        let Some(&key) = self.tenants.get(&tenant) else {
            return false;
        };
        match self.slots.get_mut(&key) {
            Some(slot) => slot.profile.take().is_some(),
            None => false,
        }
    }

    /// Drops every cached profile (registrations stay).
    pub fn invalidate_all(&mut self) {
        for slot in self.slots.values_mut() {
            slot.profile = None;
        }
    }

    /// Builds every cold profile, sharded across the persistent worker
    /// pool (each build's internal cycle walk shards further — the nesting
    /// is deadlock-free because the pool's caller always participates).
    /// Returns how many profiles were built.  Idempotent: warm profiles
    /// are untouched, so the service stays bitwise-stable across calls.
    pub fn build_pending(&mut self) -> usize {
        let pending: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, slot)| slot.profile.is_none())
            .map(|(&key, _)| key)
            .collect();
        let mut building: Vec<(u64, ProfileSlot)> = pending
            .into_iter()
            .map(|key| {
                let slot = self.slots.remove(&key).expect("pending key was just enumerated");
                (key, slot)
            })
            .collect();
        building.par_iter_mut().for_each(|(_, slot)| {
            let checker = GraphChecker::new(&slot.graph);
            slot.profile = Some(CycleProfile::build(
                &slot.view,
                slot.start,
                slot.graph.node_count(),
                &checker,
            ));
        });
        let built = building.len();
        for (key, slot) in building {
            self.slots.insert(key, slot);
        }
        built
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Number of distinct schedule keys currently cached (warm or cold).
    pub fn key_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of warm (built) profiles.
    pub fn warm_count(&self) -> usize {
        self.slots.values().filter(|slot| slot.profile.is_some()).count()
    }

    /// The warm profile serving `tenant`, if any.
    pub fn profile(&self, tenant: u64) -> Option<&CycleProfile> {
        let key = self.tenants.get(&tenant)?;
        self.slots.get(key)?.profile.as_ref()
    }

    fn slot_of(&self, tenant: u64) -> Result<(&ProfileSlot, &CycleProfile), QueryError> {
        let key = self.tenants.get(&tenant).ok_or(QueryError::UnknownTenant(tenant))?;
        let slot = self.slots.get(key).ok_or(QueryError::UnknownTenant(tenant))?;
        let profile = slot.profile.as_ref().ok_or(QueryError::ProfileNotBuilt(tenant))?;
        Ok((slot, profile))
    }

    /// Answers one totals-only windowed query — the hot serving shape:
    /// after warm-up this performs zero heap allocations (thread-local
    /// derivation scratch; proved by `tests/zero_alloc.rs`).
    pub fn query_totals(
        &self,
        tenant: u64,
        t0: u64,
        t1: u64,
    ) -> Result<AnalysisTotals, QueryError> {
        let (_, profile) = self.slot_of(tenant)?;
        Ok(profile.derive_window_totals(t0, t1))
    }

    /// Answers one full per-node windowed query (the output allocation is
    /// proportional to the node count, never the window length).
    pub fn query(&self, tenant: u64, t0: u64, t1: u64) -> Result<ScheduleAnalysis, QueryError> {
        let (slot, profile) = self.slot_of(tenant)?;
        Ok(profile.derive_window(&slot.name, &slot.graph, t0, t1))
    }

    /// The batch front, totals flavor: answers every request, sharded
    /// across the worker pool, results in request order.  Individual
    /// failures (unknown tenant, cold profile) fail their own slot only.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<WindowTotals, QueryError>> {
        queries
            .par_iter()
            .map(|q| {
                self.query_totals(q.tenant, q.window.0, q.window.1).map(|totals| WindowTotals {
                    tenant: q.tenant,
                    window: q.window,
                    totals,
                })
            })
            .collect()
    }

    /// The batch front, full-analysis flavor.
    pub fn query_batch_full(&self, queries: &[Query]) -> Vec<Result<WindowAnalysis, QueryError>> {
        queries
            .par_iter()
            .map(|q| {
                self.query(q.tenant, q.window.0, q.window.1).map(|analysis| WindowAnalysis {
                    tenant: q.tenant,
                    window: q.window,
                    analysis,
                })
            })
            .collect()
    }
}

/// 64-bit FNV-1a accumulator for the schedule content key.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn put(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The schedule content key: FNV-1a over the residue assignment
/// (`(slot, modulus)` per node, plus the first holiday) *and* the conflict
/// graph's adjacency — two tenants share a profile only when both the
/// schedule and the graph match, because the independence verdict baked
/// into a profile depends on the graph.
fn schedule_key(graph: &Graph, view: &ResidueSchedule, start: u64) -> u64 {
    let mut h = Fnv::new();
    h.put(start);
    h.put(view.node_count() as u64);
    for p in 0..view.node_count() {
        h.put(view.slot(p));
        h.put(view.modulus(p));
    }
    h.put(graph.node_count() as u64);
    for u in graph.nodes() {
        let row = graph.neighbors(u);
        h.put(row.len() as u64);
        for &v in row {
            h.put(v as u64);
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_schedule_reference;
    use crate::schedulers::{FirstComeFirstGrab, PeriodicDegreeBound};
    use fhg_graph::generators::erdos_renyi;

    #[test]
    fn non_periodic_schedulers_are_a_typed_error_not_a_crash() {
        let g = erdos_renyi(16, 0.2, 7);
        let mut service = ProfileService::new();
        let dynamic = FirstComeFirstGrab::new(&g, 42);
        let err = service.register(1, &g, &dynamic).unwrap_err();
        assert!(matches!(err, RegisterError::NotPeriodic { .. }), "{err}");
        assert_eq!(service.tenant_count(), 0, "failed registrations leave no residue");
    }

    #[test]
    fn over_budget_cycles_are_rejected_up_front() {
        // Huge coprime moduli: the lcm saturates far past MAX_CYCLE.
        let g = Graph::new(3);
        let view = ResidueSchedule::scan_only(
            vec![0, 1, 2],
            vec![(1 << 21) + 1, (1 << 21) - 1, (1 << 20) + 3],
        );
        struct Fixed(ResidueSchedule);
        impl Scheduler for Fixed {
            fn node_count(&self) -> usize {
                self.0.node_count()
            }
            fn fill_happy_set(&mut self, t: u64, out: &mut crate::HappySet) {
                self.0.fill(t, out);
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn is_periodic(&self) -> bool {
                true
            }
            fn period(&self, p: fhg_graph::NodeId) -> Option<u64> {
                Some(self.0.modulus(p))
            }
            fn unhappiness_bound(&self, _p: fhg_graph::NodeId) -> Option<u64> {
                None
            }
            fn residue_schedule(&self) -> Option<&ResidueSchedule> {
                Some(&self.0)
            }
        }
        let mut service = ProfileService::new();
        let err = service.register(9, &g, &Fixed(view)).unwrap_err();
        assert!(matches!(err, RegisterError::CycleTooLong { .. }), "{err}");
    }

    #[test]
    fn identical_content_shares_one_profile_and_invalidation_is_explicit() {
        let g = erdos_renyi(24, 0.15, 3);
        let s = PeriodicDegreeBound::new(&g);
        let mut service = ProfileService::new();
        let k1 = service.register(1, &g, &s).unwrap();
        let k2 = service.register(2, &g, &s).unwrap();
        assert_eq!(k1, k2, "identical content hashes to one key");
        assert_eq!(service.key_count(), 1);
        assert_eq!(service.tenant_count(), 2);

        assert_eq!(service.query_totals(1, 0, 10), Err(QueryError::ProfileNotBuilt(1)));
        assert_eq!(service.build_pending(), 1, "one shared build for both tenants");
        assert_eq!(service.build_pending(), 0, "idempotent");
        assert_eq!(service.warm_count(), 1);

        let a = service.query_totals(1, 3, 40).unwrap();
        let b = service.query_totals(2, 3, 40).unwrap();
        assert_eq!(a, b);
        assert_eq!(service.query_totals(3, 0, 10), Err(QueryError::UnknownTenant(3)));

        assert!(service.invalidate(1), "warm profile dropped");
        assert!(!service.invalidate(1), "already cold");
        assert_eq!(service.query_totals(2, 3, 40), Err(QueryError::ProfileNotBuilt(2)));
        assert_eq!(service.build_pending(), 1);
        assert_eq!(service.query_totals(2, 3, 40).unwrap(), a, "rebuild is bitwise-stable");

        assert!(service.remove(1));
        assert_eq!(service.key_count(), 1, "tenant 2 still holds the key");
        assert!(service.remove(2));
        assert_eq!(service.key_count(), 0, "last tenant drops the slot");
    }

    #[test]
    fn served_windows_match_the_reference_sweep() {
        let g = erdos_renyi(32, 0.12, 5);
        let s = PeriodicDegreeBound::new(&g);
        let mut service = ProfileService::new();
        service.register(7, &g, &s).unwrap();
        service.build_pending();
        let cycle = service.profile(7).unwrap().cycle();

        // Reference over [0, t1): the sweep from the schedule itself.
        let t1 = 2 * cycle + 3;
        let mut fresh = PeriodicDegreeBound::new(&g);
        let reference = analyze_schedule_reference(&g, &mut fresh, t1);
        let served = service.query(7, 0, t1).unwrap();
        assert_eq!(served.totals(), reference.totals());

        // The batch front agrees with the single-query path, slot by slot.
        let queries: Vec<Query> = (0..20)
            .map(|i| Query { tenant: 7, window: (i * 3, i * 3 + 1 + i % (2 * cycle)) })
            .chain([Query { tenant: 99, window: (0, 5) }])
            .collect();
        let batch = service.query_batch(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            match r {
                Ok(w) => {
                    assert_eq!(w.tenant, q.tenant);
                    assert_eq!(
                        w.totals,
                        service.query_totals(q.tenant, q.window.0, q.window.1).unwrap()
                    );
                }
                Err(e) => assert_eq!(*e, QueryError::UnknownTenant(99)),
            }
        }
        let full = service.query_batch_full(&queries[..4]);
        for (q, r) in queries.iter().zip(&full) {
            let w = r.as_ref().unwrap();
            assert_eq!(
                w.analysis.totals(),
                service.query_totals(q.tenant, q.window.0, q.window.1).unwrap()
            );
        }
    }

    #[test]
    fn schedule_key_separates_graph_and_schedule_content() {
        let g1 = erdos_renyi(24, 0.15, 3);
        let mut g2 = g1.clone();
        // Flip one edge: same schedule, different graph, different key.
        let (u, v) = (0, 1);
        if g2.has_edge(u, v) {
            g2.remove_edge(u, v).unwrap();
        } else {
            g2.add_edge(u, v).unwrap();
        }
        let s1 = PeriodicDegreeBound::new(&g1);
        let view = s1.residue_schedule().unwrap();
        let k_same = schedule_key(&g1, view, 1);
        assert_eq!(k_same, schedule_key(&g1, view, 1), "deterministic");
        assert_ne!(k_same, schedule_key(&g2, view, 1), "graph content is part of the key");
        assert_ne!(k_same, schedule_key(&g1, view, 2), "the first holiday is part of the key");
    }
}
